#!/usr/bin/env bash
# Offline type-check harness: copies the workspace into .devcheck/work/,
# patches crates-io deps onto local stub crates, and runs cargo check.
# This container has no network access to the registry, so the real
# `cargo build --release && cargo test` only runs in CI; this script is the
# strongest local verification available (full type-check of all targets).
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
DEV="$ROOT/.devcheck"
WORK="$DEV/work"

rm -rf "$WORK"
mkdir -p "$WORK"

# Copy workspace sources (not .git/.devcheck/target).
(cd "$ROOT" && tar -cf - --exclude=.git --exclude=.devcheck --exclude=target .) | tar -xf - -C "$WORK"

cat >> "$WORK/Cargo.toml" <<EOF

[patch.crates-io]
rand = { path = "$DEV/stubs/rand" }
rand_chacha = { path = "$DEV/stubs/rand_chacha" }
serde = { path = "$DEV/stubs/serde" }
serde_derive = { path = "$DEV/stubs/serde_derive" }
serde_json = { path = "$DEV/stubs/serde_json" }
rayon = { path = "$DEV/stubs/rayon" }
proptest = { path = "$DEV/stubs/proptest" }
criterion = { path = "$DEV/stubs/criterion" }
EOF

cd "$WORK"
export CARGO_NET_OFFLINE=true
cargo check --workspace --all-targets "$@"

# Bench smoke: criterion benches link against the stub, so a plain
# `--no-run` build catches bench bit-rot that `cargo check` misses.
# Skippable for fast iteration with DEVCHECK_BENCH=0.
if [[ "${DEVCHECK_BENCH:-1}" == "1" ]]; then
  cargo bench --workspace --no-run
fi
