//! Offline type-check stub for `rand_chacha` (not the real cipher).

use rand::{RngCore, SeedableRng};

macro_rules! chacha {
    ($name:ident) => {
        #[derive(Clone, Debug, PartialEq, Eq)]
        pub struct $name {
            state: u64,
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                self.next_u64() as u32
            }
            fn next_u64(&mut self) -> u64 {
                self.state = self
                    .state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let x = self.state;
                (x ^ (x >> 31)).wrapping_mul(0x9E3779B97F4A7C15)
            }
            fn fill_bytes(&mut self, dest: &mut [u8]) {
                for chunk in dest.chunks_mut(8) {
                    let bytes = self.next_u64().to_le_bytes();
                    let n = chunk.len();
                    chunk.copy_from_slice(&bytes[..n]);
                }
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];
            fn from_seed(seed: Self::Seed) -> Self {
                let mut s = [0u8; 8];
                s.copy_from_slice(&seed[..8]);
                $name { state: u64::from_le_bytes(s) ^ 0xC4AC4A }
            }
        }
    };
}

chacha!(ChaCha8Rng);
chacha!(ChaCha12Rng);
chacha!(ChaCha20Rng);
