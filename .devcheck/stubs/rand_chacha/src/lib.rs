//! Offline type-check stub for `rand_chacha` (not the real cipher).
//!
//! Besides the `RngCore`/`SeedableRng` surface, the stub mirrors the
//! real crate's stream-position API (`get_seed`, `get_stream`,
//! `set_stream`, `get_word_pos`, `set_word_pos`) so the checkpoint
//! capture/restore path in `optical-core::persist` type-checks and —
//! because `get_word_pos`/`set_word_pos` round-trip the stub's entire
//! generator state — restores bit-exactly when the stub workspace
//! actually runs (smoke binaries, perf gate). The "word position" here
//! is an opaque resume token, not a true block-counter offset.

use rand::{RngCore, SeedableRng};

macro_rules! chacha {
    ($name:ident) => {
        #[derive(Clone, Debug, PartialEq, Eq)]
        pub struct $name {
            seed: [u8; 32],
            stream: u64,
            state: u64,
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                self.next_u64() as u32
            }
            fn next_u64(&mut self) -> u64 {
                self.state = self
                    .state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let x = self.state;
                (x ^ (x >> 31)).wrapping_mul(0x9E3779B97F4A7C15)
            }
            fn fill_bytes(&mut self, dest: &mut [u8]) {
                for chunk in dest.chunks_mut(8) {
                    let bytes = self.next_u64().to_le_bytes();
                    let n = chunk.len();
                    chunk.copy_from_slice(&bytes[..n]);
                }
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];
            fn from_seed(seed: Self::Seed) -> Self {
                let mut s = [0u8; 8];
                s.copy_from_slice(&seed[..8]);
                $name {
                    seed,
                    stream: 0,
                    state: u64::from_le_bytes(s) ^ 0xC4AC4A,
                }
            }
        }

        impl $name {
            /// The seed this generator was constructed from.
            pub fn get_seed(&self) -> [u8; 32] {
                self.seed
            }
            /// The stream id (stub: stored verbatim, never derived from).
            pub fn get_stream(&self) -> u64 {
                self.stream
            }
            /// Select a stream. The stub re-derives its state from the
            /// seed and folds the stream in, so distinct streams diverge;
            /// a subsequent `set_word_pos` overrides this entirely (the
            /// restore path).
            pub fn set_stream(&mut self, stream: u64) {
                let mut s = [0u8; 8];
                s.copy_from_slice(&self.seed[..8]);
                self.stream = stream;
                self.state = (u64::from_le_bytes(s) ^ 0xC4AC4A) ^ stream.rotate_left(17);
            }
            /// Opaque position token: the stub's full generator state.
            pub fn get_word_pos(&self) -> u128 {
                u128::from(self.state)
            }
            /// Restore a position captured by [`get_word_pos`].
            pub fn set_word_pos(&mut self, word_offset: u128) {
                self.state = word_offset as u64;
            }
        }
    };
}

chacha!(ChaCha8Rng);
chacha!(ChaCha12Rng);
chacha!(ChaCha20Rng);
