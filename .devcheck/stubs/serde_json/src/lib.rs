//! Offline type-check stub for `serde_json` — signatures only; always
//! errors at runtime (never executed by .devcheck, which only compiles).

use serde::{Deserialize, Serialize};

#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("serde_json stub")
    }
}
impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

pub fn to_string<T: ?Sized + Serialize>(_value: &T) -> Result<String> {
    Err(Error)
}

pub fn to_string_pretty<T: ?Sized + Serialize>(_value: &T) -> Result<String> {
    Err(Error)
}

pub fn from_str<'a, T: Deserialize<'a>>(_s: &'a str) -> Result<T> {
    Err(Error)
}

pub fn to_vec<T: ?Sized + Serialize>(_value: &T) -> Result<Vec<u8>> {
    Err(Error)
}

pub fn from_slice<'a, T: Deserialize<'a>>(_v: &'a [u8]) -> Result<T> {
    Err(Error)
}
