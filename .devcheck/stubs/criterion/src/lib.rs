//! Offline type-check stub for `criterion`: supports the bench APIs this
//! workspace uses (groups, bench_with_input, throughput, iter). Runs each
//! closure once; the real crate replaces it in CI.

pub struct Criterion;

impl Criterion {
    pub fn benchmark_group(&mut self, _name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, _name: &str, mut f: F) -> &mut Self {
        f(&mut Bencher);
        self
    }
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion
    }
}

pub struct BenchmarkGroup;

impl BenchmarkGroup {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, _name: &str, mut f: F) -> &mut Self {
        f(&mut Bencher);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        _id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        f(&mut Bencher, input);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher;

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let _ = f();
    }
}

pub struct BenchmarkId;

impl BenchmarkId {
    pub fn new(_name: impl Into<String>, _param: impl std::fmt::Display) -> Self {
        BenchmarkId
    }

    pub fn from_parameter(_param: impl std::fmt::Display) -> Self {
        BenchmarkId
    }
}

pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
