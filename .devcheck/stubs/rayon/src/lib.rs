//! Offline type-check stub for `rayon`: "parallel" iterators are plain
//! sequential std iterators, which type-check the same call sites.

pub mod iter {
    pub trait IntoParallelRefIterator<'data> {
        type Iter: Iterator<Item = Self::Item>;
        type Item: 'data;
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Iter = std::slice::Iter<'data, T>;
        type Item = &'data T;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Iter = std::slice::Iter<'data, T>;
        type Item = &'data T;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    pub trait IntoParallelIterator {
        type Iter: Iterator<Item = Self::Item>;
        type Item;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Iter = std::vec::IntoIter<T>;
        type Item = T;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    impl<T> IntoParallelIterator for std::ops::Range<T>
    where
        std::ops::Range<T>: Iterator<Item = T>,
    {
        type Iter = std::ops::Range<T>;
        type Item = T;
        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }

    /// Sequential stand-ins for rayon's `ParallelIterator` combinators
    /// that std's `Iterator` does not already provide.
    pub trait ParallelIterator: Iterator + Sized {
        fn map_init<I, T, R, F>(self, mut init: I, mut f: F) -> std::vec::IntoIter<R>
        where
            I: FnMut() -> T,
            F: FnMut(&mut T, Self::Item) -> R,
        {
            let mut state = init();
            self.map(|item| f(&mut state, item))
                .collect::<Vec<R>>()
                .into_iter()
        }
    }

    impl<It: Iterator> ParallelIterator for It {}
}

pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// Sequential stand-in for rayon's scoped thread pools: `install` just
/// runs the closure on the calling thread (which is also what real rayon
/// does with `num_threads(1)` plus work-stealing disabled).
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        op()
    }

    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("stub thread pools cannot fail to build")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: if self.num_threads == 0 {
                1
            } else {
                self.num_threads
            },
        })
    }
}

/// Number of threads the stub "pool" uses: always 1 (sequential).
pub fn current_num_threads() -> usize {
    1
}
