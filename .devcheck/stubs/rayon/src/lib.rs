//! Offline type-check stub for `rayon`: "parallel" iterators are plain
//! sequential std iterators, which type-check the same call sites.

pub mod iter {
    pub trait IntoParallelRefIterator<'data> {
        type Iter: Iterator<Item = Self::Item>;
        type Item: 'data;
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Iter = std::slice::Iter<'data, T>;
        type Item = &'data T;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Iter = std::slice::Iter<'data, T>;
        type Item = &'data T;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    pub trait IntoParallelIterator {
        type Iter: Iterator<Item = Self::Item>;
        type Item;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Iter = std::vec::IntoIter<T>;
        type Item = T;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    impl<T> IntoParallelIterator for std::ops::Range<T>
    where
        std::ops::Range<T>: Iterator<Item = T>,
    {
        type Iter = std::ops::Range<T>;
        type Item = T;
        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }
}

pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator};
}
