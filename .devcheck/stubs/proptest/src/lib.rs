//! Offline type-check stub for `proptest`, supporting the subset this
//! workspace uses: `proptest! { #![proptest_config(..)] #[test] fn f(x in
//! range, ..) {..} }` plus `prop_assert!`/`prop_assert_eq!`. Runs a few
//! deterministic cases sequentially; the real crate replaces it in CI.

pub mod test_runner {
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 16 }
        }
    }

    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(msg: impl std::fmt::Display) -> Self {
            TestCaseError(msg.to_string())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
}

pub mod strategy {
    fn next(rng: &mut u64) -> u64 {
        *rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let x = *rng;
        x ^ (x >> 31)
    }

    pub trait StubStrategy {
        type Value;
        fn sample_stub(&self, rng: &mut u64) -> Self::Value;
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {
            $(
                impl StubStrategy for core::ops::Range<$t> {
                    type Value = $t;
                    fn sample_stub(&self, rng: &mut u64) -> $t {
                        let span = (self.end - self.start) as u64;
                        assert!(span > 0, "empty strategy range");
                        self.start + (next(rng) % span) as $t
                    }
                }
                impl StubStrategy for core::ops::RangeInclusive<$t> {
                    type Value = $t;
                    fn sample_stub(&self, rng: &mut u64) -> $t {
                        let span = (*self.end() - *self.start()) as u64 + 1;
                        *self.start() + (next(rng) % span) as $t
                    }
                }
            )*
        };
    }
    range_strategy!(u8, u16, u32, u64, usize);

    pub fn sample<S: StubStrategy>(s: &S, rng: &mut u64) -> S::Value {
        s.sample_stub(rng)
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { $($rest)* }
    };
    ($( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __pt_rng: u64 = 0x9E3779B97F4A7C15;
                for __pt_case in 0..8u32 {
                    let _ = __pt_case;
                    $( let $arg = $crate::strategy::sample(&($strat), &mut __pt_rng); )*
                    let __pt_res: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let Err(e) = __pt_res {
                        panic!("proptest stub case failed: {}", e);
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let __a = $a;
        let __b = $b;
        if !(__a == __b) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{:?} != {:?}",
                __a, __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let __a = $a;
        let __b = $b;
        if !(__a == __b) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let __a = $a;
        let __b = $b;
        if __a == __b {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{:?} == {:?}",
                __a, __b
            )));
        }
    }};
}

pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}
