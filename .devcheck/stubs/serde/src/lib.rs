//! Offline type-check stub for `serde` (traits only; derives are no-op
//! marker impls).

pub trait Serialize {
    fn erased_serialize(&self) {}
}

pub trait Deserialize<'de>: Sized {}

pub mod de {
    pub trait DeserializeOwned: for<'de> crate::Deserialize<'de> {}
    impl<T> DeserializeOwned for T where T: for<'de> crate::Deserialize<'de> {}
}

pub mod ser {
    pub use crate::Serialize;
}

macro_rules! primitive_impls {
    ($($t:ty),*) => {
        $(
            impl Serialize for $t {}
            impl<'de> Deserialize<'de> for $t {}
        )*
    };
}
primitive_impls!(
    bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, char, String
);

impl Serialize for str {}
impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize> Serialize for Box<[T]> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<[T]> {}
impl<T: Serialize> Serialize for [T] {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}
impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>, C: Deserialize<'de>> Deserialize<'de>
    for (A, B, C)
{
}
impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {}
impl<'de, K, V, S> Deserialize<'de> for std::collections::HashMap<K, V, S>
where
    K: Deserialize<'de> + std::hash::Hash + Eq,
    V: Deserialize<'de>,
    S: std::hash::BuildHasher + Default,
{
}
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
