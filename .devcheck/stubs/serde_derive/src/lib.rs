//! Offline type-check stub for serde's derive macros: emits empty marker
//! impls (`impl Serialize for T {}`), which is all the stub serde traits
//! need. Supports plain structs and enums, including generic ones whose
//! type-parameter list is bare idents (`Versioned<T>`, `Wheel<A, B>`);
//! parameters with bounds, lifetimes, or const generics fall back to
//! emitting nothing (no such serde derive site exists in this
//! workspace).

use proc_macro::{TokenStream, TokenTree};

/// Extract the type name following the first `struct` or `enum` keyword,
/// plus its type parameters when the list is bare idents. Returns `None`
/// for a parameter list the stub cannot mirror.
fn type_shape(input: &TokenStream) -> Option<(String, Vec<String>)> {
    let mut iter = input.clone().into_iter().peekable();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let s = id.to_string();
            if s == "struct" || s == "enum" {
                let name = match iter.next() {
                    Some(TokenTree::Ident(name)) => name.to_string(),
                    _ => return None,
                };
                let generic = matches!(
                    iter.peek(),
                    Some(TokenTree::Punct(p)) if p.as_char() == '<'
                );
                if !generic {
                    return Some((name, Vec::new()));
                }
                iter.next(); // consume '<'
                let mut params = Vec::new();
                let mut want_ident = true;
                for tt in iter {
                    match tt {
                        TokenTree::Ident(p) if want_ident => {
                            params.push(p.to_string());
                            want_ident = false;
                        }
                        TokenTree::Punct(p) if !want_ident && p.as_char() == ',' => {
                            want_ident = true;
                        }
                        TokenTree::Punct(p) if !want_ident && p.as_char() == '>' => {
                            return Some((name, params));
                        }
                        // Bounds (':'), lifetimes ('\''), defaults ('='),
                        // const generics: beyond the stub.
                        _ => return None,
                    }
                }
                return None;
            }
        }
    }
    None
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match type_shape(&input) {
        Some((name, params)) if params.is_empty() => {
            format!("impl ::serde::Serialize for {name} {{}}")
                .parse()
                .unwrap()
        }
        Some((name, params)) => {
            let bounded = params
                .iter()
                .map(|p| format!("{p}: ::serde::Serialize"))
                .collect::<Vec<_>>()
                .join(", ");
            let plain = params.join(", ");
            format!("impl<{bounded}> ::serde::Serialize for {name}<{plain}> {{}}")
                .parse()
                .unwrap()
        }
        None => TokenStream::new(),
    }
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match type_shape(&input) {
        Some((name, params)) if params.is_empty() => {
            format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
                .parse()
                .unwrap()
        }
        Some((name, params)) => {
            let bounded = params
                .iter()
                .map(|p| format!("{p}: ::serde::Deserialize<'de>"))
                .collect::<Vec<_>>()
                .join(", ");
            let plain = params.join(", ");
            format!("impl<'de, {bounded}> ::serde::Deserialize<'de> for {name}<{plain}> {{}}")
                .parse()
                .unwrap()
        }
        None => TokenStream::new(),
    }
}
