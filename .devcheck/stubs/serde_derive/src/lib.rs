//! Offline type-check stub for serde's derive macros: emits empty marker
//! impls (`impl Serialize for T {}`), which is all the stub serde traits
//! need. Supports plain (non-generic) structs and enums, which is every
//! derive site in this workspace.

use proc_macro::{TokenStream, TokenTree};

/// Extract the type name following the first `struct` or `enum` keyword,
/// plus whether it has generic parameters.
fn type_name(input: &TokenStream) -> Option<(String, bool)> {
    let mut iter = input.clone().into_iter().peekable();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let s = id.to_string();
            if s == "struct" || s == "enum" {
                if let Some(TokenTree::Ident(name)) = iter.next() {
                    let generic = matches!(
                        iter.peek(),
                        Some(TokenTree::Punct(p)) if p.as_char() == '<'
                    );
                    return Some((name.to_string(), generic));
                }
            }
        }
    }
    None
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match type_name(&input) {
        Some((name, false)) => format!("impl ::serde::Serialize for {name} {{}}")
            .parse()
            .unwrap(),
        _ => TokenStream::new(),
    }
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match type_name(&input) {
        Some((name, false)) => {
            format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
                .parse()
                .unwrap()
        }
        _ => TokenStream::new(),
    }
}
