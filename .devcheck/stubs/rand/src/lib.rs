//! Offline type-check stub for the `rand` crate (API subset).
//! NOT a correct RNG — only used by .devcheck to type-check the
//! workspace without network access. The real build uses crates.io.

pub mod distributions {
    use crate::RngCore;

    pub trait Distribution<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    pub struct Standard;

    macro_rules! std_int {
        ($($t:ty),*) => {
            $(impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            })*
        };
    }
    std_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            ((rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64) as f32
        }
    }

    pub mod uniform {
        use crate::RngCore;

        pub trait SampleUniform: Sized + Copy + PartialOrd {
            fn sample_one<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self;
        }

        macro_rules! uniform_int {
            ($($t:ty),*) => {
                $(impl SampleUniform for $t {
                    fn sample_one<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self {
                        let lo = low as i128;
                        let hi = high as i128 + if inclusive { 1 } else { 0 };
                        assert!(lo < hi, "cannot sample empty range");
                        let span = (hi - lo) as u128;
                        let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                        (lo + r as i128) as $t
                    }
                })*
            };
        }
        uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        impl SampleUniform for f64 {
            fn sample_one<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self {
                let _ = inclusive;
                assert!(low < high, "cannot sample empty range");
                let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                low + u * (high - low)
            }
        }
        impl SampleUniform for f32 {
            fn sample_one<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self {
                f64::sample_one(rng, low as f64, high as f64, inclusive) as f32
            }
        }

        pub trait SampleRange<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }
        impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                T::sample_one(rng, self.start, self.end, false)
            }
        }
        impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                T::sample_one(rng, *self.start(), *self.end(), true)
            }
        }
    }
}

pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::uniform::SampleUniform,
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        self.next_u32() % denominator.max(1) < numerator
    }

    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let bytes = state.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }

    fn from_entropy() -> Self {
        Self::seed_from_u64(0x5EED)
    }
}

pub mod seq {
    use crate::Rng;

    pub trait SliceRandom {
        type Item;
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() % self.len() as u64) as usize;
                Some(&self[i])
            }
        }
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

pub mod rngs {
    use crate::{RngCore, SeedableRng};

    #[derive(Clone, Debug)]
    pub struct StdRng(u64);

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let x = self.0;
            x ^ (x >> 31)
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];
        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u8; 8];
            s.copy_from_slice(&seed[..8]);
            StdRng(u64::from_le_bytes(s))
        }
    }
}

pub mod prelude {
    pub use crate::distributions::Distribution;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}
