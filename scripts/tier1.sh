#!/usr/bin/env bash
# Tier-1 verification: everything that must pass before a merge.
#
#   ./scripts/tier1.sh          # build + tests + format + lints
#   ./scripts/tier1.sh --fast   # skip the release build (debug tests only)
set -euo pipefail
cd "$(dirname "${BASH_SOURCE[0]}")/.."

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

if [[ $fast -eq 0 ]]; then
  echo "== cargo build --release =="
  cargo build --release
fi

echo "== cargo test -q =="
cargo test -q

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "tier-1: all green"
