#!/usr/bin/env bash
# Tier-1 verification: everything that must pass before a merge.
#
#   ./scripts/tier1.sh          # build + tests + format + lints
#   ./scripts/tier1.sh --fast   # skip the release build (debug tests only)
set -euo pipefail
cd "$(dirname "${BASH_SOURCE[0]}")/.."

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

if [[ $fast -eq 0 ]]; then
  echo "== cargo build --release =="
  cargo build --release

  # The full experiment suite (quick preset) must run and be byte-identical
  # across thread counts — the parallel pipeline's determinism contract.
  echo "== all_experiments --quick (pipeline smoke + determinism) =="
  many="$(cargo run --release -q -p optical-bench --bin all_experiments -- --quick --seed 1997)"
  echo "$many" | grep -q "E16" || { echo "all_experiments --quick: missing sections" >&2; exit 1; }
  one="$(RAYON_NUM_THREADS=1 cargo run --release -q -p optical-bench --bin all_experiments -- --quick --seed 1997)"
  if [[ "$many" != "$one" ]]; then
    echo "all_experiments --quick: output differs across thread counts" >&2
    exit 1
  fi

  # Observability smoke: the instrumented run must emit a non-empty JSONL
  # event trace and trace_report must aggregate it into the summary tables.
  echo "== obs smoke (obs_trace -> trace_report) =="
  obs_dir="$(mktemp -d)"
  trap 'rm -rf "$obs_dir"' EXIT
  cargo run --release -q -p optical-bench --bin obs_trace -- --quick --seed 1997 \
    --out "$obs_dir/trace.jsonl" >/dev/null
  [[ -s "$obs_dir/trace.jsonl" ]] || { echo "obs smoke: empty event trace" >&2; exit 1; }
  cargo run --release -q -p optical-obs --bin trace_report -- "$obs_dir/trace.jsonl" \
    | grep -q "summary:" || { echo "obs smoke: trace_report failed to aggregate" >&2; exit 1; }

  # Recovery-chaos smoke: a seeded churn run through every retry strategy
  # (breakers + DLQ included) must deliver worms and account for all of
  # them — the binary asserts the invariants and prints ok.
  echo "== recovery chaos smoke =="
  cargo run --release -q -p optical-bench --bin recovery_chaos -- --quick --seed 1997 \
    | grep -q "chaos smoke: ok" || { echo "recovery chaos smoke failed" >&2; exit 1; }

  # Steady-state serving smoke: a short diurnal-mix run through the
  # event-driven engine with shed and defer admission control — the binary
  # asserts bounded active population, a non-empty latency sketch, and
  # observability counters in lockstep, then prints ok.
  echo "== continuous steady-state smoke =="
  cargo run --release -q -p optical-bench --bin continuous_smoke -- --quick --seed 1997 \
    | grep -q "continuous smoke: ok" || { echo "continuous smoke failed" >&2; exit 1; }

  # Online RWA smoke: a seeded churn run through the incremental engine
  # and the recompute-per-event reference side by side — the binary
  # asserts identical decision streams, engine invariants, counters in
  # lockstep, and a recolor fixpoint, then prints ok.
  echo "== online RWA smoke =="
  cargo run --release -q -p optical-bench --bin rwa_smoke -- --quick --seed 1997 \
    | grep -q "rwa smoke: ok" || { echo "rwa smoke failed" >&2; exit 1; }

  # Checkpoint/resume smoke: seeded steady-state and online-RWA churn runs
  # cut checkpoints at a fixed cadence; every checkpoint is resumed in
  # fresh state and the binary asserts the continuation is bit-identical
  # to the uninterrupted run (reports, sketches, re-cut checkpoints) and
  # that a mismatched config is a typed rejection, then prints ok.
  echo "== checkpoint/resume smoke =="
  cargo run --release -q -p optical-bench --bin checkpoint_smoke -- --quick --seed 1997 \
    | grep -q "checkpoint smoke: ok" || { echo "checkpoint smoke failed" >&2; exit 1; }
fi

echo "== cargo test -q =="
cargo test -q

# Shard determinism matrix under a pinned single rayon thread: the golden
# engine suite (which includes the shard-count 1/2/8 digest matrix) must
# produce the same results whether rayon actually fans out or runs every
# shard on one worker — the sharded round's thread-count independence
# contract. The default-thread run is already covered by `cargo test -q`.
echo "== shard determinism matrix (RAYON_NUM_THREADS=1) =="
RAYON_NUM_THREADS=1 cargo test -q -p optical-wdm --test golden_engine

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

# The observability crate is the newest surface; lint it by name so a
# future narrowing of the workspace line above can't silently drop it.
echo "== cargo clippy -p optical-obs (deny warnings) =="
cargo clippy -p optical-obs --all-targets -- -D warnings

# The criterion benches are not exercised by `cargo test`, so lint them
# explicitly (already covered by --all-targets, but this names the failure
# when someone narrows the line above).
echo "== cargo clippy --benches (deny warnings) =="
cargo clippy --workspace --benches -- -D warnings

# The committed perf evidence must stay parseable: a malformed
# BENCH_*.json would silently disable the perf gate.
echo "== perf_gate --parse (committed bench files) =="
parse_args=()
for f in BENCH_baseline.json BENCH_pr.json; do
  [[ -f "$f" ]] && parse_args+=(--parse "$f")
done
if [[ ${#parse_args[@]} -gt 0 ]]; then
  if ! cargo run --release -q -p optical-bench --bin perf_gate -- "${parse_args[@]}" 2>/dev/null; then
    bash .devcheck/sync-check.sh >/dev/null 2>&1 || true
    (cd .devcheck/work && cargo build --release --offline -q -p optical-bench --bin perf_gate)
    .devcheck/work/target/release/perf_gate "${parse_args[@]}"
  fi
else
  echo "no committed BENCH_*.json files; skipping"
fi

# Opt-in perf gate: quick perf_gate run compared against the committed
# BENCH_baseline.json with a generous tolerance. Off by default so tier-1
# stays fast; enable with TIER1_BENCH=1.
if [[ "${TIER1_BENCH:-0}" == "1" ]]; then
  echo "== perf gate (quick, tolerance 1.5x) =="
  ./scripts/bench.sh --check
fi

echo "tier-1: all green"
