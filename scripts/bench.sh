#!/usr/bin/env bash
# Perf-gate workflow around the `perf_gate` binary
# (crates/bench/src/bin/perf_gate.rs).
#
#   ./scripts/bench.sh              # full run -> BENCH_pr.json, gate vs BENCH_baseline.json
#   ./scripts/bench.sh --baseline   # full run -> BENCH_baseline.json (baseline update)
#   ./scripts/bench.sh --check      # quick run, generous tolerance (CI smoke; nothing committed)
#   ./scripts/bench.sh --tolerance F  # override the gate tolerance (default 1.25)
#   ./scripts/bench.sh --criterion  # criterion engine microbenches (registry build;
#                                   # offline falls back to a single-pass smoke run)
#
# Baseline-update workflow: before a perf-sensitive refactor, run
# `--baseline` on the pre-change tree and commit BENCH_baseline.json; after
# the change, run with no flags and commit BENCH_pr.json — the comparison
# table printed here is the PR's perf evidence. The gate fails (exit 1)
# when any bench regresses past the tolerance factor.
#
# Gated entries (see perf_gate.rs): engine/round_* (full forward pass),
# engine/resolve_dense / engine/resolve_sparse (contention-kernel extremes:
# every worm in one tie group vs lone heads at vacant bitmask slots),
# engine/round_sharded_{2,8} (intra-trial sharded rounds on the dense
# workload), engine/round_1m (the dense million-node torus round; shard
# count via PERF_GATE_SHARDS, default 8),
# continuous/steady_1m_sparse and continuous/steady_1m_sparse_stepped
# (the event-driven calendar-queue engine vs the round-stepped loop on
# 2^20 sources at a 0.1% duty cycle — their ratio is the PR's speedup
# evidence), continuous/steady_dense (the event path at full load, guards
# its dense-end bookkeeping overhead),
# rwa/greedy_offline (packed-mask greedy coloring of an overlap-heavy
# stacked permutation workload), rwa/online_churn_1m and
# rwa/online_churn_recompute (the incremental online RWA engine vs the
# recompute-per-event reference on an identical million-link churn
# script — their ratio is the speedup evidence for the O(path) admit
# and release paths),
# persist/snapshot_1m and persist/restore_1m (cutting and validating a
# 2^20-source steady checkpoint — holds the persistence layer well
# under one round of serving so cadenced checkpointing cannot distort
# the runs it observes),
# protocol/run_cong_*, protocol/run_obs_off (the traced path with the
# NullSink — guards the zero-overhead observability contract),
# metrics/collection_* (flat-array metrics kernels),
# properties/* (flat leveling / shortcut-free / link-offset kernels) and
# pipeline/run_all_quick (wall-clock of the parallel E1-E17 quick suite,
# instance cache warm). The criterion twins of the engine keys live in
# crates/bench/benches/engine.rs (group engine/contention).
set -euo pipefail
cd "$(dirname "${BASH_SOURCE[0]}")/.."

# The sharded engine keys (engine/round_sharded_*, engine/round_1m) and
# the experiment pipeline scale with the rayon pool, so record the
# effective width alongside the numbers.
host_cores="$(nproc 2>/dev/null || echo '?')"
echo "perf gate: effective rayon threads = ${RAYON_NUM_THREADS:-$host_cores} (host cores: $host_cores)"

mode=pr
tolerance=1.25
quick=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --baseline) mode=baseline ;;
    --check)
      mode=check
      quick="--quick"
      tolerance=1.5
      ;;
    --tolerance)
      shift
      tolerance="$1"
      ;;
    --criterion) mode=criterion ;;
    *)
      echo "unknown argument $1 (try --baseline, --check, --tolerance F, --criterion)" >&2
      exit 2
      ;;
  esac
  shift
done

if [[ "$mode" == criterion ]]; then
  # Statistical microbenches of the contention kernel (and the other
  # engine groups). The real criterion crate needs a registry mirror;
  # offline, the stub workspace still compiles and runs each bench body
  # once — a smoke test that the bench code itself stays green.
  if cargo bench -p optical-bench --bench engine 2>/dev/null; then
    exit 0
  fi
  echo "registry build unavailable; single-pass criterion smoke run in the stub workspace"
  bash .devcheck/sync-check.sh >/dev/null 2>&1 || true
  (cd .devcheck/work && cargo bench --offline -p optical-bench --bench engine)
  exit 0
fi

# Build the gate binary: a plain registry build when the network is
# available, otherwise the offline stub workspace under .devcheck/work
# (same dependency surface; perf_gate itself uses no stubbed hot paths —
# rand_chacha only seeds the workload).
if cargo build --release -p optical-bench --bin perf_gate 2>/dev/null; then
  GATE=target/release/perf_gate
else
  echo "registry build unavailable; building in the offline stub workspace"
  bash .devcheck/sync-check.sh >/dev/null 2>&1 || true
  (cd .devcheck/work && cargo build --release --offline -p optical-bench --bin perf_gate)
  GATE=.devcheck/work/target/release/perf_gate
fi

case "$mode" in
  baseline)
    "$GATE" $quick --out BENCH_baseline.json
    ;;
  pr)
    "$GATE" $quick --out BENCH_pr.json
    if [[ -f BENCH_baseline.json ]]; then
      "$GATE" --compare BENCH_baseline.json BENCH_pr.json --tolerance "$tolerance"
    else
      echo "no BENCH_baseline.json; skipping gate (run --baseline to create one)"
    fi
    ;;
  check)
    out="$(mktemp)"
    trap 'rm -f "$out"' EXIT
    "$GATE" --quick --out "$out"
    if [[ -f BENCH_baseline.json ]]; then
      "$GATE" --compare BENCH_baseline.json "$out" --tolerance "$tolerance"
    else
      echo "no BENCH_baseline.json; skipping gate (run --baseline to create one)"
    fi
    ;;
esac
