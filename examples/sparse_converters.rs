//! Scenario: retrofitting a handful of wavelength converters.
//!
//! Wavelength converters were exotic hardware in 1997 (§4 asks what a
//! *few* of them buy). This example takes a congested hotspot workload on
//! a torus and sweeps the fraction of converter-equipped routers,
//! reporting rounds, time, goodput and transmission efficiency.
//!
//! ```text
//! cargo run --release --example sparse_converters -p all-optical
//! ```

use all_optical::core::{DelaySchedule, ProtocolParams, TrialAndFailure};
use all_optical::paths::select::grid::torus_route;
use all_optical::paths::PathCollection;
use all_optical::topo::{topologies, GridCoords};
use all_optical::wdm::engine::converter_mask;
use all_optical::wdm::RouterConfig;
use all_optical::workloads::functions::hotspot;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn main() {
    let worm_len = 6u32;
    let net = topologies::torus(2, 12);
    let coords = GridCoords::new(2, 12);
    let mut rng = ChaCha8Rng::seed_from_u64(88);
    let f = hotspot(net.node_count(), 0, 0.25, &mut rng);
    let coll = PathCollection::from_function(&net, &f, |s, d| torus_route(&net, &coords, s, d));
    let m = coll.metrics();
    println!(
        "hotspot(25%) on {}: n={}, D={}, C~={}, B=4, L={worm_len}",
        net.name(),
        m.n,
        m.dilation,
        m.path_congestion
    );
    // Collisions concentrate on the links funnelling into the hotspot, so
    // *where* the converters sit matters as much as how many there are:
    // compare random placement against placement near the hotspot.
    let near_hotspot: Vec<bool> = {
        let d = all_optical::topo::algo::bfs(&net, 0).dist;
        (0..net.node_count()).map(|v| d[v] <= 2).collect()
    };
    let targeted_count = near_hotspot.iter().filter(|&&b| b).count();

    let run = |label: &str, nodes: Option<Vec<bool>>| {
        let mut params = ProtocolParams::new(RouterConfig::serve_first(4), worm_len);
        params.schedule = DelaySchedule::Fixed { delta: 48 };
        params.max_rounds = 400;
        params.converters = nodes.map(|ns| converter_mask(&net, |v| ns[v as usize]));
        let proto = TrialAndFailure::new(&net, &coll, params);
        // Average over a few protocol seeds.
        let (mut rounds, mut time, mut eff) = (0.0, 0.0, 0.0);
        let trials = 10;
        for seed in 0..trials {
            let mut run_rng = ChaCha8Rng::seed_from_u64(99 + seed);
            let report = proto.run(&mut run_rng);
            assert!(report.completed);
            rounds += report.rounds_used() as f64;
            time += report.total_time as f64;
            eff += report.efficiency().unwrap();
        }
        let t = trials as f64;
        println!(
            "{label:<26} {:>6.1}  {:>7.0}  {:>10.3}",
            rounds / t,
            time / t,
            eff / t
        );
        time / t
    };

    println!("\nplacement                  rounds     time  efficiency");
    let t_none = run("none", None);
    let mut pick = ChaCha8Rng::seed_from_u64(5);
    let random25: Vec<bool> = (0..net.node_count()).map(|_| pick.gen_bool(0.25)).collect();
    run("random 25%", Some(random25));
    run(
        &format!("targeted ({} nodes near 0)", targeted_count),
        Some(near_hotspot),
    );
    let t_all = run("everywhere", Some(vec![true; net.node_count()]));

    println!(
        "\nFull conversion saves {:.0}% of the time; placement decides how much of\n\
         that a sparse deployment captures — converters are only useful on the\n\
         links where collisions actually happen.",
        (1.0 - t_all / t_none) * 100.0
    );
}
