//! Scenario: why priority couplers are worth building.
//!
//! The paper's Figure 6 structures make serve-first routers eliminate
//! worms in *cycles* — three worms, each killed by the next — which is
//! exactly what separates Main Theorem 1.2 (log n rounds) from Main
//! Theorem 1.3 (√log n rounds with priorities). This example routes the
//! same cyclic workload under both coupler types, prints the per-round
//! blocking graphs, and shows the detected elimination cycles.
//!
//! ```text
//! cargo run --release --example priority_vs_serve_first
//! ```

use all_optical::core::witness::analyze_blocking;
use all_optical::core::{DelaySchedule, ProtocolParams, TrialAndFailure};
use all_optical::wdm::{RouterConfig, TieRule};
use all_optical::workloads::structures::triangle;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let inst = triangle(512, 8, 4); // 512 three-path cyclic structures, L=4
    println!("workload: {} ({} worms)", inst.name, inst.coll.len());

    for (label, router) in [
        ("serve-first", RouterConfig::serve_first(1)),
        ("priority   ", RouterConfig::priority(1)),
    ] {
        let mut params = ProtocolParams::new(router.with_tie(TieRule::Random), 4);
        params.schedule = DelaySchedule::Fixed { delta: 8 };
        params.max_rounds = 1000;
        params.record_blocking = true;
        let proto = TrialAndFailure::new(&inst.net, &inst.coll, params);
        let mut rng = ChaCha8Rng::seed_from_u64(2024);
        let report = proto.run(&mut rng);
        assert!(report.completed);

        let mut cycles = 0usize;
        for r in &report.rounds {
            cycles += analyze_blocking(r.blocking.as_ref().unwrap()).cycles.len();
        }
        println!(
            "{label}: {:>3} rounds, {:>6} flit-steps, {:>4} blocking cycles observed",
            report.rounds_used(),
            report.total_time,
            cycles
        );
        if label.trim() == "priority" {
            assert_eq!(cycles, 0, "Claim 2.6: priorities admit no blocking cycles");
        }
    }
    println!("\nPriorities break mutual-elimination cycles; serve-first routers cannot.");
}
