//! Scenario: multi-stream video distribution through an optical butterfly
//! switch fabric — the kind of application (video conferencing,
//! visualization, medical imaging) the paper's introduction motivates.
//!
//! Each of the 256 input ports carries q = 4 independent streams to
//! random output ports (a random q-function, Theorem 1.7). We compare how
//! the wall-clock (in flit-steps) scales with router bandwidth.
//!
//! ```text
//! cargo run --release --example video_distribution
//! ```

use all_optical::core::{ProtocolParams, TrialAndFailure};
use all_optical::paths::select::butterfly::butterfly_qfunction_collection;
use all_optical::topo::topologies::{butterfly, ButterflyCoords};
use all_optical::wdm::RouterConfig;
use all_optical::workloads::functions::random_qfunction;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let dim = 8; // 256 inputs/outputs
    let q = 4; // streams per input
    let worm_len = 16; // a video burst of 16 flits

    let net = butterfly(dim);
    let coords = ButterflyCoords::new(dim, false);
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let f = random_qfunction(q, coords.rows() as usize, &mut rng);
    let coll = butterfly_qfunction_collection(&net, &coords, &f);
    let m = coll.metrics();
    println!(
        "butterfly({dim}): {} streams of {} flits, D={}, C~={}",
        m.n, worm_len, m.dilation, m.path_congestion
    );
    println!("\n  B  rounds      time  time*B (work)");

    for b in [1u16, 2, 4, 8, 16] {
        let params = ProtocolParams::new(RouterConfig::serve_first(b), worm_len);
        let proto = TrialAndFailure::new(&net, &coll, params);
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let report = proto.run(&mut rng);
        assert!(report.completed, "distribution must finish");
        println!(
            "{:>3}  {:>6}  {:>8}  {:>13}",
            b,
            report.rounds_used(),
            report.total_time,
            report.total_time * b as u64
        );
    }
    println!("\nDoubling bandwidth should nearly halve the congestion-bound term L*C~/B.");
}
