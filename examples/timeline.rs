//! Scenario: watch the Figure 6 blocking cycle happen, flit by flit.
//!
//! Renders ASCII timelines of link occupancy for one triangle structure:
//! first under serve-first couplers (all three worms eliminate each other
//! in a cycle; their headless bodies drain), then under priority couplers
//! (the strongest worm cuts its victim and survives).
//!
//! ```text
//! cargo run --release -p all-optical --example timeline
//! ```

use all_optical::wdm::reference::{render_timeline, simulate_traced};
use all_optical::wdm::{RouterConfig, TransmissionSpec};
use all_optical::workloads::structures::triangle;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let inst = triangle(1, 6, 4); // three paths, offset g = 2, L = 4
    let links: Vec<Vec<u32>> = (0..3).map(|i| inst.coll.path(i).links().to_vec()).collect();
    // Equal delays trigger the cycle deterministically.
    let specs: Vec<TransmissionSpec<'_>> = links
        .iter()
        .enumerate()
        .map(|(i, l)| TransmissionSpec {
            links: l,
            start: 2,
            wavelength: 0,
            priority: i as u64,
            length: 4,
        })
        .collect();

    // The three shared links (each path's edge at offset g = 2).
    let shared: Vec<u32> = (0..3).map(|j| inst.coll.path(j).links()[2]).collect();
    let mut watch: Vec<u32> = Vec::new();
    for j in 0..3 {
        watch.extend_from_slice(inst.coll.path(j).links());
    }
    watch.sort_unstable();
    watch.dedup();

    for (label, cfg) in [
        ("serve-first", RouterConfig::serve_first(1)),
        ("priority", RouterConfig::priority(1)),
    ] {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let (fates, trace) = simulate_traced(inst.coll.link_count(), cfg, &specs, &mut rng);
        println!("== {label} ==  (worms a, b, c; '.' = idle link)");
        let name = |l: u32| {
            if shared.contains(&l) {
                format!("E{} >", shared.iter().position(|&x| x == l).unwrap())
            } else {
                format!("{l:>3} ")
            }
        };
        print!("{}", render_timeline(&trace, &watch, name));
        for (i, f) in fates.iter().enumerate() {
            println!("  worm {} ({}): {:?}", i, (b'a' + i as u8) as char, f);
        }
        println!();
    }
    println!("E0, E1, E2 are the cyclically shared links (Figure 6).");
}
