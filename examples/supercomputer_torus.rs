//! Scenario: all-optical interconnect of a distributed supercomputer —
//! a node-symmetric 3-d torus (Theorem 1.5) carrying a random exchange
//! step, with physically simulated acknowledgements.
//!
//! Shows the full production configuration: priority routers, the paper's
//! delay schedule, a reserved ack band, and the duplicate-delivery
//! accounting that lost acks cause.
//!
//! ```text
//! cargo run --release --example supercomputer_torus
//! ```

use all_optical::core::{AckMode, ProtocolParams, TrialAndFailure};
use all_optical::paths::select::bfs::randomized_bfs_collection;
use all_optical::topo::topologies;
use all_optical::wdm::RouterConfig;
use all_optical::workloads::functions::random_function;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let net = topologies::torus(3, 8); // 512 nodes, diameter 12
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let f = random_function(net.node_count(), &mut rng);
    let coll = randomized_bfs_collection(&net, &f, &mut rng);
    let m = coll.metrics();
    println!(
        "{}: n={}, D={} (network diameter {}), C~={}",
        net.name(),
        m.n,
        m.dilation,
        net.diameter().unwrap(),
        m.path_congestion
    );
    // Theorem 1.5's congestion step: C~ = O(D^2 + log n) w.h.p.
    let pred = (net.diameter().unwrap() as f64).powi(2) + (m.n as f64).log2();
    println!("Thm 1.5 congestion scale D² + log n = {pred:.0}");

    let mut params = ProtocolParams::new(RouterConfig::priority(4), 8);
    params.ack = AckMode::Simulated { ack_len: Some(2) };
    params.max_rounds = 200;
    let proto = TrialAndFailure::new(&net, &coll, params);
    let report = proto.run(&mut rng);
    assert!(report.completed);

    println!("\nround  Δ_t  active  delivered  acked");
    for r in &report.rounds {
        println!(
            "{:>5}  {:>3}  {:>6}  {:>9}  {:>5}",
            r.round, r.delta, r.active_before, r.delivered, r.acked
        );
    }
    println!(
        "\nfinished in {} rounds / {} flit-steps; {} duplicate deliveries from lost acks",
        report.rounds_used(),
        report.total_time,
        report.duplicate_deliveries
    );
}
