//! Quickstart: route a random permutation across a 2-d mesh with the
//! trial-and-failure protocol.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use all_optical::core::{ProtocolParams, TrialAndFailure};
use all_optical::paths::select::grid::mesh_route;
use all_optical::paths::PathCollection;
use all_optical::topo::{topologies, GridCoords};
use all_optical::wdm::RouterConfig;
use all_optical::workloads::functions::random_permutation;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // 1. A network: every node is an optical router wired to its grid
    //    neighbors by a pair of directed fiber links.
    let side = 16u32;
    let net = topologies::mesh(2, side);
    let coords = GridCoords::new(2, side);
    println!(
        "network: {} ({} routers, {} directed links)",
        net.name(),
        net.node_count(),
        net.link_count()
    );

    // 2. A routing problem: one worm per node, destinations form a random
    //    permutation, paths chosen by dimension-order routing.
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let perm = random_permutation(net.node_count(), &mut rng);
    let coll = PathCollection::from_function(&net, &perm, |s, d| mesh_route(&net, &coords, s, d));
    let m = coll.metrics();
    println!(
        "paths: n={}, dilation D={}, path congestion C~={}",
        m.n, m.dilation, m.path_congestion
    );

    // 3. The protocol: serve-first routers with bandwidth B=4, worms of
    //    L=8 flits, the paper's geometric delay schedule, ideal acks.
    let params = ProtocolParams::new(RouterConfig::serve_first(4), 8);
    let proto = TrialAndFailure::new(&net, &coll, params);
    let report = proto.run(&mut rng);

    println!("\nround  Δ_t  active  delivered");
    for r in &report.rounds {
        println!(
            "{:>5}  {:>3}  {:>6}  {:>9}",
            r.round, r.delta, r.active_before, r.acked
        );
    }
    println!(
        "\ncompleted: {} in {} rounds, total time {} flit-steps",
        report.completed,
        report.rounds_used(),
        report.total_time
    );
    assert!(report.completed);
}
