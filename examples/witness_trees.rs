//! Scenario: the paper's proof machinery, live.
//!
//! Runs the protocol on a heavily loaded bundle with blocking recording
//! on, then reconstructs the **witness tree** (Figure 4) of the worm that
//! survived longest: the recursive explanation of *why* it kept failing,
//! with the per-level `m_i` / `ℓ_i` statistics that drive the §2.1
//! counting argument.
//!
//! ```text
//! cargo run --release --example witness_trees
//! ```

use all_optical::core::witness::{analyze_blocking, witness_stats, witness_tree, WitnessNode};
use all_optical::core::{DelaySchedule, ProtocolParams, TrialAndFailure};
use all_optical::wdm::{RouterConfig, TieRule};
use all_optical::workloads::structures::bundle;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

fn render(node: &WitnessNode, depth: usize, out: &mut String) {
    out.push_str(&"  ".repeat(depth));
    out.push_str(&format!("worm {}\n", node.worm));
    for ch in &node.children {
        render(ch, depth + 1, out);
    }
}

fn main() {
    let inst = bundle(1, 48, 6); // 48 identical paths: heavy contention
    let mut params = ProtocolParams::new(RouterConfig::serve_first(1).with_tie(TieRule::Random), 3);
    params.schedule = DelaySchedule::Fixed { delta: 16 };
    params.max_rounds = 400;
    params.record_blocking = true;
    let proto = TrialAndFailure::new(&inst.net, &inst.coll, params);
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let report = proto.run(&mut rng);
    assert!(report.completed);
    println!("{} drained in {} rounds", inst.name, report.rounds_used());

    // The worm acknowledged last.
    let (victim, last_round) = report
        .acked_round
        .iter()
        .enumerate()
        .map(|(w, r)| (w as u32, r.expect("completed run")))
        .max_by_key(|&(_, r)| r)
        .unwrap();
    println!("longest-suffering worm: {victim} (acked in round {last_round})");

    // Blocking maps of the rounds it kept failing in: rounds 1..last_round.
    let maps: Vec<&HashMap<u32, u32>> = report.rounds[..(last_round as usize - 1)]
        .iter()
        .map(|r| r.blocking.as_ref().unwrap())
        .collect();
    if maps.is_empty() {
        println!("(it succeeded in round 1 — no witness tree to show)");
        return;
    }

    // Claim 2.6 check per round: every blocking graph is a forest.
    for (i, m) in maps.iter().enumerate() {
        let a = analyze_blocking(m);
        assert!(
            a.is_forest(),
            "round {}: blocking cycle in a leveled collection",
            i + 1
        );
    }

    let tree = witness_tree(&maps, victim);
    let stats = witness_stats(&tree);
    println!(
        "witness tree: depth {}, {} nodes, m_i = {:?}, l_i = {:?}",
        stats.depth, stats.nodes, stats.m, stats.new_per_level
    );
    if stats.nodes <= 64 {
        let mut out = String::new();
        render(&tree, 0, &mut out);
        println!("{out}");
    } else {
        println!("(tree too large to print — {} nodes)", stats.nodes);
    }
}
