//! Fault recovery: a fiber is cut *while worms are in flight*, the
//! sources detect it from blockerless failures, back off, and reroute.
//!
//! ```text
//! cargo run --release --example fault_recovery
//! ```

use all_optical::core::{FaultSource, RecoveryPolicy, SimBuilder, WormOutcome};
use all_optical::paths::select::bfs::bfs_collection;
use all_optical::topo::topologies;
use all_optical::wdm::{FaultPlan, RouterConfig};
use all_optical::workloads::functions::random_permutation;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // 1. A 2-d torus; every node sends one worm to a random partner along
    //    a BFS shortest path over the *healthy* topology.
    let side = 8u32;
    let net = topologies::torus(2, side);
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let perm = random_permutation(net.node_count(), &mut rng);
    let coll = bfs_collection(&net, &perm);
    println!(
        "network: {} ({} routers, {} directed links), {} worms",
        net.name(),
        net.node_count(),
        net.link_count(),
        coll.len()
    );

    // 2. The fault: a backhoe takes out three fibers (both directions
    //    each) at step 5 of round 1 — while worms are streaming across
    //    them — and the cut is permanent from then on. The fibers are
    //    picked from the middle of three worms' paths, so those worms
    //    *cannot* get through without rerouting.
    let mut cut_fibers: Vec<u32> = Vec::new();
    for (_, p) in coll.iter() {
        if p.len() >= 5 {
            let fiber = p.links()[p.len() / 2] / 2;
            if !cut_fibers.contains(&fiber) {
                cut_fibers.push(fiber);
            }
            if cut_fibers.len() == 3 {
                break;
            }
        }
    }
    let cut_at = |t: u32| {
        cut_fibers.iter().fold(FaultPlan::none(), |plan, &e| {
            plan.down(2 * e, t).down(2 * e + 1, t)
        })
    };
    let max_rounds = 200;
    let mut plans = vec![cut_at(5)];
    plans.resize(max_rounds as usize, cut_at(0));
    println!("fault: fibers {cut_fibers:?} cut at step 5 of round 1, permanently");

    // 3. The self-healing protocol: stranded worms (no progress for 3
    //    rounds) are rerouted around links learned dead from blockerless
    //    failures; consecutive failures widen the delay range (backoff).
    let policy = RecoveryPolicy::default();
    println!(
        "policy: strand after {} flat rounds, backoff cap ×{}, {} reroutes max\n",
        policy.stranded_after, policy.backoff_cap, policy.max_reroutes
    );
    let sim = SimBuilder::new(&net, &coll)
        .router(RouterConfig::serve_first(2))
        .worm_len(4)
        .max_rounds(max_rounds)
        .recovery(policy)
        .faults(FaultSource::PerRound(plans))
        .build();
    let report = sim.run(&mut rng).into_recovery();

    println!("round  Δ_t  ×back  active  done  fault-kills  stranded  rerouted");
    for r in &report.rounds {
        println!(
            "{:>5}  {:>3}  {:>5}  {:>6}  {:>4}  {:>11}  {:>8}  {:>8}",
            r.round,
            r.delta,
            r.max_multiplier,
            r.active_before,
            r.delivered,
            r.fault_kills,
            r.stranded,
            r.rerouted
        );
    }

    println!(
        "\noutcome: {} delivered directly, {} delivered after rerouting, {} abandoned",
        report.delivered_direct(),
        report.rerouted_count(),
        report.abandoned_count()
    );
    for (w, o) in report.outcomes.iter().enumerate() {
        if let WormOutcome::Rerouted { times, round } = o {
            println!("  worm {w:>3}: rerouted {times}× around the cut, delivered in round {round}");
        }
    }
    let learned: Vec<u32> = report
        .known_dead
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d)
        .map(|(l, _)| l as u32)
        .collect();
    println!("learned dead links: {learned:?}");
    if let Some(lat) = report.mean_detection_latency() {
        println!("mean detection latency: {lat:.1} rounds after the first blockerless failure");
    }
    println!(
        "time: {} flit-steps total, {} of them pure backoff",
        report.total_time, report.backoff_extra_time
    );
    assert_eq!(
        report.abandoned_count(),
        0,
        "the torus minus 3 fibers stays connected"
    );
    assert!(
        report.rerouted_count() > 0,
        "someone must have crossed the cut"
    );
}
