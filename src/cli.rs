//! Testable plumbing for the `aor` command-line tool: topology and
//! workload specifications, parsing, instance construction, and the
//! checkpoint-file format used by `aor checkpoint` / `aor resume`.

use optical_core::{Snapshot, SteadyCheckpoint, SteadyParams};
use optical_paths::select::bfs::{bfs_route, randomized_bfs_collection};
use optical_paths::select::grid::{mesh_route, torus_route};
use optical_paths::select::hypercube::bit_fixing_route;
use optical_paths::PathCollection;
use optical_topo::{topologies, GridCoords, LinkId, Network, NodeId};
use optical_wdm::RouterConfig;
use optical_workloads::functions;
use rand::Rng;

/// A parseable network description, e.g. `mesh:2x16`, `hypercube:8`,
/// `ring:64`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopologySpec {
    /// `mesh:DxS` — D-dimensional mesh of side S.
    Mesh(u32, u32),
    /// `torus:DxS`.
    Torus(u32, u32),
    /// `hypercube:D`.
    Hypercube(u32),
    /// `butterfly:D`.
    Butterfly(u32),
    /// `wbutterfly:D` (wrap-around).
    WrappedButterfly(u32),
    /// `debruijn:D`.
    DeBruijn(u32),
    /// `shuffle:D` (shuffle-exchange).
    ShuffleExchange(u32),
    /// `ccc:D` (cube-connected cycles).
    Ccc(u32),
    /// `ring:N`.
    Ring(usize),
    /// `chain:N`.
    Chain(usize),
    /// `complete:N`.
    Complete(usize),
    /// `star:N`.
    Star(usize),
}

impl TopologySpec {
    /// Parse a `name:params` description.
    pub fn parse(s: &str) -> Result<Self, String> {
        let (name, arg) = s
            .split_once(':')
            .ok_or_else(|| format!("'{s}': expected name:params"))?;
        let int = |a: &str| {
            a.parse::<u32>()
                .map_err(|_| format!("'{a}': not an integer"))
        };
        let pair = |a: &str| -> Result<(u32, u32), String> {
            let (d, side) = a
                .split_once('x')
                .ok_or_else(|| format!("'{a}': expected DxS"))?;
            Ok((int(d)?, int(side)?))
        };
        Ok(match name {
            "mesh" => {
                let (d, s) = pair(arg)?;
                TopologySpec::Mesh(d, s)
            }
            "torus" => {
                let (d, s) = pair(arg)?;
                TopologySpec::Torus(d, s)
            }
            "hypercube" => TopologySpec::Hypercube(int(arg)?),
            "butterfly" => TopologySpec::Butterfly(int(arg)?),
            "wbutterfly" => TopologySpec::WrappedButterfly(int(arg)?),
            "debruijn" => TopologySpec::DeBruijn(int(arg)?),
            "shuffle" => TopologySpec::ShuffleExchange(int(arg)?),
            "ccc" => TopologySpec::Ccc(int(arg)?),
            "ring" => TopologySpec::Ring(int(arg)? as usize),
            "chain" => TopologySpec::Chain(int(arg)? as usize),
            "complete" => TopologySpec::Complete(int(arg)? as usize),
            "star" => TopologySpec::Star(int(arg)? as usize),
            other => return Err(format!("unknown topology '{other}'")),
        })
    }

    /// Build the network.
    pub fn build(&self) -> Network {
        match *self {
            TopologySpec::Mesh(d, s) => topologies::mesh(d, s),
            TopologySpec::Torus(d, s) => topologies::torus(d, s),
            TopologySpec::Hypercube(d) => topologies::hypercube(d),
            TopologySpec::Butterfly(d) => topologies::butterfly(d),
            TopologySpec::WrappedButterfly(d) => topologies::wrapped_butterfly(d),
            TopologySpec::DeBruijn(d) => topologies::de_bruijn(d),
            TopologySpec::ShuffleExchange(d) => topologies::shuffle_exchange(d),
            TopologySpec::Ccc(d) => topologies::cube_connected_cycles(d),
            TopologySpec::Ring(n) => topologies::ring(n),
            TopologySpec::Chain(n) => topologies::chain(n),
            TopologySpec::Complete(n) => topologies::complete(n),
            TopologySpec::Star(n) => topologies::star(n),
        }
    }
}

/// A parseable traffic description, e.g. `permutation`, `hotspot:0.3`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WorkloadSpec {
    /// `function` — uniformly random function.
    RandomFunction,
    /// `permutation` — uniformly random permutation.
    RandomPermutation,
    /// `all-to-one`.
    AllToOne,
    /// `shift:K`.
    Shift(usize),
    /// `tornado`.
    Tornado,
    /// `hotspot:F` — fraction F to node 0.
    Hotspot(f64),
}

impl WorkloadSpec {
    /// Parse a workload description.
    pub fn parse(s: &str) -> Result<Self, String> {
        let (name, arg) = match s.split_once(':') {
            Some((n, a)) => (n, Some(a)),
            None => (s, None),
        };
        Ok(match (name, arg) {
            ("function", None) => WorkloadSpec::RandomFunction,
            ("permutation", None) => WorkloadSpec::RandomPermutation,
            ("all-to-one", None) => WorkloadSpec::AllToOne,
            ("tornado", None) => WorkloadSpec::Tornado,
            ("shift", Some(a)) => {
                WorkloadSpec::Shift(a.parse().map_err(|_| format!("'{a}': not an integer"))?)
            }
            ("hotspot", Some(a)) => {
                let f: f64 = a.parse().map_err(|_| format!("'{a}': not a number"))?;
                if !(0.0..=1.0).contains(&f) {
                    return Err(format!("hotspot fraction {f} out of [0, 1]"));
                }
                WorkloadSpec::Hotspot(f)
            }
            _ => return Err(format!("unknown workload '{s}'")),
        })
    }

    /// Destination per source node.
    pub fn destinations(&self, n: usize, rng: &mut impl Rng) -> Vec<NodeId> {
        match *self {
            WorkloadSpec::RandomFunction => functions::random_function(n, rng),
            WorkloadSpec::RandomPermutation => functions::random_permutation(n, rng),
            WorkloadSpec::AllToOne => functions::all_to_one(n),
            WorkloadSpec::Shift(k) => functions::shift(n, k),
            WorkloadSpec::Tornado => functions::tornado(n),
            WorkloadSpec::Hotspot(f) => functions::hotspot(n, 0, f, rng),
        }
    }
}

/// Build a path collection for `f` with the topology's natural strategy:
/// dimension-order on meshes/tori, bit-fixing on hypercubes, randomized
/// BFS shortest paths elsewhere.
pub fn select_paths(
    spec: TopologySpec,
    net: &Network,
    f: &[NodeId],
    rng: &mut impl Rng,
) -> PathCollection {
    match spec {
        TopologySpec::Mesh(d, s) => {
            let coords = GridCoords::new(d, s);
            PathCollection::from_function(net, f, |a, b| mesh_route(net, &coords, a, b))
        }
        TopologySpec::Torus(d, s) => {
            let coords = GridCoords::new(d, s);
            PathCollection::from_function(net, f, |a, b| torus_route(net, &coords, a, b))
        }
        TopologySpec::Hypercube(d) => {
            PathCollection::from_function(net, f, |a, b| bit_fixing_route(net, d, a, b))
        }
        _ => randomized_bfs_collection(net, f, rng),
    }
}

/// Steady-state parameters for `aor checkpoint` / `aor resume`, derived
/// purely from CLI flags. Both verbs must rebuild the identical
/// [`SteadyParams`] (and the identical [`steady_sampler`]) — that is the
/// CLI's reproducibility contract, and it is what makes the config
/// fingerprint embedded in the checkpoint file meaningful: resuming
/// under different flags fails with a typed
/// [`RestoreError`](optical_core::RestoreError) instead of silently
/// diverging.
pub fn steady_params(
    router: RouterConfig,
    worm_len: u32,
    arrival: f64,
    rounds: u32,
    warmup: u32,
    checkpoint_every: u32,
) -> SteadyParams {
    SteadyParams::bernoulli(
        router,
        worm_len,
        optical_core::DelaySchedule::Fixed { delta: 24 },
        arrival,
        rounds,
        warmup,
    )
    .checkpoint_every(checkpoint_every)
}

/// The path sampler both checkpoint verbs share: a uniformly random
/// source/destination pair, BFS-routed. Deterministic given the RNG
/// stream — the other half of the reproducibility contract (closures
/// are outside the fingerprint, so the resume side must reconstruct the
/// same sampler by convention).
pub fn steady_sampler(
    net: &Network,
) -> impl FnMut(u32, &mut dyn rand::RngCore, &mut Vec<LinkId>) + '_ {
    move |_src, rng, out| {
        let n = net.node_count() as u32;
        let s = rng.gen_range(0..n);
        let d = rng.gen_range(0..n);
        out.extend_from_slice(bfs_route(net, s, d).links());
    }
}

/// Serialize a [`SteadyCheckpoint`] to `path` as JSON, wrapped in the
/// [`Versioned`](optical_core::Versioned) envelope (format version,
/// snapshot kind, config fingerprint) so a resume in any later process
/// can type-check the file before trusting its contents.
pub fn write_checkpoint(path: &str, cp: &SteadyCheckpoint) -> Result<(), String> {
    let json = serde_json::to_string(&cp.snapshot())
        .map_err(|e| format!("serializing checkpoint: {e}"))?;
    std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))
}

/// Read a checkpoint file written by [`write_checkpoint`]. Verifies the
/// envelope (format version and snapshot kind) and the payload's
/// internal consistency; the topology/parameter fingerprint is checked
/// later by `SteadyRun::resume_from` against the live configuration.
pub fn read_checkpoint(path: &str) -> Result<SteadyCheckpoint, String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let versioned = serde_json::from_str(&json)
        .map_err(|e| format!("parsing {path}: not a checkpoint file ({e})"))?;
    SteadyCheckpoint::restore(versioned).map_err(|e| format!("restoring {path}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn parse_topologies() {
        assert_eq!(
            TopologySpec::parse("mesh:2x16").unwrap(),
            TopologySpec::Mesh(2, 16)
        );
        assert_eq!(
            TopologySpec::parse("torus:3x8").unwrap(),
            TopologySpec::Torus(3, 8)
        );
        assert_eq!(
            TopologySpec::parse("hypercube:7").unwrap(),
            TopologySpec::Hypercube(7)
        );
        assert_eq!(TopologySpec::parse("ccc:4").unwrap(), TopologySpec::Ccc(4));
        assert_eq!(
            TopologySpec::parse("ring:64").unwrap(),
            TopologySpec::Ring(64)
        );
        assert!(TopologySpec::parse("blah:3").is_err());
        assert!(TopologySpec::parse("mesh:16").is_err());
        assert!(TopologySpec::parse("mesh").is_err());
    }

    #[test]
    fn parse_workloads() {
        assert_eq!(
            WorkloadSpec::parse("function").unwrap(),
            WorkloadSpec::RandomFunction
        );
        assert_eq!(
            WorkloadSpec::parse("shift:5").unwrap(),
            WorkloadSpec::Shift(5)
        );
        assert_eq!(
            WorkloadSpec::parse("hotspot:0.3").unwrap(),
            WorkloadSpec::Hotspot(0.3)
        );
        assert!(WorkloadSpec::parse("hotspot:1.5").is_err());
        assert!(WorkloadSpec::parse("nope").is_err());
    }

    #[test]
    fn build_and_route_each_topology() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for spec_str in [
            "mesh:2x4",
            "torus:2x4",
            "hypercube:4",
            "butterfly:3",
            "wbutterfly:3",
            "debruijn:4",
            "shuffle:4",
            "ccc:3",
            "ring:10",
            "chain:10",
            "complete:6",
            "star:6",
        ] {
            let spec = TopologySpec::parse(spec_str).unwrap();
            let net = spec.build();
            assert!(net.is_connected(), "{spec_str} disconnected");
            let f = WorkloadSpec::RandomPermutation.destinations(net.node_count(), &mut rng);
            let coll = select_paths(spec, &net, &f, &mut rng);
            assert_eq!(coll.len(), net.node_count());
        }
    }

    #[test]
    fn checkpoint_file_roundtrips() {
        use optical_core::{ProtocolWorkspace, SteadyRun};
        let net = TopologySpec::parse("torus:2x4").unwrap().build();
        let params = steady_params(RouterConfig::serve_first(2), 4, 0.4, 60, 10, 25);
        let mut run = SteadyRun::new(&net, steady_sampler(&net), params);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut last = None;
        run.run_checkpointed(
            &mut ProtocolWorkspace::new(),
            &mut rng,
            &mut optical_obs::NullSink,
            |cp| last = Some(cp.clone()),
        );
        let cp = last.expect("cadence 25 over 60 rounds cuts checkpoints");
        let path = std::env::temp_dir().join("aor_cli_checkpoint_test.json");
        let path = path.to_str().unwrap();
        write_checkpoint(path, &cp).unwrap();
        let back = read_checkpoint(path).unwrap();
        assert_eq!(back, cp, "file round-trip must be lossless");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn workload_destinations_in_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for w in [
            "function",
            "permutation",
            "all-to-one",
            "shift:3",
            "tornado",
            "hotspot:0.5",
        ] {
            let spec = WorkloadSpec::parse(w).unwrap();
            let f = spec.destinations(32, &mut rng);
            assert_eq!(f.len(), 32);
            assert!(f.iter().all(|&d| (d as usize) < 32), "{w} out of range");
        }
    }
}
