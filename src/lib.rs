#![warn(missing_docs)]

//! Facade crate for the SPAA 1997 all-optical routing reproduction.
//!
//! Re-exports every sub-crate of the workspace under one roof so that
//! examples and downstream users can depend on a single crate:
//!
//! ```
//! use all_optical::topo::topologies;
//!
//! let net = topologies::mesh(2, 4);
//! assert_eq!(net.node_count(), 16);
//! ```
//!
//! See the individual crates for the real documentation:
//! * [`topo`] — network topologies,
//! * [`paths`] — path collections and their metrics,
//! * [`wdm`] — the flit-level all-optical wormhole simulator,
//! * [`core`] — the trial-and-failure protocol (the paper's contribution),
//! * [`obs`] — zero-cost observability (sinks, event traces, trace_report),
//! * [`workloads`] — workload generators and lower-bound structures,
//! * [`baselines`] — wavelength-conversion and offline-RWA baselines,
//! * [`stats`] — statistics helpers used by the experiment harness.

pub mod cli;

pub use optical_baselines as baselines;
pub use optical_core as core;
pub use optical_obs as obs;
pub use optical_paths as paths;
pub use optical_stats as stats;
pub use optical_topo as topo;
pub use optical_wdm as wdm;
pub use optical_workloads as workloads;
