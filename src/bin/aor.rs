//! `aor` — all-optical routing from the command line.
//!
//! ```text
//! aor route      --topology mesh:2x16 --workload permutation [--rule serve-first|priority|conversion]
//!                [-B 4] [-L 8] [--seed 42] [--ack] [--max-rounds 64] [--converters 0.25] [--hops 2]
//! aor metrics    --topology torus:2x8 --workload function [--seed 42]
//! aor rwa        --topology mesh:2x16 --workload permutation [-B 4] [-L 8] [--seed 42]
//! aor bounds     --topology hypercube:8 --workload function [-B 1] [-L 4] [--seed 42]
//! aor checkpoint --topology torus:2x8 --rounds 4000 --every 1000 --out cp.json
//!                [--arrival 0.2] [--warmup 100] [-B 2] [-L 4] [--seed 42]
//! aor resume     --topology torus:2x8 --rounds 4000 --checkpoint cp.json
//!                [--arrival 0.2] [--warmup 100] [-B 2] [-L 4]
//! ```
//!
//! `checkpoint` runs the event-driven steady-state simulation, cutting a
//! versioned snapshot every `--every` rounds and leaving the last one at
//! `--out`. `resume` rebuilds the identical configuration from the same
//! flags and continues that snapshot to the horizon — bit-identically to
//! a run that never stopped. Resuming under a different topology or
//! parameter set is rejected by the config fingerprint in the file.

use all_optical::baselines::rwa::{color_lower_bound, greedy_rwa, ColorOrder};
use all_optical::cli::{
    read_checkpoint, select_paths, steady_params, steady_sampler, write_checkpoint, TopologySpec,
    WorkloadSpec,
};
use all_optical::core::bounds::{self, BoundParams};
use all_optical::core::hops::HopTrialAndFailure;
use all_optical::core::{AckMode, ProtocolParams, TrialAndFailure};
use all_optical::core::{ProtocolWorkspace, SteadyReport, SteadyRun};
use all_optical::paths::properties;
use all_optical::wdm::engine::converter_mask;
use all_optical::wdm::RouterConfig;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::process::ExitCode;

struct Args {
    topology: TopologySpec,
    workload: Option<WorkloadSpec>,
    rule: String,
    bandwidth: u16,
    worm_len: u32,
    seed: u64,
    ack: bool,
    max_rounds: u32,
    converters: Option<f64>,
    hops: Option<u32>,
    cut: Option<f64>,
    // Steady-state checkpoint/resume flags.
    rounds: u32,
    warmup: u32,
    arrival: f64,
    every: u32,
    out: Option<String>,
    checkpoint: Option<String>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut topology = None;
    let mut workload = None;
    let mut rule = "serve-first".to_string();
    let mut bandwidth = 1u16;
    let mut worm_len = 4u32;
    let mut seed = 1997u64;
    let mut ack = false;
    let mut max_rounds = 200u32;
    let mut converters = None;
    let mut hops = None;
    let mut cut = None;
    let mut rounds = 1000u32;
    let mut warmup = 100u32;
    let mut arrival = 0.2f64;
    let mut every = 0u32;
    let mut out = None;
    let mut checkpoint = None;

    let mut i = 0;
    while i < argv.len() {
        let next = |i: &mut usize| -> Result<&String, String> {
            *i += 1;
            argv.get(*i)
                .ok_or_else(|| format!("{} needs a value", argv[*i - 1]))
        };
        match argv[i].as_str() {
            "--topology" => topology = Some(TopologySpec::parse(next(&mut i)?)?),
            "--workload" => workload = Some(WorkloadSpec::parse(next(&mut i)?)?),
            "--rule" => rule = next(&mut i)?.clone(),
            "-B" | "--bandwidth" => {
                bandwidth = next(&mut i)?.parse().map_err(|e| format!("bad -B: {e}"))?
            }
            "-L" | "--length" => {
                worm_len = next(&mut i)?.parse().map_err(|e| format!("bad -L: {e}"))?
            }
            "--seed" => {
                seed = next(&mut i)?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--ack" => ack = true,
            "--max-rounds" => {
                max_rounds = next(&mut i)?
                    .parse()
                    .map_err(|e| format!("bad --max-rounds: {e}"))?
            }
            "--converters" => {
                converters = Some(
                    next(&mut i)?
                        .parse()
                        .map_err(|e| format!("bad --converters: {e}"))?,
                )
            }
            "--hops" => {
                hops = Some(
                    next(&mut i)?
                        .parse()
                        .map_err(|e| format!("bad --hops: {e}"))?,
                )
            }
            "--cut" => {
                cut = Some(
                    next(&mut i)?
                        .parse()
                        .map_err(|e| format!("bad --cut: {e}"))?,
                )
            }
            "--rounds" => {
                rounds = next(&mut i)?
                    .parse()
                    .map_err(|e| format!("bad --rounds: {e}"))?
            }
            "--warmup" => {
                warmup = next(&mut i)?
                    .parse()
                    .map_err(|e| format!("bad --warmup: {e}"))?
            }
            "--arrival" => {
                arrival = next(&mut i)?
                    .parse()
                    .map_err(|e| format!("bad --arrival: {e}"))?
            }
            "--every" => {
                every = next(&mut i)?
                    .parse()
                    .map_err(|e| format!("bad --every: {e}"))?
            }
            "--out" => out = Some(next(&mut i)?.clone()),
            "--checkpoint" => checkpoint = Some(next(&mut i)?.clone()),
            other => return Err(format!("unknown flag '{other}'")),
        }
        i += 1;
    }
    Ok(Args {
        topology: topology.ok_or("--topology is required")?,
        workload,
        rule,
        bandwidth,
        worm_len,
        seed,
        ack,
        max_rounds,
        converters,
        hops,
        cut,
        rounds,
        warmup,
        arrival,
        every,
        out,
        checkpoint,
    })
}

fn print_steady(report: &SteadyReport) {
    println!(
        "steady: spawned={} completed={} shed={} throughput={:.4} \
         mean_lat={:.2} p99_lat={} peak_active={} time={}",
        report.spawned,
        report.completed,
        report.shed,
        report.throughput,
        report.mean_latency_rounds,
        report.p99_latency_rounds,
        report.peak_active,
        report.total_time
    );
}

/// `aor checkpoint` / `aor resume`: the steady-state run with snapshot
/// files. Both verbs rebuild the run from the same flags; the config
/// fingerprint in the file catches any mismatch.
fn run_steady_verb(cmd: &str, args: &Args) -> ExitCode {
    let net = args.topology.build();
    let router = match router(args) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.warmup >= args.rounds {
        eprintln!("error: --warmup must be below --rounds");
        return ExitCode::FAILURE;
    }
    let params = steady_params(
        router,
        args.worm_len,
        args.arrival,
        args.rounds,
        args.warmup,
        args.every,
    );
    let mut run = SteadyRun::new(&net, steady_sampler(&net), params);
    let mut ws = ProtocolWorkspace::new();

    match cmd {
        "checkpoint" => {
            let Some(out) = &args.out else {
                eprintln!("error: checkpoint needs --out FILE");
                return ExitCode::FAILURE;
            };
            if args.every == 0 {
                eprintln!("error: checkpoint needs --every N (rounds between snapshots)");
                return ExitCode::FAILURE;
            }
            let mut rng = ChaCha8Rng::seed_from_u64(args.seed);
            let mut last = None;
            let report =
                run.run_checkpointed(&mut ws, &mut rng, &mut all_optical::obs::NullSink, |cp| {
                    last = Some(cp.clone());
                });
            print_steady(&report);
            match last {
                Some(cp) => {
                    let round = cp.round();
                    if let Err(e) = write_checkpoint(out, &cp) {
                        eprintln!("error: {e}");
                        return ExitCode::FAILURE;
                    }
                    println!("checkpoint: round {round} written to {out}");
                    ExitCode::SUCCESS
                }
                None => {
                    eprintln!(
                        "error: no checkpoint cut — --every {} never fired within --rounds {}",
                        args.every, args.rounds
                    );
                    ExitCode::FAILURE
                }
            }
        }
        "resume" => {
            let Some(file) = &args.checkpoint else {
                eprintln!("error: resume needs --checkpoint FILE");
                return ExitCode::FAILURE;
            };
            let cp = match read_checkpoint(file) {
                Ok(cp) => cp,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!("resuming {file} at round {}", cp.round());
            match run.resume_from(cp) {
                Ok(report) => {
                    print_steady(&report);
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: checkpoint does not match this configuration: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => unreachable!("dispatched on checkpoint|resume"),
    }
}

fn router(args: &Args) -> Result<RouterConfig, String> {
    Ok(match args.rule.as_str() {
        "serve-first" => RouterConfig::serve_first(args.bandwidth),
        "priority" => RouterConfig::priority(args.bandwidth),
        "conversion" => RouterConfig::conversion(args.bandwidth),
        other => {
            return Err(format!(
                "unknown rule '{other}' (serve-first|priority|conversion)"
            ))
        }
    })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        eprintln!(
            "usage: aor <route|metrics|rwa|bounds|checkpoint|resume> --topology T [--workload W] [flags]"
        );
        return ExitCode::FAILURE;
    };
    let args = match parse_args(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    if matches!(cmd.as_str(), "checkpoint" | "resume") {
        return run_steady_verb(cmd, &args);
    }
    let Some(workload) = args.workload else {
        eprintln!("error: --workload is required for '{cmd}'");
        return ExitCode::FAILURE;
    };

    let net = args.topology.build();
    let mut rng = ChaCha8Rng::seed_from_u64(args.seed);
    // Fiber cuts (failure injection): both directions of a random
    // fraction of fibers die; path selection routes around them.
    let dead: Option<Vec<bool>> = args.cut.map(|frac| {
        let mut mask = vec![false; net.link_count()];
        for e in 0..net.link_count() / 2 {
            if rng.gen_bool(frac) {
                mask[2 * e] = true;
                mask[2 * e + 1] = true;
            }
        }
        mask
    });
    let f = workload.destinations(net.node_count(), &mut rng);
    let coll = match &dead {
        None => select_paths(args.topology, &net, &f, &mut rng),
        Some(mask) => {
            use all_optical::paths::select::bfs::bfs_route_avoiding;
            use all_optical::paths::PathCollection;
            let mut c = PathCollection::for_network(&net);
            for (s, &d) in f.iter().enumerate() {
                match bfs_route_avoiding(&net, mask, s as u32, d) {
                    Some(p) => c.push(p),
                    None => {
                        eprintln!("error: cuts disconnect {s} from {d}; lower --cut");
                        std::process::exit(1);
                    }
                }
            }
            let fibers = mask.iter().filter(|&&x| x).count() / 2;
            println!("fiber cuts: {fibers} fibers dead; routing around them");
            c
        }
    };
    let m = coll.metrics();
    println!(
        "{}: {} routers, {} links | paths n={} D={} C={} C~={}",
        net.name(),
        net.node_count(),
        net.link_count(),
        m.n,
        m.dilation,
        m.congestion,
        m.path_congestion
    );

    match cmd.as_str() {
        "metrics" => {
            println!("leveled:        {}", properties::is_leveled(&coll));
            println!("short-cut free: {}", properties::is_shortcut_free(&coll));
            ExitCode::SUCCESS
        }
        "rwa" => {
            let a = greedy_rwa(&coll, ColorOrder::LongestFirst);
            println!(
                "greedy RWA: {} wavelengths (lower bound {}), {} batches at B={}, time {}",
                a.num_colors,
                color_lower_bound(&coll),
                a.batches(args.bandwidth),
                args.bandwidth,
                a.total_time(args.bandwidth, m.dilation, args.worm_len)
            );
            ExitCode::SUCCESS
        }
        "bounds" => {
            let bp = BoundParams {
                n: m.n,
                dilation: m.dilation,
                path_congestion: m.path_congestion,
                worm_len: args.worm_len,
                bandwidth: args.bandwidth,
            };
            println!(
                "alpha = {:.1}, beta = {:.2}",
                bounds::alpha(&bp),
                bounds::beta(&bp)
            );
            println!(
                "Thm 1.1/1.3 rounds ~ {:.2}, time ~ {:.0}",
                bounds::rounds_leveled_or_priority(&bp),
                bounds::upper_bound_leveled(&bp)
            );
            println!(
                "Thm 1.2     rounds ~ {:.2}, time ~ {:.0}",
                bounds::rounds_shortcut_free(&bp),
                bounds::upper_bound_shortcut_free(&bp)
            );
            println!(
                "trivial lower bound ~ {:.0}",
                bounds::trivial_lower_bound(&bp)
            );
            ExitCode::SUCCESS
        }
        "route" => {
            let router = match router(&args) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Some(h) = args.hops {
                let proto =
                    HopTrialAndFailure::new(&net, &coll, router, args.worm_len, h, args.max_rounds);
                let report = proto.run(&mut rng);
                println!("round  Δ    launched  advanced  completed");
                for r in &report.rounds {
                    println!(
                        "{:>5}  {:>3}  {:>8}  {:>8}  {:>9}",
                        r.round, r.delta, r.launched, r.advanced, r.completed
                    );
                }
                println!(
                    "hops={h}: completed={} rounds={} time={}",
                    report.completed,
                    report.rounds_used(),
                    report.total_time
                );
                return if report.completed {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                };
            }
            let mut params = ProtocolParams::new(router, args.worm_len);
            params.max_rounds = args.max_rounds;
            if args.ack {
                params.ack = AckMode::Simulated { ack_len: None };
            }
            if let Some(frac) = args.converters {
                let nodes: Vec<bool> = (0..net.node_count()).map(|_| rng.gen_bool(frac)).collect();
                params.converters = Some(converter_mask(&net, |v| nodes[v as usize]));
            }
            params.dead_links = dead;
            let proto = TrialAndFailure::new(&net, &coll, params);
            let report = proto.run(&mut rng);
            println!("round  Δ    active  delivered  acked");
            for r in &report.rounds {
                println!(
                    "{:>5}  {:>3}  {:>6}  {:>9}  {:>5}",
                    r.round, r.delta, r.active_before, r.delivered, r.acked
                );
            }
            println!(
                "completed={} rounds={} time={} duplicates={}",
                report.completed,
                report.rounds_used(),
                report.total_time,
                report.duplicate_deliveries
            );
            if report.completed {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        other => {
            eprintln!("unknown command '{other}' (route|metrics|rwa|bounds|checkpoint|resume)");
            ExitCode::FAILURE
        }
    }
}
