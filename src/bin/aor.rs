//! `aor` — all-optical routing from the command line.
//!
//! ```text
//! aor route   --topology mesh:2x16 --workload permutation [--rule serve-first|priority|conversion]
//!             [-B 4] [-L 8] [--seed 42] [--ack] [--max-rounds 64] [--converters 0.25] [--hops 2]
//! aor metrics --topology torus:2x8 --workload function [--seed 42]
//! aor rwa     --topology mesh:2x16 --workload permutation [-B 4] [-L 8] [--seed 42]
//! aor bounds  --topology hypercube:8 --workload function [-B 1] [-L 4] [--seed 42]
//! ```

use all_optical::baselines::rwa::{color_lower_bound, greedy_rwa, ColorOrder};
use all_optical::cli::{select_paths, TopologySpec, WorkloadSpec};
use all_optical::core::bounds::{self, BoundParams};
use all_optical::core::hops::HopTrialAndFailure;
use all_optical::core::{AckMode, ProtocolParams, TrialAndFailure};
use all_optical::paths::properties;
use all_optical::wdm::engine::converter_mask;
use all_optical::wdm::RouterConfig;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::process::ExitCode;

struct Args {
    topology: TopologySpec,
    workload: WorkloadSpec,
    rule: String,
    bandwidth: u16,
    worm_len: u32,
    seed: u64,
    ack: bool,
    max_rounds: u32,
    converters: Option<f64>,
    hops: Option<u32>,
    cut: Option<f64>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut topology = None;
    let mut workload = None;
    let mut rule = "serve-first".to_string();
    let mut bandwidth = 1u16;
    let mut worm_len = 4u32;
    let mut seed = 1997u64;
    let mut ack = false;
    let mut max_rounds = 200u32;
    let mut converters = None;
    let mut hops = None;
    let mut cut = None;

    let mut i = 0;
    while i < argv.len() {
        let next = |i: &mut usize| -> Result<&String, String> {
            *i += 1;
            argv.get(*i)
                .ok_or_else(|| format!("{} needs a value", argv[*i - 1]))
        };
        match argv[i].as_str() {
            "--topology" => topology = Some(TopologySpec::parse(next(&mut i)?)?),
            "--workload" => workload = Some(WorkloadSpec::parse(next(&mut i)?)?),
            "--rule" => rule = next(&mut i)?.clone(),
            "-B" | "--bandwidth" => {
                bandwidth = next(&mut i)?.parse().map_err(|e| format!("bad -B: {e}"))?
            }
            "-L" | "--length" => {
                worm_len = next(&mut i)?.parse().map_err(|e| format!("bad -L: {e}"))?
            }
            "--seed" => {
                seed = next(&mut i)?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--ack" => ack = true,
            "--max-rounds" => {
                max_rounds = next(&mut i)?
                    .parse()
                    .map_err(|e| format!("bad --max-rounds: {e}"))?
            }
            "--converters" => {
                converters = Some(
                    next(&mut i)?
                        .parse()
                        .map_err(|e| format!("bad --converters: {e}"))?,
                )
            }
            "--hops" => {
                hops = Some(
                    next(&mut i)?
                        .parse()
                        .map_err(|e| format!("bad --hops: {e}"))?,
                )
            }
            "--cut" => {
                cut = Some(
                    next(&mut i)?
                        .parse()
                        .map_err(|e| format!("bad --cut: {e}"))?,
                )
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
        i += 1;
    }
    Ok(Args {
        topology: topology.ok_or("--topology is required")?,
        workload: workload.ok_or("--workload is required")?,
        rule,
        bandwidth,
        worm_len,
        seed,
        ack,
        max_rounds,
        converters,
        hops,
        cut,
    })
}

fn router(args: &Args) -> Result<RouterConfig, String> {
    Ok(match args.rule.as_str() {
        "serve-first" => RouterConfig::serve_first(args.bandwidth),
        "priority" => RouterConfig::priority(args.bandwidth),
        "conversion" => RouterConfig::conversion(args.bandwidth),
        other => {
            return Err(format!(
                "unknown rule '{other}' (serve-first|priority|conversion)"
            ))
        }
    })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        eprintln!("usage: aor <route|metrics|rwa|bounds> --topology T --workload W [flags]");
        return ExitCode::FAILURE;
    };
    let args = match parse_args(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let net = args.topology.build();
    let mut rng = ChaCha8Rng::seed_from_u64(args.seed);
    // Fiber cuts (failure injection): both directions of a random
    // fraction of fibers die; path selection routes around them.
    let dead: Option<Vec<bool>> = args.cut.map(|frac| {
        let mut mask = vec![false; net.link_count()];
        for e in 0..net.link_count() / 2 {
            if rng.gen_bool(frac) {
                mask[2 * e] = true;
                mask[2 * e + 1] = true;
            }
        }
        mask
    });
    let f = args.workload.destinations(net.node_count(), &mut rng);
    let coll = match &dead {
        None => select_paths(args.topology, &net, &f, &mut rng),
        Some(mask) => {
            use all_optical::paths::select::bfs::bfs_route_avoiding;
            use all_optical::paths::PathCollection;
            let mut c = PathCollection::for_network(&net);
            for (s, &d) in f.iter().enumerate() {
                match bfs_route_avoiding(&net, mask, s as u32, d) {
                    Some(p) => c.push(p),
                    None => {
                        eprintln!("error: cuts disconnect {s} from {d}; lower --cut");
                        std::process::exit(1);
                    }
                }
            }
            let fibers = mask.iter().filter(|&&x| x).count() / 2;
            println!("fiber cuts: {fibers} fibers dead; routing around them");
            c
        }
    };
    let m = coll.metrics();
    println!(
        "{}: {} routers, {} links | paths n={} D={} C={} C~={}",
        net.name(),
        net.node_count(),
        net.link_count(),
        m.n,
        m.dilation,
        m.congestion,
        m.path_congestion
    );

    match cmd.as_str() {
        "metrics" => {
            println!("leveled:        {}", properties::is_leveled(&coll));
            println!("short-cut free: {}", properties::is_shortcut_free(&coll));
            ExitCode::SUCCESS
        }
        "rwa" => {
            let a = greedy_rwa(&coll, ColorOrder::LongestFirst);
            println!(
                "greedy RWA: {} wavelengths (lower bound {}), {} batches at B={}, time {}",
                a.num_colors,
                color_lower_bound(&coll),
                a.batches(args.bandwidth),
                args.bandwidth,
                a.total_time(args.bandwidth, m.dilation, args.worm_len)
            );
            ExitCode::SUCCESS
        }
        "bounds" => {
            let bp = BoundParams {
                n: m.n,
                dilation: m.dilation,
                path_congestion: m.path_congestion,
                worm_len: args.worm_len,
                bandwidth: args.bandwidth,
            };
            println!(
                "alpha = {:.1}, beta = {:.2}",
                bounds::alpha(&bp),
                bounds::beta(&bp)
            );
            println!(
                "Thm 1.1/1.3 rounds ~ {:.2}, time ~ {:.0}",
                bounds::rounds_leveled_or_priority(&bp),
                bounds::upper_bound_leveled(&bp)
            );
            println!(
                "Thm 1.2     rounds ~ {:.2}, time ~ {:.0}",
                bounds::rounds_shortcut_free(&bp),
                bounds::upper_bound_shortcut_free(&bp)
            );
            println!(
                "trivial lower bound ~ {:.0}",
                bounds::trivial_lower_bound(&bp)
            );
            ExitCode::SUCCESS
        }
        "route" => {
            let router = match router(&args) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Some(h) = args.hops {
                let proto =
                    HopTrialAndFailure::new(&net, &coll, router, args.worm_len, h, args.max_rounds);
                let report = proto.run(&mut rng);
                println!("round  Δ    launched  advanced  completed");
                for r in &report.rounds {
                    println!(
                        "{:>5}  {:>3}  {:>8}  {:>8}  {:>9}",
                        r.round, r.delta, r.launched, r.advanced, r.completed
                    );
                }
                println!(
                    "hops={h}: completed={} rounds={} time={}",
                    report.completed,
                    report.rounds_used(),
                    report.total_time
                );
                return if report.completed {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                };
            }
            let mut params = ProtocolParams::new(router, args.worm_len);
            params.max_rounds = args.max_rounds;
            if args.ack {
                params.ack = AckMode::Simulated { ack_len: None };
            }
            if let Some(frac) = args.converters {
                let nodes: Vec<bool> = (0..net.node_count()).map(|_| rng.gen_bool(frac)).collect();
                params.converters = Some(converter_mask(&net, |v| nodes[v as usize]));
            }
            params.dead_links = dead;
            let proto = TrialAndFailure::new(&net, &coll, params);
            let report = proto.run(&mut rng);
            println!("round  Δ    active  delivered  acked");
            for r in &report.rounds {
                println!(
                    "{:>5}  {:>3}  {:>6}  {:>9}  {:>5}",
                    r.round, r.delta, r.active_before, r.delivered, r.acked
                );
            }
            println!(
                "completed={} rounds={} time={} duplicates={}",
                report.completed,
                report.rounds_used(),
                report.total_time,
                report.duplicate_deliveries
            );
            if report.completed {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        other => {
            eprintln!("unknown command '{other}' (route|metrics|rwa|bounds)");
            ExitCode::FAILURE
        }
    }
}
