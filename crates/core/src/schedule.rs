//! Delay-range schedules `Δ_t` for the trial-and-failure protocol.
//!
//! The upper-bound proofs (§2.1, §3.1) choose
//!
//! ```text
//! Δ_t = max{ c₁·L·C̃_t/B,  c₁·L·C̃/(B·log n),  c₂·L·log n/B } + D + L
//! C̃_t = max{ C̃ / 2^(t-1),  log n }
//! ```
//!
//! i.e. the delay range *halves geometrically* (tracking the w.h.p.
//! congestion decay of Lemma 2.4) until it reaches a logarithmic floor.
//! The paper's literal constants (`c₁ = 32`, `c₂ = 40e²δ`) are proof
//! artifacts; [`DelaySchedule::paper`] defaults to small practical
//! constants that exhibit the same shape, and
//! [`DelaySchedule::paper_literal`] reproduces the printed ones.

use serde::{Deserialize, Serialize};

/// Static context a schedule may consult.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScheduleCtx {
    /// Total number of paths `n`.
    pub n: usize,
    /// Number of still-active worms at the start of the round.
    pub active: usize,
    /// Worm length `L`.
    pub worm_len: u32,
    /// Router bandwidth `B`.
    pub bandwidth: u16,
    /// Path congestion `C̃` of the full collection.
    pub path_congestion: u32,
    /// Dilation `D`.
    pub dilation: u32,
}

impl ScheduleCtx {
    fn log_n(&self) -> f64 {
        (self.n.max(2) as f64).log2()
    }
}

/// How the delay range `Δ_t` evolves over rounds.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum DelaySchedule {
    /// The paper's §2.1 schedule with configurable constants.
    Paper {
        /// Multiplier `c₁` on the congestion terms.
        c_cong: f64,
        /// Multiplier `c₂` on the `log n` floor term.
        c_log: f64,
    },
    /// Constant `Δ_t = delta` for every round.
    Fixed {
        /// The delay range.
        delta: u32,
    },
    /// `Δ_t = max(floor, initial · ratio^(t-1))` — a generic geometric
    /// schedule for ablations.
    Geometric {
        /// `Δ_1`.
        initial: u32,
        /// Per-round multiplier (e.g. `0.5` to halve).
        ratio: f64,
        /// Minimum delay range.
        floor: u32,
    },
    /// Reactive variant: replaces the a-priori `C̃/2^(t-1)` of the paper
    /// schedule with the *observed* surviving fraction,
    /// `C̃_t = C̃ · active/n` — an extension the paper suggests implicitly
    /// by conditioning everything on the surviving congestion.
    Adaptive {
        /// Multiplier on the congestion term.
        c_cong: f64,
        /// Multiplier on the `log n` floor term.
        c_log: f64,
    },
}

impl DelaySchedule {
    /// Paper schedule with practical constants (`c₁ = 2`, `c₂ = 1`).
    pub fn paper() -> Self {
        DelaySchedule::Paper {
            c_cong: 2.0,
            c_log: 1.0,
        }
    }

    /// Paper schedule with the printed proof constants
    /// (`c₁ = 32`, `c₂ = 40e²` with `δ = 1`).
    pub fn paper_literal() -> Self {
        DelaySchedule::Paper {
            c_cong: 32.0,
            c_log: 40.0 * std::f64::consts::E.powi(2),
        }
    }

    /// The delay range for round `t` (1-based). Always ≥ 1.
    pub fn delta(&self, t: u32, ctx: &ScheduleCtx) -> u32 {
        assert!(t >= 1, "rounds are 1-based");
        let l = ctx.worm_len.max(1) as f64;
        let b = ctx.bandwidth.max(1) as f64;
        let c = ctx.path_congestion as f64;
        let d = ctx.dilation as f64;
        let log_n = ctx.log_n();
        let raw = match *self {
            DelaySchedule::Paper { c_cong, c_log } => {
                let c_t = (c / 2f64.powi(t as i32 - 1)).max(log_n);
                let term1 = c_cong * l * c_t / b;
                let term2 = c_cong * l * c / (b * log_n);
                let term3 = c_log * l * log_n / b;
                term1.max(term2).max(term3) + d + l
            }
            DelaySchedule::Fixed { delta } => delta as f64,
            DelaySchedule::Geometric {
                initial,
                ratio,
                floor,
            } => (initial as f64 * ratio.powi(t as i32 - 1)).max(floor as f64),
            DelaySchedule::Adaptive { c_cong, c_log } => {
                let frac = if ctx.n == 0 {
                    0.0
                } else {
                    ctx.active as f64 / ctx.n as f64
                };
                let c_t = (c * frac).max(log_n);
                let term1 = c_cong * l * c_t / b;
                let term3 = c_log * l * log_n / b;
                term1.max(term3) + d + l
            }
        };
        raw.ceil().max(1.0) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(n: usize, c: u32) -> ScheduleCtx {
        ScheduleCtx {
            n,
            active: n,
            worm_len: 4,
            bandwidth: 2,
            path_congestion: c,
            dilation: 10,
        }
    }

    #[test]
    fn paper_schedule_halves_then_floors() {
        let s = DelaySchedule::paper();
        let c = ctx(1024, 4096);
        let d1 = s.delta(1, &c);
        let d2 = s.delta(2, &c);
        let d3 = s.delta(3, &c);
        assert!(d1 > d2 && d2 > d3, "early rounds shrink: {d1} {d2} {d3}");
        // Far rounds hit the floor and stop shrinking.
        let d20 = s.delta(20, &c);
        let d21 = s.delta(21, &c);
        assert_eq!(d20, d21);
        assert!(d20 >= c.dilation + c.worm_len);
    }

    #[test]
    fn paper_initial_delta_close_to_half_per_round() {
        let s = DelaySchedule::paper();
        let c = ctx(1 << 20, 1 << 16);
        let d1 = s.delta(1, &c) as f64;
        let d2 = s.delta(2, &c) as f64;
        // Subtracting the constant D + L part, the congestion term halves.
        let base = (c.dilation + c.worm_len) as f64;
        let ratio = (d2 - base) / (d1 - base);
        assert!((ratio - 0.5).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn fixed_schedule_is_constant() {
        let s = DelaySchedule::Fixed { delta: 17 };
        let c = ctx(100, 50);
        for t in 1..10 {
            assert_eq!(s.delta(t, &c), 17);
        }
    }

    #[test]
    fn geometric_schedule_respects_floor() {
        let s = DelaySchedule::Geometric {
            initial: 100,
            ratio: 0.5,
            floor: 10,
        };
        let c = ctx(100, 50);
        assert_eq!(s.delta(1, &c), 100);
        assert_eq!(s.delta(2, &c), 50);
        assert_eq!(s.delta(10, &c), 10);
    }

    #[test]
    fn adaptive_shrinks_with_active_count() {
        let s = DelaySchedule::Adaptive {
            c_cong: 2.0,
            c_log: 1.0,
        };
        let mut c = ctx(4096, 16384);
        let full = s.delta(1, &c);
        c.active = 64;
        let drained = s.delta(1, &c);
        assert!(drained < full);
    }

    #[test]
    fn literal_constants_are_larger() {
        let c = ctx(1024, 1024);
        assert!(DelaySchedule::paper_literal().delta(1, &c) > DelaySchedule::paper().delta(1, &c));
    }

    #[test]
    fn geometric_with_ratio_above_one_is_exponential_backoff() {
        // ratio > 1 gives the classic networking backoff discipline.
        let s = DelaySchedule::Geometric {
            initial: 8,
            ratio: 2.0,
            floor: 1,
        };
        let c = ctx(64, 32);
        assert_eq!(s.delta(1, &c), 8);
        assert_eq!(s.delta(2, &c), 16);
        assert_eq!(s.delta(5, &c), 128);
    }

    #[test]
    fn delta_is_at_least_one() {
        let s = DelaySchedule::Geometric {
            initial: 0,
            ratio: 0.5,
            floor: 0,
        };
        let c = ctx(2, 0);
        assert_eq!(s.delta(5, &c), 1);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn round_zero_rejected() {
        DelaySchedule::paper().delta(0, &ctx(4, 2));
    }
}
