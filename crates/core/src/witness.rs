//! Executable witness trees (Figure 4) and blocking graphs (Definition
//! 2.3).
//!
//! During a run with `record_blocking`, every round yields a map
//! `loser → blocker` ("w' prevents w from moving forward"). This module
//! turns those maps into:
//!
//! * per-round **blocking graphs** `G_i`, with the Claim 2.6 structure
//!   check — components must be directed trees whose roots are worms that
//!   were not blocked themselves; a **blocking cycle** (worms eliminating
//!   each other around a directed loop) is exactly the phenomenon that
//!   separates Main Theorem 1.2 from 1.1/1.3 and is realized by the
//!   Figure 6 structures;
//! * **witness trees** `W(t)`: the recursive explanation of why a worm is
//!   still active after `t` rounds, with the `m_i`/`ℓ_i` statistics used
//!   by the counting argument of §2.1.

use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Analysis of one round's blocking graph.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockingAnalysis {
    /// Number of worms appearing in the graph (losers and blockers).
    pub worms: usize,
    /// Number of blocking edges (= number of losers).
    pub edges: usize,
    /// Directed cycles of mutual blocking, each listed once.
    pub cycles: Vec<Vec<u32>>,
    /// Roots: worms that blocked someone but were not blocked themselves
    /// (the "new worms" of Claim 2.6).
    pub roots: Vec<u32>,
}

impl BlockingAnalysis {
    /// Claim 2.6 holds for this round: every component is a tree rooted at
    /// an unblocked worm.
    pub fn is_forest(&self) -> bool {
        self.cycles.is_empty()
    }
}

/// Analyze a `loser → blocker` map.
///
/// The graph is functional (out-degree ≤ 1), so every component contains
/// at most one cycle; cycles are found by pointer chasing with tricolor
/// marking in `O(worms)`.
pub fn analyze_blocking(blocking: &HashMap<u32, u32>) -> BlockingAnalysis {
    // Flat worm universe: sorted + deduped ids, looked up by binary
    // search. The per-round graphs are small, so dense index arrays beat
    // hash maps and make the traversal order (hence cycle rotations and
    // root order) deterministic.
    let mut worms: Vec<u32> = Vec::with_capacity(blocking.len() * 2);
    for (&l, &w) in blocking {
        worms.push(l);
        worms.push(w);
    }
    worms.sort_unstable();
    worms.dedup();
    let idx = |w: u32| worms.binary_search(&w).expect("worm in universe");

    // The unique out-edge per worm index; usize::MAX = unblocked.
    let mut out = vec![usize::MAX; worms.len()];
    for (&l, &w) in blocking {
        out[idx(l)] = idx(w);
    }

    // Tricolor pointer chase along the out-edges (0=white, 1=open, 2=done).
    let mut color = vec![0u8; worms.len()];
    let mut cycles: Vec<Vec<u32>> = Vec::new();
    let mut stack: Vec<usize> = Vec::new();
    for start in 0..worms.len() {
        if color[start] != 0 {
            continue;
        }
        stack.clear();
        let mut cur = start;
        loop {
            color[cur] = 1;
            stack.push(cur);
            let next = out[cur];
            if next == usize::MAX {
                break;
            }
            match color[next] {
                0 => cur = next,
                1 => {
                    // Found a cycle: the suffix of the stack from `next`.
                    let pos = stack.iter().position(|&x| x == next).unwrap();
                    cycles.push(stack[pos..].iter().map(|&i| worms[i]).collect());
                    break;
                }
                _ => break,
            }
        }
        for &i in &stack {
            color[i] = 2;
        }
    }

    // `worms` is sorted, so the roots come out sorted for free.
    let roots: Vec<u32> = (0..worms.len())
        .filter(|&i| out[i] == usize::MAX)
        .map(|i| worms[i])
        .collect();

    BlockingAnalysis {
        worms: worms.len(),
        edges: blocking.len(),
        cycles,
        roots,
    }
}

/// A node of a witness tree `W(t)`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WitnessNode {
    /// The worm embedded at this node.
    pub worm: u32,
    /// Left child: the same worm one round earlier; right child: the worm
    /// that blocked it. Leaves have no children.
    pub children: Vec<WitnessNode>,
}

/// Summary statistics of a witness tree, following §2.1.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WitnessStats {
    /// Depth `t` of the tree.
    pub depth: usize,
    /// `m_i`: number of *distinct* worms embedded in levels `0..=i`.
    pub m: Vec<usize>,
    /// `ℓ_i = m_i − m_{i-1}`: new worms per level.
    pub new_per_level: Vec<usize>,
    /// Total tree nodes.
    pub nodes: usize,
}

/// Build the witness tree for `root`, a worm still active after round
/// `blocking_per_round.len()`.
///
/// `blocking_per_round[r]` is the blocking map of round `r + 1`. Level `i`
/// of the tree corresponds to round `t − i`; a node's children are the
/// same worm and its blocker at the *previous* round. Branches stop early
/// where no blocker was recorded (e.g. a worm that was delivered but lost
/// its ack).
pub fn witness_tree(blocking_per_round: &[&HashMap<u32, u32>], root: u32) -> WitnessNode {
    fn build(maps: &[&HashMap<u32, u32>], worm: u32, level: usize) -> WitnessNode {
        // The blocker of `worm` at the round corresponding to this level.
        let t = maps.len();
        if level >= t {
            return WitnessNode {
                worm,
                children: vec![],
            };
        }
        let round_idx = t - 1 - level;
        match maps[round_idx].get(&worm) {
            None => WitnessNode {
                worm,
                children: vec![],
            },
            Some(&blocker) => WitnessNode {
                worm,
                children: vec![
                    build(maps, worm, level + 1),
                    build(maps, blocker, level + 1),
                ],
            },
        }
    }
    build(blocking_per_round, root, 0)
}

/// Compute the §2.1 statistics of a witness tree.
pub fn witness_stats(tree: &WitnessNode) -> WitnessStats {
    let mut per_level: Vec<HashSet<u32>> = Vec::new();
    let mut nodes = 0usize;
    let mut stack: Vec<(&WitnessNode, usize)> = vec![(tree, 0)];
    while let Some((node, level)) = stack.pop() {
        nodes += 1;
        if per_level.len() <= level {
            per_level.resize_with(level + 1, HashSet::new);
        }
        per_level[level].insert(node.worm);
        for ch in &node.children {
            stack.push((ch, level + 1));
        }
    }
    let mut seen: HashSet<u32> = HashSet::new();
    let mut m = Vec::with_capacity(per_level.len());
    let mut new_per_level = Vec::with_capacity(per_level.len());
    for lvl in &per_level {
        let before = seen.len();
        seen.extend(lvl.iter().copied());
        new_per_level.push(seen.len() - before);
        m.push(seen.len());
    }
    WitnessStats {
        depth: per_level.len().saturating_sub(1),
        m,
        new_per_level,
        nodes,
    }
}

/// Verify that a witness tree is a *valid embedding* in the sense of
/// Definition 2.1, against the blocking maps it was built from and the
/// path collection (for the "paths share an edge" condition):
///
/// * every internal node has exactly two children, the left repeating the
///   node's worm and the right carrying a **different** worm;
/// * the right child is exactly the recorded blocker for that round;
/// * the two worms of every collision pair share a directed link.
pub fn verify_witness_tree(
    tree: &WitnessNode,
    blocking_per_round: &[&HashMap<u32, u32>],
    coll: &optical_paths::PathCollection,
) -> Result<(), String> {
    // Path-pair link-sharing oracle.
    let by_link = coll.paths_by_link();
    let mut share: HashSet<(u32, u32)> = HashSet::new();
    for users in &by_link {
        for (a, &p) in users.iter().enumerate() {
            for &q in &users[a + 1..] {
                if p != q {
                    share.insert((p.min(q), p.max(q)));
                }
            }
        }
    }

    fn walk(
        node: &WitnessNode,
        level: usize,
        maps: &[&HashMap<u32, u32>],
        share: &HashSet<(u32, u32)>,
    ) -> Result<(), String> {
        match node.children.len() {
            0 => Ok(()),
            2 => {
                let (left, right) = (&node.children[0], &node.children[1]);
                if left.worm != node.worm {
                    return Err(format!(
                        "level {level}: left child {} must repeat worm {}",
                        left.worm, node.worm
                    ));
                }
                if right.worm == node.worm {
                    return Err(format!(
                        "level {level}: collision pair must be two distinct worms ({})",
                        node.worm
                    ));
                }
                let round_idx = maps.len() - 1 - level;
                match maps[round_idx].get(&node.worm) {
                    Some(&b) if b == right.worm => {}
                    other => {
                        return Err(format!(
                            "level {level}: recorded blocker {:?} disagrees with tree ({})",
                            other, right.worm
                        ))
                    }
                }
                let key = (node.worm.min(right.worm), node.worm.max(right.worm));
                if !share.contains(&key) {
                    return Err(format!(
                        "level {level}: paths {} and {} share no link",
                        node.worm, right.worm
                    ));
                }
                walk(left, level + 1, maps, share)?;
                walk(right, level + 1, maps, share)
            }
            n => Err(format!("level {level}: node with {n} children")),
        }
    }
    walk(tree, 0, blocking_per_round, &share)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(pairs: &[(u32, u32)]) -> HashMap<u32, u32> {
        pairs.iter().copied().collect()
    }

    #[test]
    fn forest_recognized() {
        // 1 -> 0, 2 -> 0, 3 -> 2: a tree rooted at 0.
        let a = analyze_blocking(&map(&[(1, 0), (2, 0), (3, 2)]));
        assert!(a.is_forest());
        assert_eq!(a.worms, 4);
        assert_eq!(a.edges, 3);
        assert_eq!(a.roots, vec![0]);
    }

    #[test]
    fn cycle_detected() {
        // Figure 6 in miniature: three worms eliminating each other.
        let a = analyze_blocking(&map(&[(1, 2), (2, 3), (3, 1)]));
        assert!(!a.is_forest());
        assert_eq!(a.cycles.len(), 1);
        let mut cyc = a.cycles[0].clone();
        cyc.sort_unstable();
        assert_eq!(cyc, vec![1, 2, 3]);
        assert!(a.roots.is_empty(), "a pure cycle has no roots");
    }

    #[test]
    fn mixed_forest_and_cycle() {
        let a = analyze_blocking(&map(&[(1, 2), (2, 1), (3, 1), (4, 5)]));
        assert_eq!(a.cycles.len(), 1);
        assert_eq!(a.cycles[0].len(), 2);
        assert_eq!(a.roots, vec![5]);
    }

    #[test]
    fn self_loops_never_occur_but_do_not_crash() {
        // The engine guarantees loser != blocker; the analyzer still
        // handles a degenerate self-loop as a 1-cycle.
        let a = analyze_blocking(&map(&[(7, 7)]));
        assert_eq!(a.cycles, vec![vec![7]]);
    }

    #[test]
    fn empty_round_is_trivially_forest() {
        let a = analyze_blocking(&map(&[]));
        assert!(a.is_forest());
        assert_eq!(a.worms, 0);
    }

    #[test]
    fn witness_tree_two_rounds() {
        // Round 1: 0 blocked by 1, 1 blocked by 2; round 2: 0 blocked by 1.
        let r1 = map(&[(0, 1), (1, 2)]);
        let r2 = map(&[(0, 1)]);
        let maps = [&r1, &r2];
        let tree = witness_tree(&maps, 0);
        // Level 0: {0}; level 1: {0, 1}; level 2: {0, 1, 2}.
        assert_eq!(tree.worm, 0);
        assert_eq!(tree.children.len(), 2);
        assert_eq!(tree.children[0].worm, 0);
        assert_eq!(tree.children[1].worm, 1);
        let stats = witness_stats(&tree);
        assert_eq!(stats.depth, 2);
        assert_eq!(stats.m, vec![1, 2, 3]);
        assert_eq!(stats.new_per_level, vec![1, 1, 1]);
        assert_eq!(stats.nodes, 1 + 2 + 4);
    }

    #[test]
    fn witness_tree_stops_at_unblocked_worm() {
        // Round 1 empty: branches stop at level 1.
        let r1 = map(&[]);
        let r2 = map(&[(0, 9)]);
        let maps: [&HashMap<u32, u32>; 2] = [&r1, &r2];
        let tree = witness_tree(&maps, 0);
        assert_eq!(tree.children.len(), 2);
        assert!(tree.children[0].children.is_empty());
        assert!(tree.children[1].children.is_empty());
        let stats = witness_stats(&tree);
        assert_eq!(stats.depth, 1);
        assert_eq!(stats.m, vec![1, 2]);
    }

    #[test]
    fn verify_accepts_tree_from_real_run() {
        use crate::{DelaySchedule, ProtocolParams, TrialAndFailure};
        use optical_paths::{Path, PathCollection};
        use optical_topo::topologies;
        use optical_wdm::{RouterConfig, TieRule};
        use rand::SeedableRng;

        let net = topologies::chain(7);
        let nodes: Vec<u32> = (0..7).collect();
        let mut coll = PathCollection::for_network(&net);
        for _ in 0..16 {
            coll.push(Path::from_nodes(&net, &nodes));
        }
        let mut params =
            ProtocolParams::new(RouterConfig::serve_first(1).with_tie(TieRule::Random), 3);
        params.schedule = DelaySchedule::Fixed { delta: 8 };
        params.max_rounds = 500;
        params.record_blocking = true;
        let proto = TrialAndFailure::new(&net, &coll, params);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(12);
        let report = proto.run(&mut rng);
        assert!(report.completed);

        let (victim, last) = report
            .acked_round
            .iter()
            .enumerate()
            .map(|(w, r)| (w as u32, r.unwrap()))
            .max_by_key(|&(_, r)| r)
            .unwrap();
        assert!(
            last >= 2,
            "need at least one failed round for a witness tree"
        );
        let maps: Vec<&HashMap<u32, u32>> = report.rounds[..last as usize - 1]
            .iter()
            .map(|r| r.blocking.as_ref().unwrap())
            .collect();
        let tree = witness_tree(&maps, victim);
        verify_witness_tree(&tree, &maps, &coll).expect("real tree must be valid");
    }

    #[test]
    fn verify_rejects_corrupted_tree() {
        use optical_paths::{Path, PathCollection};
        use optical_topo::topologies;

        let net = topologies::chain(4);
        let nodes: Vec<u32> = (0..4).collect();
        let mut coll = PathCollection::for_network(&net);
        for _ in 0..3 {
            coll.push(Path::from_nodes(&net, &nodes));
        }
        let r1 = map(&[(0, 1)]);
        let maps: Vec<&HashMap<u32, u32>> = vec![&r1];
        let good = witness_tree(&maps, 0);
        verify_witness_tree(&good, &maps, &coll).unwrap();

        // Corrupt the blocker.
        let mut bad = good.clone();
        bad.children[1].worm = 2;
        assert!(verify_witness_tree(&bad, &maps, &coll).is_err());
        // Corrupt the left child.
        let mut bad = good;
        bad.children[0].worm = 1;
        assert!(verify_witness_tree(&bad, &maps, &coll).is_err());
    }

    #[test]
    fn witness_stats_count_distinct_not_nodes() {
        // Same blocker every round: the tree is big but m_i grows by at
        // most 1 per level.
        let r = map(&[(0, 1), (1, 0)]);
        let maps = [&r, &r, &r];
        let tree = witness_tree(&maps, 0);
        let stats = witness_stats(&tree);
        assert_eq!(stats.depth, 3);
        assert_eq!(*stats.m.last().unwrap(), 2, "only worms 0 and 1 exist");
        assert_eq!(stats.nodes, 1 + 2 + 4 + 8);
    }
}
