//! Per-link circuit breakers: stop hammering links that are verifiably
//! down, probe them after a configurable interval, and reopen the
//! moment a probe fails.
//!
//! One breaker guards each directed link. The state machine is the
//! classic one:
//!
//! ```text
//!            consecutive blockerless          probe interval
//!            failures ≥ open_after            elapses (tick)
//!   Closed ─────────────────────────▶ Open ─────────────────▶ HalfOpen
//!      ▲                                ▲                        │
//!      │      successes ≥ close_after   │     any failure        │
//!      └────────────────────────────────┼────────────────────────┤
//!                                       └────────────────────────┘
//! ```
//!
//! The recovery loop treats `Open` links as *soft-down*: worms whose
//! current path crosses one are held for the round (no failure charged)
//! and the rerouting planner avoids them like condemned links — but
//! unlike the hard `known_dead` set, a breaker heals: after
//! [`BreakerConfig::probe_after`] rounds it half-opens, held worms
//! become probes, and [`BreakerConfig::close_after`] successful
//! traversals close it again.
//!
//! Every transition is reported through [`Sink::on_breaker`] and counted
//! here, so [`super::RecoveryReport`] and
//! [`optical_obs::CountersSink`] reconcile exactly.

use crate::persist::{BreakersState, Fingerprint, RestoreError, Snapshot};
use optical_obs::{BreakerState, Sink};
use serde::{Deserialize, Serialize};

/// Knobs of the per-link circuit breakers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BreakerConfig {
    /// Consecutive blockerless failures on a link before its breaker
    /// opens (≥ 1).
    pub open_after: u32,
    /// Rounds a breaker stays open before half-opening for a probe
    /// (≥ 1; validation rejects a zero probe interval).
    pub probe_after: u32,
    /// Successful traversals in `HalfOpen` before the breaker closes
    /// (≥ 1).
    pub close_after: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            open_after: 3,
            probe_after: 8,
            close_after: 1,
        }
    }
}

/// All per-link breakers of one run, stored structure-of-arrays.
pub(crate) struct Breakers {
    cfg: BreakerConfig,
    state: Vec<BreakerState>,
    /// Consecutive blockerless failures while `Closed`.
    consec: Vec<u32>,
    /// Round the current state was entered.
    since: Vec<u32>,
    /// Successful traversals while `HalfOpen`.
    successes: Vec<u32>,
    /// Links currently `Open` (kept small for the per-round tick).
    open_links: Vec<u32>,
    /// Transition totals, mirrored into the report.
    pub(crate) opens: u64,
    pub(crate) half_opens: u64,
    pub(crate) closes: u64,
    /// Rounds spent `Open`, summed over transitions out of `Open`.
    pub(crate) open_rounds: u64,
}

impl Breakers {
    pub(crate) fn new(link_count: usize, cfg: BreakerConfig) -> Self {
        Breakers {
            cfg,
            state: vec![BreakerState::Closed; link_count],
            consec: vec![0; link_count],
            since: vec![0; link_count],
            successes: vec![0; link_count],
            open_links: Vec::new(),
            opens: 0,
            half_opens: 0,
            closes: 0,
            open_rounds: 0,
        }
    }

    /// Is `link` soft-down right now?
    #[inline]
    pub(crate) fn is_open(&self, link: u32) -> bool {
        self.state[link as usize] == BreakerState::Open
    }

    /// Total transitions so far (for per-round deltas).
    pub(crate) fn transitions(&self) -> u64 {
        self.opens + self.half_opens + self.closes
    }

    /// Overlay soft-down links onto `avoid` (which already carries the
    /// hard-dead set) for the rerouting planner.
    pub(crate) fn mask_open(&self, avoid: &mut [bool]) {
        for &l in &self.open_links {
            avoid[l as usize] = true;
        }
    }

    fn transition<S: Sink>(&mut self, link: u32, to: BreakerState, round: u32, sink: &mut S) {
        let idx = link as usize;
        let from = self.state[idx];
        let in_from = round.saturating_sub(self.since[idx]);
        match to {
            BreakerState::Open => {
                self.opens += 1;
                self.open_links.push(link);
            }
            BreakerState::HalfOpen => self.half_opens += 1,
            BreakerState::Closed => self.closes += 1,
        }
        if from == BreakerState::Open {
            self.open_rounds += u64::from(in_from);
        }
        self.state[idx] = to;
        self.since[idx] = round;
        self.consec[idx] = 0;
        self.successes[idx] = 0;
        sink.on_breaker(round, link, from, to, in_from);
    }

    /// Advance probe timers at the start of `round`: any breaker open
    /// for at least `probe_after` rounds half-opens.
    pub(crate) fn tick<S: Sink>(&mut self, round: u32, sink: &mut S) {
        let mut i = 0;
        while i < self.open_links.len() {
            let link = self.open_links[i];
            if round.saturating_sub(self.since[link as usize]) >= self.cfg.probe_after {
                self.open_links.swap_remove(i);
                self.transition(link, BreakerState::HalfOpen, round, sink);
            } else {
                i += 1;
            }
        }
    }

    /// A blockerless failure hit `link` during `round`.
    pub(crate) fn on_failure<S: Sink>(&mut self, link: u32, round: u32, sink: &mut S) {
        match self.state[link as usize] {
            BreakerState::Closed => {
                self.consec[link as usize] += 1;
                if self.consec[link as usize] >= self.cfg.open_after {
                    self.transition(link, BreakerState::Open, round, sink);
                }
            }
            // A probe failed: straight back to Open.
            BreakerState::HalfOpen => self.transition(link, BreakerState::Open, round, sink),
            // Already open; the worm was launched before the breaker
            // opened this round. Nothing new to learn.
            BreakerState::Open => {}
        }
    }

    /// A worm traversed `link` successfully during `round`.
    pub(crate) fn on_success<S: Sink>(&mut self, link: u32, round: u32, sink: &mut S) {
        match self.state[link as usize] {
            BreakerState::Closed => self.consec[link as usize] = 0,
            BreakerState::HalfOpen => {
                self.successes[link as usize] += 1;
                if self.successes[link as usize] >= self.cfg.close_after {
                    self.transition(link, BreakerState::Closed, round, sink);
                }
            }
            BreakerState::Open => {}
        }
    }
}

fn state_to_u8(s: BreakerState) -> u8 {
    match s {
        BreakerState::Closed => 0,
        BreakerState::Open => 1,
        BreakerState::HalfOpen => 2,
    }
}

fn state_from_u8(b: u8) -> Result<BreakerState, RestoreError> {
    match b {
        0 => Ok(BreakerState::Closed),
        1 => Ok(BreakerState::Open),
        2 => Ok(BreakerState::HalfOpen),
        other => Err(RestoreError::Invalid(format!(
            "breaker state byte {other} is not 0 (Closed), 1 (Open), or 2 (HalfOpen)"
        ))),
    }
}

impl Snapshot for Breakers {
    type State = BreakersState;

    const KIND: &'static str = "recovery-breakers/v1";

    fn fingerprint(&self) -> Fingerprint {
        Fingerprint::of_debug(&(self.state.len(), self.cfg))
    }

    fn state(&self) -> BreakersState {
        BreakersState {
            cfg: self.cfg,
            state: self.state.iter().map(|&s| state_to_u8(s)).collect(),
            consec: self.consec.clone(),
            since: self.since.clone(),
            successes: self.successes.clone(),
            open_links: self.open_links.clone(),
            opens: self.opens,
            half_opens: self.half_opens,
            closes: self.closes,
            open_rounds: self.open_rounds,
        }
    }

    fn from_state(state: BreakersState) -> Result<Self, RestoreError> {
        let n = state.state.len();
        if state.consec.len() != n || state.since.len() != n || state.successes.len() != n {
            return Err(RestoreError::Invalid(format!(
                "breaker columns disagree on link count: {n}/{}/{}/{}",
                state.consec.len(),
                state.since.len(),
                state.successes.len()
            )));
        }
        let machines = state
            .state
            .iter()
            .map(|&b| state_from_u8(b))
            .collect::<Result<Vec<_>, _>>()?;
        // The open list must name exactly the Open links (the per-round
        // tick walks it instead of scanning every breaker).
        let open_count = machines
            .iter()
            .filter(|&&s| s == BreakerState::Open)
            .count();
        if state.open_links.len() != open_count
            || state
                .open_links
                .iter()
                .any(|&l| (l as usize) >= n || machines[l as usize] != BreakerState::Open)
        {
            return Err(RestoreError::Invalid(
                "breaker open-link list does not match the per-link states".to_string(),
            ));
        }
        Ok(Breakers {
            cfg: state.cfg,
            state: machines,
            consec: state.consec,
            since: state.since,
            successes: state.successes,
            open_links: state.open_links,
            opens: state.opens,
            half_opens: state.half_opens,
            closes: state.closes,
            open_rounds: state.open_rounds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optical_obs::NullSink;

    #[test]
    fn breaker_walks_the_full_lifecycle() {
        let cfg = BreakerConfig {
            open_after: 2,
            probe_after: 3,
            close_after: 1,
        };
        let mut bk = Breakers::new(4, cfg);
        let mut sink = NullSink;
        // Two blockerless failures open the breaker...
        bk.on_failure(1, 1, &mut sink);
        assert!(!bk.is_open(1));
        bk.on_failure(1, 2, &mut sink);
        assert!(bk.is_open(1));
        assert_eq!(bk.opens, 1);
        // ...the probe interval half-opens it...
        bk.tick(3, &mut sink);
        assert!(bk.is_open(1), "too early to probe");
        bk.tick(5, &mut sink);
        assert!(!bk.is_open(1));
        assert_eq!(bk.half_opens, 1);
        assert_eq!(bk.open_rounds, 3, "open from round 2 to round 5");
        // ...and one probe success closes it.
        bk.on_success(1, 5, &mut sink);
        assert_eq!(bk.closes, 1);
        assert_eq!(bk.transitions(), 3);
        let mut avoid = vec![false; 4];
        bk.mask_open(&mut avoid);
        assert!(avoid.iter().all(|&d| !d));
    }

    #[test]
    fn failed_probe_reopens_and_successes_reset_the_failure_streak() {
        let cfg = BreakerConfig {
            open_after: 2,
            probe_after: 1,
            close_after: 2,
        };
        let mut bk = Breakers::new(2, cfg);
        let mut sink = NullSink;
        // An interleaved success keeps the streak below the threshold.
        bk.on_failure(0, 1, &mut sink);
        bk.on_success(0, 1, &mut sink);
        bk.on_failure(0, 2, &mut sink);
        assert!(!bk.is_open(0), "streak was reset by the success");
        bk.on_failure(0, 2, &mut sink);
        assert!(bk.is_open(0));
        bk.tick(3, &mut sink);
        // close_after = 2: one success is not enough...
        bk.on_success(0, 3, &mut sink);
        assert_eq!(bk.closes, 0);
        // ...and a probe failure goes straight back to Open.
        bk.on_failure(0, 3, &mut sink);
        assert!(bk.is_open(0));
        assert_eq!(bk.opens, 2);
        let mut avoid = vec![false; 2];
        bk.mask_open(&mut avoid);
        assert_eq!(avoid, vec![true, false]);
    }

    #[test]
    fn snapshot_mid_lifecycle_resumes_transitions_identically() {
        let cfg = BreakerConfig {
            open_after: 2,
            probe_after: 3,
            close_after: 2,
        };
        // Drive a bank into a mixed position: link 0 open, link 1 one
        // failure short of opening, link 2 half-open with one success.
        let drive = |bk: &mut Breakers| {
            bk.on_failure(0, 1, &mut NullSink);
            bk.on_failure(0, 2, &mut NullSink);
            bk.on_failure(1, 2, &mut NullSink);
            bk.on_failure(2, 1, &mut NullSink);
            bk.on_failure(2, 1, &mut NullSink);
            bk.tick(5, &mut NullSink);
            bk.on_success(2, 5, &mut NullSink);
        };
        let mut golden = Breakers::new(4, cfg);
        drive(&mut golden);
        let mut original = Breakers::new(4, cfg);
        drive(&mut original);
        let mut restored = Breakers::restore(original.snapshot()).unwrap();
        // Continue both: every future transition must match.
        let continue_on = |bk: &mut Breakers| {
            bk.on_failure(1, 6, &mut NullSink);
            bk.on_success(2, 6, &mut NullSink);
            bk.tick(9, &mut NullSink);
            bk.on_success(0, 9, &mut NullSink);
            bk.on_success(0, 9, &mut NullSink);
            (
                bk.opens,
                bk.half_opens,
                bk.closes,
                bk.open_rounds,
                (0..4).map(|l| bk.is_open(l)).collect::<Vec<_>>(),
            )
        };
        assert_eq!(continue_on(&mut golden), continue_on(&mut restored));
    }

    #[test]
    fn restore_rejects_inconsistent_open_list_and_bad_state_bytes() {
        let mut bk = Breakers::new(2, BreakerConfig::default());
        bk.on_failure(0, 1, &mut NullSink);
        let mut snap = bk.snapshot();
        snap.state.open_links.push(1); // link 1 is Closed, not Open
        assert!(matches!(
            Breakers::restore(snap),
            Err(RestoreError::Invalid(_))
        ));
        let mut snap = bk.snapshot();
        snap.state.state[0] = 7;
        assert!(matches!(
            Breakers::restore(snap),
            Err(RestoreError::Invalid(_))
        ));
        let mut snap = bk.snapshot();
        snap.state.consec.pop();
        assert!(matches!(
            Breakers::restore(snap),
            Err(RestoreError::Invalid(_))
        ));
    }
}
