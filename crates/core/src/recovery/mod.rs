//! Self-healing trial-and-failure: stranded-worm detection, configurable
//! retry strategies, per-link circuit breakers, a dead-letter queue, and
//! automatic rerouting around discovered faults.
//!
//! The plain protocol ([`crate::protocol::TrialAndFailure`]) is
//! all-or-nothing: a worm routed across a cut fiber dies every round and
//! the run simply reports `completed = false`. This module wraps the same
//! round structure with a *recovery loop* that mirrors what a deployed
//! network would do, using only source-observable signals:
//!
//! * **Fault detection** — a failed round whose worm has no
//!   `first_blocker` was killed by the fiber plant, not by a competing
//!   worm (see [`optical_wdm::fault`]). Such failures raise suspicion on
//!   the link where the worm died; after
//!   [`RecoveryPolicy::confirm_after`] blockerless failures a link is
//!   declared dead.
//! * **Stranded-worm detection** — per worm, progress is the furthest
//!   path position its head ever reached. A worm whose progress does not
//!   improve for [`RecoveryPolicy::stranded_after`] consecutive rounds is
//!   *stranded*.
//! * **Retry strategies** ([`backoff`]) — every consecutive failure grows
//!   the worm's personal backoff multiplier along a configurable curve
//!   ([`BackoffStrategy`]: fixed, linear, exponential, Fibonacci), capped
//!   at [`RecoveryPolicy::backoff_cap`] and optionally jittered
//!   ([`Jitter`]) with draws from the simulation RNG so runs stay
//!   deterministic per seed. [`BackoffMode`] decides whether the
//!   multiplier widens the startup-delay window (legacy) or makes the
//!   worm sit out whole rounds, desynchronizing retry cohorts.
//! * **Circuit breakers** ([`breaker`]) — per-link state machines that
//!   open after repeated blockerless failures, hold crossing worms
//!   (soft-down: the rerouting planner avoids them but nothing is
//!   condemned), half-open after a probe interval, and close again on
//!   probe success. Where the `known_dead` set is forever, a breaker
//!   heals.
//! * **Dead-letter queue** ([`dlq`]) — worms that exhaust a budget are
//!   *captured* with their failure history instead of dropped; parked
//!   letters are replayed in bounded batches once the links governing
//!   their paths recover.
//! * **Rerouting** — a stranded worm is rerouted with
//!   [`optical_paths::select::bfs::bfs_route_avoiding`] against the
//!   currently-known dead set (plus any open breakers); a worm that
//!   cannot be rerouted (source disconnected) or exhausts
//!   [`RecoveryPolicy::max_reroutes`] is abandoned — or captured, when
//!   the dead-letter queue is on — and the run keeps going for everyone
//!   else.
//!
//! The result is a [`RecoveryReport`] with a terminal [`WormOutcome`] per
//! worm — `Delivered`, `Rerouted`, `Abandoned`, or `DeadLettered` — plus
//! detection latencies, breaker/DLQ accounting, and the backoff cost,
//! instead of a single `completed` bit.
//!
//! With the default policy (legacy [`RetryPolicy::legacy`], no breakers,
//! no DLQ) the loop is bit-identical to the pre-v2 implementation: the
//! new machinery consumes no RNG and emits no events.

pub mod backoff;
pub mod breaker;
pub mod dlq;

pub use backoff::{BackoffMode, BackoffStrategy, Jitter, RetryPolicy};
pub use breaker::BreakerConfig;
pub use dlq::{DeadLetter, DlqConfig};

use breaker::Breakers;
use dlq::DeadLetterQueue;

use crate::protocol::{AckMode, ProtocolParams};
use crate::schedule::ScheduleCtx;
use crate::workspace::ProtocolWorkspace;
use optical_obs::{NullSink, Sink};
use optical_paths::select::bfs::bfs_route_avoiding;
use optical_paths::{Path, PathCollection};
use optical_topo::Network;
use optical_wdm::{ChurnModel, Fate, FaultPlan, TransmissionSpec};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Where each round's dynamic faults come from.
#[derive(Clone, Debug, Default)]
pub enum FaultSource {
    /// No dynamic faults (static [`ProtocolParams::dead_links`] still
    /// apply).
    #[default]
    None,
    /// The same scripted plan replays every round.
    EveryRound(FaultPlan),
    /// Round `t` (1-based) runs `plans[t-1]`; rounds past the end run
    /// fault-free.
    PerRound(Vec<FaultPlan>),
    /// Stochastic up/down churn, regenerated per round from the model.
    Churn(ChurnModel),
}

/// A [`RecoveryPolicy`] (or one of its parts) that cannot work.
///
/// Returned by [`RecoveryPolicy::validate`] and surfaced through
/// [`Recovery::try_new`] and `SimBuilder::try_build` so callers get a
/// descriptive error instead of a debug-only assert.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyError {
    /// `stranded_after` must be at least 1.
    StrandedAfterZero,
    /// `backoff_cap` must be at least 1.
    BackoffCapZero,
    /// `confirm_after` must be at least 1.
    ConfirmAfterZero,
    /// `BackoffStrategy::Fixed` needs a multiplier of at least 1.
    FixedMultZero,
    /// `BackoffStrategy::Linear` needs a step of at least 1.
    LinearStepZero,
    /// `BackoffStrategy::Exponential` needs a base of at least 2.
    ExponentialBaseTooSmall,
    /// A retry budget of 0 would capture every worm before its first try.
    EmptyRetryBudget,
    /// A rate limit of 0 would never let any retry through.
    ZeroRateLimit,
    /// A breaker that opens after 0 failures would never close.
    ZeroOpenThreshold,
    /// A breaker with a zero probe interval would never stay open.
    ZeroProbeInterval,
    /// A breaker that closes after 0 successes could never half-open.
    ZeroCloseThreshold,
    /// A replay batch of 0 would starve the dead-letter queue forever.
    ZeroReplayBatch,
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            PolicyError::StrandedAfterZero => "stranded_after must be at least 1",
            PolicyError::BackoffCapZero => "backoff_cap must be at least 1",
            PolicyError::ConfirmAfterZero => "confirm_after must be at least 1",
            PolicyError::FixedMultZero => "fixed backoff needs a multiplier of at least 1",
            PolicyError::LinearStepZero => "linear backoff needs a step of at least 1",
            PolicyError::ExponentialBaseTooSmall => {
                "exponential backoff needs a base of at least 2"
            }
            PolicyError::EmptyRetryBudget => {
                "a retry budget of 0 would capture every worm before its first try"
            }
            PolicyError::ZeroRateLimit => "a retry-rate limit of 0 would never let a retry through",
            PolicyError::ZeroOpenThreshold => "breaker open_after must be at least 1",
            PolicyError::ZeroProbeInterval => {
                "breaker probe_after must be at least 1 (zero probe interval)"
            }
            PolicyError::ZeroCloseThreshold => "breaker close_after must be at least 1",
            PolicyError::ZeroReplayBatch => {
                "dead-letter replay_batch must be at least 1 (empty replay batch)"
            }
        };
        f.write_str(msg)
    }
}

impl std::error::Error for PolicyError {}

impl RetryPolicy {
    /// Check the retry half of a policy; see [`PolicyError`].
    pub fn validate(&self) -> Result<(), PolicyError> {
        match self.strategy {
            BackoffStrategy::Fixed { mult: 0 } => return Err(PolicyError::FixedMultZero),
            BackoffStrategy::Linear { step: 0 } => return Err(PolicyError::LinearStepZero),
            BackoffStrategy::Exponential { base } if base < 2 => {
                return Err(PolicyError::ExponentialBaseTooSmall)
            }
            _ => {}
        }
        if self.budget == Some(0) {
            return Err(PolicyError::EmptyRetryBudget);
        }
        if self.rate_limit == Some(0) {
            return Err(PolicyError::ZeroRateLimit);
        }
        Ok(())
    }
}

impl BreakerConfig {
    /// Check breaker thresholds; see [`PolicyError`].
    pub fn validate(&self) -> Result<(), PolicyError> {
        if self.open_after == 0 {
            return Err(PolicyError::ZeroOpenThreshold);
        }
        if self.probe_after == 0 {
            return Err(PolicyError::ZeroProbeInterval);
        }
        if self.close_after == 0 {
            return Err(PolicyError::ZeroCloseThreshold);
        }
        Ok(())
    }
}

impl DlqConfig {
    /// Check dead-letter-queue knobs; see [`PolicyError`].
    pub fn validate(&self) -> Result<(), PolicyError> {
        if self.replay_batch == 0 {
            return Err(PolicyError::ZeroReplayBatch);
        }
        Ok(())
    }
}

/// Knobs of the recovery loop.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// Rounds without progress before a worm counts as stranded (≥ 1).
    pub stranded_after: u32,
    /// Cap on the per-worm delay-range multiplier (1 disables backoff).
    pub backoff_cap: u32,
    /// Reroute budget per worm; a worm stranded again after this many
    /// reroutes is abandoned.
    pub max_reroutes: u32,
    /// Blockerless failures on a link before it is declared dead (≥ 1).
    /// Raise above 1 to avoid condemning merely flaky links on first
    /// offence.
    pub confirm_after: u32,
    /// Also mark the reverse direction of a condemned link dead (a cut
    /// fiber usually severs both directions).
    pub mirror_dead: bool,
    /// Retry strategy: backoff curve, jitter, mode, budget, rate limit.
    /// Defaults to [`RetryPolicy::legacy`] (bit-identical pre-v2 loop).
    #[serde(default)]
    pub retry: RetryPolicy,
    /// Per-link circuit breakers; `None` disables them.
    #[serde(default)]
    pub breaker: Option<BreakerConfig>,
    /// Dead-letter queue; `None` means given-up worms are abandoned
    /// outright, as before.
    #[serde(default)]
    pub dlq: Option<DlqConfig>,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            stranded_after: 3,
            backoff_cap: 16,
            max_reroutes: 4,
            confirm_after: 1,
            mirror_dead: true,
            retry: RetryPolicy::legacy(),
            breaker: None,
            dlq: None,
        }
    }
}

impl RecoveryPolicy {
    /// Check every field, including the nested retry / breaker / DLQ
    /// configuration, returning the first problem found.
    pub fn validate(&self) -> Result<(), PolicyError> {
        if self.stranded_after < 1 {
            return Err(PolicyError::StrandedAfterZero);
        }
        if self.backoff_cap < 1 {
            return Err(PolicyError::BackoffCapZero);
        }
        if self.confirm_after < 1 {
            return Err(PolicyError::ConfirmAfterZero);
        }
        self.retry.validate()?;
        if let Some(bk) = &self.breaker {
            bk.validate()?;
        }
        if let Some(dlq) = &self.dlq {
            dlq.validate()?;
        }
        Ok(())
    }
}

/// Why a worm was given up on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AbandonReason {
    /// The known-dead set disconnects source from destination.
    Disconnected,
    /// Stranded again after exhausting the reroute budget.
    RetryBudget,
    /// Still undelivered when `max_rounds` ran out.
    RoundBudget,
    /// Exhausted the per-worm attempt budget
    /// ([`RetryPolicy::budget`]).
    BudgetExhausted,
    /// Every remaining route crosses an open circuit breaker; only
    /// reachable with the dead-letter queue on (the worm is parked until
    /// the breakers heal).
    BreakerOpen,
}

/// Terminal outcome of one worm.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum WormOutcome {
    /// Delivered on its original path.
    Delivered {
        /// Round of the successful transmission (1-based).
        round: u32,
    },
    /// Delivered after one or more reroutes around discovered faults.
    Rerouted {
        /// Number of reroutes it took.
        times: u32,
        /// Round of the successful transmission.
        round: u32,
    },
    /// Given up on.
    Abandoned {
        /// Why.
        reason: AbandonReason,
    },
    /// Captured by the dead-letter queue and never successfully replayed;
    /// its full history is in [`RecoveryReport::dead_letters`].
    DeadLettered {
        /// Why the worm was captured (last capture).
        reason: AbandonReason,
        /// Round of the last capture.
        round: u32,
    },
}

impl WormOutcome {
    /// Did the worm's payload arrive (directly or after rerouting)?
    pub fn is_delivered(&self) -> bool {
        matches!(
            self,
            WormOutcome::Delivered { .. } | WormOutcome::Rerouted { .. }
        )
    }
}

/// Per-round observations of the recovery loop.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryRound {
    /// Round index (1-based).
    pub round: u32,
    /// Base delay range `Δ_t` from the schedule.
    pub delta: u32,
    /// Largest per-worm backoff multiplier in effect.
    pub max_multiplier: u32,
    /// Worms injected this round (after holds and rate limiting).
    pub active_before: usize,
    /// Worms delivered this round.
    pub delivered: usize,
    /// Failures without a blocking worm (fault kills) this round.
    pub fault_kills: usize,
    /// Worms that hit the stranded threshold this round.
    pub stranded: usize,
    /// Worms moved to a new path this round (including replays).
    pub rerouted: usize,
    /// Worms abandoned this round.
    pub abandoned: usize,
    /// Worms sitting out the round on a skip-rounds backoff hold.
    #[serde(default)]
    pub backoff_held: usize,
    /// Worms held because their path crosses an open breaker.
    #[serde(default)]
    pub breaker_held: usize,
    /// Retries deferred by the global rate limiter.
    #[serde(default)]
    pub rate_limited: usize,
    /// Worms that exhausted their attempt budget this round.
    #[serde(default)]
    pub budget_exhausted: usize,
    /// Breaker state transitions (open + half-open + close) this round.
    #[serde(default)]
    pub breaker_transitions: usize,
    /// Worms captured by the dead-letter queue this round.
    #[serde(default)]
    pub dlq_enqueued: usize,
    /// Dead letters replayed this round.
    #[serde(default)]
    pub dlq_replayed: usize,
}

/// Result of a recovery run: a terminal outcome per worm plus the cost
/// accounting of getting there.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Terminal outcome per worm, indexed like the input collection.
    pub outcomes: Vec<WormOutcome>,
    /// Per-round observations, in order.
    pub rounds: Vec<RecoveryRound>,
    /// Total budgeted time `Σ_t (Δ_t · max multiplier + 2(D + L))`.
    pub total_time: u64,
    /// Extra time attributable to backoff alone (`Σ_t Δ_t · (max
    /// multiplier − 1)`).
    pub backoff_extra_time: u64,
    /// Links believed dead at the end of the run.
    pub known_dead: Vec<bool>,
    /// Per reroute event: rounds from the first blockerless failure to
    /// the strand that triggered the reroute (inclusive) — how long the
    /// source took to conclude the path was broken.
    pub detection_latencies: Vec<u32>,
    /// Breaker transitions into `Open` over the whole run.
    #[serde(default)]
    pub breaker_opens: u64,
    /// Breaker transitions into `HalfOpen` (probe starts).
    #[serde(default)]
    pub breaker_half_opens: u64,
    /// Breaker transitions into `Closed` (healed).
    #[serde(default)]
    pub breaker_closes: u64,
    /// Rounds spent `Open`, summed over transitions out of `Open`
    /// (links still open at run end contribute nothing, mirroring
    /// [`optical_obs::CountersSink`]).
    #[serde(default)]
    pub breaker_open_rounds: u64,
    /// Worm-rounds held behind an open breaker.
    #[serde(default)]
    pub breaker_holds: u64,
    /// Worm-rounds sat out on skip-rounds backoff holds.
    #[serde(default)]
    pub backoff_holds: u64,
    /// Worms that exhausted their attempt budget.
    #[serde(default)]
    pub budget_exhausted: u64,
    /// Retries deferred by the global rate limiter.
    #[serde(default)]
    pub rate_limited: u64,
    /// Dead-letter captures (a worm re-captured after replay counts
    /// again).
    #[serde(default)]
    pub dlq_enqueued: u64,
    /// Dead-letter replays.
    #[serde(default)]
    pub dlq_replayed: u64,
    /// Letters still parked when the run ended, in capture order.
    #[serde(default)]
    pub dead_letters: Vec<DeadLetter>,
}

impl RecoveryReport {
    /// Worms delivered on their original path.
    pub fn delivered_direct(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, WormOutcome::Delivered { .. }))
            .count()
    }

    /// Worms delivered after rerouting.
    pub fn rerouted_count(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, WormOutcome::Rerouted { .. }))
            .count()
    }

    /// Worms abandoned outright, by any reason (dead-lettered worms are
    /// counted by [`RecoveryReport::dead_lettered_count`] instead).
    pub fn abandoned_count(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, WormOutcome::Abandoned { .. }))
            .count()
    }

    /// Worms that ended the run parked in the dead-letter queue.
    pub fn dead_lettered_count(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, WormOutcome::DeadLettered { .. }))
            .count()
    }

    /// Worms that did not make it, whether abandoned or dead-lettered.
    pub fn undelivered_count(&self) -> usize {
        self.outcomes.iter().filter(|o| !o.is_delivered()).count()
    }

    /// Rounds actually executed.
    pub fn rounds_used(&self) -> u32 {
        self.rounds.len() as u32
    }

    /// Mean detection latency in rounds (`None` if nothing was detected).
    pub fn mean_detection_latency(&self) -> Option<f64> {
        (!self.detection_latencies.is_empty()).then(|| {
            self.detection_latencies.iter().sum::<u32>() as f64
                / self.detection_latencies.len() as f64
        })
    }

    /// Breaker transitions of any kind over the whole run.
    pub fn breaker_transitions(&self) -> u64 {
        self.breaker_opens + self.breaker_half_opens + self.breaker_closes
    }
}

/// Per-worm recovery bookkeeping.
struct WormTrack {
    path: Path,
    /// Furthest path position the head ever reached on the current path.
    best_progress: u32,
    /// Consecutive rounds without progress improvement.
    no_improve: u32,
    /// Consecutive failed rounds (drives backoff).
    consecutive_fails: u32,
    /// Lifetime failed rounds (drives the attempt budget).
    total_fails: u32,
    reroutes: u32,
    /// Round of the first blockerless failure since the last reroute.
    first_suspect: Option<u32>,
    /// Rounds left to sit out ([`BackoffMode::SkipRounds`]).
    hold_rounds: u32,
    /// The multiplier that produced the current hold (for reporting).
    hold_mult: u32,
    /// Decorrelated-jitter state: last jittered multiplier.
    prev_mult: u32,
    /// Parked in the dead-letter queue right now.
    in_dlq: bool,
    /// Times this worm has been replayed from the queue.
    replays: u32,
    outcome: Option<WormOutcome>,
}

/// Capture `w` into the dead-letter queue when one is configured,
/// abandon it outright otherwise. The single funnel for every give-up
/// decision, so report counters and sink hooks stay in lockstep.
#[allow(clippy::too_many_arguments)]
fn capture_or_abandon<S: Sink>(
    dlq: &mut Option<DeadLetterQueue>,
    track: &mut WormTrack,
    w: u32,
    t: u32,
    reason: AbandonReason,
    sink: &mut S,
    dlq_enqueued_now: &mut usize,
    abandoned_now: &mut usize,
) {
    match dlq {
        Some(q) => {
            q.push(DeadLetter {
                worm: w,
                reason,
                round: t,
                total_fails: track.total_fails,
                reroutes: track.reroutes,
                replays: track.replays,
            });
            track.in_dlq = true;
            *dlq_enqueued_now += 1;
            sink.on_dlq_enqueue(t, w);
        }
        None => {
            track.outcome = Some(WormOutcome::Abandoned { reason });
            *abandoned_now += 1;
            sink.on_abandon(t, w);
        }
    }
}

/// Is every link of `links` currently usable (not condemned, breaker not
/// open)?
fn path_is_clear(links: &[u32], known_dead: &[bool], breakers: Option<&Breakers>) -> bool {
    links
        .iter()
        .all(|&l| !known_dead[l as usize] && breakers.is_none_or(|bk| !bk.is_open(l)))
}

/// The avoid-mask for rerouting: the hard-dead set, overlaid with open
/// breakers when they are enabled. Borrows `known_dead` directly in the
/// common breaker-free case.
fn merged_avoid<'v>(
    known_dead: &'v [bool],
    breakers: Option<&Breakers>,
    scratch: &'v mut Vec<bool>,
) -> &'v [bool] {
    match breakers {
        None => known_dead,
        Some(bk) => {
            scratch.clear();
            scratch.extend_from_slice(known_dead);
            bk.mask_open(scratch);
            scratch
        }
    }
}

/// The self-healing protocol runner. Construct with [`Recovery::new`] or
/// [`Recovery::try_new`], attach a [`FaultSource`], then
/// [`Recovery::run`].
///
/// Only [`AckMode::Ideal`] is supported (the recovery signals are
/// source-side observations of the forward pass); `record_blocking` /
/// `record_congestion` are ignored.
pub struct Recovery<'a> {
    net: &'a Network,
    params: ProtocolParams,
    policy: RecoveryPolicy,
    faults: FaultSource,
    initial: Vec<Path>,
    dilation: u32,
    path_congestion: u32,
}

impl<'a> Recovery<'a> {
    /// Bind the recovery loop to a routing instance, returning a
    /// descriptive [`PolicyError`] when the policy cannot work.
    ///
    /// # Panics
    /// If the collection was built over a different network, or
    /// `params.ack` is not [`AckMode::Ideal`] — those are programming
    /// errors, not configuration problems.
    pub fn try_new(
        net: &'a Network,
        collection: &PathCollection,
        params: ProtocolParams,
        policy: RecoveryPolicy,
    ) -> Result<Self, PolicyError> {
        assert_eq!(
            net.link_count(),
            collection.link_count(),
            "collection was built over a different network"
        );
        assert!(
            params.ack == AckMode::Ideal,
            "recovery supports ideal acks only (signals are source-side)"
        );
        assert!(params.max_rounds >= 1, "need at least one round");
        params.router.validate();
        policy.validate()?;
        let metrics = collection.metrics();
        Ok(Recovery {
            net,
            params,
            policy,
            faults: FaultSource::None,
            initial: collection.to_paths(),
            dilation: metrics.dilation,
            path_congestion: metrics.path_congestion,
        })
    }

    /// Bind the recovery loop to a routing instance.
    ///
    /// # Panics
    /// If the collection was built over a different network, or
    /// `params.ack` is not [`AckMode::Ideal`], or the policy is invalid
    /// (see [`Recovery::try_new`] for the non-panicking form).
    pub fn new(
        net: &'a Network,
        collection: &PathCollection,
        params: ProtocolParams,
        policy: RecoveryPolicy,
    ) -> Self {
        match Self::try_new(net, collection, params, policy) {
            Ok(rec) => rec,
            Err(e) => panic!("invalid recovery policy: {e}"),
        }
    }

    /// Attach a dynamic fault source (builder style).
    pub fn with_faults(mut self, faults: FaultSource) -> Self {
        self.faults = faults;
        self
    }

    /// The policy this instance runs with.
    pub fn policy(&self) -> RecoveryPolicy {
        self.policy
    }

    /// Execute the recovery loop with a one-shot workspace. Thin wrapper
    /// over [`Recovery::run_traced`] — loops should hold a
    /// [`ProtocolWorkspace`] and call [`Recovery::run_with`], and new
    /// call sites should go through `SimBuilder` (see DESIGN §10 for the
    /// entry-point migration note).
    #[doc(hidden)]
    pub fn run(&self, rng: &mut impl Rng) -> RecoveryReport {
        self.run_with(&mut ProtocolWorkspace::new(), rng)
    }

    /// Like [`Recovery::run`], but reusing `ws`'s engine and round
    /// buffers. Bit-identical to `run` for the same RNG state.
    pub fn run_with(&self, ws: &mut ProtocolWorkspace, rng: &mut impl Rng) -> RecoveryReport {
        self.run_traced(ws, rng, &mut NullSink)
    }

    /// The single internal recovery path: [`Recovery::run_with`] with an
    /// observability [`Sink`]. On top of the protocol-level hooks
    /// (round, inject, install and per-worm fate events) the recovery
    /// layer reports `on_backoff` for every held-back worm,
    /// `on_dead_link` on a link's *first* condemnation (mirrored links
    /// report separately), `on_reroute` when a path actually changes,
    /// `on_abandon` for every abandonment (including the final
    /// round-budget sweep, reported at round `max_rounds`), and — when
    /// the v2 machinery is on — `on_breaker` per state transition,
    /// `on_breaker_hold` / `on_rate_limited` per deferred worm,
    /// `on_budget_exhausted` per blown budget, and `on_dlq_enqueue` /
    /// `on_dlq_replay` per queue movement. Hooks never consume `rng`;
    /// the [`NullSink`] instantiation is bit-identical to
    /// [`Recovery::run_with`].
    pub fn run_traced<S: Sink>(
        &self,
        ws: &mut ProtocolWorkspace,
        rng: &mut impl Rng,
        sink: &mut S,
    ) -> RecoveryReport {
        let p = &self.params;
        let n = self.initial.len();
        let b = p.router.bandwidth as u32;
        let l = p.worm_len;
        let retry = self.policy.retry;

        let mut cfg = p.router;
        cfg.record_conflicts = false;
        ws.prepare(
            self.net.link_count(),
            n,
            cfg,
            p.shards,
            false,
            &p.converters,
            &p.dead_links,
        );
        let ProtocolWorkspace {
            engine,
            specs: spec_buf,
            active,
            priorities,
            wavelengths,
            fixed_wl,
            multipliers,
            outcome,
            ..
        } = ws;
        let engine = engine.as_mut().expect("prepared above");

        fixed_wl.clear();
        if matches!(
            p.wavelengths,
            crate::priority::WavelengthStrategy::FixedPerWorm
        ) {
            fixed_wl.extend((0..n).map(|_| rng.gen_range(0..b) as u16));
        }

        let mut tracks: Vec<WormTrack> = self
            .initial
            .iter()
            .map(|path| WormTrack {
                path: path.clone(),
                best_progress: 0,
                no_improve: 0,
                consecutive_fails: 0,
                total_fails: 0,
                reroutes: 0,
                first_suspect: None,
                hold_rounds: 0,
                hold_mult: 1,
                prev_mult: 1,
                in_dlq: false,
                replays: 0,
                outcome: None,
            })
            .collect();
        let mut known_dead = vec![false; self.net.link_count()];
        let mut suspicion = vec![0u32; self.net.link_count()];
        let mut detection_latencies: Vec<u32> = Vec::new();
        let mut rounds: Vec<RecoveryRound> = Vec::new();
        let mut total_time = 0u64;
        let mut backoff_extra_time = 0u64;

        let mut breakers = self
            .policy
            .breaker
            .map(|cfg| Breakers::new(self.net.link_count(), cfg));
        let mut dlq = self.policy.dlq.map(DeadLetterQueue::new);
        let mut avoid_scratch: Vec<bool> = Vec::new();
        let mut backoff_holds = 0u64;
        let mut breaker_holds = 0u64;
        let mut budget_exhausted = 0u64;
        let mut rate_limited = 0u64;

        for t in 1..=p.max_rounds {
            // With v2 off this collapses to the legacy "anyone left?"
            // check; with the DLQ on, replayable letters also keep the
            // clock running.
            let pending = tracks.iter().any(|tr| tr.outcome.is_none() && !tr.in_dlq);
            let replayable = dlq.as_ref().is_some_and(|q| q.any_replayable());
            if !pending && !replayable {
                break;
            }

            let transitions_at_start = breakers.as_ref().map_or(0, |bk| bk.transitions());
            if let Some(bk) = breakers.as_mut() {
                bk.tick(t, sink);
            }

            // Replay parked letters whose paths look viable again.
            let mut dlq_replayed_now = 0usize;
            let mut rerouted = 0usize;
            if let Some(q) = dlq.as_mut() {
                let batch = q.drain_replayable(|letter| {
                    let track = &tracks[letter.worm as usize];
                    path_is_clear(track.path.links(), &known_dead, breakers.as_ref()) || {
                        let avoid =
                            merged_avoid(&known_dead, breakers.as_ref(), &mut avoid_scratch);
                        bfs_route_avoiding(self.net, avoid, track.path.source(), track.path.dest())
                            .is_some()
                    }
                });
                for letter in batch {
                    let w = letter.worm;
                    let track = &mut tracks[w as usize];
                    if !path_is_clear(track.path.links(), &known_dead, breakers.as_ref()) {
                        let avoid =
                            merged_avoid(&known_dead, breakers.as_ref(), &mut avoid_scratch);
                        let new_path = bfs_route_avoiding(
                            self.net,
                            avoid,
                            track.path.source(),
                            track.path.dest(),
                        )
                        .expect("eligibility checked a route exists");
                        if new_path.links() != track.path.links() {
                            track.path = new_path;
                            track.reroutes += 1;
                            rerouted += 1;
                            sink.on_reroute(t, w);
                        }
                    }
                    track.in_dlq = false;
                    track.replays = letter.replays + 1;
                    track.best_progress = 0;
                    track.no_improve = 0;
                    track.consecutive_fails = 0;
                    track.first_suspect = None;
                    track.hold_rounds = 0;
                    track.hold_mult = 1;
                    track.prev_mult = 1;
                    dlq_replayed_now += 1;
                    sink.on_dlq_replay(t, w);
                }
            }

            // Build this round's injection set, honouring holds.
            active.clear();
            let mut backoff_held = 0usize;
            let mut breaker_held = 0usize;
            for w in 0..n as u32 {
                let track = &mut tracks[w as usize];
                if track.outcome.is_some() || track.in_dlq {
                    continue;
                }
                if track.hold_rounds > 0 {
                    track.hold_rounds -= 1;
                    backoff_held += 1;
                    sink.on_backoff(t, w, track.hold_mult);
                    continue;
                }
                if let Some(bk) = breakers.as_ref() {
                    if let Some(&link) = track.path.links().iter().find(|&&l| bk.is_open(l)) {
                        breaker_held += 1;
                        sink.on_breaker_hold(t, w, link);
                        continue;
                    }
                }
                active.push(w);
            }

            // Global retry-rate limiter: first attempts always go;
            // excess retriers (lowest ids first) wait a round.
            let mut rate_limited_now = 0usize;
            if let Some(limit) = retry.rate_limit {
                let mut retriers = 0u32;
                active.retain(|&w| {
                    if tracks[w as usize].consecutive_fails == 0 {
                        return true;
                    }
                    retriers += 1;
                    if retriers <= limit {
                        true
                    } else {
                        rate_limited_now += 1;
                        sink.on_rate_limited(t, w);
                        false
                    }
                });
            }

            let ctx = ScheduleCtx {
                n,
                active: active.len(),
                worm_len: l,
                bandwidth: p.router.bandwidth,
                path_congestion: self.path_congestion,
                dilation: self.dilation,
            };
            let delta = p.schedule.delta(t, &ctx).max(1);

            if active.is_empty() {
                // Every pending worm is held (skip-rounds backoff, open
                // breaker, or parked in the queue); the clock still
                // ticks. Only reachable with v2 features on.
                sink.on_round_start(t, 0, delta);
                sink.on_round_end(t, 0, 0);
                total_time += delta as u64 + 2 * (self.dilation as u64 + l as u64);
                backoff_holds += backoff_held as u64;
                breaker_holds += breaker_held as u64;
                rate_limited += rate_limited_now as u64;
                let transitions_now =
                    breakers.as_ref().map_or(0, |bk| bk.transitions()) - transitions_at_start;
                rounds.push(RecoveryRound {
                    round: t,
                    delta,
                    max_multiplier: 1,
                    active_before: 0,
                    delivered: 0,
                    fault_kills: 0,
                    stranded: 0,
                    rerouted,
                    abandoned: 0,
                    backoff_held,
                    breaker_held,
                    rate_limited: rate_limited_now,
                    budget_exhausted: 0,
                    breaker_transitions: transitions_now as usize,
                    dlq_enqueued: 0,
                    dlq_replayed: dlq_replayed_now,
                });
                continue;
            }

            // Per-worm backoff multipliers. WidenWindow draws through
            // the retry policy (Jitter::None consumes no RNG, keeping
            // legacy runs bit-identical); SkipRounds pays its backoff in
            // held rounds instead, so injection windows stay tight.
            multipliers.clear();
            match retry.mode {
                BackoffMode::WidenWindow => {
                    for &w in active.iter() {
                        let track = &mut tracks[w as usize];
                        let m = retry.draw_multiplier(
                            track.consecutive_fails,
                            &mut track.prev_mult,
                            self.policy.backoff_cap,
                            rng,
                        );
                        multipliers.push(m);
                    }
                }
                BackoffMode::SkipRounds => multipliers.extend(active.iter().map(|_| 1u32)),
            }
            let max_mult = multipliers.iter().copied().max().unwrap_or(1);

            // Current dilation: reroutes can lengthen paths.
            let cur_dilation = active
                .iter()
                .map(|&w| tracks[w as usize].path.len() as u32)
                .max()
                .unwrap_or(0)
                .max(self.dilation);

            // This round's dynamic faults.
            let plan = match &self.faults {
                FaultSource::None => None,
                FaultSource::EveryRound(plan) => Some(plan.clone()),
                FaultSource::PerRound(plans) => plans.get(t as usize - 1).cloned(),
                FaultSource::Churn(model) => {
                    let horizon = delta * max_mult + cur_dilation + l + 2;
                    Some(model.plan_for_round(t, self.net.link_count(), horizon))
                }
            };
            engine.set_fault_plan(plan);

            p.priorities.assign_into(active, n, rng, priorities);
            p.wavelengths
                .assign_into(active, p.router.bandwidth, fixed_wl, rng, wavelengths);
            // The spec batch is borrowed per round: the bookkeeping below
            // may swap `tracks[w].path` (reroutes), so the link borrows
            // must end before it runs.
            let mut specs = spec_buf.take();
            specs.extend(
                active
                    .iter()
                    .zip(priorities.iter().zip(wavelengths.iter()))
                    .zip(multipliers.iter())
                    .map(|((&w, (&prio, &wl)), &mult)| TransmissionSpec {
                        links: tracks[w as usize].path.links(),
                        start: rng.gen_range(0..delta * mult),
                        wavelength: wl,
                        priority: prio,
                        length: l,
                    }),
            );

            sink.on_round_start(t, active.len() as u32, delta);
            if S::ENABLED {
                for (k, &mult) in multipliers.iter().enumerate() {
                    if mult > 1 {
                        sink.on_backoff(t, active[k], mult);
                    }
                }
                for (k, &w) in active.iter().enumerate() {
                    sink.on_inject(t, w, wavelengths[k], specs[k].start);
                }
            }

            engine.run_into_traced(&specs, rng, outcome, sink);
            spec_buf.put(specs);

            let mut delivered = 0usize;
            let mut fault_kills = 0usize;
            let mut stranded = 0usize;
            let mut abandoned = 0usize;
            let mut budget_exhausted_now = 0usize;
            let mut dlq_enqueued_now = 0usize;
            for (k, r) in outcome.results.iter().enumerate() {
                let w = active[k] as usize;
                let track = &mut tracks[w];
                if let Fate::Delivered { completed_at } = r.fate {
                    track.outcome = Some(if track.reroutes > 0 {
                        WormOutcome::Rerouted {
                            times: track.reroutes,
                            round: t,
                        }
                    } else {
                        WormOutcome::Delivered { round: t }
                    });
                    delivered += 1;
                    sink.on_deliver(t, w as u32, completed_at);
                    if let Some(bk) = breakers.as_mut() {
                        for &link in track.path.links() {
                            bk.on_success(link, t, sink);
                        }
                    }
                    continue;
                }

                track.consecutive_fails += 1;
                track.total_fails += 1;
                let (progress, failed_link) = match r.fate {
                    Fate::Eliminated { at_edge, .. } => {
                        (at_edge, Some(track.path.links()[at_edge as usize]))
                    }
                    Fate::Truncated { cut_at_edge, .. } => (
                        track.path.len() as u32,
                        Some(track.path.links()[cut_at_edge as usize]),
                    ),
                    Fate::Delivered { .. } => unreachable!("handled above"),
                };
                if S::ENABLED {
                    let blocker = r.first_blocker.map(|b| active[b as usize]);
                    let link = failed_link.expect("failed worms name a link");
                    match r.fate {
                        Fate::Eliminated { at_time, .. } => {
                            sink.on_block(t, w as u32, link, wavelengths[k], at_time, blocker);
                        }
                        Fate::Truncated {
                            delivered_flits, ..
                        } => {
                            sink.on_cut(
                                t,
                                w as u32,
                                link,
                                wavelengths[k],
                                delivered_flits,
                                blocker,
                            );
                        }
                        Fate::Delivered { .. } => unreachable!("handled above"),
                    }
                }
                if progress > track.best_progress {
                    track.best_progress = progress;
                    track.no_improve = 0;
                } else {
                    track.no_improve += 1;
                }

                // A failure with no blocking worm is the fiber's fault.
                if r.first_blocker.is_none() {
                    fault_kills += 1;
                    if track.first_suspect.is_none() {
                        track.first_suspect = Some(t);
                    }
                    if let Some(link) = failed_link {
                        suspicion[link as usize] += 1;
                        if suspicion[link as usize] >= self.policy.confirm_after {
                            if !known_dead[link as usize] {
                                known_dead[link as usize] = true;
                                sink.on_dead_link(t, link);
                            }
                            if self.policy.mirror_dead {
                                let rev = self.net.reverse_link(link);
                                if !known_dead[rev as usize] {
                                    known_dead[rev as usize] = true;
                                    sink.on_dead_link(t, rev);
                                }
                            }
                        }
                        if let Some(bk) = breakers.as_mut() {
                            bk.on_failure(link, t, sink);
                        }
                    }
                }
                // The prefix the head did traverse worked; feed breaker
                // probes (closes HalfOpen links, resets streaks).
                if let Some(bk) = breakers.as_mut() {
                    let prefix = match r.fate {
                        Fate::Eliminated { at_edge, .. } => at_edge as usize,
                        Fate::Truncated { cut_at_edge, .. } => cut_at_edge as usize,
                        Fate::Delivered { .. } => unreachable!("handled above"),
                    };
                    for &link in &track.path.links()[..prefix] {
                        bk.on_success(link, t, sink);
                    }
                }

                // Per-worm attempt budget.
                if let Some(budget) = retry.budget {
                    if track.total_fails >= budget {
                        budget_exhausted_now += 1;
                        sink.on_budget_exhausted(t, w as u32);
                        capture_or_abandon(
                            &mut dlq,
                            track,
                            w as u32,
                            t,
                            AbandonReason::BudgetExhausted,
                            sink,
                            &mut dlq_enqueued_now,
                            &mut abandoned,
                        );
                        continue;
                    }
                }

                if track.no_improve < self.policy.stranded_after {
                    if matches!(retry.mode, BackoffMode::SkipRounds) {
                        let m = retry.draw_multiplier(
                            track.consecutive_fails,
                            &mut track.prev_mult,
                            self.policy.backoff_cap,
                            rng,
                        );
                        track.hold_rounds = m - 1;
                        track.hold_mult = m;
                    }
                    continue;
                }
                // Stranded: reroute around everything known dead (and
                // every open breaker).
                stranded += 1;
                let avoid = merged_avoid(&known_dead, breakers.as_ref(), &mut avoid_scratch);
                match bfs_route_avoiding(self.net, avoid, track.path.source(), track.path.dest()) {
                    None => {
                        // Breakers heal, so "no route" may be temporary:
                        // check against the hard-dead set alone before
                        // concluding the worm is disconnected.
                        let healable = breakers.is_some()
                            && bfs_route_avoiding(
                                self.net,
                                &known_dead,
                                track.path.source(),
                                track.path.dest(),
                            )
                            .is_some();
                        if !healable {
                            capture_or_abandon(
                                &mut dlq,
                                track,
                                w as u32,
                                t,
                                AbandonReason::Disconnected,
                                sink,
                                &mut dlq_enqueued_now,
                                &mut abandoned,
                            );
                        } else if dlq.is_some() {
                            capture_or_abandon(
                                &mut dlq,
                                track,
                                w as u32,
                                t,
                                AbandonReason::BreakerOpen,
                                sink,
                                &mut dlq_enqueued_now,
                                &mut abandoned,
                            );
                        } else {
                            // No queue to park in: hold position and ride
                            // out the breaker; it will probe eventually.
                            track.no_improve = 0;
                        }
                    }
                    Some(_) if track.reroutes >= self.policy.max_reroutes => {
                        capture_or_abandon(
                            &mut dlq,
                            track,
                            w as u32,
                            t,
                            AbandonReason::RetryBudget,
                            sink,
                            &mut dlq_enqueued_now,
                            &mut abandoned,
                        );
                    }
                    Some(new_path) => {
                        if let Some(first) = track.first_suspect {
                            detection_latencies.push(t - first + 1);
                        }
                        if new_path.links() != track.path.links() {
                            track.path = new_path;
                            track.reroutes += 1;
                            rerouted += 1;
                            track.best_progress = 0;
                            sink.on_reroute(t, w as u32);
                        }
                        // Fresh start on the (possibly unchanged) path.
                        track.no_improve = 0;
                        track.consecutive_fails = 0;
                        track.first_suspect = None;
                    }
                }
            }

            sink.on_round_end(t, delivered as u32, (active.len() - delivered) as u32);

            let round_time =
                (delta as u64) * (max_mult as u64) + 2 * (cur_dilation as u64 + l as u64);
            total_time += round_time;
            backoff_extra_time += (delta as u64) * (max_mult as u64 - 1);
            backoff_holds += backoff_held as u64;
            breaker_holds += breaker_held as u64;
            rate_limited += rate_limited_now as u64;
            budget_exhausted += budget_exhausted_now as u64;
            let transitions_now =
                breakers.as_ref().map_or(0, |bk| bk.transitions()) - transitions_at_start;
            rounds.push(RecoveryRound {
                round: t,
                delta,
                max_multiplier: max_mult,
                active_before: active.len(),
                delivered,
                fault_kills,
                stranded,
                rerouted,
                abandoned,
                backoff_held,
                breaker_held,
                rate_limited: rate_limited_now,
                budget_exhausted: budget_exhausted_now,
                breaker_transitions: transitions_now as usize,
                dlq_enqueued: dlq_enqueued_now,
                dlq_replayed: dlq_replayed_now,
            });
        }

        // Round budget exhausted: leftovers are captured when the queue
        // is on, abandoned (legacy) otherwise.
        let mut dead_letters: Vec<DeadLetter> = Vec::new();
        let mut dlq_enqueued_total = 0u64;
        let mut dlq_replayed_total = 0u64;
        let outcomes: Vec<WormOutcome> = if let Some(mut q) = dlq {
            for (w, track) in tracks.iter_mut().enumerate() {
                if track.outcome.is_none() && !track.in_dlq {
                    q.push(DeadLetter {
                        worm: w as u32,
                        reason: AbandonReason::RoundBudget,
                        round: p.max_rounds,
                        total_fails: track.total_fails,
                        reroutes: track.reroutes,
                        replays: track.replays,
                    });
                    track.in_dlq = true;
                    sink.on_dlq_enqueue(p.max_rounds, w as u32);
                }
            }
            dlq_enqueued_total = q.enqueued;
            dlq_replayed_total = q.replayed;
            dead_letters = q.into_letters();
            let mut fate: Vec<Option<(AbandonReason, u32)>> = vec![None; n];
            for letter in &dead_letters {
                fate[letter.worm as usize] = Some((letter.reason, letter.round));
            }
            tracks
                .into_iter()
                .enumerate()
                .map(|(w, track)| {
                    track.outcome.unwrap_or_else(|| {
                        let (reason, round) =
                            fate[w].expect("every undelivered worm is in the queue");
                        WormOutcome::DeadLettered { reason, round }
                    })
                })
                .collect()
        } else {
            tracks
                .into_iter()
                .enumerate()
                .map(|(w, track)| {
                    track.outcome.unwrap_or_else(|| {
                        sink.on_abandon(p.max_rounds, w as u32);
                        WormOutcome::Abandoned {
                            reason: AbandonReason::RoundBudget,
                        }
                    })
                })
                .collect()
        };

        let (breaker_opens, breaker_half_opens, breaker_closes, breaker_open_rounds) = breakers
            .map_or((0, 0, 0, 0), |bk| {
                (bk.opens, bk.half_opens, bk.closes, bk.open_rounds)
            });
        RecoveryReport {
            outcomes,
            rounds,
            total_time,
            backoff_extra_time,
            known_dead,
            detection_latencies,
            breaker_opens,
            breaker_half_opens,
            breaker_closes,
            breaker_open_rounds,
            breaker_holds,
            backoff_holds,
            budget_exhausted,
            rate_limited,
            dlq_enqueued: dlq_enqueued_total,
            dlq_replayed: dlq_replayed_total,
            dead_letters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ProtocolParams;
    use optical_topo::topologies;
    use optical_wdm::RouterConfig;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn params(bandwidth: u16, worm_len: u32) -> ProtocolParams {
        let mut p = ProtocolParams::new(RouterConfig::serve_first(bandwidth), worm_len);
        p.max_rounds = 200;
        p
    }

    /// A ring collection: every node sends to the node 2 hops clockwise.
    fn ring_collection(n: usize) -> (Network, PathCollection) {
        let net = topologies::ring(n);
        let mut coll = PathCollection::for_network(&net);
        for v in 0..n as u32 {
            let nodes = [v, (v + 1) % n as u32, (v + 2) % n as u32];
            coll.push(Path::from_nodes(&net, &nodes));
        }
        (net, coll)
    }

    use optical_topo::Network;

    #[test]
    fn fault_free_run_delivers_everything_directly() {
        let (net, coll) = ring_collection(8);
        let rec = Recovery::new(&net, &coll, params(2, 3), RecoveryPolicy::default());
        let report = rec.run(&mut rng(1));
        assert_eq!(report.abandoned_count(), 0);
        assert_eq!(report.rerouted_count(), 0);
        assert_eq!(report.delivered_direct(), 8);
        assert!(report.known_dead.iter().all(|&d| !d), "nothing to learn");
        assert!(report.detection_latencies.is_empty());
        assert_eq!(report.backoff_extra_time, 0, "first tries carry no backoff");
    }

    #[test]
    fn permanent_cut_is_detected_and_rerouted() {
        // Ring of 8; kill link (1,2) from step 0 of every round. The worm
        // 1→2→3 must learn this and reroute the long way round.
        let (net, coll) = ring_collection(8);
        let cut = net.link_between(1, 2).unwrap();
        let rec = Recovery::new(&net, &coll, params(2, 3), RecoveryPolicy::default())
            .with_faults(FaultSource::EveryRound(FaultPlan::none().down(cut, 0)));
        let report = rec.run(&mut rng(2));
        assert_eq!(
            report.abandoned_count(),
            0,
            "ring minus one link stays connected"
        );
        assert!(report.rerouted_count() >= 1, "someone crossed the cut link");
        assert!(
            report.known_dead[cut as usize],
            "the cut link must be learned"
        );
        assert!(
            !report.detection_latencies.is_empty(),
            "reroutes imply recorded detection latencies"
        );
        let lat = report.mean_detection_latency().unwrap();
        assert!(
            lat >= RecoveryPolicy::default().stranded_after as f64,
            "detection cannot be faster than the strand threshold, got {lat}"
        );
    }

    #[test]
    fn all_links_dead_abandons_every_worm_without_panic() {
        let (net, coll) = ring_collection(6);
        let mut plan = FaultPlan::none();
        for link in net.links() {
            plan = plan.down(link, 0);
        }
        let mut p = params(1, 2);
        p.max_rounds = 50;
        let rec = Recovery::new(&net, &coll, p, RecoveryPolicy::default())
            .with_faults(FaultSource::EveryRound(plan));
        let report = rec.run(&mut rng(3));
        assert_eq!(report.abandoned_count(), 6, "nobody can be delivered");
        for o in &report.outcomes {
            assert!(
                matches!(
                    o,
                    WormOutcome::Abandoned {
                        reason: AbandonReason::Disconnected
                    }
                ),
                "expected Disconnected, got {o:?}"
            );
        }
    }

    #[test]
    fn transient_fault_heals_without_reroute() {
        // The link is only down for the first 2 rounds' scripts: with a
        // per-round source, later rounds are fault-free, so the worm is
        // delivered on its original path before the strand threshold.
        let (net, coll) = ring_collection(8);
        let cut = net.link_between(1, 2).unwrap();
        let plans = vec![
            FaultPlan::none().down(cut, 0),
            FaultPlan::none().down(cut, 0),
        ];
        let policy = RecoveryPolicy {
            stranded_after: 5,
            ..RecoveryPolicy::default()
        };
        let rec = Recovery::new(&net, &coll, params(2, 3), policy)
            .with_faults(FaultSource::PerRound(plans));
        let report = rec.run(&mut rng(4));
        assert_eq!(report.abandoned_count(), 0);
        assert_eq!(report.rerouted_count(), 0, "patience beats rerouting here");
    }

    #[test]
    fn backoff_multiplier_grows_and_is_capped() {
        // One worm against a permanently dead first link, high strand
        // threshold: it keeps failing in place, so its multiplier must
        // climb 1, 2, 4, 8, 16 and stay capped at 16.
        let net = topologies::chain(3);
        let mut coll = PathCollection::for_network(&net);
        coll.push(Path::from_nodes(&net, &[0, 1, 2]));
        let dead = net.link_between(0, 1).unwrap();
        let mut p = params(1, 2);
        p.max_rounds = 8;
        let policy = RecoveryPolicy {
            stranded_after: 100,
            backoff_cap: 16,
            ..RecoveryPolicy::default()
        };
        let rec = Recovery::new(&net, &coll, p, policy)
            .with_faults(FaultSource::EveryRound(FaultPlan::none().down(dead, 0)));
        let report = rec.run(&mut rng(5));
        let mults: Vec<u32> = report.rounds.iter().map(|r| r.max_multiplier).collect();
        assert_eq!(mults, vec![1, 2, 4, 8, 16, 16, 16, 16]);
        assert!(report.backoff_extra_time > 0);
        assert!(matches!(
            report.outcomes[0],
            WormOutcome::Abandoned {
                reason: AbandonReason::RoundBudget
            }
        ));
    }

    #[test]
    fn retry_budget_abandons_flapping_worm() {
        // Both ring directions share the fate: the down link flaps such
        // that every reroute leads into another failure. Force it by
        // killing both links out of the source every round but with
        // confirm_after high enough that links are never condemned — the
        // worm keeps getting "rerouted" onto dead paths until the budget
        // runs out... simpler: condemn nothing by keeping confirm high.
        let (net, coll) = ring_collection(6);
        let mut plan = FaultPlan::none();
        // Node 0's outgoing links are both dead every round.
        for (_, link) in net.neighbors(0) {
            plan = plan.down(link, 0);
        }
        let policy = RecoveryPolicy {
            stranded_after: 1,
            confirm_after: 1000, // never learn -> reroute returns same path
            max_reroutes: 2,
            ..RecoveryPolicy::default()
        };
        let mut p = params(1, 2);
        p.max_rounds = 100;
        let rec = Recovery::new(&net, &coll, p, policy).with_faults(FaultSource::EveryRound(plan));
        let report = rec.run(&mut rng(6));
        // Worm 0 (source 0) can never start; with nothing learned the
        // reroute is a no-op, so it ends on the retry budget... it is
        // stranded repeatedly but its path never changes (reroutes stay
        // 0), so it runs out the round budget instead — and must NOT be
        // Disconnected, since nothing was condemned.
        assert!(
            matches!(
                report.outcomes[0],
                WormOutcome::Abandoned {
                    reason: AbandonReason::RoundBudget
                }
            ),
            "got {:?}",
            report.outcomes[0]
        );
    }

    #[test]
    fn churn_runs_to_terminal_outcomes() {
        let (net, coll) = ring_collection(10);
        let model = ChurnModel {
            mtbf: 60.0,
            mttr: 10.0,
            seed: 11,
        };
        let mut p = params(2, 3);
        p.max_rounds = 400;
        let rec = Recovery::new(&net, &coll, p, RecoveryPolicy::default())
            .with_faults(FaultSource::Churn(model));
        let report = rec.run(&mut rng(7));
        assert_eq!(report.outcomes.len(), 10);
        // Every worm has a terminal outcome; under churn with healing
        // links, most should eventually get through.
        let delivered = report.outcomes.iter().filter(|o| o.is_delivered()).count();
        assert!(
            delivered >= 5,
            "churn with repairs should mostly deliver, got {delivered}"
        );
    }

    #[test]
    fn report_counters_are_consistent() {
        let (net, coll) = ring_collection(8);
        let cut = net.link_between(3, 4).unwrap();
        let rec = Recovery::new(&net, &coll, params(2, 3), RecoveryPolicy::default())
            .with_faults(FaultSource::EveryRound(FaultPlan::none().down(cut, 0)));
        let report = rec.run(&mut rng(8));
        assert_eq!(
            report.delivered_direct() + report.rerouted_count() + report.abandoned_count(),
            8
        );
        let sum: u64 = report
            .rounds
            .iter()
            .map(|r| r.delta as u64 * r.max_multiplier as u64)
            .sum();
        assert_eq!(
            report.backoff_extra_time,
            sum - report.rounds.iter().map(|r| r.delta as u64).sum::<u64>()
        );
    }

    #[test]
    fn reused_workspace_is_bit_identical() {
        let (net, coll) = ring_collection(8);
        let cut = net.link_between(1, 2).unwrap();
        let rec = Recovery::new(&net, &coll, params(2, 3), RecoveryPolicy::default())
            .with_faults(FaultSource::EveryRound(FaultPlan::none().down(cut, 0)));
        let mut ws = ProtocolWorkspace::new();
        for seed in 0..3 {
            assert_eq!(
                rec.run(&mut rng(seed)),
                rec.run_with(&mut ws, &mut rng(seed))
            );
        }
    }

    #[test]
    #[should_panic(expected = "ideal acks")]
    fn simulated_acks_rejected() {
        let (net, coll) = ring_collection(4);
        let mut p = params(1, 2);
        p.ack = AckMode::Simulated { ack_len: None };
        Recovery::new(&net, &coll, p, RecoveryPolicy::default());
    }

    // ------------------------------------------------------------------
    // Recovery v2: validation, breakers, DLQ, jittered strategies.
    // ------------------------------------------------------------------

    #[test]
    fn policy_validation_returns_descriptive_errors() {
        let ok = RecoveryPolicy::default();
        assert_eq!(ok.validate(), Ok(()));
        let cases: Vec<(RecoveryPolicy, PolicyError)> = vec![
            (
                RecoveryPolicy {
                    stranded_after: 0,
                    ..ok
                },
                PolicyError::StrandedAfterZero,
            ),
            (
                RecoveryPolicy {
                    backoff_cap: 0,
                    ..ok
                },
                PolicyError::BackoffCapZero,
            ),
            (
                RecoveryPolicy {
                    confirm_after: 0,
                    ..ok
                },
                PolicyError::ConfirmAfterZero,
            ),
            (
                RecoveryPolicy {
                    retry: RetryPolicy {
                        strategy: BackoffStrategy::Fixed { mult: 0 },
                        ..RetryPolicy::legacy()
                    },
                    ..ok
                },
                PolicyError::FixedMultZero,
            ),
            (
                RecoveryPolicy {
                    retry: RetryPolicy {
                        strategy: BackoffStrategy::Exponential { base: 1 },
                        ..RetryPolicy::legacy()
                    },
                    ..ok
                },
                PolicyError::ExponentialBaseTooSmall,
            ),
            (
                RecoveryPolicy {
                    retry: RetryPolicy {
                        budget: Some(0),
                        ..RetryPolicy::legacy()
                    },
                    ..ok
                },
                PolicyError::EmptyRetryBudget,
            ),
            (
                RecoveryPolicy {
                    retry: RetryPolicy {
                        rate_limit: Some(0),
                        ..RetryPolicy::legacy()
                    },
                    ..ok
                },
                PolicyError::ZeroRateLimit,
            ),
            (
                RecoveryPolicy {
                    breaker: Some(BreakerConfig {
                        probe_after: 0,
                        ..BreakerConfig::default()
                    }),
                    ..ok
                },
                PolicyError::ZeroProbeInterval,
            ),
            (
                RecoveryPolicy {
                    dlq: Some(DlqConfig {
                        replay_batch: 0,
                        ..DlqConfig::default()
                    }),
                    ..ok
                },
                PolicyError::ZeroReplayBatch,
            ),
        ];
        for (policy, want) in cases {
            assert_eq!(policy.validate(), Err(want));
            // Errors render a human-readable message.
            assert!(!want.to_string().is_empty());
        }
        // try_new surfaces the same error without panicking.
        let (net, coll) = ring_collection(4);
        let bad = RecoveryPolicy {
            stranded_after: 0,
            ..RecoveryPolicy::default()
        };
        assert_eq!(
            Recovery::try_new(&net, &coll, params(1, 2), bad).err(),
            Some(PolicyError::StrandedAfterZero)
        );
    }

    #[test]
    fn breaker_opens_holds_worms_and_probe_heals() {
        // Chain 0-1-2, one worm 0→1→2. Link (0,1) is down for rounds 1-2
        // only; with dead-link learning off (high confirm_after) the
        // breaker is the only defence. It opens on the first blockerless
        // failure, holds the worm for the probe interval, half-opens, and
        // the probe succeeds.
        let net = topologies::chain(3);
        let mut coll = PathCollection::for_network(&net);
        coll.push(Path::from_nodes(&net, &[0, 1, 2]));
        let cut = net.link_between(0, 1).unwrap();
        let plans = vec![
            FaultPlan::none().down(cut, 0),
            FaultPlan::none().down(cut, 0),
        ];
        let mut p = params(1, 2);
        p.max_rounds = 20;
        let policy = RecoveryPolicy {
            confirm_after: 1000,
            stranded_after: 100,
            breaker: Some(BreakerConfig {
                open_after: 1,
                probe_after: 2,
                close_after: 1,
            }),
            ..RecoveryPolicy::default()
        };
        let rec = Recovery::new(&net, &coll, p, policy).with_faults(FaultSource::PerRound(plans));
        let report = rec.run(&mut rng(9));
        assert!(
            report.outcomes[0].is_delivered(),
            "{:?}",
            report.outcomes[0]
        );
        assert_eq!(report.breaker_opens, 1, "one open on the first fault kill");
        assert_eq!(report.breaker_half_opens, 1, "one probe window");
        assert_eq!(report.breaker_closes, 1, "probe succeeded");
        assert!(report.breaker_holds >= 1, "the worm waited out the open");
        assert!(report.breaker_open_rounds >= 2, "open across the interval");
        assert_eq!(
            report.breaker_transitions(),
            report
                .rounds
                .iter()
                .map(|r| r.breaker_transitions as u64)
                .sum::<u64>(),
            "per-round transition counts add up"
        );
        assert!(
            report.rounds.iter().any(|r| r.breaker_held > 0),
            "holds show up in the round log"
        );
    }

    #[test]
    fn dead_letter_queue_captures_and_replays() {
        // Same chain, but the worm blows a 2-attempt budget while the
        // link is down; the DLQ captures it, and once the fault clears
        // the letter is replayed and delivered.
        let net = topologies::chain(3);
        let mut coll = PathCollection::for_network(&net);
        coll.push(Path::from_nodes(&net, &[0, 1, 2]));
        let cut = net.link_between(0, 1).unwrap();
        let plans = vec![
            FaultPlan::none().down(cut, 0),
            FaultPlan::none().down(cut, 0),
        ];
        let mut p = params(1, 2);
        p.max_rounds = 20;
        let policy = RecoveryPolicy {
            confirm_after: 1000,
            stranded_after: 100,
            retry: RetryPolicy {
                budget: Some(2),
                ..RetryPolicy::legacy()
            },
            dlq: Some(DlqConfig::default()),
            ..RecoveryPolicy::default()
        };
        let rec = Recovery::new(&net, &coll, p, policy).with_faults(FaultSource::PerRound(plans));
        let report = rec.run(&mut rng(10));
        assert_eq!(report.budget_exhausted, 1);
        assert_eq!(report.dlq_enqueued, 1, "captured once");
        assert_eq!(report.dlq_replayed, 1, "replayed once the fault cleared");
        assert!(report.dead_letters.is_empty(), "nothing left parked");
        assert!(
            matches!(report.outcomes[0], WormOutcome::Delivered { round } if round >= 3),
            "delivered after replay, got {:?}",
            report.outcomes[0]
        );
    }

    #[test]
    fn frozen_letters_surface_in_the_report() {
        // Permanent fault + 1-attempt budget + 1 replay: capture, replay,
        // capture again, frozen. The worm ends DeadLettered and its full
        // history is in the report.
        let net = topologies::chain(3);
        let mut coll = PathCollection::for_network(&net);
        coll.push(Path::from_nodes(&net, &[0, 1, 2]));
        let cut = net.link_between(0, 1).unwrap();
        let mut p = params(1, 2);
        p.max_rounds = 30;
        let policy = RecoveryPolicy {
            confirm_after: 1000,
            stranded_after: 100,
            retry: RetryPolicy {
                budget: Some(1),
                ..RetryPolicy::legacy()
            },
            dlq: Some(DlqConfig {
                replay_batch: 4,
                max_replays: 1,
            }),
            ..RecoveryPolicy::default()
        };
        let rec = Recovery::new(&net, &coll, p, policy)
            .with_faults(FaultSource::EveryRound(FaultPlan::none().down(cut, 0)));
        let report = rec.run(&mut rng(11));
        assert_eq!(report.dlq_enqueued, 2, "captured, replayed, re-captured");
        assert_eq!(report.dlq_replayed, 1);
        assert_eq!(report.dead_letters.len(), 1);
        let letter = &report.dead_letters[0];
        assert_eq!(letter.worm, 0);
        assert_eq!(letter.reason, AbandonReason::BudgetExhausted);
        assert_eq!(letter.replays, 1, "the replay budget was spent");
        assert_eq!(report.dead_lettered_count(), 1);
        assert_eq!(report.abandoned_count(), 0, "captured, not abandoned");
        assert_eq!(report.undelivered_count(), 1);
        assert!(matches!(
            report.outcomes[0],
            WormOutcome::DeadLettered {
                reason: AbandonReason::BudgetExhausted,
                ..
            }
        ));
    }

    #[test]
    fn skip_rounds_backoff_holds_worms_out_deterministically() {
        // Jittered skip-rounds backoff against a permanent fault: the
        // worm must sit out rounds (backoff_holds > 0), injection windows
        // stay tight (max_multiplier == 1), and identical seeds replay
        // identically.
        let net = topologies::chain(3);
        let mut coll = PathCollection::for_network(&net);
        coll.push(Path::from_nodes(&net, &[0, 1, 2]));
        let cut = net.link_between(0, 1).unwrap();
        let mut p = params(1, 2);
        p.max_rounds = 30;
        let policy = RecoveryPolicy {
            confirm_after: 1000,
            stranded_after: 100,
            retry: RetryPolicy {
                jitter: Jitter::Full,
                mode: BackoffMode::SkipRounds,
                ..RetryPolicy::legacy()
            },
            ..RecoveryPolicy::default()
        };
        let rec = Recovery::new(&net, &coll, p, policy)
            .with_faults(FaultSource::EveryRound(FaultPlan::none().down(cut, 0)));
        let a = rec.run(&mut rng(12));
        let b = rec.run(&mut rng(12));
        assert_eq!(a, b, "jittered runs replay bit-identically per seed");
        assert!(a.backoff_holds > 0, "skip-rounds must hold the worm out");
        assert!(
            a.rounds.iter().all(|r| r.max_multiplier == 1),
            "skip-rounds never widens the injection window"
        );
        assert!(
            a.rounds
                .iter()
                .any(|r| r.active_before == 0 && r.backoff_held > 0),
            "held rounds appear as idle rounds in the log"
        );
        assert_eq!(a.backoff_extra_time, 0, "no window widening, no extra Δ");
    }

    #[test]
    fn rate_limiter_defers_excess_retries() {
        // Every worm fails round 1 (all links dead, nothing learned);
        // from round 2 on, at most one retry per round goes out.
        let (net, coll) = ring_collection(6);
        let mut plan = FaultPlan::none();
        for link in net.links() {
            plan = plan.down(link, 0);
        }
        let mut p = params(1, 2);
        p.max_rounds = 10;
        let policy = RecoveryPolicy {
            confirm_after: 1000,
            stranded_after: 100,
            retry: RetryPolicy {
                rate_limit: Some(1),
                ..RetryPolicy::legacy()
            },
            ..RecoveryPolicy::default()
        };
        let rec = Recovery::new(&net, &coll, p, policy).with_faults(FaultSource::EveryRound(plan));
        let report = rec.run(&mut rng(13));
        assert!(report.rate_limited > 0, "excess retriers must be deferred");
        for r in &report.rounds[1..] {
            assert!(
                r.active_before <= 1 + r.rate_limited,
                "round {}: at most one retry injected",
                r.round
            );
        }
    }

    #[test]
    fn default_policy_reports_no_v2_activity() {
        let (net, coll) = ring_collection(8);
        let cut = net.link_between(1, 2).unwrap();
        let rec = Recovery::new(&net, &coll, params(2, 3), RecoveryPolicy::default())
            .with_faults(FaultSource::EveryRound(FaultPlan::none().down(cut, 0)));
        let report = rec.run(&mut rng(14));
        assert_eq!(report.breaker_transitions(), 0);
        assert_eq!(report.breaker_holds, 0);
        assert_eq!(report.backoff_holds, 0);
        assert_eq!(report.budget_exhausted, 0);
        assert_eq!(report.rate_limited, 0);
        assert_eq!(report.dlq_enqueued + report.dlq_replayed, 0);
        assert!(report.dead_letters.is_empty());
        assert_eq!(report.dead_lettered_count(), 0);
    }
}
