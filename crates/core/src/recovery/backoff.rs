//! Retry strategies: backoff-multiplier curves, jitter envelopes, and the
//! [`RetryPolicy`] that bundles them with per-worm budgets and the global
//! retry-rate limiter.
//!
//! A worm's *backoff multiplier* `m(f)` is a function of its consecutive
//! failure count `f`, clamped to `[1, cap]` where `cap` is
//! [`super::RecoveryPolicy::backoff_cap`]:
//!
//! | strategy                  | `m(f)` for `f ≥ 1`                 | growth    |
//! |---------------------------|------------------------------------|-----------|
//! | `Fixed { mult }`          | `mult`                             | constant  |
//! | `Linear { step }`         | `1 + step · f`                     | linear    |
//! | `Exponential { base }`    | `base^f`                           | geometric |
//! | `Fibonacci`               | `S(f)`, `S = 1, 2, 3, 5, 8, …`     | golden    |
//!
//! `m(0) = 1` always: a worm's first attempt carries no backoff.
//!
//! Jitter perturbs the raw multiplier with draws from the simulation RNG,
//! so jittered runs stay deterministic and replayable per seed:
//!
//! * [`Jitter::None`] — `m' = m(f)`; consumes no RNG.
//! * [`Jitter::Full`] — `m'` uniform in `[1, m(f)]`; consumes one draw
//!   per failing worm per decision (none when `m(f) = 1`).
//! * [`Jitter::Decorrelated`] — `m'` uniform in `[1, min(cap, 3 ·
//!   prev)]` where `prev` is the worm's previous jittered multiplier
//!   (starting at 1); one draw per failing worm per decision.
//!
//! [`BackoffMode`] picks where the multiplier acts: `WidenWindow` keeps
//! the legacy semantics (startup delay drawn from `[0, Δ_t · m')`);
//! `SkipRounds` makes the worm sit out `m' − 1` whole rounds instead,
//! desynchronizing retry cohorts — under `WidenWindow`, every backed-off
//! worm still returns *every round*, so plain exponential backoff
//! re-collides the same cohort; under `SkipRounds` with jitter, return
//! rounds spread out and the retry-collision rate drops.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Backoff-multiplier curve; see the module table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackoffStrategy {
    /// Constant multiplier after the first failure.
    Fixed {
        /// The constant (≥ 1).
        mult: u32,
    },
    /// Multiplier grows by `step` per consecutive failure.
    Linear {
        /// Growth per failure (≥ 1).
        step: u32,
    },
    /// Multiplier is `base^failures` (the classic).
    Exponential {
        /// Geometric base (≥ 2).
        base: u32,
    },
    /// Multiplier follows the Fibonacci sequence starting `1, 2`.
    Fibonacci,
}

impl BackoffStrategy {
    /// The raw (unjittered) multiplier for `fails` consecutive failures,
    /// clamped to `[1, cap]`. Total, monotone in `fails`, and free of
    /// overflow for any `u32` inputs.
    #[must_use]
    pub fn multiplier(&self, fails: u32, cap: u32) -> u32 {
        let cap = u64::from(cap.max(1));
        if fails == 0 {
            return 1;
        }
        let raw = match *self {
            BackoffStrategy::Fixed { mult } => u64::from(mult),
            BackoffStrategy::Linear { step } => {
                1u64.saturating_add(u64::from(step).saturating_mul(u64::from(fails)))
            }
            BackoffStrategy::Exponential { base } => {
                let base = u64::from(base);
                let mut m = 1u64;
                for _ in 0..fails {
                    m = m.saturating_mul(base);
                    if m >= cap {
                        break;
                    }
                }
                m
            }
            BackoffStrategy::Fibonacci => {
                let (mut a, mut b) = (1u64, 2u64);
                for _ in 1..fails {
                    let next = a.saturating_add(b);
                    a = b;
                    b = next;
                    if a >= cap {
                        break;
                    }
                }
                a.max(1)
            }
        };
        raw.clamp(1, cap) as u32
    }
}

/// Jitter envelope applied to the raw multiplier; see the module docs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Jitter {
    /// No jitter; no RNG consumed.
    None,
    /// Uniform in `[1, m(f)]` ("full jitter").
    Full,
    /// Uniform in `[1, min(cap, 3 · prev)]` ("decorrelated jitter").
    Decorrelated,
}

/// Where the backoff multiplier acts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackoffMode {
    /// Legacy semantics: the startup-delay window widens to
    /// `[0, Δ_t · m')`; the worm still retries every round.
    WidenWindow,
    /// The worm sits out `m' − 1` rounds before retrying with the normal
    /// window — the mode that lets jitter desynchronize retry cohorts.
    SkipRounds,
}

/// The retry half of [`super::RecoveryPolicy`]: strategy + jitter + mode,
/// plus the per-worm attempt budget and the global retry-rate limiter.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Backoff-multiplier curve.
    pub strategy: BackoffStrategy,
    /// Jitter envelope on the multiplier.
    pub jitter: Jitter,
    /// Where the multiplier acts.
    pub mode: BackoffMode,
    /// Per-worm budget of *total* failed attempts before the worm is
    /// captured (dead-letter queue) or abandoned. `None` = unlimited;
    /// `Some(0)` is rejected by validation.
    pub budget: Option<u32>,
    /// Global cap on retrying worms injected per round; excess retriers
    /// are deferred deterministically (lowest worm ids first). `None` =
    /// unlimited; `Some(0)` is rejected by validation.
    pub rate_limit: Option<u32>,
}

impl RetryPolicy {
    /// The legacy retry behaviour: plain exponential (base 2), no jitter,
    /// window widening, no budget, no rate limiter. Runs configured this
    /// way are bit-identical to the pre-v2 recovery loop.
    #[must_use]
    pub fn legacy() -> Self {
        RetryPolicy {
            strategy: BackoffStrategy::Exponential { base: 2 },
            jitter: Jitter::None,
            mode: BackoffMode::WidenWindow,
            budget: None,
            rate_limit: None,
        }
    }

    /// Jittered multiplier for a worm with `fails` consecutive failures.
    ///
    /// `prev` is the worm's decorrelated-jitter state (last jittered
    /// multiplier, 1 initially); it is updated in place. Consumes RNG
    /// only when jitter is enabled, `fails ≥ 1`, and the envelope is
    /// non-degenerate — so [`Jitter::None`] policies never touch `rng`.
    pub fn draw_multiplier(&self, fails: u32, prev: &mut u32, cap: u32, rng: &mut impl Rng) -> u32 {
        let raw = self.strategy.multiplier(fails, cap);
        if fails == 0 {
            *prev = 1;
            return 1;
        }
        let m = match self.jitter {
            Jitter::None => raw,
            Jitter::Full => {
                if raw <= 1 {
                    1
                } else {
                    1 + rng.gen_range(0..raw)
                }
            }
            Jitter::Decorrelated => {
                let ceil = (*prev).saturating_mul(3).clamp(1, cap.max(1));
                if ceil <= 1 {
                    1
                } else {
                    1 + rng.gen_range(0..ceil)
                }
            }
        };
        *prev = m;
        m
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::legacy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn first_attempt_is_never_backed_off() {
        for strat in [
            BackoffStrategy::Fixed { mult: 7 },
            BackoffStrategy::Linear { step: 3 },
            BackoffStrategy::Exponential { base: 2 },
            BackoffStrategy::Fibonacci,
        ] {
            assert_eq!(strat.multiplier(0, 1 << 20), 1, "{strat:?}");
        }
    }

    #[test]
    fn exponential_matches_the_legacy_curve_and_fixes_the_shift_cap() {
        let exp = BackoffStrategy::Exponential { base: 2 };
        // Legacy formula for every cap the old code could express.
        for cap in [1u32, 2, 16, 1 << 10, 1 << 16] {
            for fails in 0..40u32 {
                let legacy = (1u32 << fails.min(31).min(16)).min(cap);
                assert_eq!(exp.multiplier(fails, cap), legacy, "cap={cap} f={fails}");
            }
        }
        // The fix: caps above 2^16 are now reachable (the old code
        // silently saturated the shift at 2^16).
        assert_eq!(exp.multiplier(20, 1 << 20), 1 << 20);
        assert_eq!(exp.multiplier(63, u32::MAX), u32::MAX);
    }

    #[test]
    fn curves_grow_as_documented() {
        let take = |s: BackoffStrategy, cap: u32| -> Vec<u32> {
            (0..8).map(|f| s.multiplier(f, cap)).collect()
        };
        assert_eq!(
            take(BackoffStrategy::Fixed { mult: 5 }, 100),
            vec![1, 5, 5, 5, 5, 5, 5, 5]
        );
        assert_eq!(
            take(BackoffStrategy::Linear { step: 2 }, 100),
            vec![1, 3, 5, 7, 9, 11, 13, 15]
        );
        assert_eq!(
            take(BackoffStrategy::Exponential { base: 3 }, 100),
            vec![1, 3, 9, 27, 81, 100, 100, 100]
        );
        assert_eq!(
            take(BackoffStrategy::Fibonacci, 100),
            vec![1, 1, 2, 3, 5, 8, 13, 21]
        );
    }

    #[test]
    fn multipliers_are_monotone_and_capped_for_every_strategy() {
        for strat in [
            BackoffStrategy::Fixed { mult: 9 },
            BackoffStrategy::Linear { step: 4 },
            BackoffStrategy::Exponential { base: 2 },
            BackoffStrategy::Fibonacci,
        ] {
            for cap in [1u32, 2, 7, 16, 1 << 18] {
                let mut last = 0;
                for fails in 0..200u32 {
                    let m = strat.multiplier(fails, cap);
                    assert!((1..=cap.max(1)).contains(&m), "{strat:?} f={fails}");
                    assert!(m >= last, "{strat:?} must be monotone");
                    last = m;
                }
            }
        }
    }

    #[test]
    fn jitter_none_consumes_no_rng() {
        let policy = RetryPolicy::legacy();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let before = rng.gen::<u64>();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut prev = 1;
        for fails in 0..10 {
            policy.draw_multiplier(fails, &mut prev, 16, &mut rng);
        }
        assert_eq!(rng.gen::<u64>(), before, "Jitter::None must not draw");
    }

    #[test]
    fn full_jitter_stays_within_its_envelope() {
        let policy = RetryPolicy {
            jitter: Jitter::Full,
            ..RetryPolicy::legacy()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for fails in 1..12u32 {
            let raw = policy.strategy.multiplier(fails, 64);
            for _ in 0..50 {
                let mut prev = 1;
                let m = policy.draw_multiplier(fails, &mut prev, 64, &mut rng);
                assert!((1..=raw).contains(&m), "f={fails} raw={raw} m={m}");
            }
        }
    }

    #[test]
    fn decorrelated_jitter_is_bounded_by_three_times_prev_and_cap() {
        let policy = RetryPolicy {
            jitter: Jitter::Decorrelated,
            ..RetryPolicy::legacy()
        };
        let cap = 32;
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut prev = 1u32;
        for _ in 0..500 {
            let bound = prev.saturating_mul(3).clamp(1, cap);
            let m = policy.draw_multiplier(1, &mut prev, cap, &mut rng);
            assert!((1..=bound).contains(&m), "m={m} bound={bound}");
            assert_eq!(prev, m, "prev must track the drawn multiplier");
        }
    }

    #[test]
    fn identical_seeds_produce_identical_multiplier_sequences() {
        for jitter in [Jitter::None, Jitter::Full, Jitter::Decorrelated] {
            let policy = RetryPolicy {
                jitter,
                ..RetryPolicy::legacy()
            };
            let draw_seq = |seed: u64| -> Vec<u32> {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                let mut prev = 1;
                (0..32)
                    .map(|i| policy.draw_multiplier(i % 8, &mut prev, 64, &mut rng))
                    .collect()
            };
            assert_eq!(draw_seq(7), draw_seq(7), "{jitter:?}");
        }
    }
}
