//! Dead-letter queue: worms the recovery loop gave up on, parked with
//! their failure history instead of being dropped on the floor.
//!
//! ```text
//!   abandon decision ──▶ capture (on_dlq_enqueue) ──▶ frozen in queue
//!                                                         │
//!            breakers on the worm's path close /          ▼
//!            a detour around them appears ──▶ batched replay
//!                                             (on_dlq_replay, counters
//!                                              reset, replays += 1)
//! ```
//!
//! Replay is *batched* ([`DlqConfig::replay_batch`] per round) so a
//! mass-heal event does not re-inject every parked worm at once and
//! recreate the collision storm that parked them. Each letter is
//! replayed at most [`DlqConfig::max_replays`] times; after that it is
//! frozen for good and surfaces in
//! [`super::RecoveryReport::dead_letters`].

use serde::{Deserialize, Serialize};

use super::AbandonReason;
use crate::persist::{DlqState, Fingerprint, RestoreError, Snapshot};

/// Knobs of the dead-letter queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DlqConfig {
    /// Maximum parked worms re-injected per round (≥ 1).
    pub replay_batch: u32,
    /// Replays per letter before it is frozen for good. Zero means
    /// capture-only: the queue is a post-mortem record, never replayed.
    pub max_replays: u32,
}

impl Default for DlqConfig {
    fn default() -> Self {
        DlqConfig {
            replay_batch: 4,
            max_replays: 2,
        }
    }
}

/// One abandoned worm, with the failure history that got it here.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeadLetter {
    /// Worm index in the collection.
    pub worm: u32,
    /// Why the recovery loop gave up.
    pub reason: AbandonReason,
    /// Round the worm was captured.
    pub round: u32,
    /// Lifetime failed trials at capture time.
    pub total_fails: u32,
    /// Reroutes taken before capture.
    pub reroutes: u32,
    /// Times this letter has been replayed (0 on first capture).
    pub replays: u32,
}

/// The queue itself: letters stay in capture order, replayed ones are
/// removed, re-captured worms are appended fresh.
pub(crate) struct DeadLetterQueue {
    pub(crate) cfg: DlqConfig,
    letters: Vec<DeadLetter>,
    pub(crate) enqueued: u64,
    pub(crate) replayed: u64,
}

impl DeadLetterQueue {
    pub(crate) fn new(cfg: DlqConfig) -> Self {
        DeadLetterQueue {
            cfg,
            letters: Vec::new(),
            enqueued: 0,
            replayed: 0,
        }
    }

    pub(crate) fn push(&mut self, letter: DeadLetter) {
        self.enqueued += 1;
        self.letters.push(letter);
    }

    /// Does any letter still qualify for a future replay?
    pub(crate) fn any_replayable(&self) -> bool {
        self.letters
            .iter()
            .any(|l| l.replays < self.cfg.max_replays)
    }

    /// Pull up to `replay_batch` letters whose worm `eligible` right
    /// now, in capture order. Frozen letters (replay budget spent) are
    /// never returned.
    pub(crate) fn drain_replayable(
        &mut self,
        mut eligible: impl FnMut(&DeadLetter) -> bool,
    ) -> Vec<DeadLetter> {
        let mut batch = Vec::new();
        let mut i = 0;
        while i < self.letters.len() && (batch.len() as u32) < self.cfg.replay_batch {
            if self.letters[i].replays < self.cfg.max_replays && eligible(&self.letters[i]) {
                self.replayed += 1;
                batch.push(self.letters.remove(i));
            } else {
                i += 1;
            }
        }
        batch
    }

    pub(crate) fn into_letters(self) -> Vec<DeadLetter> {
        self.letters
    }
}

impl Snapshot for DeadLetterQueue {
    type State = DlqState;

    const KIND: &'static str = "recovery-dlq/v1";

    fn fingerprint(&self) -> Fingerprint {
        Fingerprint::of_debug(&self.cfg)
    }

    fn state(&self) -> DlqState {
        DlqState {
            cfg: self.cfg,
            letters: self.letters.clone(),
            enqueued: self.enqueued,
            replayed: self.replayed,
        }
    }

    fn from_state(state: DlqState) -> Result<Self, RestoreError> {
        // Letters only leave the queue through a counted replay, so the
        // lifetime totals must reconcile with the parked population.
        if state.enqueued != state.replayed + state.letters.len() as u64 {
            return Err(RestoreError::Invalid(format!(
                "dead-letter totals do not reconcile: enqueued {} != replayed {} + parked {}",
                state.enqueued,
                state.replayed,
                state.letters.len()
            )));
        }
        Ok(DeadLetterQueue {
            cfg: state.cfg,
            letters: state.letters,
            enqueued: state.enqueued,
            replayed: state.replayed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn letter(worm: u32, replays: u32) -> DeadLetter {
        DeadLetter {
            worm,
            reason: AbandonReason::RetryBudget,
            round: 1,
            total_fails: 5,
            reroutes: 1,
            replays,
        }
    }

    #[test]
    fn replay_is_batched_in_capture_order_and_skips_frozen_letters() {
        let mut dlq = DeadLetterQueue::new(DlqConfig {
            replay_batch: 2,
            max_replays: 1,
        });
        for w in 0..4 {
            dlq.push(letter(w, if w == 1 { 1 } else { 0 }));
        }
        assert_eq!(dlq.enqueued, 4);
        // Worm 1 is frozen (budget spent); batch of 2 takes 0 and 2.
        let batch = dlq.drain_replayable(|_| true);
        assert_eq!(batch.iter().map(|l| l.worm).collect::<Vec<_>>(), [0, 2]);
        assert_eq!(dlq.replayed, 2);
        // Worm 3 still waits, worm 1 never qualifies.
        let batch = dlq.drain_replayable(|l| l.worm != 3);
        assert!(batch.is_empty());
        assert!(dlq.any_replayable(), "worm 3 is still eligible");
        let batch = dlq.drain_replayable(|_| true);
        assert_eq!(batch.iter().map(|l| l.worm).collect::<Vec<_>>(), [3]);
        assert!(!dlq.any_replayable(), "only the frozen letter remains");
        assert_eq!(dlq.into_letters().len(), 1);
    }

    #[test]
    fn zero_max_replays_makes_the_queue_capture_only() {
        let mut dlq = DeadLetterQueue::new(DlqConfig {
            replay_batch: 8,
            max_replays: 0,
        });
        dlq.push(letter(0, 0));
        dlq.push(letter(1, 0));
        assert!(!dlq.any_replayable());
        assert!(dlq.drain_replayable(|_| true).is_empty());
        assert_eq!(dlq.replayed, 0);
        assert_eq!(dlq.into_letters().len(), 2);
    }

    #[test]
    fn snapshot_mid_drain_resumes_batching_identically() {
        let cfg = DlqConfig {
            replay_batch: 2,
            max_replays: 1,
        };
        let build = || {
            let mut dlq = DeadLetterQueue::new(cfg);
            for w in 0..5 {
                dlq.push(letter(w, 0));
            }
            // One batch already drained: counters and order are mid-flight.
            let _ = dlq.drain_replayable(|_| true);
            dlq
        };
        let mut golden = build();
        let original = build();
        let mut restored = DeadLetterQueue::restore(original.snapshot()).unwrap();
        let finish = |dlq: &mut DeadLetterQueue| {
            let mut order = Vec::new();
            while dlq.any_replayable() {
                order.extend(dlq.drain_replayable(|_| true).iter().map(|l| l.worm));
            }
            (order, dlq.enqueued, dlq.replayed)
        };
        assert_eq!(finish(&mut golden), finish(&mut restored));
    }

    #[test]
    fn restore_rejects_unreconciled_totals() {
        let mut dlq = DeadLetterQueue::new(DlqConfig::default());
        dlq.push(letter(0, 0));
        let mut snap = dlq.snapshot();
        snap.state.enqueued = 7;
        assert!(matches!(
            DeadLetterQueue::restore(snap),
            Err(RestoreError::Invalid(_))
        ));
    }
}
