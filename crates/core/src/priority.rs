//! Priority-assignment strategies for priority routers.
//!
//! Main Theorem 1.3's upper bound holds for **any** assignment such that no
//! two worms with the same priority can meet in one round — random,
//! deterministic, or changing per round. The lower bound (§2.2) uses the
//! adversarial fixed assignment "worm on path `i` has rank `i`". All of
//! these are available here.

use rand::seq::SliceRandom;
use rand::Rng;

/// How worm priorities are chosen each round.
#[derive(Clone, Debug, PartialEq)]
pub enum PriorityStrategy {
    /// A fresh uniformly random total order every round (all priorities
    /// distinct by construction).
    RandomPerRound,
    /// Fixed: priority equals the path id (higher id wins). This is the
    /// adversarial assignment of the type-1 lower-bound structures, where
    /// path `i + 1` outranks path `i`.
    ByPathId,
    /// Fixed: lower path id wins.
    ByPathIdReversed,
    /// Arbitrary fixed ranks, indexed by path id. Must be distinct if the
    /// paper's no-equal-priorities-meet assumption is to hold; the
    /// protocol does not enforce distinctness (the engine resolves equal
    /// priorities with its tie rule and the occupant-wins convention).
    Fixed(Vec<u64>),
}

impl PriorityStrategy {
    /// Priorities for this round's active worms. `active[k]` is the path
    /// id of the k-th worm being launched; the result is indexed like
    /// `active`.
    pub fn assign(&self, active: &[u32], n_total: usize, rng: &mut impl Rng) -> Vec<u64> {
        let mut out = Vec::new();
        self.assign_into(active, n_total, rng, &mut out);
        out
    }

    /// Like [`PriorityStrategy::assign`], but reusing `out`'s allocation.
    /// Consumes the RNG stream identically to `assign`.
    pub fn assign_into(
        &self,
        active: &[u32],
        n_total: usize,
        rng: &mut impl Rng,
        out: &mut Vec<u64>,
    ) {
        out.clear();
        match self {
            PriorityStrategy::RandomPerRound => {
                out.extend(0..active.len() as u64);
                out.shuffle(rng);
            }
            PriorityStrategy::ByPathId => out.extend(active.iter().map(|&p| p as u64)),
            PriorityStrategy::ByPathIdReversed => {
                out.extend(active.iter().map(|&p| (n_total as u64) - p as u64))
            }
            PriorityStrategy::Fixed(ranks) => out.extend(active.iter().map(|&p| ranks[p as usize])),
        }
    }
}

/// How worm wavelengths are chosen each round.
///
/// The paper's protocol draws a fresh uniform wavelength per round
/// ([`WavelengthStrategy::RandomPerRound`]); the alternatives isolate
/// what that re-randomization buys: with wavelengths fixed per worm, two
/// worms that hash to the same wavelength conflict in *every* round and
/// only the delay randomness can separate them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WavelengthStrategy {
    /// Fresh uniform draw per worm per round (the paper's protocol).
    RandomPerRound,
    /// One uniform draw per worm at the start, reused every round.
    FixedPerWorm,
    /// Deterministic: wavelength = path id mod B (a static assignment a
    /// naive system might use).
    ByPathId,
}

impl WavelengthStrategy {
    /// Wavelengths for this round's active worms, given the per-worm
    /// fixed draws in `fixed` (indexed by path id).
    pub fn assign(
        &self,
        active: &[u32],
        bandwidth: u16,
        fixed: &[u16],
        rng: &mut impl Rng,
    ) -> Vec<u16> {
        let mut out = Vec::new();
        self.assign_into(active, bandwidth, fixed, rng, &mut out);
        out
    }

    /// Like [`WavelengthStrategy::assign`], but reusing `out`'s allocation.
    /// Consumes the RNG stream identically to `assign`.
    pub fn assign_into(
        &self,
        active: &[u32],
        bandwidth: u16,
        fixed: &[u16],
        rng: &mut impl Rng,
        out: &mut Vec<u16>,
    ) {
        out.clear();
        match self {
            WavelengthStrategy::RandomPerRound => {
                out.extend(active.iter().map(|_| rng.gen_range(0..bandwidth)))
            }
            WavelengthStrategy::FixedPerWorm => {
                out.extend(active.iter().map(|&p| fixed[p as usize]))
            }
            WavelengthStrategy::ByPathId => {
                out.extend(active.iter().map(|&p| (p % bandwidth as u32) as u16))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(11)
    }

    #[test]
    fn wavelength_strategies() {
        let active = [0u32, 2, 5];
        let fixed = [3u16, 0, 1, 0, 0, 2];
        let mut r = rng();
        let w = WavelengthStrategy::RandomPerRound.assign(&active, 4, &fixed, &mut r);
        assert!(w.iter().all(|&x| x < 4));
        let w = WavelengthStrategy::FixedPerWorm.assign(&active, 4, &fixed, &mut r);
        assert_eq!(w, vec![3, 1, 2]);
        let w = WavelengthStrategy::ByPathId.assign(&active, 4, &fixed, &mut r);
        assert_eq!(w, vec![0, 2, 1]);
    }

    #[test]
    fn random_assignment_is_a_permutation() {
        let active: Vec<u32> = (0..50).collect();
        let pr = PriorityStrategy::RandomPerRound.assign(&active, 50, &mut rng());
        let mut sorted = pr.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u64>>());
    }

    #[test]
    fn random_assignment_varies_between_rounds() {
        let active: Vec<u32> = (0..50).collect();
        let mut r = rng();
        let a = PriorityStrategy::RandomPerRound.assign(&active, 50, &mut r);
        let b = PriorityStrategy::RandomPerRound.assign(&active, 50, &mut r);
        assert_ne!(a, b);
    }

    #[test]
    fn by_path_id_is_stable_under_shrinking_active_set() {
        let s = PriorityStrategy::ByPathId;
        let a = s.assign(&[0, 1, 2, 3], 4, &mut rng());
        assert_eq!(a, vec![0, 1, 2, 3]);
        let b = s.assign(&[1, 3], 4, &mut rng());
        assert_eq!(b, vec![1, 3], "rank follows the path, not the position");
    }

    #[test]
    fn reversed_inverts_order() {
        let s = PriorityStrategy::ByPathIdReversed;
        let pr = s.assign(&[0, 1, 2], 3, &mut rng());
        assert!(pr[0] > pr[1] && pr[1] > pr[2]);
    }

    #[test]
    fn fixed_ranks_are_looked_up() {
        let s = PriorityStrategy::Fixed(vec![7, 3, 9, 1]);
        assert_eq!(s.assign(&[2, 0], 4, &mut rng()), vec![9, 7]);
    }
}
