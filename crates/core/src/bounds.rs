//! Closed forms of the paper's bounds.
//!
//! These functions evaluate (up to the hidden constants, which we set
//! to 1) the asymptotic expressions of Main Theorems 1.1–1.3 and the
//! application Theorems 1.5–1.7, so experiments can report
//! `measured / predicted` ratios that should stay roughly constant as the
//! swept parameter grows.

use serde::{Deserialize, Serialize};

/// Problem parameters entering every bound.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BoundParams {
    /// Number of paths `n`.
    pub n: usize,
    /// Dilation `D`.
    pub dilation: u32,
    /// Path congestion `C̃`.
    pub path_congestion: u32,
    /// Worm length `L`.
    pub worm_len: u32,
    /// Router bandwidth `B`.
    pub bandwidth: u16,
}

impl BoundParams {
    fn l(&self) -> f64 {
        self.worm_len.max(1) as f64
    }
    fn b(&self) -> f64 {
        self.bandwidth.max(1) as f64
    }
    fn c(&self) -> f64 {
        self.path_congestion.max(1) as f64
    }
    fn d(&self) -> f64 {
        self.dilation as f64
    }
    fn log_n(&self) -> f64 {
        (self.n.max(2) as f64).log2()
    }
}

/// `α = C̃ + B(D/L + 1) + 2` (§1.3).
pub fn alpha(p: &BoundParams) -> f64 {
    p.c() + p.b() * (p.d() / p.l() + 1.0) + 2.0
}

/// `β = α / C̃ + 2` (§1.3).
pub fn beta(p: &BoundParams) -> f64 {
    alpha(p) / p.c() + 2.0
}

/// `log_base(x)`, clamped below by 1 so iterated logs stay defined.
fn log_base(base: f64, x: f64) -> f64 {
    let base = base.max(2.0);
    let x = x.max(base); // at least 1
    x.ln() / base.ln()
}

/// `√(log_α n) + log log_β n` — the round count of Main Theorems 1.1
/// and 1.3.
pub fn rounds_leveled_or_priority(p: &BoundParams) -> f64 {
    let la = log_base(alpha(p), p.n.max(2) as f64);
    let lb = log_base(beta(p), p.n.max(2) as f64);
    la.sqrt() + lb.max(2.0).log2()
}

/// `log_α n + log log_β n` — the round count of Main Theorem 1.2
/// (serve-first on general short-cut free collections).
pub fn rounds_shortcut_free(p: &BoundParams) -> f64 {
    let la = log_base(alpha(p), p.n.max(2) as f64);
    let lb = log_base(beta(p), p.n.max(2) as f64);
    la + lb.max(2.0).log2()
}

/// Upper bound of Main Theorem 1.1 (and 1.3):
/// `L·C̃/B + (√(log_α n) + loglog_β n) · (D + L + L·log n / B)`.
pub fn upper_bound_leveled(p: &BoundParams) -> f64 {
    p.l() * p.c() / p.b()
        + rounds_leveled_or_priority(p) * (p.d() + p.l() + p.l() * p.log_n() / p.b())
}

/// Upper bound of Main Theorem 1.2:
/// `L·C̃/B + (log_α n + loglog_β n) · (D + L + L·log^{3/2} n / B)`.
pub fn upper_bound_shortcut_free(p: &BoundParams) -> f64 {
    p.l() * p.c() / p.b()
        + rounds_shortcut_free(p) * (p.d() + p.l() + p.l() * p.log_n().powf(1.5) / p.b())
}

/// Lower bound of Main Theorems 1.1/1.3:
/// `L·C̃/B + (√(log_α n) + loglog_β n)(D + L)`.
pub fn lower_bound_leveled(p: &BoundParams) -> f64 {
    p.l() * p.c() / p.b() + rounds_leveled_or_priority(p) * (p.d() + p.l())
}

/// Lower bound of Main Theorem 1.2:
/// `L·C̃/B + (log_α n + loglog_β n)(D + L)`.
pub fn lower_bound_shortcut_free(p: &BoundParams) -> f64 {
    p.l() * p.c() / p.b() + rounds_shortcut_free(p) * (p.d() + p.l())
}

/// The trivial bandwidth/pipelining lower bound `Ω(L·C̃/B + D + L)` that
/// any protocol must pay (§1.3).
pub fn trivial_lower_bound(p: &BoundParams) -> f64 {
    p.l() * p.c() / p.b() + p.d() + p.l()
}

/// Theorem 1.5 (node-symmetric networks, random function, priority
/// routers): `L·D²/B + (√(log_D n) + loglog n)(D + L)`.
pub fn node_symmetric_bound(n: usize, diameter: u32, worm_len: u32, bandwidth: u16) -> f64 {
    let l = worm_len.max(1) as f64;
    let b = bandwidth.max(1) as f64;
    let d = diameter.max(2) as f64;
    let log_n = (n.max(2) as f64).log2();
    l * d * d / b + (log_base(d, n as f64).sqrt() + log_n.max(2.0).log2()) * (d + l)
}

/// Theorem 1.6 (d-dimensional mesh, serve-first):
/// `L·d·n/B + (√d + loglog n)(d·n + L + L·d·log n / B)`
/// where `n` here is the **side length**.
pub fn mesh_bound(dims: u32, side: u32, worm_len: u32, bandwidth: u16) -> f64 {
    let l = worm_len.max(1) as f64;
    let b = bandwidth.max(1) as f64;
    let d = dims as f64;
    let n = side as f64;
    let log_side = n.max(2.0).log2();
    l * d * n / b + (d.sqrt() + log_side.max(2.0).log2()) * (d * n + l + l * d * log_side / b)
}

/// Theorem 1.7 (log n-dimensional butterfly, random q-function):
/// `L·q·log n / B + √(log n / log(q·log n)) (L + log n + L·log n / B)`
/// where `n` is the number of **rows** (2^dim).
pub fn butterfly_bound(rows: usize, q: u32, worm_len: u32, bandwidth: u16) -> f64 {
    let l = worm_len.max(1) as f64;
    let b = bandwidth.max(1) as f64;
    let log_n = (rows.max(2) as f64).log2();
    let q = q.max(1) as f64;
    l * q * log_n / b + (log_n / (q * log_n).max(2.0).log2()).sqrt() * (l + log_n + l * log_n / b)
}

/// Expected rounds forced by the type-1 **ladder** structures (§2.2) at a
/// fixed per-round delay range `Δ̄`: the number of rounds `t` with
/// `(n / 2√log n) · ((L−1) / 4B(Δ̄+L))^{t²} ≥ 1`, i.e.
/// `t ≈ √( log(n/2√log n) / log(4B(Δ̄+L)/(L−1)) )`.
pub fn ladder_lower_rounds(n: usize, bandwidth: u16, delta: u32, worm_len: u32) -> f64 {
    let l = worm_len.max(2) as f64;
    let b = bandwidth.max(1) as f64;
    let n = n.max(4) as f64;
    let numer = (n / (2.0 * n.log2().sqrt())).max(2.0).log2();
    let denom = (4.0 * b * (delta as f64 + l) / (l - 1.0)).max(2.0).log2();
    (numer / denom).sqrt()
}

/// Expected rounds forced by the **Figure 6 triangle** structures (§3.2)
/// at a fixed delay range `Δ̄`:
/// `t ≈ log(n/6) / (2 · log(3B(Δ̄+L)/L))` — *linear* in `log n`, versus
/// the square-root growth of [`ladder_lower_rounds`]. The gap between the
/// two is the measurable content of Main Theorem 1.2 vs 1.1/1.3.
pub fn triangle_lower_rounds(n: usize, bandwidth: u16, delta: u32, worm_len: u32) -> f64 {
    let l = worm_len.max(2) as f64;
    let b = bandwidth.max(1) as f64;
    let n = n.max(7) as f64;
    let numer = (n / 6.0).max(2.0).log2();
    let denom = (3.0 * b * (delta as f64 + l) / l).max(2.0).log2();
    numer / (2.0 * denom)
}

/// The paper's `k₀` from §2.1 (with `γ = 1`): size threshold for witness
/// trees in the upper-bound proof. Exposed for the witness-tree
/// diagnostics.
pub fn paper_k0(p: &BoundParams) -> f64 {
    let gamma = 1.0;
    let inner = 2.0 + p.b() / (16.0 * p.c()) * (p.d() / p.l() + 1.0);
    (2.0 + gamma) * p.log_n() / inner.log2() + 1.0
}

/// The §2.1 upper bound on `P(t, k)` — the probability that some witness
/// tree of depth `t` using `k` distinct worms has an *active* embedding:
///
/// ```text
/// P(t,k) ≤ n · 2^t · (16·L·C̃ / (B·Δ₁))^(k−1) · (6e·L·t / (B·Δ_t))^((t−⌈log k⌉)²/2)
/// ```
///
/// Computed in log₂-space so gigantic exponents do not overflow; the
/// return value is `log₂ P(t,k)` (so a value ≤ `−γ·log₂ n` certifies the
/// w.h.p. claim for exponent `γ`). `delta_1` and `delta_t` are the first
/// and current delay ranges.
pub fn log2_witness_probability(
    p: &BoundParams,
    t: u32,
    k: u32,
    delta_1: u32,
    delta_t: u32,
) -> f64 {
    assert!(t >= 1 && k >= 2, "a witness needs depth >= 1 and two worms");
    let l = p.l();
    let b = p.b();
    let term1 = (p.n.max(2) as f64).log2() + t as f64;
    let base1 = (16.0 * l * p.c() / (b * delta_1.max(1) as f64)).max(f64::MIN_POSITIVE);
    let term2 = (k as f64 - 1.0) * base1.log2();
    let base2 = (6.0 * std::f64::consts::E * l * t as f64 / (b * delta_t.max(1) as f64))
        .max(f64::MIN_POSITIVE);
    let expo = {
        let d = t as f64 - (k as f64).log2().ceil();
        if d > 0.0 {
            d * d / 2.0
        } else {
            0.0
        }
    };
    term1 + term2 + expo * base2.log2()
}

/// The §2.1 round count `T` at which the witness-probability union bound
/// drops below `n^(−γ)` for `γ = 1`:
/// `T = √(2(2+γ)·log n / log((1/√(2k₀))·[max(C̃/log n, log n) + B(D/L+1)/6e])) + ⌈log k₀⌉`.
pub fn paper_round_bound(p: &BoundParams) -> f64 {
    let gamma = 1.0;
    let k0 = paper_k0(p);
    let inner = (1.0 / (2.0 * k0).sqrt())
        * ((p.c() / p.log_n()).max(p.log_n())
            + p.b() * (p.d() / p.l() + 1.0) / (6.0 * std::f64::consts::E));
    let denom = inner.max(2.0).log2();
    (2.0 * (2.0 + gamma) * p.log_n() / denom).sqrt() + k0.max(2.0).log2().ceil()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(n: usize, d: u32, c: u32, l: u32, b: u16) -> BoundParams {
        BoundParams {
            n,
            dilation: d,
            path_congestion: c,
            worm_len: l,
            bandwidth: b,
        }
    }

    #[test]
    fn alpha_beta_formulas() {
        let p = params(1024, 10, 20, 5, 2);
        assert!((alpha(&p) - (20.0 + 2.0 * (2.0 + 1.0) + 2.0)).abs() < 1e-9);
        assert!((beta(&p) - (alpha(&p) / 20.0 + 2.0)).abs() < 1e-9);
    }

    #[test]
    fn round_counts_grow_with_n() {
        let small = params(1 << 8, 10, 20, 5, 1);
        let large = params(1 << 24, 10, 20, 5, 1);
        assert!(rounds_leveled_or_priority(&large) > rounds_leveled_or_priority(&small));
        assert!(rounds_shortcut_free(&large) > rounds_shortcut_free(&small));
    }

    #[test]
    fn shortcut_free_rounds_dominate_leveled() {
        // log_α n ≥ √(log_α n) whenever log_α n ≥ 1.
        for exp in [8u32, 12, 16, 20] {
            let p = params(1usize << exp, 16, 32, 4, 2);
            assert!(rounds_shortcut_free(&p) >= rounds_leveled_or_priority(&p) - 1e-9);
        }
    }

    #[test]
    fn upper_bounds_dominate_lower_bounds() {
        for exp in [8u32, 14, 20] {
            let p = params(1usize << exp, 12, 64, 8, 4);
            assert!(upper_bound_leveled(&p) >= lower_bound_leveled(&p));
            assert!(upper_bound_shortcut_free(&p) >= lower_bound_shortcut_free(&p));
            assert!(lower_bound_leveled(&p) >= trivial_lower_bound(&p) - 1e-9);
        }
    }

    #[test]
    fn bandwidth_helps() {
        let p1 = params(1 << 16, 12, 64, 8, 1);
        let p8 = params(1 << 16, 12, 64, 8, 8);
        assert!(upper_bound_leveled(&p8) < upper_bound_leveled(&p1));
        assert!(mesh_bound(2, 32, 8, 8) < mesh_bound(2, 32, 8, 1));
        assert!(butterfly_bound(1 << 10, 2, 8, 8) < butterfly_bound(1 << 10, 2, 8, 1));
        assert!(node_symmetric_bound(1 << 10, 16, 8, 8) < node_symmetric_bound(1 << 10, 16, 8, 1));
    }

    #[test]
    fn mesh_bound_scales_with_side() {
        assert!(mesh_bound(2, 64, 4, 1) > mesh_bound(2, 16, 4, 1));
        assert!(mesh_bound(3, 16, 4, 1) > mesh_bound(2, 16, 4, 1));
    }

    #[test]
    fn degenerate_params_do_not_blow_up() {
        let p = params(1, 0, 0, 1, 1);
        for f in [
            alpha(&p),
            beta(&p),
            rounds_leveled_or_priority(&p),
            rounds_shortcut_free(&p),
            upper_bound_leveled(&p),
            lower_bound_shortcut_free(&p),
            trivial_lower_bound(&p),
            paper_k0(&p),
        ] {
            assert!(f.is_finite(), "non-finite bound value {f}");
        }
    }

    #[test]
    fn fixed_delta_lower_bounds_scale_correctly() {
        // Triangles grow linearly in log n, ladders like its square root:
        // quadrupling the exponent should roughly quadruple the former and
        // double the latter.
        // (The constant offsets -log 6 and -log 2√log n shift the exact
        // ratios somewhat; the salient relation is linear vs square-root.)
        let t1 = triangle_lower_rounds(1 << 8, 1, 8, 4);
        let t4 = triangle_lower_rounds(1 << 32, 1, 8, 4);
        let tr = t4 / t1;
        assert!((3.5..6.5).contains(&tr), "triangle ratio {tr:.2}");
        let l1 = ladder_lower_rounds(1 << 8, 1, 8, 4);
        let l4 = ladder_lower_rounds(1 << 32, 1, 8, 4);
        let lr = l4 / l1;
        assert!((1.6..3.0).contains(&lr), "ladder ratio {lr:.2}");
        assert!(
            tr > lr + 1.0,
            "log growth must clearly dominate sqrt-log growth"
        );
    }

    #[test]
    fn larger_delta_means_fewer_forced_rounds() {
        assert!(ladder_lower_rounds(1 << 20, 1, 64, 4) < ladder_lower_rounds(1 << 20, 1, 4, 4));
        assert!(triangle_lower_rounds(1 << 20, 1, 64, 4) < triangle_lower_rounds(1 << 20, 1, 4, 4));
    }

    #[test]
    fn k0_increases_with_n() {
        let a = params(1 << 10, 8, 32, 4, 1);
        let b = params(1 << 20, 8, 32, 4, 1);
        assert!(paper_k0(&b) > paper_k0(&a));
    }

    #[test]
    fn witness_probability_decreases_with_depth() {
        // With a generous schedule (Δ large), deeper witness trees are
        // exponentially less likely.
        // Δ_t must dominate 6eLt for the quadratic term to bite (this is
        // exactly the "6eLt/(BΔ_t) ≤ 1" requirement in §2.1).
        let p = params(1 << 16, 16, 256, 4, 1);
        let delta_1 = 32 * 4 * 256; // ~ 32 L C~ / B
        let delta_t = 2048;
        let mut prev = f64::INFINITY;
        for t in 3..12 {
            let lp = log2_witness_probability(&p, t, 8, delta_1, delta_t);
            assert!(lp < prev, "P(t) must fall with t: {lp} !< {prev}");
            prev = lp;
        }
    }

    #[test]
    fn witness_probability_certifies_whp_at_paper_t() {
        // At the paper's T (and the paper's literal Δ constants) the union
        // bound must certify a polynomially small failure probability.
        let p = params(1 << 16, 16, 1 << 12, 4, 1);
        let t_paper = paper_round_bound(&p).ceil() as u32;
        let log_n = (p.n as f64).log2();
        // Paper Δ₁ and Δ_T (§2.1 with the printed constants).
        let delta_1 = (32.0 * p.l() * p.c() / p.b() + p.d() + p.l()).ceil() as u32;
        let c_t = (p.c() / 2f64.powi(t_paper as i32 - 1)).max(log_n);
        let delta_t = (32.0 * p.l() * c_t / p.b())
            .max(32.0 * p.l() * p.c() / (p.b() * log_n))
            .max(40.0 * std::f64::consts::E.powi(2) * p.l() * log_n / p.b())
            .ceil() as u32
            + p.dilation
            + p.worm_len;
        let k0 = paper_k0(&p).ceil() as u32;
        let lp = log2_witness_probability(&p, t_paper, k0, delta_1, delta_t);
        assert!(
            lp <= -log_n,
            "P(T, k0) = 2^{lp:.1} should be <= n^-1 = 2^-{log_n}"
        );
    }

    #[test]
    fn paper_round_bound_grows_like_sqrt_log() {
        let small = params(1 << 10, 16, 64, 4, 1);
        let large = params(1 << 40, 16, 64, 4, 1);
        let ratio = paper_round_bound(&large) / paper_round_bound(&small);
        // 4x the log should roughly double the bound (plus the ceil'd
        // loglog part); certainly far below 4x.
        assert!(ratio > 1.2 && ratio < 3.0, "ratio {ratio:.2}");
    }
}
