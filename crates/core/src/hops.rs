//! Bounded-hop routing (§4 extension).
//!
//! The paper closes by asking about worms that are "allowed a bounded
//! number of hops (i.e., conversions to and from electrical form) in the
//! network". A *hop* buffers the worm electronically at an intermediate
//! router, after which it is re-injected optically with a fresh random
//! delay and wavelength — so a path with `h` hops becomes `h + 1`
//! independently-retried optical segments.
//!
//! [`HopTrialAndFailure`] runs the trial-and-failure protocol over such
//! segmented paths: each round launches, for every unfinished worm, its
//! *current* segment from its current buffer node; a successful segment
//! advances the worm, a failed one is retried. Because a failure now
//! costs only one segment (and the per-round budget shrinks to the
//! segment dilation), hops trade electronic buffer hardware against
//! optical retransmission time — precisely the trade-off of the multi-hop
//! strategies in §1.2.

use crate::priority::PriorityStrategy;
use crate::schedule::{DelaySchedule, ScheduleCtx};
use crate::workspace::ProtocolWorkspace;
use optical_paths::{Path, PathCollection};
use optical_topo::Network;
use optical_wdm::{RouterConfig, TransmissionSpec};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Split a path's links into `hops + 1` contiguous segments of
/// near-equal length (longer segments first). Zero-length paths yield a
/// single empty segment; paths shorter than the segment count yield
/// fewer, non-empty segments.
pub fn split_path(len: usize, hops: u32) -> Vec<std::ops::Range<usize>> {
    let segments = (hops as usize + 1).min(len.max(1));
    let base = len / segments;
    let extra = len % segments;
    let mut out = Vec::with_capacity(segments);
    let mut start = 0;
    for s in 0..segments {
        let seg_len = base + usize::from(s < extra);
        out.push(start..start + seg_len);
        start += seg_len;
    }
    debug_assert_eq!(start, len);
    out
}

/// Per-round observations of a hop-routing run.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HopRoundReport {
    /// Round index (1-based).
    pub round: u32,
    /// Delay range used.
    pub delta: u32,
    /// Segments launched this round (= unfinished worms).
    pub launched: usize,
    /// Worms that advanced one segment.
    pub advanced: usize,
    /// Worms that finished their last segment this round.
    pub completed: usize,
    /// Round budget `Δ_t + 2(D_seg + L)`.
    pub round_time: u64,
}

/// Result of a hop-routing run.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HopRunReport {
    /// Per-round details.
    pub rounds: Vec<HopRoundReport>,
    /// Total budgeted time.
    pub total_time: u64,
    /// Whether every worm finished all segments.
    pub completed: bool,
    /// Per-worm number of segments.
    pub segments_per_worm: Vec<u32>,
    /// Per-worm round in which the final segment was delivered.
    pub completed_round: Vec<Option<u32>>,
}

impl HopRunReport {
    /// Rounds executed.
    pub fn rounds_used(&self) -> u32 {
        self.rounds.len() as u32
    }
}

/// Trial-and-failure with up to `hops` electronic buffering points per
/// worm. Acknowledgements are ideal per segment (the buffering router
/// knows immediately whether the segment fully arrived).
pub struct HopTrialAndFailure<'a> {
    collection: &'a PathCollection,
    router: RouterConfig,
    worm_len: u32,
    schedule: DelaySchedule,
    priorities: PriorityStrategy,
    max_rounds: u32,
    /// Per worm: segment ranges into its link slice.
    segments: Vec<Vec<std::ops::Range<usize>>>,
    /// Metrics of the segmented collection (each segment one path).
    seg_dilation: u32,
    seg_congestion: u32,
}

impl<'a> HopTrialAndFailure<'a> {
    /// Bind to a routing instance with `hops` allowed buffer points.
    pub fn new(
        net: &'a Network,
        collection: &'a PathCollection,
        router: RouterConfig,
        worm_len: u32,
        hops: u32,
        max_rounds: u32,
    ) -> Self {
        assert_eq!(
            net.link_count(),
            collection.link_count(),
            "collection/network mismatch"
        );
        router.validate();
        let segments: Vec<Vec<std::ops::Range<usize>>> = collection
            .iter()
            .map(|(_, p)| split_path(p.len(), hops))
            .collect();
        // Metrics of the segment collection.
        let mut seg_coll = PathCollection::new(collection.link_count());
        for ((_, p), segs) in collection.iter().zip(&segments) {
            for r in segs {
                let nodes = p.nodes()[r.start..=r.end].to_vec();
                let links = p.links()[r.clone()].to_vec();
                seg_coll.push(Path::from_parts(nodes, links));
            }
        }
        let m = seg_coll.metrics();
        HopTrialAndFailure {
            collection,
            router,
            worm_len,
            schedule: DelaySchedule::paper(),
            priorities: PriorityStrategy::RandomPerRound,
            max_rounds,
            segments,
            seg_dilation: m.dilation,
            seg_congestion: m.path_congestion,
        }
    }

    /// Override the delay schedule.
    pub fn with_schedule(mut self, schedule: DelaySchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Override the priority strategy.
    pub fn with_priorities(mut self, priorities: PriorityStrategy) -> Self {
        self.priorities = priorities;
        self
    }

    /// Dilation of the segmented collection (drives the round budget).
    pub fn segment_dilation(&self) -> u32 {
        self.seg_dilation
    }

    /// Execute the hop protocol.
    pub fn run(&self, rng: &mut impl Rng) -> HopRunReport {
        self.run_with(&mut ProtocolWorkspace::new(), rng)
    }

    /// Like [`HopTrialAndFailure::run`], but reusing `ws`'s engine and
    /// round buffers. Bit-identical to `run` for the same RNG state.
    pub fn run_with(&self, ws: &mut ProtocolWorkspace, rng: &mut impl Rng) -> HopRunReport {
        let n = self.collection.len();
        let b = self.router.bandwidth as u32;
        ws.prepare(
            self.collection.link_count(),
            n,
            self.router,
            1,
            false,
            &None,
            &None,
        );
        let ProtocolWorkspace {
            engine,
            specs: spec_buf,
            active,
            priorities,
            wavelengths,
            outcome,
            ..
        } = ws;
        let engine = engine.as_mut().expect("prepared above");

        // Current segment index per worm; == segments.len() when done.
        let mut seg_idx: Vec<usize> = vec![0; n];
        let mut completed_round: Vec<Option<u32>> = vec![None; n];
        let mut rounds = Vec::new();
        let mut total_time: u64 = 0;
        let mut specs = spec_buf.take();

        for t in 1..=self.max_rounds {
            active.clear();
            active.extend(
                (0..n as u32).filter(|&w| seg_idx[w as usize] < self.segments[w as usize].len()),
            );
            if active.is_empty() {
                break;
            }
            let ctx = ScheduleCtx {
                n,
                active: active.len(),
                worm_len: self.worm_len,
                bandwidth: self.router.bandwidth,
                path_congestion: self.seg_congestion,
                dilation: self.seg_dilation,
            };
            let delta = self.schedule.delta(t, &ctx);
            self.priorities.assign_into(active, n, rng, priorities);
            // Same draw order as the plain protocol: wavelengths as a
            // batch, then startup delays per spec.
            wavelengths.clear();
            wavelengths.extend(active.iter().map(|_| rng.gen_range(0..b) as u16));

            specs.clear();
            specs.extend(
                active
                    .iter()
                    .zip(priorities.iter().zip(wavelengths.iter()))
                    .map(|(&w, (&prio, &wl))| {
                        let p = self.collection.path(w as usize);
                        let r = self.segments[w as usize][seg_idx[w as usize]].clone();
                        TransmissionSpec {
                            links: &p.links()[r],
                            start: rng.gen_range(0..delta),
                            wavelength: wl,
                            priority: prio,
                            length: self.worm_len,
                        }
                    }),
            );
            engine.run_into(&specs, rng, outcome);

            let mut advanced = 0usize;
            let mut completed = 0usize;
            for (k, r) in outcome.results.iter().enumerate() {
                if r.fate.is_delivered() {
                    let w = active[k] as usize;
                    seg_idx[w] += 1;
                    advanced += 1;
                    if seg_idx[w] == self.segments[w].len() {
                        completed += 1;
                        completed_round[w] = Some(t);
                    }
                }
            }
            let round_time = delta as u64 + 2 * (self.seg_dilation as u64 + self.worm_len as u64);
            total_time += round_time;
            rounds.push(HopRoundReport {
                round: t,
                delta,
                launched: active.len(),
                advanced,
                completed,
                round_time,
            });
        }

        spec_buf.put(specs);
        let done = seg_idx
            .iter()
            .zip(&self.segments)
            .all(|(&i, segs)| i == segs.len());
        HopRunReport {
            rounds,
            total_time,
            completed: done,
            segments_per_worm: self.segments.iter().map(|s| s.len() as u32).collect(),
            completed_round,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optical_topo::topologies;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn split_path_shapes() {
        assert_eq!(split_path(10, 0), vec![0..10]);
        assert_eq!(split_path(10, 1), vec![0..5, 5..10]);
        assert_eq!(split_path(10, 2), vec![0..4, 4..7, 7..10]);
        assert_eq!(split_path(2, 3), vec![0..1, 1..2], "no empty segments");
        assert_eq!(
            split_path(0, 2),
            vec![0..0],
            "zero-length path: one empty segment"
        );
    }

    #[test]
    fn split_path_covers_everything() {
        for len in 0..40 {
            for hops in 0..6 {
                let segs = split_path(len, hops);
                assert_eq!(segs.first().unwrap().start, 0);
                assert_eq!(segs.last().unwrap().end, len);
                for w in segs.windows(2) {
                    assert_eq!(w[0].end, w[1].start, "contiguous");
                    assert!(!w[1].is_empty() || len == 0);
                }
                // Near-equal: lengths differ by at most 1.
                let lens: Vec<usize> = segs.iter().map(|r| r.len()).collect();
                let (mn, mx) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
                assert!(mx - mn <= 1);
            }
        }
    }

    fn bundle(k: usize, len: usize) -> (Network, PathCollection) {
        let net = topologies::chain(len + 1);
        let nodes: Vec<u32> = (0..=len as u32).collect();
        let mut c = PathCollection::for_network(&net);
        for _ in 0..k {
            c.push(Path::from_nodes(&net, &nodes));
        }
        (net, c)
    }

    #[test]
    fn hop_run_completes() {
        let (net, coll) = bundle(12, 12);
        for hops in [0u32, 1, 2, 3] {
            let proto =
                HopTrialAndFailure::new(&net, &coll, RouterConfig::serve_first(2), 3, hops, 500);
            let report = proto.run(&mut rng(1));
            assert!(report.completed, "hops = {hops} failed");
            assert!(report
                .segments_per_worm
                .iter()
                .all(|&s| s == (hops + 1).min(12)));
            assert!(report.completed_round.iter().all(Option::is_some));
        }
    }

    #[test]
    fn more_hops_shrink_round_budget() {
        let (net, coll) = bundle(4, 12);
        let d0 = HopTrialAndFailure::new(&net, &coll, RouterConfig::serve_first(1), 2, 0, 10)
            .segment_dilation();
        let d2 = HopTrialAndFailure::new(&net, &coll, RouterConfig::serve_first(1), 2, 2, 10)
            .segment_dilation();
        assert_eq!(d0, 12);
        assert_eq!(d2, 4);
    }

    #[test]
    fn zero_hops_matches_plain_protocol_on_rounds() {
        // With hops = 0 the segment structure is the whole path; the same
        // seed must produce the same number of rounds as the plain
        // protocol under the same fixed schedule and ideal acks.
        let (net, coll) = bundle(8, 6);
        let schedule = DelaySchedule::Fixed { delta: 24 };
        let hop = HopTrialAndFailure::new(&net, &coll, RouterConfig::serve_first(1), 3, 0, 300)
            .with_schedule(schedule);
        let hop_report = hop.run(&mut rng(7));

        let mut params = crate::protocol::ProtocolParams::new(RouterConfig::serve_first(1), 3);
        params.schedule = schedule;
        params.max_rounds = 300;
        let plain = crate::protocol::TrialAndFailure::new(&net, &coll, params);
        let plain_report = plain.run(&mut rng(7));

        assert_eq!(hop_report.rounds_used(), plain_report.rounds_used());
        assert_eq!(hop_report.total_time, plain_report.total_time);
    }

    #[test]
    fn hops_help_under_heavy_contention() {
        // Hops pay one extra round per segment (a worm advances one
        // segment per round), so they only win when retransmissions are
        // frequent: many worms, long paths, tight delay range. There,
        // per-segment retries + the smaller per-round budget beat
        // whole-path retries by about 2x; with generous delays (few
        // failures) plain routing wins — both regimes are asserted.
        let schedule_tight = DelaySchedule::Fixed { delta: 12 };
        let (net, coll) = bundle(48, 32);
        let mut tight0 = 0u64;
        let mut tight3 = 0u64;
        for seed in 0..6 {
            let r0 = HopTrialAndFailure::new(&net, &coll, RouterConfig::serve_first(1), 2, 0, 5000)
                .with_schedule(schedule_tight)
                .run(&mut rng(seed));
            let r3 = HopTrialAndFailure::new(&net, &coll, RouterConfig::serve_first(1), 2, 3, 5000)
                .with_schedule(schedule_tight)
                .run(&mut rng(seed + 100));
            assert!(r0.completed && r3.completed);
            tight0 += r0.total_time;
            tight3 += r3.total_time;
        }
        assert!(
            tight3 < tight0,
            "heavy contention: 3 hops ({tight3}) should beat 0 hops ({tight0})"
        );

        // Light contention: hops are pure pipelining overhead.
        let (net, coll) = bundle(10, 24);
        let schedule_loose = DelaySchedule::Fixed { delta: 40 };
        let mut loose0 = 0u64;
        let mut loose3 = 0u64;
        for seed in 0..6 {
            let r0 = HopTrialAndFailure::new(&net, &coll, RouterConfig::serve_first(1), 2, 0, 2000)
                .with_schedule(schedule_loose)
                .run(&mut rng(seed));
            let r3 = HopTrialAndFailure::new(&net, &coll, RouterConfig::serve_first(1), 2, 3, 2000)
                .with_schedule(schedule_loose)
                .run(&mut rng(seed + 100));
            assert!(r0.completed && r3.completed);
            loose0 += r0.total_time;
            loose3 += r3.total_time;
        }
        assert!(
            loose0 < loose3,
            "light contention: 0 hops ({loose0}) should beat 3 hops ({loose3})"
        );
    }

    #[test]
    fn reused_workspace_is_bit_identical() {
        let (net, coll) = bundle(10, 12);
        let proto = HopTrialAndFailure::new(&net, &coll, RouterConfig::serve_first(2), 3, 2, 500);
        let mut ws = ProtocolWorkspace::new();
        for seed in 0..3 {
            assert_eq!(
                proto.run(&mut rng(seed)),
                proto.run_with(&mut ws, &mut rng(seed))
            );
        }
    }

    #[test]
    fn segment_progress_is_monotone() {
        let (net, coll) = bundle(6, 10);
        let proto = HopTrialAndFailure::new(&net, &coll, RouterConfig::priority(1), 2, 2, 400);
        let report = proto.run(&mut rng(3));
        assert!(report.completed);
        // advanced >= completed each round; launched never grows.
        let mut prev_launched = usize::MAX;
        for r in &report.rounds {
            assert!(r.advanced >= r.completed);
            assert!(r.launched <= prev_launched);
            prev_launched = r.launched;
        }
    }
}
