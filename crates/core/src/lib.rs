#![warn(missing_docs)]

//! The trial-and-failure protocol of Flammini & Scheideler (SPAA 1997) —
//! the paper's primary contribution — together with the analytical
//! machinery around it.
//!
//! # The protocol (§1.3)
//!
//! ```text
//! all n worms are declared active
//! for t = 1 to T do:
//!   - each active worm is sent out from its source with a random startup
//!     delay in some suitably chosen range [Δ_t] using a random wavelength
//!     in [B]
//!   - for every worm that completely reaches its destination, an
//!     acknowledgement is sent back to the source immediately afterwards
//!   - every source that gets back an acknowledgement declares its worm
//!     inactive
//! ```
//!
//! Round `t` costs `Δ_t + 2(D + L)` steps. The protocol is purely local:
//! no coordination between sources, no buffering, no wavelength
//! conversion.
//!
//! # Modules
//!
//! * [`protocol`] — the executable protocol over the
//!   [`optical_wdm::Engine`] simulator, with ideal or physically simulated
//!   acknowledgements;
//! * [`schedule`] — delay-range schedules `Δ_t`, including the paper's
//!   geometric schedule from §2.1;
//! * [`priority`] — priority-assignment strategies for priority routers
//!   (random per round, fixed adversarial ranks, …);
//! * [`bounds`] — closed forms of every bound stated in the paper
//!   (Main Theorems 1.1–1.3, Theorems 1.5–1.7), used by the experiment
//!   harness to compare measured against predicted shapes;
//! * [`hops`] — the §4 bounded-hops extension (electronic buffering
//!   points);
//! * [`continuous`] — steady-state operation under continuous arrivals:
//!   the round-stepped reference (`ContinuousRun`) and the event-driven
//!   serving engine (`SteadyRun`) with calendar-queue scheduling,
//!   per-tenant arrival processes, admission control, and streaming
//!   latency percentiles;
//! * [`recovery`] — self-healing trial-and-failure under dynamic faults:
//!   stranded-worm detection, configurable retry strategies (backoff
//!   curves with jitter), per-link circuit breakers, a dead-letter queue,
//!   and automatic rerouting around links learned dead from blockerless
//!   failures;
//! * [`sim`] — the unified run API: [`SimBuilder`] composes topology,
//!   paths, router config, optional fault script, and an optional
//!   observability sink into one runner;
//! * [`persist`] — versioned snapshot/restore: the [`Snapshot`] trait
//!   with format-version + config-fingerprint headers, exact RNG state
//!   capture, and typed [`RestoreError`] rejection of mismatched
//!   topology/params, so long steady-state and churn runs checkpoint
//!   and resume bit-exactly;
//! * [`lemmas`] — the appendix lemmas, executable;
//! * [`witness`] — executable witness trees (Figure 4) and per-round
//!   blocking graphs `G_i` (Definition 2.3), including the Claim 2.6
//!   forest check and blocking-cycle detection.

pub mod bounds;
pub mod continuous;
pub mod hops;
pub mod lemmas;
pub mod persist;
pub mod priority;
pub mod protocol;
pub mod recovery;
pub mod schedule;
pub mod sim;
pub mod witness;
pub mod workspace;

pub use continuous::{
    AdmissionControl, AdmissionPolicy, ArrivalProcess, ContinuousParams, ContinuousReport,
    ContinuousRun, SteadyCheckpoint, SteadyParams, SteadyReport, SteadyRun, TrafficMix,
};
pub use persist::rng::{PersistRng, RngState};
pub use persist::{Fingerprint, RestoreError, Snapshot, SnapshotHeader, Versioned, FORMAT_VERSION};
pub use priority::PriorityStrategy;
pub use protocol::{AckMode, ProtocolParams, RoundReport, RunReport, TrialAndFailure};
pub use recovery::{
    AbandonReason, BackoffMode, BackoffStrategy, BreakerConfig, DeadLetter, DlqConfig, FaultSource,
    Jitter, PolicyError, Recovery, RecoveryPolicy, RecoveryReport, RecoveryRound, RetryPolicy,
    WormOutcome,
};
pub use schedule::{DelaySchedule, ScheduleCtx};
pub use sim::{Sim, SimBuilder, SimReport};
pub use workspace::ProtocolWorkspace;
