//! The paper's auxiliary lemmas, executable.
//!
//! These functions make the appendix mathematics testable: the
//! Lemma 2.9 maximizer is computed in closed form and verified
//! numerically against perturbations, and the collision-probability
//! quantities of Lemma 2.8 / Lemma 2.4 are exposed for the Monte-Carlo
//! validations in `tests/lemma_validation.rs`.

/// The Lemma 2.9 maximizer: given `Σ x_i = y` (with `x_i ≥ 0`) and
/// `α ∈ [0, y]`, the product `∏_{i=1..n} (x_i + α)^i` is maximal at
/// `x_i + α = i (y + nα) / C(n+1, 2)`.
///
/// Returns the optimal `x` vector. Requires `α ≤ y / (C(n+1,2) − n)` when
/// `n ≥ 2` so the unconstrained optimum is feasible (`x_1 ≥ 0`); panics
/// otherwise.
pub fn lemma_2_9_optimum(y: f64, alpha: f64, n: usize) -> Vec<f64> {
    assert!(n >= 1 && y >= 0.0 && alpha >= 0.0);
    let binom = (n * (n + 1) / 2) as f64;
    let xs: Vec<f64> = (1..=n)
        .map(|i| i as f64 * (y + n as f64 * alpha) / binom - alpha)
        .collect();
    assert!(
        xs[0] >= -1e-9,
        "alpha too large: unconstrained optimum infeasible (x_1 = {})",
        xs[0]
    );
    debug_assert!((xs.iter().sum::<f64>() - y).abs() < 1e-6 * (y + 1.0));
    xs.into_iter().map(|x| x.max(0.0)).collect()
}

/// `log ∏ (x_i + α)^i = Σ i·ln(x_i + α)` — the objective of Lemma 2.9.
pub fn lemma_2_9_objective(xs: &[f64], alpha: f64) -> f64 {
    xs.iter()
        .enumerate()
        .map(|(k, &x)| (k as f64 + 1.0) * (x + alpha).ln())
        .sum()
}

/// Lemma 2.8's per-pair blocking probability lower bound: with delay
/// range `Δ ≥ L`, worm `i+1` (starting `d = ⌊(L−1)/2⌋+1` levels ahead)
/// blocks worm `i` with probability at least `(L−1) / (2BΔ)`.
pub fn lemma_2_8_block_probability(worm_len: u32, bandwidth: u16, delta: u32) -> f64 {
    assert!(delta >= worm_len, "Lemma 2.8 requires Δ ≥ L");
    (worm_len.max(2) as f64 - 1.0) / (2.0 * bandwidth as f64 * delta as f64)
}

/// The §2.1 per-pair collision probability upper bound used throughout:
/// two short-cut free worms with random delays in `[Δ]` and wavelengths
/// in `[B]` collide with probability at most `2L / (BΔ)`.
pub fn pairwise_collision_upper(worm_len: u32, bandwidth: u16, delta: u32) -> f64 {
    (2.0 * worm_len as f64 / (bandwidth as f64 * delta as f64)).min(1.0)
}

/// Lemma 2.4's requirement on the delay range: `Δ_t ≥ 8e·L·C̃_t / B`
/// guarantees the surviving congestion halves w.h.p.
pub fn lemma_2_4_min_delta(worm_len: u32, bandwidth: u16, congestion: u32) -> u32 {
    (8.0 * std::f64::consts::E * worm_len as f64 * congestion as f64 / bandwidth as f64).ceil()
        as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn optimum_satisfies_constraint() {
        let xs = lemma_2_9_optimum(10.0, 0.5, 4);
        assert!((xs.iter().sum::<f64>() - 10.0).abs() < 1e-9);
        assert!(xs.iter().all(|&x| x >= 0.0));
        // Monotone increasing in i.
        assert!(xs.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn optimum_beats_random_feasible_points() {
        let mut rng = ChaCha8Rng::seed_from_u64(29);
        for case in 0..200 {
            let n = rng.gen_range(2..7usize);
            let y = rng.gen_range(1.0..50.0f64);
            let binom = (n * (n + 1) / 2) as f64;
            let alpha_max = y / (binom - n as f64);
            let alpha = rng.gen_range(0.0..alpha_max * 0.99);
            let best = lemma_2_9_optimum(y, alpha, n);
            let best_val = lemma_2_9_objective(&best, alpha);
            // Random feasible competitor: Dirichlet-ish by normalizing
            // exponentials.
            for _ in 0..20 {
                let raw: Vec<f64> = (0..n).map(|_| -f64::ln(rng.gen_range(1e-9..1.0))).collect();
                let s: f64 = raw.iter().sum();
                let xs: Vec<f64> = raw.iter().map(|r| r / s * y).collect();
                let val = lemma_2_9_objective(&xs, alpha);
                assert!(
                    val <= best_val + 1e-7,
                    "case {case}: competitor beat the Lemma 2.9 optimum ({val} > {best_val})"
                );
            }
        }
    }

    #[test]
    fn optimum_is_stationary() {
        // Small coordinate exchanges around the optimum cannot improve.
        let y = 12.0;
        let alpha = 0.2;
        let n = 5;
        let best = lemma_2_9_optimum(y, alpha, n);
        let best_val = lemma_2_9_objective(&best, alpha);
        let eps = 1e-4;
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let mut xs = best.clone();
                if xs[i] < eps {
                    continue;
                }
                xs[i] -= eps;
                xs[j] += eps;
                let val = lemma_2_9_objective(&xs, alpha);
                assert!(
                    val <= best_val + 1e-9,
                    "exchange {i}->{j} improved the optimum"
                );
            }
        }
    }

    #[test]
    fn probability_helpers_are_sane() {
        let p = lemma_2_8_block_probability(4, 1, 8);
        assert!((p - 3.0 / 16.0).abs() < 1e-12);
        assert!(pairwise_collision_upper(4, 1, 8) <= 1.0);
        assert_eq!(pairwise_collision_upper(100, 1, 3), 1.0, "clamped at 1");
        assert!(lemma_2_4_min_delta(4, 2, 100) >= 4 * 100 * 4);
    }

    #[test]
    #[should_panic(expected = "Δ ≥ L")]
    fn lemma_2_8_requires_delta_at_least_l() {
        lemma_2_8_block_probability(10, 1, 5);
    }
}
