//! Self-healing trial-and-failure: stranded-worm detection, exponential
//! backoff, and automatic rerouting around discovered faults.
//!
//! The plain protocol ([`crate::protocol::TrialAndFailure`]) is
//! all-or-nothing: a worm routed across a cut fiber dies every round and
//! the run simply reports `completed = false`. This module wraps the same
//! round structure with a *recovery loop* that mirrors what a deployed
//! network would do, using only source-observable signals:
//!
//! * **Fault detection** — a failed round whose worm has no
//!   `first_blocker` was killed by the fiber plant, not by a competing
//!   worm (see [`optical_wdm::fault`]). Such failures raise suspicion on
//!   the link where the worm died; after
//!   [`RecoveryPolicy::confirm_after`] blockerless failures a link is
//!   declared dead.
//! * **Stranded-worm detection** — per worm, progress is the furthest
//!   path position its head ever reached. A worm whose progress does not
//!   improve for [`RecoveryPolicy::stranded_after`] consecutive rounds is
//!   *stranded*.
//! * **Exponential backoff** — every consecutive failure doubles the
//!   worm's personal delay range (capped at
//!   [`RecoveryPolicy::backoff_cap`]), spreading retries of contended
//!   worms over time exactly like classic media-access backoff.
//! * **Rerouting** — a stranded worm is rerouted with
//!   [`optical_paths::select::bfs::bfs_route_avoiding`] against the
//!   currently-known dead set; a worm that cannot be rerouted (source
//!   disconnected) or exhausts [`RecoveryPolicy::max_reroutes`] is
//!   *abandoned*, and the run keeps going for everyone else.
//!
//! The result is a [`RecoveryReport`] with a terminal [`WormOutcome`] per
//! worm — `Delivered`, `Rerouted`, or `Abandoned` with a reason — plus
//! detection latencies and the backoff cost, instead of a single
//! `completed` bit.

use crate::protocol::{AckMode, ProtocolParams};
use crate::schedule::ScheduleCtx;
use crate::workspace::ProtocolWorkspace;
use optical_obs::{NullSink, Sink};
use optical_paths::select::bfs::bfs_route_avoiding;
use optical_paths::{Path, PathCollection};
use optical_topo::Network;
use optical_wdm::{ChurnModel, Fate, FaultPlan, TransmissionSpec};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Where each round's dynamic faults come from.
#[derive(Clone, Debug, Default)]
pub enum FaultSource {
    /// No dynamic faults (static [`ProtocolParams::dead_links`] still
    /// apply).
    #[default]
    None,
    /// The same scripted plan replays every round.
    EveryRound(FaultPlan),
    /// Round `t` (1-based) runs `plans[t-1]`; rounds past the end run
    /// fault-free.
    PerRound(Vec<FaultPlan>),
    /// Stochastic up/down churn, regenerated per round from the model.
    Churn(ChurnModel),
}

/// Knobs of the recovery loop.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// Rounds without progress before a worm counts as stranded (≥ 1).
    pub stranded_after: u32,
    /// Cap on the per-worm delay-range multiplier (powers of two up to
    /// this value; 1 disables backoff).
    pub backoff_cap: u32,
    /// Reroute budget per worm; a worm stranded again after this many
    /// reroutes is abandoned.
    pub max_reroutes: u32,
    /// Blockerless failures on a link before it is declared dead (≥ 1).
    /// Raise above 1 to avoid condemning merely flaky links on first
    /// offence.
    pub confirm_after: u32,
    /// Also mark the reverse direction of a condemned link dead (a cut
    /// fiber usually severs both directions).
    pub mirror_dead: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            stranded_after: 3,
            backoff_cap: 16,
            max_reroutes: 4,
            confirm_after: 1,
            mirror_dead: true,
        }
    }
}

impl RecoveryPolicy {
    fn validate(&self) {
        assert!(
            self.stranded_after >= 1,
            "stranded_after must be at least 1"
        );
        assert!(self.backoff_cap >= 1, "backoff_cap must be at least 1");
        assert!(self.confirm_after >= 1, "confirm_after must be at least 1");
    }
}

/// Why a worm was given up on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AbandonReason {
    /// The known-dead set disconnects source from destination.
    Disconnected,
    /// Stranded again after exhausting the reroute budget.
    RetryBudget,
    /// Still undelivered when `max_rounds` ran out.
    RoundBudget,
}

/// Terminal outcome of one worm.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum WormOutcome {
    /// Delivered on its original path.
    Delivered {
        /// Round of the successful transmission (1-based).
        round: u32,
    },
    /// Delivered after one or more reroutes around discovered faults.
    Rerouted {
        /// Number of reroutes it took.
        times: u32,
        /// Round of the successful transmission.
        round: u32,
    },
    /// Given up on.
    Abandoned {
        /// Why.
        reason: AbandonReason,
    },
}

impl WormOutcome {
    /// Did the worm's payload arrive (directly or after rerouting)?
    pub fn is_delivered(&self) -> bool {
        !matches!(self, WormOutcome::Abandoned { .. })
    }
}

/// Per-round observations of the recovery loop.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryRound {
    /// Round index (1-based).
    pub round: u32,
    /// Base delay range `Δ_t` from the schedule.
    pub delta: u32,
    /// Largest per-worm backoff multiplier in effect.
    pub max_multiplier: u32,
    /// Worms still being worked on at the start of the round.
    pub active_before: usize,
    /// Worms delivered this round.
    pub delivered: usize,
    /// Failures without a blocking worm (fault kills) this round.
    pub fault_kills: usize,
    /// Worms that hit the stranded threshold this round.
    pub stranded: usize,
    /// Worms moved to a new path this round.
    pub rerouted: usize,
    /// Worms abandoned this round.
    pub abandoned: usize,
}

/// Result of a recovery run: a terminal outcome per worm plus the cost
/// accounting of getting there.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Terminal outcome per worm, indexed like the input collection.
    pub outcomes: Vec<WormOutcome>,
    /// Per-round observations, in order.
    pub rounds: Vec<RecoveryRound>,
    /// Total budgeted time `Σ_t (Δ_t · max multiplier + 2(D + L))`.
    pub total_time: u64,
    /// Extra time attributable to backoff alone (`Σ_t Δ_t · (max
    /// multiplier − 1)`).
    pub backoff_extra_time: u64,
    /// Links believed dead at the end of the run.
    pub known_dead: Vec<bool>,
    /// Per reroute event: rounds from the first blockerless failure to
    /// the strand that triggered the reroute (inclusive) — how long the
    /// source took to conclude the path was broken.
    pub detection_latencies: Vec<u32>,
}

impl RecoveryReport {
    /// Worms delivered on their original path.
    pub fn delivered_direct(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, WormOutcome::Delivered { .. }))
            .count()
    }

    /// Worms delivered after rerouting.
    pub fn rerouted_count(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, WormOutcome::Rerouted { .. }))
            .count()
    }

    /// Worms abandoned, by any reason.
    pub fn abandoned_count(&self) -> usize {
        self.outcomes.iter().filter(|o| !o.is_delivered()).count()
    }

    /// Rounds actually executed.
    pub fn rounds_used(&self) -> u32 {
        self.rounds.len() as u32
    }

    /// Mean detection latency in rounds (`None` if nothing was detected).
    pub fn mean_detection_latency(&self) -> Option<f64> {
        (!self.detection_latencies.is_empty()).then(|| {
            self.detection_latencies.iter().sum::<u32>() as f64
                / self.detection_latencies.len() as f64
        })
    }
}

/// Per-worm recovery bookkeeping.
struct WormTrack {
    path: Path,
    /// Furthest path position the head ever reached on the current path.
    best_progress: u32,
    /// Consecutive rounds without progress improvement.
    no_improve: u32,
    /// Consecutive failed rounds (drives backoff).
    consecutive_fails: u32,
    reroutes: u32,
    /// Round of the first blockerless failure since the last reroute.
    first_suspect: Option<u32>,
    outcome: Option<WormOutcome>,
}

/// The self-healing protocol runner. Construct with [`Recovery::new`],
/// attach a [`FaultSource`], then [`Recovery::run`].
///
/// Only [`AckMode::Ideal`] is supported (the recovery signals are
/// source-side observations of the forward pass); `record_blocking` /
/// `record_congestion` are ignored.
pub struct Recovery<'a> {
    net: &'a Network,
    params: ProtocolParams,
    policy: RecoveryPolicy,
    faults: FaultSource,
    initial: Vec<Path>,
    dilation: u32,
    path_congestion: u32,
}

impl<'a> Recovery<'a> {
    /// Bind the recovery loop to a routing instance.
    ///
    /// # Panics
    /// If the collection was built over a different network, or
    /// `params.ack` is not [`AckMode::Ideal`], or the policy is invalid.
    pub fn new(
        net: &'a Network,
        collection: &PathCollection,
        params: ProtocolParams,
        policy: RecoveryPolicy,
    ) -> Self {
        assert_eq!(
            net.link_count(),
            collection.link_count(),
            "collection was built over a different network"
        );
        assert!(
            params.ack == AckMode::Ideal,
            "recovery supports ideal acks only (signals are source-side)"
        );
        assert!(params.max_rounds >= 1, "need at least one round");
        params.router.validate();
        policy.validate();
        let metrics = collection.metrics();
        Recovery {
            net,
            params,
            policy,
            faults: FaultSource::None,
            initial: collection.to_paths(),
            dilation: metrics.dilation,
            path_congestion: metrics.path_congestion,
        }
    }

    /// Attach a dynamic fault source (builder style).
    pub fn with_faults(mut self, faults: FaultSource) -> Self {
        self.faults = faults;
        self
    }

    /// The policy this instance runs with.
    pub fn policy(&self) -> RecoveryPolicy {
        self.policy
    }

    /// Execute the recovery loop with a one-shot workspace. Thin wrapper
    /// over [`Recovery::run_traced`] — loops should hold a
    /// [`ProtocolWorkspace`] and call [`Recovery::run_with`], and new
    /// call sites should go through `SimBuilder` (see DESIGN §10 for the
    /// entry-point migration note).
    #[doc(hidden)]
    pub fn run(&self, rng: &mut impl Rng) -> RecoveryReport {
        self.run_with(&mut ProtocolWorkspace::new(), rng)
    }

    /// Like [`Recovery::run`], but reusing `ws`'s engine and round
    /// buffers. Bit-identical to `run` for the same RNG state.
    pub fn run_with(&self, ws: &mut ProtocolWorkspace, rng: &mut impl Rng) -> RecoveryReport {
        self.run_traced(ws, rng, &mut NullSink)
    }

    /// The single internal recovery path: [`Recovery::run_with`] with an
    /// observability [`Sink`]. On top of the protocol-level hooks
    /// (round, inject, install and per-worm fate events) the recovery
    /// layer reports `on_backoff` for every held-back worm,
    /// `on_dead_link` on a link's *first* condemnation (mirrored links
    /// report separately), `on_reroute` when a path actually changes and
    /// `on_abandon` for every abandonment, including the final
    /// round-budget sweep (reported at round `max_rounds`). Hooks never
    /// consume `rng`; the [`NullSink`] instantiation is bit-identical to
    /// [`Recovery::run_with`].
    pub fn run_traced<S: Sink>(
        &self,
        ws: &mut ProtocolWorkspace,
        rng: &mut impl Rng,
        sink: &mut S,
    ) -> RecoveryReport {
        let p = &self.params;
        let n = self.initial.len();
        let b = p.router.bandwidth as u32;
        let l = p.worm_len;

        let mut cfg = p.router;
        cfg.record_conflicts = false;
        ws.prepare(
            self.net.link_count(),
            n,
            cfg,
            false,
            &p.converters,
            &p.dead_links,
        );
        let ProtocolWorkspace {
            engine,
            specs: spec_buf,
            active,
            priorities,
            wavelengths,
            fixed_wl,
            multipliers,
            outcome,
            ..
        } = ws;
        let engine = engine.as_mut().expect("prepared above");

        fixed_wl.clear();
        if matches!(
            p.wavelengths,
            crate::priority::WavelengthStrategy::FixedPerWorm
        ) {
            fixed_wl.extend((0..n).map(|_| rng.gen_range(0..b) as u16));
        }

        let mut tracks: Vec<WormTrack> = self
            .initial
            .iter()
            .map(|path| WormTrack {
                path: path.clone(),
                best_progress: 0,
                no_improve: 0,
                consecutive_fails: 0,
                reroutes: 0,
                first_suspect: None,
                outcome: None,
            })
            .collect();
        let mut known_dead = vec![false; self.net.link_count()];
        let mut suspicion = vec![0u32; self.net.link_count()];
        let mut detection_latencies: Vec<u32> = Vec::new();
        let mut rounds: Vec<RecoveryRound> = Vec::new();
        let mut total_time = 0u64;
        let mut backoff_extra_time = 0u64;

        for t in 1..=p.max_rounds {
            active.clear();
            active.extend((0..n as u32).filter(|&w| tracks[w as usize].outcome.is_none()));
            if active.is_empty() {
                break;
            }
            let ctx = ScheduleCtx {
                n,
                active: active.len(),
                worm_len: l,
                bandwidth: p.router.bandwidth,
                path_congestion: self.path_congestion,
                dilation: self.dilation,
            };
            let delta = p.schedule.delta(t, &ctx).max(1);

            // Per-worm backoff multipliers.
            multipliers.clear();
            multipliers.extend(active.iter().map(|&w| {
                let fails = tracks[w as usize].consecutive_fails.min(31);
                (1u32 << fails.min(16)).min(self.policy.backoff_cap)
            }));
            let max_mult = multipliers.iter().copied().max().unwrap_or(1);

            // Current dilation: reroutes can lengthen paths.
            let cur_dilation = active
                .iter()
                .map(|&w| tracks[w as usize].path.len() as u32)
                .max()
                .unwrap_or(0)
                .max(self.dilation);

            // This round's dynamic faults.
            let plan = match &self.faults {
                FaultSource::None => None,
                FaultSource::EveryRound(plan) => Some(plan.clone()),
                FaultSource::PerRound(plans) => plans.get(t as usize - 1).cloned(),
                FaultSource::Churn(model) => {
                    let horizon = delta * max_mult + cur_dilation + l + 2;
                    Some(model.plan_for_round(t, self.net.link_count(), horizon))
                }
            };
            engine.set_fault_plan(plan);

            p.priorities.assign_into(active, n, rng, priorities);
            p.wavelengths
                .assign_into(active, p.router.bandwidth, fixed_wl, rng, wavelengths);
            // The spec batch is borrowed per round: the bookkeeping below
            // may swap `tracks[w].path` (reroutes), so the link borrows
            // must end before it runs.
            let mut specs = spec_buf.take();
            specs.extend(
                active
                    .iter()
                    .zip(priorities.iter().zip(wavelengths.iter()))
                    .zip(multipliers.iter())
                    .map(|((&w, (&prio, &wl)), &mult)| TransmissionSpec {
                        links: tracks[w as usize].path.links(),
                        start: rng.gen_range(0..delta * mult),
                        wavelength: wl,
                        priority: prio,
                        length: l,
                    }),
            );

            sink.on_round_start(t, active.len() as u32, delta);
            if S::ENABLED {
                for (k, &mult) in multipliers.iter().enumerate() {
                    if mult > 1 {
                        sink.on_backoff(t, active[k], mult);
                    }
                }
                for (k, &w) in active.iter().enumerate() {
                    sink.on_inject(t, w, wavelengths[k], specs[k].start);
                }
            }

            engine.run_into_traced(&specs, rng, outcome, sink);
            spec_buf.put(specs);

            let mut delivered = 0usize;
            let mut fault_kills = 0usize;
            let mut stranded = 0usize;
            let mut rerouted = 0usize;
            let mut abandoned = 0usize;
            for (k, r) in outcome.results.iter().enumerate() {
                let w = active[k] as usize;
                let track = &mut tracks[w];
                if let Fate::Delivered { completed_at } = r.fate {
                    track.outcome = Some(if track.reroutes > 0 {
                        WormOutcome::Rerouted {
                            times: track.reroutes,
                            round: t,
                        }
                    } else {
                        WormOutcome::Delivered { round: t }
                    });
                    delivered += 1;
                    sink.on_deliver(t, w as u32, completed_at);
                    continue;
                }

                track.consecutive_fails += 1;
                let (progress, failed_link) = match r.fate {
                    Fate::Eliminated { at_edge, .. } => {
                        (at_edge, Some(track.path.links()[at_edge as usize]))
                    }
                    Fate::Truncated { cut_at_edge, .. } => (
                        track.path.len() as u32,
                        Some(track.path.links()[cut_at_edge as usize]),
                    ),
                    Fate::Delivered { .. } => unreachable!("handled above"),
                };
                if S::ENABLED {
                    let blocker = r.first_blocker.map(|b| active[b as usize]);
                    let link = failed_link.expect("failed worms name a link");
                    match r.fate {
                        Fate::Eliminated { at_time, .. } => {
                            sink.on_block(t, w as u32, link, wavelengths[k], at_time, blocker);
                        }
                        Fate::Truncated {
                            delivered_flits, ..
                        } => {
                            sink.on_cut(
                                t,
                                w as u32,
                                link,
                                wavelengths[k],
                                delivered_flits,
                                blocker,
                            );
                        }
                        Fate::Delivered { .. } => unreachable!("handled above"),
                    }
                }
                if progress > track.best_progress {
                    track.best_progress = progress;
                    track.no_improve = 0;
                } else {
                    track.no_improve += 1;
                }

                // A failure with no blocking worm is the fiber's fault.
                if r.first_blocker.is_none() {
                    fault_kills += 1;
                    if track.first_suspect.is_none() {
                        track.first_suspect = Some(t);
                    }
                    if let Some(link) = failed_link {
                        suspicion[link as usize] += 1;
                        if suspicion[link as usize] >= self.policy.confirm_after {
                            if !known_dead[link as usize] {
                                known_dead[link as usize] = true;
                                sink.on_dead_link(t, link);
                            }
                            if self.policy.mirror_dead {
                                let rev = self.net.reverse_link(link);
                                if !known_dead[rev as usize] {
                                    known_dead[rev as usize] = true;
                                    sink.on_dead_link(t, rev);
                                }
                            }
                        }
                    }
                }

                if track.no_improve < self.policy.stranded_after {
                    continue;
                }
                // Stranded: reroute around everything known dead.
                stranded += 1;
                match bfs_route_avoiding(
                    self.net,
                    &known_dead,
                    track.path.source(),
                    track.path.dest(),
                ) {
                    None => {
                        track.outcome = Some(WormOutcome::Abandoned {
                            reason: AbandonReason::Disconnected,
                        });
                        abandoned += 1;
                        sink.on_abandon(t, w as u32);
                    }
                    Some(_) if track.reroutes >= self.policy.max_reroutes => {
                        track.outcome = Some(WormOutcome::Abandoned {
                            reason: AbandonReason::RetryBudget,
                        });
                        abandoned += 1;
                        sink.on_abandon(t, w as u32);
                    }
                    Some(new_path) => {
                        if let Some(first) = track.first_suspect {
                            detection_latencies.push(t - first + 1);
                        }
                        if new_path.links() != track.path.links() {
                            track.path = new_path;
                            track.reroutes += 1;
                            rerouted += 1;
                            track.best_progress = 0;
                            sink.on_reroute(t, w as u32);
                        }
                        // Fresh start on the (possibly unchanged) path.
                        track.no_improve = 0;
                        track.consecutive_fails = 0;
                        track.first_suspect = None;
                    }
                }
            }

            sink.on_round_end(t, delivered as u32, (active.len() - delivered) as u32);

            let round_time =
                (delta as u64) * (max_mult as u64) + 2 * (cur_dilation as u64 + l as u64);
            total_time += round_time;
            backoff_extra_time += (delta as u64) * (max_mult as u64 - 1);
            rounds.push(RecoveryRound {
                round: t,
                delta,
                max_multiplier: max_mult,
                active_before: active.len(),
                delivered,
                fault_kills,
                stranded,
                rerouted,
                abandoned,
            });
        }

        // Round budget exhausted: everyone still active is abandoned.
        let outcomes: Vec<WormOutcome> = tracks
            .into_iter()
            .enumerate()
            .map(|(w, track)| {
                track.outcome.unwrap_or_else(|| {
                    sink.on_abandon(p.max_rounds, w as u32);
                    WormOutcome::Abandoned {
                        reason: AbandonReason::RoundBudget,
                    }
                })
            })
            .collect();

        RecoveryReport {
            outcomes,
            rounds,
            total_time,
            backoff_extra_time,
            known_dead,
            detection_latencies,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ProtocolParams;
    use optical_topo::topologies;
    use optical_wdm::RouterConfig;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn params(bandwidth: u16, worm_len: u32) -> ProtocolParams {
        let mut p = ProtocolParams::new(RouterConfig::serve_first(bandwidth), worm_len);
        p.max_rounds = 200;
        p
    }

    /// A ring collection: every node sends to the node 2 hops clockwise.
    fn ring_collection(n: usize) -> (Network, PathCollection) {
        let net = topologies::ring(n);
        let mut coll = PathCollection::for_network(&net);
        for v in 0..n as u32 {
            let nodes = [v, (v + 1) % n as u32, (v + 2) % n as u32];
            coll.push(Path::from_nodes(&net, &nodes));
        }
        (net, coll)
    }

    use optical_topo::Network;

    #[test]
    fn fault_free_run_delivers_everything_directly() {
        let (net, coll) = ring_collection(8);
        let rec = Recovery::new(&net, &coll, params(2, 3), RecoveryPolicy::default());
        let report = rec.run(&mut rng(1));
        assert_eq!(report.abandoned_count(), 0);
        assert_eq!(report.rerouted_count(), 0);
        assert_eq!(report.delivered_direct(), 8);
        assert!(report.known_dead.iter().all(|&d| !d), "nothing to learn");
        assert!(report.detection_latencies.is_empty());
        assert_eq!(report.backoff_extra_time, 0, "first tries carry no backoff");
    }

    #[test]
    fn permanent_cut_is_detected_and_rerouted() {
        // Ring of 8; kill link (1,2) from step 0 of every round. The worm
        // 1→2→3 must learn this and reroute the long way round.
        let (net, coll) = ring_collection(8);
        let cut = net.link_between(1, 2).unwrap();
        let rec = Recovery::new(&net, &coll, params(2, 3), RecoveryPolicy::default())
            .with_faults(FaultSource::EveryRound(FaultPlan::none().down(cut, 0)));
        let report = rec.run(&mut rng(2));
        assert_eq!(
            report.abandoned_count(),
            0,
            "ring minus one link stays connected"
        );
        assert!(report.rerouted_count() >= 1, "someone crossed the cut link");
        assert!(
            report.known_dead[cut as usize],
            "the cut link must be learned"
        );
        assert!(
            !report.detection_latencies.is_empty(),
            "reroutes imply recorded detection latencies"
        );
        let lat = report.mean_detection_latency().unwrap();
        assert!(
            lat >= RecoveryPolicy::default().stranded_after as f64,
            "detection cannot be faster than the strand threshold, got {lat}"
        );
    }

    #[test]
    fn all_links_dead_abandons_every_worm_without_panic() {
        let (net, coll) = ring_collection(6);
        let mut plan = FaultPlan::none();
        for link in net.links() {
            plan = plan.down(link, 0);
        }
        let mut p = params(1, 2);
        p.max_rounds = 50;
        let rec = Recovery::new(&net, &coll, p, RecoveryPolicy::default())
            .with_faults(FaultSource::EveryRound(plan));
        let report = rec.run(&mut rng(3));
        assert_eq!(report.abandoned_count(), 6, "nobody can be delivered");
        for o in &report.outcomes {
            assert!(
                matches!(
                    o,
                    WormOutcome::Abandoned {
                        reason: AbandonReason::Disconnected
                    }
                ),
                "expected Disconnected, got {o:?}"
            );
        }
    }

    #[test]
    fn transient_fault_heals_without_reroute() {
        // The link is only down for the first 2 rounds' scripts: with a
        // per-round source, later rounds are fault-free, so the worm is
        // delivered on its original path before the strand threshold.
        let (net, coll) = ring_collection(8);
        let cut = net.link_between(1, 2).unwrap();
        let plans = vec![
            FaultPlan::none().down(cut, 0),
            FaultPlan::none().down(cut, 0),
        ];
        let policy = RecoveryPolicy {
            stranded_after: 5,
            ..RecoveryPolicy::default()
        };
        let rec = Recovery::new(&net, &coll, params(2, 3), policy)
            .with_faults(FaultSource::PerRound(plans));
        let report = rec.run(&mut rng(4));
        assert_eq!(report.abandoned_count(), 0);
        assert_eq!(report.rerouted_count(), 0, "patience beats rerouting here");
    }

    #[test]
    fn backoff_multiplier_grows_and_is_capped() {
        // One worm against a permanently dead first link, high strand
        // threshold: it keeps failing in place, so its multiplier must
        // climb 1, 2, 4, 8, 16 and stay capped at 16.
        let net = topologies::chain(3);
        let mut coll = PathCollection::for_network(&net);
        coll.push(Path::from_nodes(&net, &[0, 1, 2]));
        let dead = net.link_between(0, 1).unwrap();
        let mut p = params(1, 2);
        p.max_rounds = 8;
        let policy = RecoveryPolicy {
            stranded_after: 100,
            backoff_cap: 16,
            ..RecoveryPolicy::default()
        };
        let rec = Recovery::new(&net, &coll, p, policy)
            .with_faults(FaultSource::EveryRound(FaultPlan::none().down(dead, 0)));
        let report = rec.run(&mut rng(5));
        let mults: Vec<u32> = report.rounds.iter().map(|r| r.max_multiplier).collect();
        assert_eq!(mults, vec![1, 2, 4, 8, 16, 16, 16, 16]);
        assert!(report.backoff_extra_time > 0);
        assert!(matches!(
            report.outcomes[0],
            WormOutcome::Abandoned {
                reason: AbandonReason::RoundBudget
            }
        ));
    }

    #[test]
    fn retry_budget_abandons_flapping_worm() {
        // Both ring directions share the fate: the down link flaps such
        // that every reroute leads into another failure. Force it by
        // killing both links out of the source every round but with
        // confirm_after high enough that links are never condemned — the
        // worm keeps getting "rerouted" onto dead paths until the budget
        // runs out... simpler: condemn nothing by keeping confirm high.
        let (net, coll) = ring_collection(6);
        let mut plan = FaultPlan::none();
        // Node 0's outgoing links are both dead every round.
        for (_, link) in net.neighbors(0) {
            plan = plan.down(link, 0);
        }
        let policy = RecoveryPolicy {
            stranded_after: 1,
            confirm_after: 1000, // never learn -> reroute returns same path
            max_reroutes: 2,
            ..RecoveryPolicy::default()
        };
        let mut p = params(1, 2);
        p.max_rounds = 100;
        let rec = Recovery::new(&net, &coll, p, policy).with_faults(FaultSource::EveryRound(plan));
        let report = rec.run(&mut rng(6));
        // Worm 0 (source 0) can never start; with nothing learned the
        // reroute is a no-op, so it ends on the retry budget... it is
        // stranded repeatedly but its path never changes (reroutes stay
        // 0), so it runs out the round budget instead — and must NOT be
        // Disconnected, since nothing was condemned.
        assert!(
            matches!(
                report.outcomes[0],
                WormOutcome::Abandoned {
                    reason: AbandonReason::RoundBudget
                }
            ),
            "got {:?}",
            report.outcomes[0]
        );
    }

    #[test]
    fn churn_runs_to_terminal_outcomes() {
        let (net, coll) = ring_collection(10);
        let model = ChurnModel {
            mtbf: 60.0,
            mttr: 10.0,
            seed: 11,
        };
        let mut p = params(2, 3);
        p.max_rounds = 400;
        let rec = Recovery::new(&net, &coll, p, RecoveryPolicy::default())
            .with_faults(FaultSource::Churn(model));
        let report = rec.run(&mut rng(7));
        assert_eq!(report.outcomes.len(), 10);
        // Every worm has a terminal outcome; under churn with healing
        // links, most should eventually get through.
        let delivered = report.outcomes.iter().filter(|o| o.is_delivered()).count();
        assert!(
            delivered >= 5,
            "churn with repairs should mostly deliver, got {delivered}"
        );
    }

    #[test]
    fn report_counters_are_consistent() {
        let (net, coll) = ring_collection(8);
        let cut = net.link_between(3, 4).unwrap();
        let rec = Recovery::new(&net, &coll, params(2, 3), RecoveryPolicy::default())
            .with_faults(FaultSource::EveryRound(FaultPlan::none().down(cut, 0)));
        let report = rec.run(&mut rng(8));
        assert_eq!(
            report.delivered_direct() + report.rerouted_count() + report.abandoned_count(),
            8
        );
        let sum: u64 = report
            .rounds
            .iter()
            .map(|r| r.delta as u64 * r.max_multiplier as u64)
            .sum();
        assert_eq!(
            report.backoff_extra_time,
            sum - report.rounds.iter().map(|r| r.delta as u64).sum::<u64>()
        );
    }

    #[test]
    fn reused_workspace_is_bit_identical() {
        let (net, coll) = ring_collection(8);
        let cut = net.link_between(1, 2).unwrap();
        let rec = Recovery::new(&net, &coll, params(2, 3), RecoveryPolicy::default())
            .with_faults(FaultSource::EveryRound(FaultPlan::none().down(cut, 0)));
        let mut ws = ProtocolWorkspace::new();
        for seed in 0..3 {
            assert_eq!(
                rec.run(&mut rng(seed)),
                rec.run_with(&mut ws, &mut rng(seed))
            );
        }
    }

    #[test]
    #[should_panic(expected = "ideal acks")]
    fn simulated_acks_rejected() {
        let (net, coll) = ring_collection(4);
        let mut p = params(1, 2);
        p.ack = AckMode::Simulated { ack_len: None };
        Recovery::new(&net, &coll, p, RecoveryPolicy::default());
    }
}
