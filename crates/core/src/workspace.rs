//! Reusable scratch for protocol-level runs.
//!
//! Every runner in this crate ([`crate::protocol::TrialAndFailure`],
//! [`crate::recovery::Recovery`], [`crate::hops::HopTrialAndFailure`],
//! [`crate::continuous::ContinuousRun`]) executes the same round shape:
//! assign priorities and wavelengths, build a batch of
//! [`TransmissionSpec`]s borrowing link slices, run the [`Engine`], and
//! retire the delivered worms. Constructing the engine and the round
//! buffers per run made the allocator the dominant cost of experiment
//! sweeps (thousands of short runs per data point). A
//! [`ProtocolWorkspace`] owns all of it — engines, the reversed-ack CSR,
//! spec/owner/assignment vectors, the round outcome, and the
//! active-subset congestion scratch — so a run allocates only when a
//! buffer must grow past its high-water mark. Keep one workspace per
//! thread (e.g. per rayon worker) and feed it to `run_with` on every
//! trial.

use optical_paths::{ActiveCongestion, PathCollection};
use optical_topo::{LinkId, Network};
use optical_wdm::{Engine, RoundOutcome, RouterConfig, TransmissionSpec};

/// A capacity cache for `Vec<TransmissionSpec<'_>>`.
///
/// Spec batches borrow link slices with a fresh lifetime every run (and,
/// for the recovery loop, every round), so the buffer is stored with its
/// element lifetime erased to `'static` and re-branded on loan. Soundness:
/// the vector is empty at both ends of the loan — only the allocation
/// (pointer + capacity) crosses the lifetime boundary, never a value.
#[derive(Debug, Default)]
pub(crate) struct SpecBuf {
    buf: Vec<TransmissionSpec<'static>>,
}

impl SpecBuf {
    /// Borrow the cached allocation as an empty vector of specs with any
    /// element lifetime. Return it with [`SpecBuf::put`] to keep the
    /// capacity for the next loan.
    pub(crate) fn take<'a>(&mut self) -> Vec<TransmissionSpec<'a>> {
        let mut v = std::mem::take(&mut self.buf);
        v.clear();
        let cap = v.capacity();
        let ptr = v.as_mut_ptr();
        std::mem::forget(v);
        // SAFETY: the vector is empty; `TransmissionSpec<'a>` and
        // `TransmissionSpec<'static>` are the same type modulo lifetime,
        // so pointer, length 0, and capacity describe a valid Vec.
        unsafe { Vec::from_raw_parts(ptr.cast::<TransmissionSpec<'a>>(), 0, cap) }
    }

    /// Reclaim a loaned vector's allocation (contents are discarded).
    pub(crate) fn put(&mut self, mut v: Vec<TransmissionSpec<'_>>) {
        v.clear();
        let cap = v.capacity();
        let ptr = v.as_mut_ptr();
        std::mem::forget(v);
        // SAFETY: as in `take` — empty vector, layout-identical element
        // types, and `TransmissionSpec` has no drop glue.
        self.buf = unsafe { Vec::from_raw_parts(ptr.cast::<TransmissionSpec<'static>>(), 0, cap) };
    }
}

/// Reusable state for protocol-level runs; see the module docs.
///
/// A workspace is not tied to any network, collection, or parameter set:
/// `run_with` reconfigures it at the start of every run (engines are
/// rebuilt only when the link count changes, reconfigured in place
/// otherwise), so one long-lived workspace can serve heterogeneous trials
/// back to back.
#[derive(Default)]
pub struct ProtocolWorkspace {
    /// Forward-band engine, rebuilt only when the link count changes.
    pub(crate) engine: Option<Engine>,
    /// Ack-band engine (only prepared for simulated acks).
    pub(crate) ack_engine: Option<Engine>,
    /// Reversed ack paths in CSR form: path `i`'s reversed links are
    /// `rev_links[rev_offsets[i]..rev_offsets[i+1]]`.
    pub(crate) rev_links: Vec<LinkId>,
    pub(crate) rev_offsets: Vec<u32>,
    /// Forward spec batch (capacity cache).
    pub(crate) specs: SpecBuf,
    /// Ack spec batch (capacity cache).
    pub(crate) ack_specs: SpecBuf,
    /// Owners (indices into the active list) of the ack specs.
    pub(crate) ack_owner: Vec<u32>,
    /// Path ids still being worked on.
    pub(crate) active: Vec<u32>,
    /// Per-round priority assignment, indexed like `active`.
    pub(crate) priorities: Vec<u64>,
    /// Per-round wavelength assignment, indexed like `active`.
    pub(crate) wavelengths: Vec<u16>,
    /// Per-worm fixed wavelength draws (FixedPerWorm strategy).
    pub(crate) fixed_wl: Vec<u16>,
    /// Indices into `active` acknowledged this round.
    pub(crate) acked_now: Vec<u32>,
    /// Retirement mask over `active` (replaces a per-round hash set).
    pub(crate) retired: Vec<bool>,
    /// Per-worm backoff multipliers (recovery loop).
    pub(crate) multipliers: Vec<u32>,
    /// Forward-round outcome (reused result/conflict buffers).
    pub(crate) outcome: RoundOutcome,
    /// Ack-round outcome.
    pub(crate) ack_outcome: RoundOutcome,
    /// Active-subset path-congestion scratch (`record_congestion`).
    pub(crate) congestion: ActiveCongestion,
}

impl ProtocolWorkspace {
    /// Fresh workspace; all buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Point the workspace at a run: (re)configure the forward engine —
    /// and the ack engine if `with_ack` — for `link_count` links, clearing
    /// any converter mask, dead-link mask, or fault plan left over from a
    /// previous run. `worm_count` sizes the engines' per-worm scratch
    /// (state-of-arrays columns, arrival queues) up front so the first
    /// round does not grow them incrementally; `shards` is the intra-round
    /// shard count (set **before** the scratch reservation so the
    /// per-shard buffers are pre-sized too).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn prepare(
        &mut self,
        link_count: usize,
        worm_count: usize,
        cfg: RouterConfig,
        shards: usize,
        with_ack: bool,
        converters: &Option<Vec<bool>>,
        dead_links: &Option<Vec<bool>>,
    ) {
        Self::prepare_engine(
            &mut self.engine,
            link_count,
            worm_count,
            cfg,
            shards,
            converters,
            dead_links,
        );
        if with_ack {
            Self::prepare_engine(
                &mut self.ack_engine,
                link_count,
                worm_count,
                cfg,
                shards,
                converters,
                dead_links,
            );
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn prepare_engine(
        slot: &mut Option<Engine>,
        link_count: usize,
        worm_count: usize,
        cfg: RouterConfig,
        shards: usize,
        converters: &Option<Vec<bool>>,
        dead_links: &Option<Vec<bool>>,
    ) {
        match slot {
            Some(e) if e.link_count() == link_count => e.set_config(cfg),
            _ => *slot = Some(Engine::new(link_count, cfg)),
        }
        let e = slot.as_mut().expect("just prepared");
        e.set_shards(shards);
        e.reserve_worms(worm_count);
        e.set_converters(converters.clone());
        e.set_dead_links(dead_links.clone());
        e.set_fault_plan(None);
    }

    /// Build the reversed-ack CSR for `collection`'s paths.
    pub(crate) fn build_reversed(&mut self, net: &Network, collection: &PathCollection) {
        self.rev_links.clear();
        self.rev_offsets.clear();
        self.rev_links.reserve(collection.flat_links().len());
        self.rev_offsets.reserve(collection.len() + 1);
        self.rev_offsets.push(0);
        for i in 0..collection.len() {
            self.rev_links.extend(
                collection
                    .links_of(i)
                    .iter()
                    .rev()
                    .map(|&lk| net.reverse_link(lk)),
            );
            self.rev_offsets.push(self.rev_links.len() as u32);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_buf_keeps_capacity_across_lifetimes() {
        let mut buf = SpecBuf::default();
        let links = [0u32, 1, 2];
        {
            let mut v = buf.take();
            for i in 0..100u64 {
                v.push(TransmissionSpec {
                    links: &links,
                    start: 0,
                    wavelength: 0,
                    priority: i,
                    length: 1,
                });
            }
            buf.put(v);
        }
        {
            let other_links = vec![5u32, 6];
            let v = buf.take();
            assert!(v.capacity() >= 100, "capacity must survive the roundtrip");
            assert!(v.is_empty());
            let mut v: Vec<TransmissionSpec<'_>> = v;
            v.push(TransmissionSpec {
                links: &other_links,
                start: 1,
                wavelength: 0,
                priority: 0,
                length: 1,
            });
            buf.put(v);
        }
    }

    #[test]
    fn prepare_rebuilds_only_on_link_count_change() {
        let mut ws = ProtocolWorkspace::new();
        ws.prepare(4, 8, RouterConfig::serve_first(2), 1, false, &None, &None);
        assert_eq!(ws.engine.as_ref().unwrap().link_count(), 4);
        assert!(ws.ack_engine.is_none());
        ws.prepare(4, 8, RouterConfig::priority(1), 1, true, &None, &None);
        assert_eq!(ws.engine.as_ref().unwrap().link_count(), 4);
        assert_eq!(ws.ack_engine.as_ref().unwrap().link_count(), 4);
        ws.prepare(9, 8, RouterConfig::serve_first(2), 4, false, &None, &None);
        assert_eq!(ws.engine.as_ref().unwrap().link_count(), 9);
        assert_eq!(ws.engine.as_ref().unwrap().shards(), 4);
    }
}
