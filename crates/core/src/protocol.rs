//! The executable trial-and-failure protocol (§1.3).

use crate::priority::{PriorityStrategy, WavelengthStrategy};
use crate::schedule::{DelaySchedule, ScheduleCtx};
use crate::workspace::ProtocolWorkspace;
use optical_obs::{NullSink, Sink};
use optical_paths::{CollectionMetrics, PathCollection};
use optical_topo::{LinkId, Network};
use optical_wdm::{Fate, RouterConfig, TransmissionSpec};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How acknowledgements are handled.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AckMode {
    /// A worm's source learns of the delivery instantly — the abstraction
    /// used throughout the paper's analysis (which accounts for acks by
    /// doubling the path congestion and reserving a second wavelength
    /// band).
    Ideal,
    /// Acks are worms too: routed back along the reversed path on a
    /// *reserved ack band* of `B` wavelengths (same wavelength index and
    /// priority as the message), subject to the same collision rules. A
    /// lost ack leaves the source active, causing a duplicate delivery in
    /// a later round.
    Simulated {
        /// Ack worm length; `None` means same length `L` as the message
        /// (the paper's round budget `Δ_t + 2(D + L)` implies this).
        ack_len: Option<u32>,
    },
}

/// Everything configurable about a protocol run.
#[derive(Clone, Debug)]
pub struct ProtocolParams {
    /// Router model (bandwidth `B`, collision rule, tie rule).
    pub router: RouterConfig,
    /// Worm length `L` in flits.
    pub worm_len: u32,
    /// Delay-range schedule `Δ_t`.
    pub schedule: DelaySchedule,
    /// Priority assignment (only consulted by priority routers).
    pub priorities: PriorityStrategy,
    /// Wavelength assignment per round (the paper re-randomizes; the
    /// alternatives are ablations).
    pub wavelengths: WavelengthStrategy,
    /// Acknowledgement handling.
    pub ack: AckMode,
    /// Hard cap on rounds (`T`); the run reports failure if worms remain.
    pub max_rounds: u32,
    /// Record per-round blocking maps (who prevented whom) — needed for
    /// witness-tree diagnostics.
    pub record_blocking: bool,
    /// Recompute the surviving collection's path congestion each round —
    /// the observable of Lemma 2.4 / Lemma 2.10 (costs extra time).
    pub record_congestion: bool,
    /// Sparse wavelength conversion (§4 extension): per-link mask of
    /// converter-capable routers, built with
    /// [`optical_wdm::engine::converter_mask`]. Applies to messages and
    /// acks alike. `None` = no conversion anywhere (the paper's setting).
    pub converters: Option<Vec<bool>>,
    /// Failure injection: dead links (fiber cuts). Worms routed across a
    /// dead link die every round, so the run reports failure with the
    /// stranded worms in `remaining` — reroute them with
    /// [`optical_paths::select::bfs::bfs_route_avoiding`] and run again.
    pub dead_links: Option<Vec<bool>>,
    /// Intra-round engine shards (see [`optical_wdm::Engine::set_shards`]):
    /// partition each round's link-contention work across rayon workers.
    /// Outcome and RNG stream are bit-identical for every value; `1` (the
    /// default) keeps the serial kernel.
    pub shards: usize,
}

impl ProtocolParams {
    /// Sensible defaults: paper schedule, random priorities, ideal acks,
    /// 64 rounds.
    pub fn new(router: RouterConfig, worm_len: u32) -> Self {
        ProtocolParams {
            router,
            worm_len,
            schedule: DelaySchedule::paper(),
            priorities: PriorityStrategy::RandomPerRound,
            wavelengths: WavelengthStrategy::RandomPerRound,
            ack: AckMode::Ideal,
            max_rounds: 64,
            record_blocking: false,
            record_congestion: false,
            converters: None,
            dead_links: None,
            shards: 1,
        }
    }
}

/// Per-round observations.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RoundReport {
    /// Round index `t` (1-based).
    pub round: u32,
    /// Delay range `Δ_t` used.
    pub delta: u32,
    /// Active worms at the start of the round.
    pub active_before: usize,
    /// Worms fully delivered this round.
    pub delivered: usize,
    /// Sources that received an acknowledgement (== `delivered` under
    /// ideal acks).
    pub acked: usize,
    /// Worms that arrived truncated (priority-rule partial discards).
    pub truncated: usize,
    /// Budgeted duration `Δ_t + 2(D + L)` of the round (the paper's
    /// accounting).
    pub round_time: u64,
    /// Observed last event time of the forward pass.
    pub forward_makespan: u32,
    /// `failed path → blocking path` (the witness relation), when
    /// recording is on.
    pub blocking: Option<HashMap<u32, u32>>,
    /// Path congestion of the surviving collection *before* this round,
    /// when recording is on.
    pub congestion_before: Option<u32>,
}

/// Result of a full protocol run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Per-round details, in order.
    pub rounds: Vec<RoundReport>,
    /// Total budgeted time `Σ_t (Δ_t + 2(D + L))`.
    pub total_time: u64,
    /// Whether every worm was acknowledged within `max_rounds`.
    pub completed: bool,
    /// Path ids still active at the end (empty iff `completed`).
    pub remaining: Vec<u32>,
    /// For each path id, the round in which its ack arrived.
    pub acked_round: Vec<Option<u32>>,
    /// Deliveries whose ack was lost, causing a retransmission of an
    /// already-delivered worm.
    pub duplicate_deliveries: u64,
    /// Metrics of the full collection (`n`, `D`, `C`, `C̃`).
    pub metrics: CollectionMetrics,
}

impl RunReport {
    /// Number of rounds actually executed.
    pub fn rounds_used(&self) -> u32 {
        self.rounds.len() as u32
    }

    /// Total worms fully delivered at least once (acked or not).
    pub fn delivered_total(&self) -> usize {
        self.rounds.iter().map(|r| r.delivered).sum()
    }

    /// Total transmission *attempts* (worm launches) across all rounds.
    pub fn attempts(&self) -> u64 {
        self.rounds.iter().map(|r| r.active_before as u64).sum()
    }

    /// Goodput in payload flits per time step: `acked worms · L / total
    /// time`. Zero for runs that went nowhere.
    pub fn goodput(&self, worm_len: u32) -> f64 {
        if self.total_time == 0 {
            return 0.0;
        }
        let acked = self.acked_round.iter().filter(|r| r.is_some()).count();
        acked as f64 * worm_len as f64 / self.total_time as f64
    }

    /// Transmission efficiency: fraction of launches that were fully
    /// delivered (1.0 = no optical work wasted on eliminated worms or
    /// duplicates). `None` if nothing was launched.
    pub fn efficiency(&self) -> Option<f64> {
        let attempts = self.attempts();
        (attempts > 0).then(|| self.delivered_total() as f64 / attempts as f64)
    }
}

/// The trial-and-failure protocol bound to a network and path collection.
pub struct TrialAndFailure<'a> {
    net: &'a Network,
    collection: &'a PathCollection,
    params: ProtocolParams,
    metrics: CollectionMetrics,
}

impl<'a> TrialAndFailure<'a> {
    /// Bind the protocol to a routing instance. Computes collection
    /// metrics once up front.
    pub fn new(net: &'a Network, collection: &'a PathCollection, params: ProtocolParams) -> Self {
        assert_eq!(
            net.link_count(),
            collection.link_count(),
            "collection was built over a different network"
        );
        assert!(params.max_rounds >= 1, "need at least one round");
        params.router.validate();
        let metrics = collection.metrics();
        TrialAndFailure {
            net,
            collection,
            params,
            metrics,
        }
    }

    /// The collection metrics (computed at construction).
    pub fn metrics(&self) -> CollectionMetrics {
        self.metrics
    }

    /// The parameters this instance runs with.
    pub fn params(&self) -> &ProtocolParams {
        &self.params
    }

    /// Execute the protocol with a one-shot workspace. Thin wrapper over
    /// [`TrialAndFailure::run_traced`] — loops should hold a
    /// [`ProtocolWorkspace`] and call [`TrialAndFailure::run_with`], and
    /// new call sites should go through `SimBuilder` (see DESIGN §10 for
    /// the entry-point migration note).
    #[doc(hidden)]
    pub fn run(&self, rng: &mut impl Rng) -> RunReport {
        self.run_with(&mut ProtocolWorkspace::new(), rng)
    }

    /// Execute the protocol, reusing `ws`'s engines and round buffers.
    /// Behaviour and RNG stream are identical to [`TrialAndFailure::run`];
    /// nothing is allocated beyond the returned report once the workspace
    /// has warmed up.
    pub fn run_with(&self, ws: &mut ProtocolWorkspace, rng: &mut impl Rng) -> RunReport {
        self.run_traced(ws, rng, &mut NullSink)
    }

    /// The single internal protocol path: [`TrialAndFailure::run_with`]
    /// with an observability [`Sink`]. The sink is monomorphized, never
    /// consumes `rng`, and the [`NullSink`] instantiation is the exact
    /// uninstrumented hot path, so every sink observes the identical run.
    ///
    /// Per round the protocol emits `on_round_start`, one `on_inject` per
    /// active worm, the engine's `on_install` stream, one fate hook per
    /// worm (`on_deliver` / `on_block` / `on_cut`, with blocker indices
    /// translated to stable path ids) and `on_round_end`. The simulated
    /// ack band is deliberately not instrumented — its installs would
    /// pollute the forward-band occupancy signal. Blocks and cuts report
    /// the worm's *launch* wavelength; under conversion the worm may have
    /// been switched en route.
    pub fn run_traced<S: Sink>(
        &self,
        ws: &mut ProtocolWorkspace,
        rng: &mut impl Rng,
        sink: &mut S,
    ) -> RunReport {
        let p = &self.params;
        let n = self.collection.len();
        let b = p.router.bandwidth as u32;
        let d = self.metrics.dilation;
        let l = p.worm_len;

        // Reserve a conflict log only if witness recording is requested.
        let mut fwd_cfg = p.router;
        fwd_cfg.record_conflicts = false;
        let simulated = matches!(p.ack, AckMode::Simulated { .. });
        // Separate ack band: its own engine (its own occupancy).
        ws.prepare(
            self.collection.link_count(),
            self.collection.len(),
            fwd_cfg,
            p.shards,
            simulated,
            &p.converters,
            &p.dead_links,
        );
        if simulated {
            ws.build_reversed(self.net, self.collection);
        }
        let ack_len = match p.ack {
            AckMode::Simulated { ack_len } => ack_len.unwrap_or(l),
            AckMode::Ideal => 0,
        };

        let ProtocolWorkspace {
            engine,
            ack_engine,
            rev_links,
            rev_offsets,
            specs: spec_buf,
            ack_specs: ack_spec_buf,
            ack_owner,
            active,
            priorities,
            wavelengths,
            fixed_wl,
            acked_now,
            retired,
            outcome,
            ack_outcome,
            congestion,
            ..
        } = ws;
        let engine = engine.as_mut().expect("workspace prepared");
        let rev_links: &[LinkId] = rev_links;
        let rev_offsets: &[u32] = rev_offsets;

        // Per-worm fixed wavelength draws — only drawn when the strategy
        // uses them, so the default configuration's RNG stream is
        // unaffected.
        fixed_wl.clear();
        if matches!(p.wavelengths, WavelengthStrategy::FixedPerWorm) {
            fixed_wl.extend((0..n).map(|_| rng.gen_range(0..b) as u16));
        }

        active.clear();
        active.extend(0..n as u32);
        let mut acked_round: Vec<Option<u32>> = vec![None; n];
        let mut rounds: Vec<RoundReport> = Vec::new();
        let mut total_time: u64 = 0;
        let mut duplicate_deliveries: u64 = 0;
        let mut specs = spec_buf.take();
        let mut ack_specs = ack_spec_buf.take();

        for t in 1..=p.max_rounds {
            if active.is_empty() {
                break;
            }
            let ctx = ScheduleCtx {
                n,
                active: active.len(),
                worm_len: l,
                bandwidth: p.router.bandwidth,
                path_congestion: self.metrics.path_congestion,
                dilation: d,
            };
            let delta = p.schedule.delta(t, &ctx);

            let congestion_before = p
                .record_congestion
                .then(|| congestion.path_congestion(self.collection, active));

            p.priorities.assign_into(active, n, rng, priorities);
            p.wavelengths
                .assign_into(active, p.router.bandwidth, fixed_wl, rng, wavelengths);
            specs.clear();
            specs.extend(active.iter().zip(priorities.iter().zip(&*wavelengths)).map(
                |(&pid, (&prio, &wl))| TransmissionSpec {
                    links: self.collection.links_of(pid as usize),
                    start: rng.gen_range(0..delta),
                    wavelength: wl,
                    priority: prio,
                    length: l,
                },
            ));

            sink.on_round_start(t, active.len() as u32, delta);
            if S::ENABLED {
                for (k, &pid) in active.iter().enumerate() {
                    sink.on_inject(t, pid, specs[k].wavelength, specs[k].start);
                }
            }

            engine.run_into_traced(&specs, rng, outcome, sink);

            // Deliveries and (optionally) physical acks.
            acked_now.clear(); // indices into `active`
            let mut delivered = 0usize;
            let mut truncated = 0usize;
            if simulated {
                let ack_eng = ack_engine.as_mut().expect("workspace prepared");
                ack_specs.clear();
                ack_owner.clear();
                for (k, r) in outcome.results.iter().enumerate() {
                    match r.fate {
                        Fate::Delivered { completed_at } => {
                            delivered += 1;
                            let pid = active[k] as usize;
                            let rev = &rev_links
                                [rev_offsets[pid] as usize..rev_offsets[pid + 1] as usize];
                            ack_specs.push(TransmissionSpec {
                                links: rev,
                                start: completed_at + 1,
                                wavelength: specs[k].wavelength,
                                priority: specs[k].priority,
                                length: ack_len,
                            });
                            ack_owner.push(k as u32);
                        }
                        Fate::Truncated { .. } => truncated += 1,
                        Fate::Eliminated { .. } => {}
                    }
                }
                ack_eng.run_into(&ack_specs, rng, ack_outcome);
                for (a, r) in ack_outcome.results.iter().enumerate() {
                    if r.fate.is_delivered() {
                        acked_now.push(ack_owner[a]);
                    } else {
                        duplicate_deliveries += 1;
                    }
                }
            } else {
                for (k, r) in outcome.results.iter().enumerate() {
                    match r.fate {
                        Fate::Delivered { .. } => {
                            delivered += 1;
                            acked_now.push(k as u32);
                        }
                        Fate::Truncated { .. } => truncated += 1,
                        Fate::Eliminated { .. } => {}
                    }
                }
            }

            let blocking = p.record_blocking.then(|| {
                let mut map = HashMap::new();
                for (k, r) in outcome.results.iter().enumerate() {
                    if !r.fate.is_delivered() {
                        if let Some(blocker) = r.first_blocker {
                            map.insert(active[k], active[blocker as usize]);
                        }
                    }
                }
                map
            });

            if S::ENABLED {
                for (k, r) in outcome.results.iter().enumerate() {
                    let pid = active[k];
                    let links = self.collection.links_of(pid as usize);
                    let blocker = r.first_blocker.map(|b| active[b as usize]);
                    match r.fate {
                        Fate::Delivered { completed_at } => sink.on_deliver(t, pid, completed_at),
                        Fate::Eliminated { at_edge, at_time } => sink.on_block(
                            t,
                            pid,
                            links[at_edge as usize],
                            specs[k].wavelength,
                            at_time,
                            blocker,
                        ),
                        Fate::Truncated {
                            delivered_flits,
                            cut_at_edge,
                        } => sink.on_cut(
                            t,
                            pid,
                            links[cut_at_edge as usize],
                            specs[k].wavelength,
                            delivered_flits,
                            blocker,
                        ),
                    }
                }
            }
            sink.on_round_end(t, delivered as u32, (active.len() - delivered) as u32);

            let round_time = delta as u64 + 2 * (d as u64 + l as u64);
            total_time += round_time;
            rounds.push(RoundReport {
                round: t,
                delta,
                active_before: active.len(),
                delivered,
                acked: acked_now.len(),
                truncated,
                round_time,
                forward_makespan: outcome.makespan,
                blocking,
                congestion_before,
            });

            // Retire acknowledged worms (indices are into `active`),
            // via a reused mask instead of a per-round hash set.
            for &k in acked_now.iter() {
                acked_round[active[k as usize] as usize] = Some(t);
            }
            retired.clear();
            retired.resize(active.len(), false);
            for &k in acked_now.iter() {
                retired[k as usize] = true;
            }
            let mut idx = 0usize;
            active.retain(|_| {
                let keep = !retired[idx];
                idx += 1;
                keep
            });
        }

        spec_buf.put(specs);
        ack_spec_buf.put(ack_specs);
        RunReport {
            total_time,
            completed: active.is_empty(),
            remaining: active.clone(),
            acked_round,
            duplicate_deliveries,
            metrics: self.metrics,
            rounds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optical_paths::Path;
    use optical_topo::topologies;
    use optical_wdm::TieRule;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    /// A bundle of `k` identical paths over a chain — the paper's type-2
    /// structure in miniature.
    fn bundle(k: usize, len: usize) -> (Network, PathCollection) {
        let net = topologies::chain(len + 1);
        let nodes: Vec<u32> = (0..=len as u32).collect();
        let mut c = PathCollection::for_network(&net);
        for _ in 0..k {
            c.push(Path::from_nodes(&net, &nodes));
        }
        (net, c)
    }

    #[test]
    fn single_worm_finishes_in_one_round() {
        let (net, coll) = bundle(1, 5);
        let params = ProtocolParams::new(RouterConfig::serve_first(1), 3);
        let proto = TrialAndFailure::new(&net, &coll, params);
        let report = proto.run(&mut rng(0));
        assert!(report.completed);
        assert_eq!(report.rounds_used(), 1);
        assert_eq!(report.acked_round[0], Some(1));
        assert_eq!(report.duplicate_deliveries, 0);
    }

    #[test]
    fn bundle_drains_over_rounds() {
        let (net, coll) = bundle(32, 6);
        let mut params = ProtocolParams::new(RouterConfig::serve_first(2), 4);
        params.max_rounds = 200;
        let proto = TrialAndFailure::new(&net, &coll, params);
        let report = proto.run(&mut rng(1));
        assert!(report.completed, "32 worms over a single path must drain");
        assert!(report.rounds_used() > 1, "they cannot all fit in one round");
        // Active counts are non-increasing.
        let counts: Vec<usize> = report.rounds.iter().map(|r| r.active_before).collect();
        assert!(counts.windows(2).all(|w| w[1] <= w[0]));
        // Everyone got an ack round.
        assert!(report.acked_round.iter().all(|r| r.is_some()));
    }

    #[test]
    fn priority_routers_complete_too() {
        let (net, coll) = bundle(16, 5);
        let mut params = ProtocolParams::new(RouterConfig::priority(1), 2);
        params.max_rounds = 300;
        let proto = TrialAndFailure::new(&net, &coll, params);
        let report = proto.run(&mut rng(2));
        assert!(report.completed);
    }

    #[test]
    fn zero_bandwidth_equivalent_small_delta_fails_gracefully() {
        // A schedule too tight to ever separate 8 worms on one path within
        // 2 rounds: the run reports failure with survivors listed.
        let (net, coll) = bundle(8, 4);
        let mut params = ProtocolParams::new(
            RouterConfig::serve_first(1).with_tie(TieRule::AllEliminated),
            4,
        );
        params.schedule = DelaySchedule::Fixed { delta: 1 };
        params.max_rounds = 2;
        let proto = TrialAndFailure::new(&net, &coll, params);
        let report = proto.run(&mut rng(3));
        assert!(!report.completed);
        assert!(!report.remaining.is_empty());
        assert_eq!(report.rounds_used(), 2);
    }

    #[test]
    fn total_time_is_sum_of_round_budgets() {
        let (net, coll) = bundle(8, 5);
        let mut params = ProtocolParams::new(RouterConfig::serve_first(1), 2);
        params.max_rounds = 100;
        let proto = TrialAndFailure::new(&net, &coll, params);
        let report = proto.run(&mut rng(4));
        let sum: u64 = report.rounds.iter().map(|r| r.round_time).sum();
        assert_eq!(report.total_time, sum);
        let d = coll.dilation() as u64;
        for r in &report.rounds {
            assert_eq!(r.round_time, r.delta as u64 + 2 * (d + 2));
        }
    }

    #[test]
    fn simulated_acks_can_be_lost_and_cause_duplicates() {
        // On identical paths, ack separations mirror message separations,
        // so acks never collide. Ack loss needs paths of *different
        // lengths* sharing a link: the reversed-path offset shifts by
        // 2Δlen − Δpos, so delay pairs exist where both messages get
        // through but their acks collide.
        //   A: 0→1→2→3 (len 3), B: 4→1→2 (len 2), shared link (1,2).
        // With L = 3 and Δ = 8, delays with dA − dB ∈ {−3, −4} deliver
        // both worms forward and collide their acks (≈14% per round).
        let mut b = optical_topo::NetworkBuilder::new("ackloss", 5);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (4, 1)] {
            b.add_edge(u, v);
        }
        let net = b.build();
        let mut coll = PathCollection::for_network(&net);
        coll.push(Path::from_nodes(&net, &[0, 1, 2, 3]));
        coll.push(Path::from_nodes(&net, &[4, 1, 2]));
        let mut params = ProtocolParams::new(RouterConfig::serve_first(1), 3);
        params.ack = AckMode::Simulated { ack_len: None };
        params.schedule = DelaySchedule::Fixed { delta: 8 };
        params.max_rounds = 500;
        let proto = TrialAndFailure::new(&net, &coll, params);
        let mut total_dups = 0u64;
        for seed in 0..40 {
            let report = proto.run(&mut rng(seed));
            total_dups += report.duplicate_deliveries;
            assert!(report.completed, "seed {seed} did not finish");
        }
        assert!(
            total_dups > 0,
            "expected at least one lost ack across 40 runs"
        );
    }

    #[test]
    fn simulated_acks_with_short_acks() {
        let (net, coll) = bundle(4, 4);
        let mut params = ProtocolParams::new(RouterConfig::serve_first(2), 3);
        params.ack = AckMode::Simulated { ack_len: Some(1) };
        params.max_rounds = 200;
        let proto = TrialAndFailure::new(&net, &coll, params);
        assert!(proto.run(&mut rng(5)).completed);
    }

    #[test]
    fn blocking_maps_name_real_paths() {
        let (net, coll) = bundle(8, 5);
        let mut params = ProtocolParams::new(RouterConfig::serve_first(1), 3);
        params.record_blocking = true;
        params.schedule = DelaySchedule::Fixed { delta: 2 };
        params.max_rounds = 300;
        let proto = TrialAndFailure::new(&net, &coll, params);
        let report = proto.run(&mut rng(6));
        let mut saw_edge = false;
        for r in &report.rounds {
            let blocking = r.blocking.as_ref().expect("recording on");
            for (&loser, &winner) in blocking {
                assert_ne!(loser, winner, "a worm cannot block itself");
                assert!((loser as usize) < coll.len() && (winner as usize) < coll.len());
                saw_edge = true;
            }
        }
        assert!(saw_edge, "a δ=2 bundle of 8 must produce conflicts");
    }

    #[test]
    fn congestion_recording_tracks_decay() {
        let (net, coll) = bundle(24, 5);
        let mut params = ProtocolParams::new(RouterConfig::serve_first(1), 2);
        params.record_congestion = true;
        params.max_rounds = 400;
        let proto = TrialAndFailure::new(&net, &coll, params);
        let report = proto.run(&mut rng(7));
        assert!(report.completed);
        let cong: Vec<u32> = report
            .rounds
            .iter()
            .map(|r| r.congestion_before.unwrap())
            .collect();
        assert_eq!(cong[0], 23);
        assert!(
            cong.windows(2).all(|w| w[1] <= w[0]),
            "congestion never grows"
        );
    }

    #[test]
    fn rerandomized_wavelengths_beat_fixed_assignment() {
        // A bundle with B = 4 and a tight delay range: with per-round
        // re-randomization, colliding worms likely separate next round;
        // with fixed wavelengths, worms sharing a wavelength keep
        // colliding and only delays can save them. Re-randomization must
        // drain the bundle in fewer rounds on average.
        use crate::priority::WavelengthStrategy;
        let (net, coll) = bundle(16, 5);
        let mut fixed_rounds = 0u32;
        let mut random_rounds = 0u32;
        for seed in 0..15 {
            for (strategy, acc) in [
                (WavelengthStrategy::RandomPerRound, &mut random_rounds),
                (WavelengthStrategy::FixedPerWorm, &mut fixed_rounds),
            ] {
                let mut params = ProtocolParams::new(RouterConfig::serve_first(4), 3);
                params.schedule = DelaySchedule::Fixed { delta: 6 };
                params.wavelengths = strategy;
                params.max_rounds = 2000;
                let proto = TrialAndFailure::new(&net, &coll, params);
                let report = proto.run(&mut rng(seed));
                assert!(report.completed);
                *acc += report.rounds_used();
            }
        }
        assert!(
            random_rounds < fixed_rounds,
            "re-randomized ({random_rounds}) should beat fixed ({fixed_rounds})"
        );
    }

    #[test]
    fn by_path_id_wavelengths_complete() {
        use crate::priority::WavelengthStrategy;
        let (net, coll) = bundle(12, 4);
        let mut params = ProtocolParams::new(RouterConfig::serve_first(3), 2);
        params.wavelengths = WavelengthStrategy::ByPathId;
        params.max_rounds = 500;
        let proto = TrialAndFailure::new(&net, &coll, params);
        assert!(proto.run(&mut rng(3)).completed);
    }

    #[test]
    fn throughput_accounting() {
        let (net, coll) = bundle(8, 5);
        let mut params = ProtocolParams::new(RouterConfig::serve_first(1), 4);
        params.max_rounds = 200;
        let proto = TrialAndFailure::new(&net, &coll, params);
        let report = proto.run(&mut rng(77));
        assert!(report.completed);
        // Attempts: first round launches all 8, later rounds fewer.
        assert!(report.attempts() >= 8);
        let eff = report.efficiency().unwrap();
        assert!(eff > 0.0 && eff <= 1.0, "efficiency {eff}");
        let gp = report.goodput(4);
        assert!(gp > 0.0 && gp <= 8.0 * 4.0, "goodput {gp}");
        // Empty run: zero everything.
        let empty_coll = PathCollection::for_network(&net);
        let params = ProtocolParams::new(RouterConfig::serve_first(1), 4);
        let proto = TrialAndFailure::new(&net, &empty_coll, params);
        let empty = proto.run(&mut rng(0));
        assert_eq!(empty.goodput(4), 0.0);
        assert_eq!(empty.efficiency(), None);
    }

    #[test]
    fn sparse_converters_speed_up_first_round() {
        // A big bundle with a tight fixed Δ: with converters at every
        // node and B = 4, first-round deliveries should beat the
        // conversion-free baseline across seeds.
        let (net, coll) = bundle(24, 6);
        let schedule = DelaySchedule::Fixed { delta: 10 };
        let mut with_conv = 0usize;
        let mut without = 0usize;
        for seed in 0..15 {
            let mut params = ProtocolParams::new(RouterConfig::serve_first(4), 3);
            params.schedule = schedule;
            params.max_rounds = 1;
            let proto = TrialAndFailure::new(&net, &coll, params.clone());
            without += proto.run(&mut rng(seed)).rounds[0].delivered;

            params.converters = Some(optical_wdm::engine::converter_mask(&net, |_| true));
            let proto = TrialAndFailure::new(&net, &coll, params);
            with_conv += proto.run(&mut rng(seed)).rounds[0].delivered;
        }
        assert!(
            with_conv > without,
            "converters ({with_conv}) should beat fixed wavelengths ({without})"
        );
    }

    #[test]
    fn converters_complete_with_simulated_acks() {
        let (net, coll) = bundle(8, 5);
        let mut params = ProtocolParams::new(RouterConfig::priority(2), 3);
        params.ack = AckMode::Simulated { ack_len: Some(1) };
        params.converters = Some(optical_wdm::engine::converter_mask(&net, |v| v % 2 == 0));
        params.max_rounds = 300;
        let proto = TrialAndFailure::new(&net, &coll, params);
        assert!(proto.run(&mut rng(5)).completed);
    }

    #[test]
    fn empty_collection_completes_instantly() {
        let net = topologies::chain(3);
        let coll = PathCollection::for_network(&net);
        let params = ProtocolParams::new(RouterConfig::serve_first(1), 2);
        let proto = TrialAndFailure::new(&net, &coll, params);
        let report = proto.run(&mut rng(8));
        assert!(report.completed);
        assert_eq!(report.rounds_used(), 0);
        assert_eq!(report.total_time, 0);
    }

    #[test]
    fn zero_length_paths_complete_in_round_one() {
        let net = topologies::chain(3);
        let mut coll = PathCollection::for_network(&net);
        coll.push(Path::from_nodes(&net, &[1]));
        coll.push(Path::from_nodes(&net, &[2]));
        let params = ProtocolParams::new(RouterConfig::serve_first(1), 4);
        let proto = TrialAndFailure::new(&net, &coll, params);
        let report = proto.run(&mut rng(9));
        assert!(report.completed);
        assert_eq!(report.rounds_used(), 1);
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let (net, coll) = bundle(16, 6);
        let mut params = ProtocolParams::new(RouterConfig::serve_first(2), 3);
        params.max_rounds = 200;
        let proto = TrialAndFailure::new(&net, &coll, params);
        let a = proto.run(&mut rng(42));
        let b = proto.run(&mut rng(42));
        assert_eq!(a.total_time, b.total_time);
        assert_eq!(a.rounds_used(), b.rounds_used());
        assert_eq!(a.acked_round, b.acked_round);
    }

    #[test]
    fn reused_workspace_is_bit_identical() {
        // One workspace across heterogeneous runs (congestion/blocking
        // recording, simulated acks) must reproduce the fresh-workspace
        // reports exactly, RNG stream included.
        let (net, coll) = bundle(16, 6);
        let mut ws = ProtocolWorkspace::new();
        for seed in 0..3 {
            let mut params = ProtocolParams::new(RouterConfig::serve_first(2), 3);
            params.max_rounds = 200;
            params.record_congestion = true;
            params.record_blocking = true;
            let proto = TrialAndFailure::new(&net, &coll, params);
            assert_eq!(
                proto.run(&mut rng(seed)),
                proto.run_with(&mut ws, &mut rng(seed))
            );

            let mut params = ProtocolParams::new(RouterConfig::serve_first(2), 3);
            params.max_rounds = 300;
            params.ack = AckMode::Simulated { ack_len: None };
            let proto = TrialAndFailure::new(&net, &coll, params);
            assert_eq!(
                proto.run(&mut rng(seed)),
                proto.run_with(&mut ws, &mut rng(seed))
            );
        }
    }

    #[test]
    #[should_panic(expected = "different network")]
    fn mismatched_network_rejected() {
        let net = topologies::chain(3);
        let other = topologies::chain(9);
        let coll = PathCollection::for_network(&other);
        TrialAndFailure::new(
            &net,
            &coll,
            ProtocolParams::new(RouterConfig::serve_first(1), 2),
        );
    }
}
