//! Versioned snapshot/restore: bit-exact checkpoints for long runs.
//!
//! Long steady-state and churn runs ([`SteadyRun`], [`Churn`]) lose
//! everything on restart. This module gives every piece of live state a
//! uniform, versioned persistence surface:
//!
//! * [`Snapshot`] — the trait: a type exports a serde-able
//!   [`Snapshot::State`], wrapped by [`Snapshot::snapshot`] in a
//!   [`Versioned`] envelope whose [`SnapshotHeader`] carries a format
//!   version, a kind string, and a config [`Fingerprint`].
//! * [`Snapshot::restore`] — the inverse: checks the header (format
//!   version, kind), then rebuilds the value, rejecting inconsistent
//!   payloads with a typed [`RestoreError`] instead of undefined
//!   behaviour. Context holders (a resuming serving loop) additionally
//!   compare the stored fingerprint against the live
//!   topology/parameters via [`SnapshotHeader::expect`].
//! * [`rng::RngState`] / [`rng::PersistRng`] — exact capture of the
//!   simulation RNG (seed, stream, word position) so a resumed run
//!   observes the *identical* random stream the uninterrupted run
//!   would have.
//!
//! The headline contract, pinned by `tests/checkpoint_resume.rs`:
//! snapshot at round R, restore in a fresh process, finish — and the
//! final report, latency/wait sketches, and RNG stream are
//! bit-identical to the uninterrupted run, for both the steady-state
//! serving loop and online-RWA churn.
//!
//! ## The config-fingerprint contract
//!
//! A [`Fingerprint`] is a 64-bit FNV-1a hash over the `Debug`
//! rendering of the configuration that *shapes* a run: topology
//! dimensions, router config, schedule, horizon, traffic mix,
//! admission policy. It is an integrity check against honest mistakes
//! (resuming a checkpoint against the wrong topology or a retuned
//! parameter sweep), **not** a cryptographic commitment. Knobs that
//! cannot change the bit-stream of results — checkpoint cadence, shard
//! count (sharding is bit-identical at any count) — are deliberately
//! excluded, so a run checkpointed at one cadence can resume at
//! another. Closures (route samplers) cannot be fingerprinted; the
//! caller must resume with the same sampler, as documented on each
//! resume entry point.
//!
//! [`SteadyRun`]: crate::continuous::SteadyRun
//! [`Churn`]: ../../optical_baselines/rwa/struct.Churn.html

pub mod rng;

use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Current snapshot envelope format version. Bumped whenever the
/// serialized layout of any [`Snapshot::State`] changes incompatibly;
/// [`Snapshot::restore`] rejects envelopes from any other version.
pub const FORMAT_VERSION: u32 = 1;

/// 64-bit FNV-1a digest of a configuration's `Debug` rendering.
///
/// See the [module docs](self#the-config-fingerprint-contract) for what
/// is (and is not) folded in. Stable across processes for the same
/// build; `Debug` renderings are deterministic for the plain-data
/// config types used here.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Fingerprint(pub u64);

impl Fingerprint {
    /// Fingerprint the `Debug` rendering of `value`.
    pub fn of_debug<T: fmt::Debug>(value: &T) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in format!("{value:?}").bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Fingerprint(h)
    }
}

impl fmt::Debug for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fingerprint({:#018x})", self.0)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#018x}", self.0)
    }
}

/// Header of every serialized snapshot: enough to refuse a payload
/// before touching its state.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotHeader {
    /// Envelope format version ([`FORMAT_VERSION`] at capture time).
    pub format_version: u32,
    /// What kind of state this is ([`Snapshot::KIND`]).
    pub kind: String,
    /// Fingerprint of the configuration the state was captured under.
    pub fingerprint: Fingerprint,
}

impl SnapshotHeader {
    /// Check this header against what a resuming context expects:
    /// format version, kind, and the fingerprint of the *live*
    /// configuration. Returns the first mismatch as a typed error.
    pub fn expect(&self, kind: &str, fingerprint: Fingerprint) -> Result<(), RestoreError> {
        if self.format_version != FORMAT_VERSION {
            return Err(RestoreError::FormatVersion {
                found: self.format_version,
                supported: FORMAT_VERSION,
            });
        }
        if self.kind != kind {
            return Err(RestoreError::Kind {
                found: self.kind.clone(),
                expected: kind.to_string(),
            });
        }
        if self.fingerprint != fingerprint {
            return Err(RestoreError::Fingerprint {
                found: self.fingerprint,
                expected: fingerprint,
            });
        }
        Ok(())
    }
}

/// A snapshot payload together with its [`SnapshotHeader`]. This is the
/// unit that goes to disk (any serde format; the CLI uses JSON).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Versioned<T> {
    /// Version + kind + fingerprint; checked before `state` is used.
    pub header: SnapshotHeader,
    /// The captured state itself.
    pub state: T,
}

/// Why a snapshot refused to restore. Every variant is an honest,
/// typed rejection — restoring a mismatched or corrupt payload never
/// panics the deserializer into inconsistent state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RestoreError {
    /// The envelope was written by an incompatible format version.
    FormatVersion {
        /// Version found in the header.
        found: u32,
        /// The version this build supports.
        supported: u32,
    },
    /// The envelope holds a different kind of state (e.g. a churn
    /// checkpoint fed to the steady-state resume path).
    Kind {
        /// Kind string found in the header.
        found: String,
        /// Kind the restore path expected.
        expected: String,
    },
    /// The snapshot was captured under a different configuration
    /// (topology dimensions, router, schedule, mix, …) than the one it
    /// is being restored against.
    Fingerprint {
        /// Fingerprint stored in the snapshot.
        found: Fingerprint,
        /// Fingerprint of the live configuration.
        expected: Fingerprint,
    },
    /// The payload is internally inconsistent (out-of-range indices,
    /// mismatched column lengths, …).
    Invalid(String),
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::FormatVersion { found, supported } => write!(
                f,
                "snapshot format version {found} is not supported (this build reads {supported})"
            ),
            RestoreError::Kind { found, expected } => {
                write!(f, "snapshot holds {found:?} state, expected {expected:?}")
            }
            RestoreError::Fingerprint { found, expected } => write!(
                f,
                "snapshot was captured under config {found}, live config is {expected}; \
                 topology/parameters must match to resume"
            ),
            RestoreError::Invalid(why) => write!(f, "snapshot payload is invalid: {why}"),
        }
    }
}

impl std::error::Error for RestoreError {}

/// Versioned, fingerprinted snapshot/restore.
///
/// Implementors expose their complete live state as a serde-able
/// [`Snapshot::State`]; the provided [`snapshot`](Snapshot::snapshot) /
/// [`restore`](Snapshot::restore) pair wraps it in (and checks it out
/// of) the [`Versioned`] envelope. `restore(x.snapshot())` must
/// reproduce a value that behaves bit-identically to `x` under every
/// subsequent operation — that is the contract the differential resume
/// tests pin.
pub trait Snapshot: Sized {
    /// The serializable image of this type's live state.
    type State: Serialize + DeserializeOwned;

    /// Kind tag written into the header (one per implementing type).
    const KIND: &'static str;

    /// Fingerprint of the configuration this value runs under.
    fn fingerprint(&self) -> Fingerprint;

    /// Capture the complete live state.
    fn state(&self) -> Self::State;

    /// Rebuild a value from captured state, validating internal
    /// consistency. Header checks have already happened by the time
    /// this runs.
    fn from_state(state: Self::State) -> Result<Self, RestoreError>;

    /// Capture state wrapped in a versioned, fingerprinted envelope.
    fn snapshot(&self) -> Versioned<Self::State> {
        Versioned {
            header: SnapshotHeader {
                format_version: FORMAT_VERSION,
                kind: Self::KIND.to_string(),
                fingerprint: self.fingerprint(),
            },
            state: self.state(),
        }
    }

    /// Check the envelope header (format version, kind) and rebuild the
    /// value. Callers holding live context should *additionally* verify
    /// the fingerprint with [`SnapshotHeader::expect`]; self-describing
    /// types (whose config travels inside `State`) are fully checked
    /// here.
    fn restore(snap: Versioned<Self::State>) -> Result<Self, RestoreError> {
        if snap.header.format_version != FORMAT_VERSION {
            return Err(RestoreError::FormatVersion {
                found: snap.header.format_version,
                supported: FORMAT_VERSION,
            });
        }
        if snap.header.kind != Self::KIND {
            return Err(RestoreError::Kind {
                found: snap.header.kind,
                expected: Self::KIND.to_string(),
            });
        }
        let value = Self::from_state(snap.state)?;
        let fp = value.fingerprint();
        if fp != snap.header.fingerprint {
            return Err(RestoreError::Fingerprint {
                found: snap.header.fingerprint,
                expected: fp,
            });
        }
        Ok(value)
    }
}

// ---------------------------------------------------------------------------
// Engine: configuration-level snapshot.
//
// The wdm engine's scratch (BusyMasks occupancy words, per-word epoch
// stamps, SoA worm state, schedule buffers) is *functionally stateless
// between rounds*: epoch stamping means a cleared mask is
// indistinguishable from a freshly allocated one, and every buffer is
// rebuilt from the next round's specs. A snapshot therefore carries
// exactly the configuration needed to rebuild an engine that behaves
// bit-identically from the next round boundary — which is what the
// steady-state resume differential test proves end to end. Runtime
// overlays (dead-link masks, fault plans, converter masks, shard
// weights) are owner-level configuration and are reapplied by whoever
// owns the engine (e.g. `ProtocolWorkspace::prepare`).
// ---------------------------------------------------------------------------

/// Serializable image of a wdm [`Engine`](optical_wdm::Engine): its
/// configuration; scratch is reconstructible (see the impl notes on
/// [`Snapshot`] for `Engine`).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineState {
    /// Number of directed links the engine resolves over.
    pub link_count: usize,
    /// Router configuration (bandwidth, collision rule, tie rule).
    pub config: optical_wdm::RouterConfig,
    /// Shard count for intra-round parallel resolution.
    pub shards: usize,
}

impl Snapshot for optical_wdm::Engine {
    type State = EngineState;

    const KIND: &'static str = "wdm-engine/v1";

    fn fingerprint(&self) -> Fingerprint {
        Fingerprint::of_debug(&(self.link_count(), self.config(), self.shards()))
    }

    fn state(&self) -> EngineState {
        EngineState {
            link_count: self.link_count(),
            config: self.config(),
            shards: self.shards(),
        }
    }

    fn from_state(state: EngineState) -> Result<Self, RestoreError> {
        if state.config.bandwidth == 0 {
            return Err(RestoreError::Invalid(
                "engine bandwidth must be at least 1".to_string(),
            ));
        }
        if state.shards == 0 {
            return Err(RestoreError::Invalid(
                "engine shard count must be at least 1".to_string(),
            ));
        }
        let mut engine = optical_wdm::Engine::new(state.link_count, state.config);
        engine.set_shards(state.shards);
        Ok(engine)
    }
}

// ---------------------------------------------------------------------------
// Recovery components: breakers and the dead-letter queue.
// ---------------------------------------------------------------------------

/// Serializable image of the per-link circuit-breaker bank
/// ([`recovery`](crate::recovery) internals). Breaker states travel as
/// `u8` (0 = Closed, 1 = Open, 2 = HalfOpen) because the `BreakerState`
/// enum lives in the serde-free `optical-obs` crate.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BreakersState {
    /// Breaker thresholds.
    pub cfg: crate::recovery::BreakerConfig,
    /// Per-link state machine position (0/1/2 as above).
    pub state: Vec<u8>,
    /// Consecutive blockerless failures while `Closed`.
    pub consec: Vec<u32>,
    /// Round each link's current state was entered.
    pub since: Vec<u32>,
    /// Successful traversals while `HalfOpen`.
    pub successes: Vec<u32>,
    /// Links currently `Open`, in open order.
    pub open_links: Vec<u32>,
    /// Lifetime opens.
    pub opens: u64,
    /// Lifetime half-opens.
    pub half_opens: u64,
    /// Lifetime closes.
    pub closes: u64,
    /// Rounds spent `Open`, summed over transitions out of `Open`.
    pub open_rounds: u64,
}

/// Serializable image of the recovery dead-letter queue: its config,
/// parked letters in capture order, and lifetime counters.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DlqState {
    /// Replay batching and budget knobs.
    pub cfg: crate::recovery::DlqConfig,
    /// Parked letters, capture order preserved.
    pub letters: Vec<crate::recovery::DeadLetter>,
    /// Lifetime letters captured.
    pub enqueued: u64,
    /// Lifetime letters replayed (removed from the queue).
    pub replayed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use optical_wdm::{Engine, RouterConfig};

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let a = Fingerprint::of_debug(&(16usize, RouterConfig::serve_first(2)));
        let b = Fingerprint::of_debug(&(16usize, RouterConfig::serve_first(2)));
        let c = Fingerprint::of_debug(&(16usize, RouterConfig::serve_first(3)));
        let d = Fingerprint::of_debug(&(17usize, RouterConfig::serve_first(2)));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_eq!(format!("{a}"), format!("{:#018x}", a.0));
    }

    #[test]
    fn engine_snapshot_roundtrips() {
        let mut eng = Engine::new(64, RouterConfig::priority(4));
        eng.set_shards(2);
        let snap = eng.snapshot();
        assert_eq!(snap.header.format_version, FORMAT_VERSION);
        assert_eq!(snap.header.kind, <Engine as Snapshot>::KIND);
        let back = Engine::restore(snap).unwrap();
        assert_eq!(back.link_count(), 64);
        assert_eq!(back.config(), RouterConfig::priority(4));
        assert_eq!(back.shards(), 2);
        assert_eq!(back.fingerprint(), eng.fingerprint());
    }

    #[test]
    fn engine_restore_rejects_header_mismatches() {
        let eng = Engine::new(8, RouterConfig::serve_first(1));
        let mut snap = eng.snapshot();
        snap.header.format_version = FORMAT_VERSION + 1;
        assert!(matches!(
            Engine::restore(snap.clone()),
            Err(RestoreError::FormatVersion { found, supported })
                if found == FORMAT_VERSION + 1 && supported == FORMAT_VERSION
        ));
        snap.header.format_version = FORMAT_VERSION;
        snap.header.kind = "not-an-engine".to_string();
        assert!(matches!(
            Engine::restore(snap.clone()),
            Err(RestoreError::Kind { .. })
        ));
        snap.header.kind = <Engine as Snapshot>::KIND.to_string();
        snap.state.config.bandwidth = 0;
        assert!(matches!(
            Engine::restore(snap),
            Err(RestoreError::Invalid(_))
        ));
    }

    #[test]
    fn header_expect_reports_the_first_mismatch() {
        let eng = Engine::new(8, RouterConfig::serve_first(1));
        let snap = eng.snapshot();
        let other = Engine::new(9, RouterConfig::serve_first(1));
        assert!(snap
            .header
            .expect(<Engine as Snapshot>::KIND, eng.fingerprint())
            .is_ok());
        assert!(matches!(
            snap.header
                .expect(<Engine as Snapshot>::KIND, other.fingerprint()),
            Err(RestoreError::Fingerprint { .. })
        ));
        assert!(matches!(
            snap.header.expect("zebra", eng.fingerprint()),
            Err(RestoreError::Kind { .. })
        ));
    }

    #[test]
    fn restore_error_displays_are_informative() {
        let e = RestoreError::Fingerprint {
            found: Fingerprint(1),
            expected: Fingerprint(2),
        };
        let msg = format!("{e}");
        assert!(msg.contains("0x0000000000000001"));
        assert!(msg.contains("topology/parameters"));
        let e = RestoreError::Invalid("bad column".into());
        assert!(format!("{e}").contains("bad column"));
    }
}
