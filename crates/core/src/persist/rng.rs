//! Exact simulation-RNG capture: seed, stream, and word position.
//!
//! Bit-exact resume requires the restored RNG to continue the *same*
//! random stream the uninterrupted run would have observed — not a
//! reseed, the identical position inside the identical keystream.
//! `ChaCha8Rng` (the simulation RNG everywhere in this repo) exposes
//! exactly the three coordinates needed: the 256-bit seed, the 64-bit
//! stream id, and the 128-bit word position. [`RngState`] captures
//! them; [`PersistRng::load_state`] rebuilds a generator whose next
//! draw is bit-identical to the captured one's.

use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Serializable position of a counter-based RNG: everything needed to
/// continue its stream exactly where it left off.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RngState {
    /// The 256-bit seed the generator was created from.
    pub seed: [u8; 32],
    /// ChaCha stream id (distinguishes co-seeded generators).
    pub stream: u64,
    /// Word position inside the keystream (128-bit counter).
    pub word_pos: u128,
}

/// An RNG whose complete state can be captured and restored exactly.
///
/// The contract: after `let s = rng.save_state()`, a fresh
/// `R::load_state(&s)` produces the same draw sequence as the original
/// generator from that point on. Checkpoints embed an [`RngState`] so
/// a resumed run replays the identical stream.
pub trait PersistRng: rand::RngCore + Sized {
    /// Capture the generator's exact position.
    fn save_state(&self) -> RngState;

    /// Rebuild a generator at the captured position.
    fn load_state(state: &RngState) -> Self;
}

impl PersistRng for ChaCha8Rng {
    fn save_state(&self) -> RngState {
        RngState {
            seed: self.get_seed(),
            stream: self.get_stream(),
            word_pos: self.get_word_pos(),
        }
    }

    fn load_state(state: &RngState) -> Self {
        use rand::SeedableRng;
        let mut rng = ChaCha8Rng::from_seed(state.seed);
        rng.set_stream(state.stream);
        rng.set_word_pos(state.word_pos);
        rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, RngCore, SeedableRng};

    #[test]
    fn restored_rng_continues_the_exact_stream() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        // Burn an odd number of draws of mixed width so the word
        // position is mid-block.
        for _ in 0..7 {
            rng.gen::<f64>();
        }
        rng.gen::<u32>();
        let state = rng.save_state();
        let mut twin = ChaCha8Rng::load_state(&state);
        for _ in 0..100 {
            assert_eq!(rng.next_u64(), twin.next_u64());
        }
        // And a fresh restore from the same state starts over at the
        // same point (state capture is by value, not by reference).
        let mut again = ChaCha8Rng::load_state(&state);
        let mut reference = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..7 {
            reference.gen::<f64>();
        }
        reference.gen::<u32>();
        for _ in 0..20 {
            assert_eq!(again.next_u64(), reference.next_u64());
        }
    }

    #[test]
    fn rng_state_serde_roundtrips_through_json() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        rng.set_stream(3);
        for _ in 0..13 {
            rng.gen::<u64>();
        }
        let state = rng.save_state();
        let json = serde_json::to_string(&state).unwrap();
        let back: RngState = serde_json::from_str(&json).unwrap();
        assert_eq!(state, back);
        let mut twin = ChaCha8Rng::load_state(&back);
        assert_eq!(rng.next_u64(), twin.next_u64());
    }
}
