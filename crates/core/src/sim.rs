//! The unified run API: [`SimBuilder`] is the single documented entry
//! point for executing the trial-and-failure protocol, with or without
//! fault recovery, with or without observability.
//!
//! It replaces the ad-hoc struct-literal setup that used to be spread
//! across examples and experiments: configure a builder from a topology
//! and a path collection, attach an optional recovery policy and fault
//! script, then [`SimBuilder::build`] a [`Sim`] and run it — one-shot
//! ([`Sim::run`]), with a reused [`ProtocolWorkspace`] ([`Sim::run_with`]),
//! or instrumented with any [`Sink`] ([`Sim::run_traced`]).
//!
//! ```
//! use optical_core::{SimBuilder, ProtocolWorkspace};
//! use optical_paths::{Path, PathCollection};
//! use optical_topo::topologies;
//! use optical_wdm::RouterConfig;
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//!
//! let net = topologies::ring(8);
//! let mut coll = PathCollection::for_network(&net);
//! for v in 0..8u32 {
//!     coll.push(Path::from_nodes(&net, &[v, (v + 1) % 8, (v + 2) % 8]));
//! }
//! let sim = SimBuilder::new(&net, &coll)
//!     .router(RouterConfig::serve_first(2))
//!     .worm_len(4)
//!     .build();
//! let mut ws = ProtocolWorkspace::new();
//! let report = sim.run_with(&mut ws, &mut ChaCha8Rng::seed_from_u64(7));
//! assert!(report.completed());
//! ```

use crate::priority::{PriorityStrategy, WavelengthStrategy};
use crate::protocol::{AckMode, ProtocolParams, RunReport, TrialAndFailure};
use crate::recovery::{FaultSource, PolicyError, Recovery, RecoveryPolicy, RecoveryReport};
use crate::schedule::DelaySchedule;
use crate::workspace::ProtocolWorkspace;
use optical_obs::{NullSink, Sink};
use optical_paths::PathCollection;
use optical_topo::Network;
use optical_wdm::RouterConfig;
use rand::Rng;

/// Builder for a protocol or recovery run over one routing instance.
///
/// Starts from [`ProtocolParams::new`] defaults (serve-first router with
/// `B = 1`, worm length 4, paper schedule, random priorities and
/// wavelengths, ideal acks, 64 rounds); every setter overrides one knob.
/// Attaching a [`RecoveryPolicy`] and/or a [`FaultSource`] switches the
/// built [`Sim`] to the self-healing recovery loop.
///
/// Observability is attached per run, not per builder: pass any
/// [`Sink`] to [`Sim::run_traced`] (the plain runs use [`NullSink`]).
#[derive(Clone, Debug)]
pub struct SimBuilder<'a> {
    net: &'a Network,
    collection: &'a PathCollection,
    params: ProtocolParams,
    policy: Option<RecoveryPolicy>,
    faults: FaultSource,
}

impl<'a> SimBuilder<'a> {
    /// Start a builder over `net` and `collection` with default
    /// parameters (serve-first, `B = 1`, `L = 4`).
    pub fn new(net: &'a Network, collection: &'a PathCollection) -> Self {
        SimBuilder {
            net,
            collection,
            params: ProtocolParams::new(RouterConfig::serve_first(1), 4),
            policy: None,
            faults: FaultSource::None,
        }
    }

    /// Replace the full parameter block (for call sites that already
    /// carry a [`ProtocolParams`]).
    pub fn params(mut self, params: ProtocolParams) -> Self {
        self.params = params;
        self
    }

    /// Router model: bandwidth `B`, collision rule, tie rule.
    pub fn router(mut self, router: RouterConfig) -> Self {
        self.params.router = router;
        self
    }

    /// Worm length `L` in flits.
    pub fn worm_len(mut self, worm_len: u32) -> Self {
        self.params.worm_len = worm_len;
        self
    }

    /// Delay-range schedule `Δ_t`.
    pub fn schedule(mut self, schedule: DelaySchedule) -> Self {
        self.params.schedule = schedule;
        self
    }

    /// Priority assignment (consulted by priority routers).
    pub fn priorities(mut self, priorities: PriorityStrategy) -> Self {
        self.params.priorities = priorities;
        self
    }

    /// Wavelength assignment per round.
    pub fn wavelengths(mut self, wavelengths: WavelengthStrategy) -> Self {
        self.params.wavelengths = wavelengths;
        self
    }

    /// Acknowledgement handling (recovery runs require
    /// [`AckMode::Ideal`]).
    pub fn ack(mut self, ack: AckMode) -> Self {
        self.params.ack = ack;
        self
    }

    /// Hard cap on rounds `T`.
    pub fn max_rounds(mut self, max_rounds: u32) -> Self {
        self.params.max_rounds = max_rounds;
        self
    }

    /// Record per-round blocking maps (witness diagnostics).
    pub fn record_blocking(mut self, on: bool) -> Self {
        self.params.record_blocking = on;
        self
    }

    /// Recompute surviving path congestion each round.
    pub fn record_congestion(mut self, on: bool) -> Self {
        self.params.record_congestion = on;
        self
    }

    /// Sparse wavelength conversion: per-link converter mask.
    pub fn converters(mut self, mask: Vec<bool>) -> Self {
        self.params.converters = Some(mask);
        self
    }

    /// Static fiber cuts: per-link dead mask.
    pub fn dead_links(mut self, dead: Vec<bool>) -> Self {
        self.params.dead_links = Some(dead);
        self
    }

    /// Intra-round engine shards: partition each round's link-contention
    /// work across `shards` rayon workers (million-node topologies). The
    /// outcome and the RNG stream are **bit-identical for every value** —
    /// all RNG draws happen in the serial merge pass in canonical order
    /// (see DESIGN "Sharded round & RNG contract"). `1` (the default)
    /// keeps the serial kernel; values are clamped to ≥ 1.
    pub fn shards(mut self, shards: usize) -> Self {
        self.params.shards = shards;
        self
    }

    /// Run the self-healing recovery loop with this policy instead of the
    /// plain protocol.
    pub fn recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Attach a dynamic fault script. Implies the recovery loop (with
    /// [`RecoveryPolicy::default`] unless [`SimBuilder::recovery`] was
    /// also called).
    pub fn faults(mut self, faults: FaultSource) -> Self {
        self.faults = faults;
        self
    }

    /// Build the runner, returning a descriptive [`PolicyError`] when
    /// the attached [`RecoveryPolicy`] cannot work (zero thresholds,
    /// empty retry budget, zero breaker probe interval, …).
    ///
    /// # Panics
    /// On programming errors only — mismatched network/collection, zero
    /// rounds, invalid router, or recovery with non-ideal acks (the same
    /// contracts as [`TrialAndFailure::new`] and [`Recovery::try_new`]).
    pub fn try_build(self) -> Result<Sim<'a>, PolicyError> {
        let dynamic_faults = !matches!(self.faults, FaultSource::None);
        if self.policy.is_some() || dynamic_faults {
            let policy = self.policy.unwrap_or_default();
            Ok(Sim::Recovery(
                Recovery::try_new(self.net, self.collection, self.params, policy)?
                    .with_faults(self.faults),
            ))
        } else {
            Ok(Sim::Protocol(TrialAndFailure::new(
                self.net,
                self.collection,
                self.params,
            )))
        }
    }

    /// Build the runner: a [`Sim::Recovery`] when a policy or fault
    /// script was attached, a plain [`Sim::Protocol`] otherwise.
    ///
    /// # Panics
    /// On invalid configuration — mismatched network/collection, zero
    /// rounds, invalid router or policy, or recovery with non-ideal acks.
    /// [`SimBuilder::try_build`] reports policy problems as a typed
    /// [`PolicyError`] instead.
    pub fn build(self) -> Sim<'a> {
        match self.try_build() {
            Ok(sim) => sim,
            Err(e) => panic!("invalid recovery policy: {e}"),
        }
    }
}

/// A built runner: the plain protocol or the recovery loop behind one
/// `run` surface. Construct via [`SimBuilder::build`].
pub enum Sim<'a> {
    /// Plain trial-and-failure (no recovery, no dynamic faults).
    Protocol(TrialAndFailure<'a>),
    /// Self-healing recovery loop.
    Recovery(Recovery<'a>),
}

impl Sim<'_> {
    /// Run instrumented with `sink`, reusing `ws`. Hooks never consume
    /// `rng`; a [`NullSink`] run is bit-identical to [`Sim::run_with`].
    pub fn run_traced<S: Sink>(
        &self,
        ws: &mut ProtocolWorkspace,
        rng: &mut impl Rng,
        sink: &mut S,
    ) -> SimReport {
        match self {
            Sim::Protocol(p) => SimReport::Protocol(p.run_traced(ws, rng, sink)),
            Sim::Recovery(r) => SimReport::Recovery(r.run_traced(ws, rng, sink)),
        }
    }

    /// Run uninstrumented, reusing `ws`'s engines and buffers.
    pub fn run_with(&self, ws: &mut ProtocolWorkspace, rng: &mut impl Rng) -> SimReport {
        self.run_traced(ws, rng, &mut NullSink)
    }

    /// Run with a one-shot workspace (convenience for single runs).
    pub fn run(&self, rng: &mut impl Rng) -> SimReport {
        self.run_with(&mut ProtocolWorkspace::new(), rng)
    }
}

/// Report of a [`Sim`] run: a [`RunReport`] or a [`RecoveryReport`]
/// behind shared accessors.
///
/// Marked `#[non_exhaustive]`: new run modes (and with them new report
/// variants) are added as the simulator grows, so prefer the accessors
/// ([`completed`](Self::completed), [`total_time`](Self::total_time),
/// [`rounds_used`](Self::rounds_used)) or the typed projections
/// ([`as_protocol`](Self::as_protocol) / [`as_recovery`](Self::as_recovery))
/// over matching the variants; a direct `match` needs a `_` arm.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum SimReport {
    /// Report of a plain protocol run.
    Protocol(RunReport),
    /// Report of a recovery run.
    Recovery(RecoveryReport),
}

impl SimReport {
    /// Did every worm make it? (Protocol: all acknowledged; recovery:
    /// delivered directly or after rerouting — none abandoned.)
    pub fn completed(&self) -> bool {
        match self {
            SimReport::Protocol(r) => r.completed,
            SimReport::Recovery(r) => r.outcomes.iter().all(|o| o.is_delivered()),
        }
    }

    /// Total budgeted time across all rounds.
    pub fn total_time(&self) -> u64 {
        match self {
            SimReport::Protocol(r) => r.total_time,
            SimReport::Recovery(r) => r.total_time,
        }
    }

    /// Rounds actually executed.
    pub fn rounds_used(&self) -> u32 {
        match self {
            SimReport::Protocol(r) => r.rounds_used(),
            SimReport::Recovery(r) => r.rounds_used(),
        }
    }

    /// The protocol report, if this was a plain run.
    pub fn as_protocol(&self) -> Option<&RunReport> {
        match self {
            SimReport::Protocol(r) => Some(r),
            SimReport::Recovery(_) => None,
        }
    }

    /// The recovery report, if this was a recovery run.
    pub fn as_recovery(&self) -> Option<&RecoveryReport> {
        match self {
            SimReport::Recovery(r) => Some(r),
            SimReport::Protocol(_) => None,
        }
    }

    /// Unwrap the protocol report.
    ///
    /// # Panics
    /// If this was a recovery run.
    pub fn into_protocol(self) -> RunReport {
        match self {
            SimReport::Protocol(r) => r,
            SimReport::Recovery(_) => panic!("expected a protocol report, got a recovery report"),
        }
    }

    /// Unwrap the recovery report.
    ///
    /// # Panics
    /// If this was a plain protocol run.
    pub fn into_recovery(self) -> RecoveryReport {
        match self {
            SimReport::Recovery(r) => r,
            SimReport::Protocol(_) => panic!("expected a recovery report, got a protocol report"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optical_obs::{CountersSink, EventSink};
    use optical_paths::Path;
    use optical_topo::topologies;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn ring_instance(n: usize) -> (Network, PathCollection) {
        let net = topologies::ring(n);
        let mut coll = PathCollection::for_network(&net);
        for v in 0..n as u32 {
            let nodes = [v, (v + 1) % n as u32, (v + 2) % n as u32];
            coll.push(Path::from_nodes(&net, &nodes));
        }
        (net, coll)
    }

    #[test]
    fn builder_plain_run_matches_trial_and_failure() {
        let (net, coll) = ring_instance(8);
        let sim = SimBuilder::new(&net, &coll)
            .router(RouterConfig::serve_first(2))
            .worm_len(3)
            .max_rounds(100)
            .build();
        assert!(matches!(sim, Sim::Protocol(_)));
        let report = sim.run(&mut ChaCha8Rng::seed_from_u64(11)).into_protocol();

        let mut params = ProtocolParams::new(RouterConfig::serve_first(2), 3);
        params.max_rounds = 100;
        let direct = TrialAndFailure::new(&net, &coll, params).run_with(
            &mut ProtocolWorkspace::new(),
            &mut ChaCha8Rng::seed_from_u64(11),
        );
        assert_eq!(report, direct, "builder must not change the run");
    }

    #[test]
    fn faults_imply_the_recovery_loop() {
        let (net, coll) = ring_instance(8);
        let sim = SimBuilder::new(&net, &coll)
            .max_rounds(50)
            .faults(FaultSource::EveryRound(optical_wdm::FaultPlan::none()))
            .build();
        assert!(matches!(sim, Sim::Recovery(_)));
        let report = sim.run(&mut ChaCha8Rng::seed_from_u64(3));
        assert!(report.as_recovery().is_some());
        assert!(report.as_protocol().is_none());
        assert!(report.completed());
        assert!(report.rounds_used() >= 1);
        assert!(report.total_time() > 0);
    }

    #[test]
    fn traced_run_is_bit_identical_and_counters_reconcile_with_the_report() {
        let (net, coll) = ring_instance(10);
        let sim = SimBuilder::new(&net, &coll)
            .router(RouterConfig::serve_first(1))
            .worm_len(4)
            .max_rounds(200)
            .build();
        let mut ws = ProtocolWorkspace::new();

        let plain = sim
            .run_with(&mut ws, &mut ChaCha8Rng::seed_from_u64(42))
            .into_protocol();
        let counters = CountersSink::new(1);
        let counted = sim
            .run_traced(&mut ws, &mut ChaCha8Rng::seed_from_u64(42), &mut &counters)
            .into_protocol();
        let mut events = EventSink::new();
        let evented = sim
            .run_traced(&mut ws, &mut ChaCha8Rng::seed_from_u64(42), &mut events)
            .into_protocol();
        assert_eq!(plain, counted, "CountersSink must not perturb the run");
        assert_eq!(plain, evented, "EventSink must not perturb the run");

        // CountersSink totals reconcile with the RunReport: every trial
        // either delivered or failed.
        let t = counters.totals();
        assert_eq!(t.trials, plain.attempts(), "one trial per active worm");
        assert_eq!(t.delivered, plain.delivered_total() as u64);
        assert_eq!(
            t.delivered + t.failures(),
            t.trials,
            "failures + deliveries = worm launches"
        );
        assert_eq!(t.rounds, u64::from(plain.rounds_used()));
        assert_eq!(t.fault_kills, 0, "no faults in this instance");

        // The event trace agrees too.
        let trace = optical_obs::report::aggregate(&events.events());
        assert_eq!(trace.injected(), t.trials);
        assert_eq!(trace.delivered(), t.delivered);
        assert_eq!(trace.failures(), t.failures());
    }

    #[test]
    fn try_build_reports_policy_errors_instead_of_panicking() {
        use crate::recovery::{BreakerConfig, PolicyError, RetryPolicy};
        let (net, coll) = ring_instance(6);
        let bad = RecoveryPolicy {
            breaker: Some(BreakerConfig {
                probe_after: 0,
                ..BreakerConfig::default()
            }),
            ..RecoveryPolicy::default()
        };
        let err = SimBuilder::new(&net, &coll)
            .recovery(bad)
            .try_build()
            .err()
            .expect("zero probe interval must be rejected");
        assert_eq!(err, PolicyError::ZeroProbeInterval);
        assert!(err.to_string().contains("probe"), "descriptive message");

        let bad = RecoveryPolicy {
            retry: RetryPolicy {
                budget: Some(0),
                ..RetryPolicy::legacy()
            },
            ..RecoveryPolicy::default()
        };
        assert_eq!(
            SimBuilder::new(&net, &coll).recovery(bad).try_build().err(),
            Some(PolicyError::EmptyRetryBudget)
        );

        // A good policy still builds the recovery runner.
        let sim = SimBuilder::new(&net, &coll)
            .recovery(RecoveryPolicy::default())
            .try_build()
            .expect("default policy is valid");
        assert!(matches!(sim, Sim::Recovery(_)));
    }

    #[test]
    fn recovery_v2_counters_reconcile_with_the_report() {
        use crate::recovery::{
            BackoffMode, BreakerConfig, DlqConfig, FaultSource, Jitter, RetryPolicy,
        };
        use optical_wdm::FaultPlan;
        // Chaos-flavoured instance exercising every v2 path: permanent
        // cuts (guaranteed blockerless failures), breakers, DLQ, attempt
        // budget, rate limiter, jittered skip-rounds backoff. Learning is
        // off (confirm_after) so the breakers and the queue do the work.
        let (net, coll) = ring_instance(10);
        let cut_a = net.link_between(1, 2).unwrap();
        let cut_b = net.link_between(5, 6).unwrap();
        let plan = FaultPlan::none().down(cut_a, 0).down(cut_b, 0);
        let policy = RecoveryPolicy {
            confirm_after: 1000, // learn nothing; breakers do the work
            stranded_after: 6,
            retry: RetryPolicy {
                jitter: Jitter::Full,
                mode: BackoffMode::SkipRounds,
                budget: Some(3),
                rate_limit: Some(2),
                ..RetryPolicy::legacy()
            },
            breaker: Some(BreakerConfig {
                open_after: 1,
                probe_after: 3,
                close_after: 1,
            }),
            dlq: Some(DlqConfig::default()),
            ..RecoveryPolicy::default()
        };
        let sim = SimBuilder::new(&net, &coll)
            .max_rounds(300)
            .recovery(policy)
            .faults(FaultSource::EveryRound(plan))
            .build();
        let mut ws = ProtocolWorkspace::new();
        let plain = sim
            .run_with(&mut ws, &mut ChaCha8Rng::seed_from_u64(21))
            .into_recovery();
        let counters = CountersSink::new(1);
        let report = sim
            .run_traced(&mut ws, &mut ChaCha8Rng::seed_from_u64(21), &mut &counters)
            .into_recovery();
        assert_eq!(plain, report, "CountersSink must not perturb the run");

        // Every v2 report counter reconciles with the sink, mirroring
        // the trials/failures reconciliation of the plain protocol.
        let t = counters.totals();
        assert_eq!(t.breaker_opens, report.breaker_opens);
        assert_eq!(t.breaker_half_opens, report.breaker_half_opens);
        assert_eq!(t.breaker_closes, report.breaker_closes);
        assert_eq!(t.breaker_open_rounds, report.breaker_open_rounds);
        assert_eq!(t.breaker_transitions(), report.breaker_transitions());
        assert_eq!(t.breaker_holds, report.breaker_holds);
        assert_eq!(t.budget_exhausted, report.budget_exhausted);
        assert_eq!(t.rate_limited, report.rate_limited);
        assert_eq!(t.dlq_enqueued, report.dlq_enqueued);
        assert_eq!(t.dlq_replayed, report.dlq_replayed);
        assert_eq!(t.dlq_depth(), report.dead_letters.len() as u64);
        assert!(
            t.breaker_opens > 0,
            "the scenario must actually exercise the breakers"
        );
        assert!(t.dlq_enqueued > 0, "and the dead-letter queue");
    }

    #[test]
    fn recovery_counters_count_dead_links_and_fault_kills() {
        let (net, coll) = ring_instance(8);
        // Kill one directed link statically; the recovery loop must learn
        // it and reroute around it.
        let mut dead = vec![false; net.link_count()];
        dead[0] = true;
        let sim = SimBuilder::new(&net, &coll)
            .max_rounds(120)
            .dead_links(dead)
            .recovery(RecoveryPolicy::default())
            .build();
        let counters = CountersSink::new(1);
        let mut ws = ProtocolWorkspace::new();
        let report = sim
            .run_traced(&mut ws, &mut ChaCha8Rng::seed_from_u64(9), &mut &counters)
            .into_recovery();
        assert!(report.outcomes.iter().all(|o| o.is_delivered()));
        let t = counters.totals();
        assert!(t.fault_kills > 0, "the dead link must kill some trials");
        assert!(t.dead_links >= 1, "the dead link must be condemned");
        assert!(t.reroutes >= 1, "stranded worms must be rerouted");
        assert_eq!(t.delivered, report.outcomes.len() as u64);
    }
}
