//! Per-tenant arrival processes for steady-state serving.
//!
//! The event-driven engine does not flip a coin per source per round —
//! it asks each source's [`ArrivalProcess`] for the *round of its next
//! arrival* and sleeps the source until then. For Bernoulli traffic the
//! inter-arrival gap is geometric, so one draw replaces an expected
//! `1/p` per-round coin flips; that is the whole sparse-duty-cycle win.
//!
//! **Determinism contract.** Every process draws only from the RNG it is
//! handed, with a fixed draw order. At certainty (`prob >= 1`) the
//! Bernoulli process schedules the next round *without consuming the
//! RNG*, and [`bernoulli_step`] gives the round-stepped path the same
//! no-draw-at-certainty semantics — this is what makes the full-load
//! round-stepped and event-driven RNG streams bit-identical regardless
//! of how the underlying `rand` implementation specializes
//! `gen_bool(1.0)`.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// One coin flip of the round-stepped Bernoulli reference path.
///
/// Semantically `rng.gen_bool(prob)`, but certainty and impossibility
/// are answered without touching the RNG so the full-load (`prob >= 1`)
/// round-stepped stream matches the event-driven path draw for draw.
#[inline]
pub fn bernoulli_step(prob: f64, rng: &mut impl Rng) -> bool {
    if prob >= 1.0 {
        true
    } else if prob <= 0.0 {
        false
    } else {
        rng.gen_bool(prob)
    }
}

/// Per-source mutable state an [`ArrivalProcess`] threads between
/// arrivals (burst position for on/off traffic; unused by memoryless
/// processes).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SourceState {
    /// Arrivals left in the current burst (on/off traffic).
    burst_left: u32,
}

/// A stationary (or periodically modulated) arrival process, evaluated
/// lazily: given the current round, it returns the round of the source's
/// next arrival.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// One arrival per round with probability `prob` — the compat default
    /// matching the round-stepped [`super::ContinuousRun`]. Gaps are
    /// sampled geometrically (one draw per arrival instead of one per
    /// round); `prob >= 1` means every round, drawn without consuming
    /// the RNG.
    Bernoulli {
        /// Per-round arrival probability in `[0, 1]`.
        prob: f64,
    },
    /// Poisson process with `rate` expected arrivals per round, delivered
    /// at round granularity via exponential inter-arrival gaps rounded up
    /// (at most one arrival per source per round).
    Poisson {
        /// Expected arrivals per round (> 0 to ever fire).
        rate: f64,
    },
    /// On/off bursts: during a burst, arrivals fire per round with
    /// probability `on_prob`; bursts hold for geometric(`1/mean_burst`)
    /// arrivals and are separated by geometric(`1/mean_off`) idle gaps.
    BurstyOnOff {
        /// Per-round arrival probability while the burst is on.
        on_prob: f64,
        /// Mean arrivals per burst (>= 1).
        mean_burst: f64,
        /// Mean idle rounds between bursts (>= 1).
        mean_off: f64,
    },
    /// Diurnally modulated Bernoulli: the per-round probability follows
    /// `base * (1 + amplitude * sin(2π * round / period))`, clamped to
    /// `[0, 1]` — a day/night load curve at round granularity.
    Diurnal {
        /// Mean per-round arrival probability.
        base: f64,
        /// Relative swing in `[0, 1]` (0 = flat, 1 = full on/off).
        amplitude: f64,
        /// Modulation period in rounds.
        period: u32,
    },
}

impl ArrivalProcess {
    /// Validate the parameters, returning a human-readable complaint.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            ArrivalProcess::Bernoulli { prob } => {
                if !(0.0..=1.0).contains(&prob) {
                    return Err(format!("Bernoulli prob {prob} outside [0, 1]"));
                }
            }
            ArrivalProcess::Poisson { rate } => {
                if !rate.is_finite() || rate < 0.0 {
                    return Err(format!("Poisson rate {rate} must be finite and >= 0"));
                }
            }
            ArrivalProcess::BurstyOnOff {
                on_prob,
                mean_burst,
                mean_off,
            } => {
                if !(0.0..=1.0).contains(&on_prob) {
                    return Err(format!("on_prob {on_prob} outside [0, 1]"));
                }
                if mean_burst.is_nan() || mean_burst < 1.0 || mean_off.is_nan() || mean_off < 1.0 {
                    return Err(format!(
                        "mean_burst {mean_burst} and mean_off {mean_off} must be >= 1"
                    ));
                }
            }
            ArrivalProcess::Diurnal {
                base,
                amplitude,
                period,
            } => {
                if !(0.0..=1.0).contains(&base) {
                    return Err(format!("diurnal base {base} outside [0, 1]"));
                }
                if !(0.0..=1.0).contains(&amplitude) {
                    return Err(format!("diurnal amplitude {amplitude} outside [0, 1]"));
                }
                if period == 0 {
                    return Err("diurnal period must be >= 1".into());
                }
            }
        }
        Ok(())
    }

    /// Round of the source's next arrival strictly after `now`, or `None`
    /// if the source never fires again (zero rate, or the gap overflows
    /// the round space — beyond any simulation horizon either way).
    pub fn next_arrival(
        &self,
        now: u32,
        state: &mut SourceState,
        rng: &mut impl Rng,
    ) -> Option<u32> {
        let gap: u32 = match *self {
            ArrivalProcess::Bernoulli { prob } => geometric_gap(prob, rng)?,
            ArrivalProcess::Poisson { rate } => {
                if rate <= 0.0 {
                    return None;
                }
                // Exponential inter-arrival, ceiled to whole rounds.
                let u = rng.gen::<f64>();
                let exp = -(1.0 - u).ln() / rate;
                let gap = exp.ceil();
                if gap >= u32::MAX as f64 {
                    return None;
                }
                (gap as u32).max(1)
            }
            ArrivalProcess::BurstyOnOff {
                on_prob,
                mean_burst,
                mean_off,
            } => {
                if state.burst_left > 0 {
                    state.burst_left -= 1;
                    geometric_gap(on_prob, rng)?
                } else {
                    // Draw the off gap first, then the next burst length —
                    // fixed order, two draws.
                    let off = geometric_gap(1.0 / mean_off, rng)?;
                    let burst = geometric_gap(1.0 / mean_burst, rng)?;
                    state.burst_left = burst.saturating_sub(1);
                    off
                }
            }
            ArrivalProcess::Diurnal {
                base,
                amplitude,
                period,
            } => {
                // Rate-at-schedule-time approximation: the gap is drawn at
                // the probability in effect for the round after `now`.
                let t = (now.wrapping_add(1)) as f64 / period as f64;
                let p = base * (1.0 + amplitude * (std::f64::consts::TAU * t).sin());
                geometric_gap(p.clamp(0.0, 1.0), rng)?
            }
        };
        now.checked_add(gap)
    }
}

/// Geometric inter-arrival gap for per-round probability `p`: the number
/// of rounds until the next success, inclusive (>= 1). `p >= 1` returns
/// 1 **without drawing**; `p <= 0` returns `None` without drawing.
fn geometric_gap(p: f64, rng: &mut impl Rng) -> Option<u32> {
    if p >= 1.0 {
        return Some(1);
    }
    if p <= 0.0 {
        return None;
    }
    // Inverse-CDF: gap = ceil(ln(1-U) / ln(1-p)) >= 1 with U in [0, 1).
    let u = rng.gen::<f64>();
    let gap = ((1.0 - u).ln() / (1.0 - p).ln()).ceil();
    if gap.is_nan() || gap < 1.0 {
        return Some(1);
    }
    if gap >= u32::MAX as f64 {
        return None;
    }
    Some(gap as u32)
}

/// A tenant mix: sources are split into `tenants.len()` contiguous
/// blocks, block `i` driven by `tenants[i]`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrafficMix {
    /// One arrival process per tenant; at least one.
    pub tenants: Vec<ArrivalProcess>,
}

impl TrafficMix {
    /// Single-tenant mix.
    pub fn uniform(process: ArrivalProcess) -> Self {
        TrafficMix {
            tenants: vec![process],
        }
    }

    /// The compat default: one Bernoulli tenant, matching the
    /// round-stepped [`super::ContinuousRun`]'s `arrival_prob`.
    pub fn bernoulli(prob: f64) -> Self {
        Self::uniform(ArrivalProcess::Bernoulli { prob })
    }

    /// Validate every tenant process.
    pub fn validate(&self) -> Result<(), String> {
        if self.tenants.is_empty() {
            return Err("traffic mix needs at least one tenant".into());
        }
        for (i, t) in self.tenants.iter().enumerate() {
            t.validate().map_err(|e| format!("tenant {i}: {e}"))?;
        }
        Ok(())
    }

    /// Tenant of `source` among `n_sources` total: contiguous equal
    /// blocks (the last tenant absorbs the remainder).
    #[inline]
    pub fn tenant_of(&self, source: u32, n_sources: u32) -> u32 {
        let k = self.tenants.len() as u64;
        if n_sources == 0 {
            return 0;
        }
        ((u64::from(source) * k / u64::from(n_sources)) as u32).min(k as u32 - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn full_load_bernoulli_consumes_no_rng() {
        let mut st = SourceState::default();
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        let p = ArrivalProcess::Bernoulli { prob: 1.0 };
        for now in 0..50 {
            assert_eq!(p.next_arrival(now, &mut st, &mut a), Some(now + 1));
        }
        assert!(bernoulli_step(1.0, &mut a));
        assert!(!bernoulli_step(0.0, &mut a));
        // Stream untouched by any of the certainty paths above.
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn zero_rate_sources_never_fire() {
        let mut st = SourceState::default();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for p in [
            ArrivalProcess::Bernoulli { prob: 0.0 },
            ArrivalProcess::Poisson { rate: 0.0 },
            ArrivalProcess::Diurnal {
                base: 0.0,
                amplitude: 0.5,
                period: 32,
            },
        ] {
            assert_eq!(p.next_arrival(5, &mut st, &mut rng), None, "{p:?}");
        }
    }

    #[test]
    fn geometric_gaps_match_the_bernoulli_rate() {
        // Mean gap of a geometric(p) is 1/p; check within 10% over many
        // draws.
        let mut st = SourceState::default();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for p in [0.5, 0.1, 0.02] {
            let proc = ArrivalProcess::Bernoulli { prob: p };
            let n = 4000;
            let mut total = 0u64;
            let mut now = 0u32;
            for _ in 0..n {
                let next = proc.next_arrival(now, &mut st, &mut rng).unwrap();
                total += u64::from(next - now);
                now = next;
            }
            let mean = total as f64 / n as f64;
            let expect = 1.0 / p;
            assert!(
                (mean - expect).abs() / expect < 0.1,
                "p={p}: mean gap {mean} vs {expect}"
            );
        }
    }

    #[test]
    fn poisson_rate_is_respected() {
        let mut st = SourceState::default();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let proc = ArrivalProcess::Poisson { rate: 0.25 };
        let n = 4000;
        let mut now = 0u32;
        for _ in 0..n {
            now = proc.next_arrival(now, &mut st, &mut rng).unwrap();
        }
        // Mean gap of exp(rate) ceiled is ~ 1/rate + O(1); generous band.
        let mean = now as f64 / n as f64;
        assert!(
            (3.5..=5.2).contains(&mean),
            "rate 0.25 mean gap {mean} out of band"
        );
    }

    #[test]
    fn bursts_cluster_arrivals() {
        let mut st = SourceState::default();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let proc = ArrivalProcess::BurstyOnOff {
            on_prob: 1.0,
            mean_burst: 8.0,
            mean_off: 40.0,
        };
        // Collect gaps; bursty traffic must show many 1-gaps (inside
        // bursts) and some long off gaps.
        let mut ones = 0;
        let mut long = 0;
        let mut now = 0u32;
        for _ in 0..2000 {
            let next = proc.next_arrival(now, &mut st, &mut rng).unwrap();
            match next - now {
                1 => ones += 1,
                g if g >= 10 => long += 1,
                _ => {}
            }
            now = next;
        }
        assert!(ones > 1000, "expected mostly in-burst gaps, got {ones}");
        assert!(long > 50, "expected off-period gaps, got {long}");
    }

    #[test]
    fn diurnal_modulates_the_rate_over_the_period() {
        let mut st = SourceState::default();
        let proc = ArrivalProcess::Diurnal {
            base: 0.2,
            amplitude: 0.9,
            period: 100,
        };
        // Count arrivals in the peak half vs the trough half of each
        // period over many periods.
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let (mut peak, mut trough) = (0u32, 0u32);
        let mut now = 0u32;
        while now < 100 * 200 {
            match proc.next_arrival(now, &mut st, &mut rng) {
                Some(next) => {
                    let phase = next % 100;
                    if phase < 50 {
                        peak += 1; // sin > 0 half
                    } else {
                        trough += 1;
                    }
                    now = next;
                }
                None => break,
            }
        }
        assert!(
            peak as f64 > 1.5 * trough as f64,
            "peak {peak} vs trough {trough}"
        );
    }

    #[test]
    fn tenant_blocks_are_contiguous_and_cover_all_sources() {
        let mix = TrafficMix {
            tenants: vec![
                ArrivalProcess::Bernoulli { prob: 0.1 },
                ArrivalProcess::Poisson { rate: 0.5 },
                ArrivalProcess::Bernoulli { prob: 0.9 },
            ],
        };
        let n = 100;
        let mut last = 0;
        let mut counts = [0u32; 3];
        for s in 0..n {
            let t = mix.tenant_of(s, n);
            assert!(t >= last, "tenant ids must be monotone in source id");
            assert!(t < 3);
            last = t;
            counts[t as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c >= 33), "{counts:?}");
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(ArrivalProcess::Bernoulli { prob: 1.5 }.validate().is_err());
        assert!(ArrivalProcess::Poisson { rate: -1.0 }.validate().is_err());
        assert!(ArrivalProcess::BurstyOnOff {
            on_prob: 0.5,
            mean_burst: 0.5,
            mean_off: 10.0
        }
        .validate()
        .is_err());
        assert!(ArrivalProcess::Diurnal {
            base: 0.2,
            amplitude: 2.0,
            period: 10
        }
        .validate()
        .is_err());
        assert!(ArrivalProcess::Diurnal {
            base: 0.2,
            amplitude: 0.2,
            period: 0
        }
        .validate()
        .is_err());
        assert!(TrafficMix { tenants: vec![] }.validate().is_err());
        assert!(TrafficMix::bernoulli(0.3).validate().is_ok());
    }
}
