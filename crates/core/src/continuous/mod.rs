//! Continuous traffic: steady-state operation of the trial-and-failure
//! protocol.
//!
//! The paper routes one *batch* of worms to completion. Real networks see
//! continuous arrivals, and the natural question is the protocol's
//! **saturation throughput**: up to which offered load does the system
//! reach a steady state, and what latency does it deliver there? (The
//! continuous-routing line of work the paper cites — Scheideler &
//! Vöcking \[35\] — asks exactly this for electronic networks.)
//!
//! Two execution models share the protocol round:
//!
//! * [`ContinuousRun`] — the **round-stepped reference**: every source
//!   flips a Bernoulli(`arrival_prob`) coin every round. Simple, and the
//!   compat baseline the differential suite pins against, but a 1M-source
//!   run pays 1M coin flips per round even at a 0.1% duty cycle.
//! * [`SteadyRun`] — the **event-driven serving engine**: a
//!   [`CalendarQueue`] schedules per-source arrival events (geometric /
//!   exponential inter-arrival gaps instead of per-round coins), idle
//!   stretches are skipped wholesale, in-flight worms live in a slot
//!   store keyed by stable spawn-sequence ids, and sojourn latencies
//!   stream into a fixed-memory `optical_stats::QuantileSketch`. Supports
//!   per-tenant [`ArrivalProcess`] mixes (Bernoulli, Poisson, bursty
//!   on/off, diurnal) and [`AdmissionControl`] (shed / defer caps).
//!
//! At full load (`arrival_prob >= 1`, single Bernoulli tenant, no
//! admission control) both models resolve every arrival decision without
//! consuming the RNG (see [`bernoulli_step`]), so they draw the same
//! stream and produce identical spawn/completion sequences —
//! `tests/golden_continuous.rs` is the differential proof.

mod admission;
mod arrivals;
mod calendar;
mod steady;

pub use admission::{AdmissionControl, AdmissionPolicy};
pub use arrivals::{bernoulli_step, ArrivalProcess, SourceState, TrafficMix};
pub use calendar::CalendarQueue;
pub use steady::{
    SteadyCheckpoint, SteadyParams, SteadyProgress, SteadyReport, SteadyRun, TenantStats,
};

use crate::schedule::{DelaySchedule, ScheduleCtx};
use crate::workspace::ProtocolWorkspace;
use optical_obs::{NullSink, Sink};
use optical_paths::{Path, PathCollection};
use optical_topo::Network;
use optical_wdm::{RouterConfig, TransmissionSpec};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of a round-stepped continuous-traffic simulation.
#[derive(Clone, Debug)]
pub struct ContinuousParams {
    /// Router model.
    pub router: RouterConfig,
    /// Worm length `L`.
    pub worm_len: u32,
    /// Delay schedule; continuous runs should use a *stationary* schedule
    /// ([`DelaySchedule::Fixed`] or `Adaptive`) — the paper's
    /// geometrically shrinking schedule presumes a draining batch.
    pub schedule: DelaySchedule,
    /// Per-source probability of spawning a new worm each round.
    /// Certainty (`>= 1`) and impossibility (`<= 0`) are resolved without
    /// consuming the RNG (see [`bernoulli_step`]).
    pub arrival_prob: f64,
    /// Total rounds to simulate.
    pub rounds: u32,
    /// Rounds to exclude from latency/throughput statistics (ramp-up).
    pub warmup: u32,
}

/// Outcome of a round-stepped continuous-traffic simulation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ContinuousReport {
    /// Worms spawned after warmup.
    pub spawned: u64,
    /// Worms completed after warmup.
    pub completed: u64,
    /// Mean number of active worms per round (after warmup).
    pub avg_active: f64,
    /// Active worms at the end of the simulation.
    pub final_active: usize,
    /// Mean sojourn time in *rounds* (spawn round to completion round,
    /// inclusive) of completed worms.
    pub mean_latency_rounds: f64,
    /// 95th-percentile sojourn time in rounds.
    pub p95_latency_rounds: f64,
    /// Completed worms per round after warmup (throughput).
    pub throughput: f64,
    /// Heuristic saturation verdict: the active population kept growing
    /// instead of reaching a steady state.
    pub saturated: bool,
    /// Total simulated time in flit steps (sum of round budgets).
    pub total_time: u64,
}

struct LiveWorm {
    path_idx: u32,
    spawned_round: u32,
    /// Stable spawn-sequence id, reported through `on_spawn`/`on_sojourn`.
    seq: u64,
}

/// A round-stepped continuous-traffic simulation bound to a network and a
/// path sampler; see the module docs for when to prefer [`SteadyRun`].
pub struct ContinuousRun<'a, F> {
    net: &'a Network,
    /// Samples a fresh path for a new worm (e.g. random source and
    /// destination through the topology's router).
    sample_path: F,
    params: ContinuousParams,
}

impl<'a, F: FnMut(&mut dyn rand::RngCore) -> Path> ContinuousRun<'a, F> {
    /// Create a run; `sample_path` draws the path of each newly spawned
    /// worm.
    pub fn new(net: &'a Network, sample_path: F, params: ContinuousParams) -> Self {
        assert!((0.0..=1.0).contains(&params.arrival_prob));
        assert!(
            params.warmup < params.rounds,
            "warmup must leave measured rounds"
        );
        params.router.validate();
        ContinuousRun {
            net,
            sample_path,
            params,
        }
    }

    /// Simulate. Worms spawned in a round participate from that round on;
    /// acknowledgements are ideal.
    pub fn run(&mut self, rng: &mut impl Rng) -> ContinuousReport {
        self.run_with(&mut ProtocolWorkspace::new(), rng)
    }

    /// Like [`ContinuousRun::run`], but reusing `ws`'s engine and round
    /// buffers. Bit-identical to `run` for the same RNG state.
    pub fn run_with(&mut self, ws: &mut ProtocolWorkspace, rng: &mut impl Rng) -> ContinuousReport {
        self.run_traced(ws, rng, &mut NullSink)
    }

    /// Like [`ContinuousRun::run_with`], with an observability [`Sink`]:
    /// emits `on_spawn` per arrival and `on_sojourn` per completion
    /// (warmup included), plus the engine-round hooks. Hooks never draw
    /// from the sim RNG, so any sink is bit-identical to [`NullSink`].
    pub fn run_traced<S: Sink>(
        &mut self,
        ws: &mut ProtocolWorkspace,
        rng: &mut impl Rng,
        sink: &mut S,
    ) -> ContinuousReport {
        let p = &self.params;
        let n_sources = self.net.node_count();
        ws.prepare(
            self.net.link_count(),
            n_sources,
            p.router,
            1,
            false,
            &None,
            &None,
        );
        let ProtocolWorkspace {
            engine,
            specs: spec_buf,
            outcome,
            ..
        } = ws;
        let engine = engine.as_mut().expect("prepared above");

        // Paths are accumulated in a collection so the engine can borrow
        // stable link slices.
        let mut paths = PathCollection::for_network(self.net);
        let mut live: Vec<LiveWorm> = Vec::new();
        let mut next_seq = 0u64;
        let mut spawned = 0u64;
        let mut completed = 0u64;
        let mut latencies: Vec<u32> = Vec::new();
        let mut active_acc = 0u64;
        let mut total_time = 0u64;
        let mut active_timeline: Vec<usize> = Vec::with_capacity(p.rounds as usize);

        // A stationary congestion estimate for the schedule: expected
        // worms in flight ~ arrivals per round x mean path length; use the
        // live count each round instead (Adaptive-friendly).
        for round in 1..=p.rounds {
            // Spawn.
            for src in 0..n_sources as u32 {
                if bernoulli_step(p.arrival_prob, rng) {
                    let path = (self.sample_path)(rng);
                    paths.push(path);
                    live.push(LiveWorm {
                        path_idx: paths.len() as u32 - 1,
                        spawned_round: round,
                        seq: next_seq,
                    });
                    if S::ENABLED {
                        sink.on_spawn(round, next_seq, src);
                    }
                    next_seq += 1;
                    if round > p.warmup {
                        spawned += 1;
                    }
                }
            }
            active_timeline.push(live.len());
            if round > p.warmup {
                active_acc += live.len() as u64;
            }

            if live.is_empty() {
                total_time += 1; // idle round, minimal budget
                continue;
            }
            let ctx = ScheduleCtx {
                n: live.len().max(1),
                active: live.len(),
                worm_len: p.worm_len,
                bandwidth: p.router.bandwidth,
                // Live population is the best available congestion proxy.
                path_congestion: live.len() as u32,
                dilation: 0,
            };
            let delta = p.schedule.delta(1, &ctx);
            let b = p.router.bandwidth as u32;
            // The spec batch is borrowed per round: `paths` grows on every
            // spawn, so the link borrows must end before the next round.
            let mut specs = spec_buf.take();
            specs.extend(live.iter().enumerate().map(|(i, w)| TransmissionSpec {
                links: paths.links_of(w.path_idx as usize),
                start: rng.gen_range(0..delta),
                wavelength: rng.gen_range(0..b) as u16,
                priority: i as u64,
                length: p.worm_len,
            }));
            let max_len = live
                .iter()
                .map(|w| paths.path(w.path_idx as usize).len())
                .max()
                .unwrap_or(0);
            total_time += delta as u64 + 2 * (max_len as u64 + p.worm_len as u64);

            engine.run_into_traced(&specs, rng, outcome, sink);
            spec_buf.put(specs);
            let mut k = 0;
            live.retain(|w| {
                let delivered = outcome.results[k].fate.is_delivered();
                k += 1;
                if delivered {
                    if S::ENABLED {
                        sink.on_sojourn(round, w.seq, round - w.spawned_round + 1);
                    }
                    if round > p.warmup {
                        completed += 1;
                        latencies.push(round - w.spawned_round + 1);
                    }
                }
                !delivered
            });
        }

        let measured_rounds = (p.rounds - p.warmup) as f64;
        latencies.sort_unstable();
        let mean_latency = if latencies.is_empty() {
            0.0
        } else {
            latencies.iter().map(|&l| l as f64).sum::<f64>() / latencies.len() as f64
        };
        let p95 = if latencies.is_empty() {
            0.0
        } else {
            latencies[((latencies.len() as f64 * 0.95) as usize).min(latencies.len() - 1)] as f64
        };
        // Saturation: the last-quarter average active population is much
        // larger than the second quarter's (still growing, no steady
        // state).
        let q = active_timeline.len() / 4;
        let avg = |s: &[usize]| s.iter().sum::<usize>() as f64 / s.len().max(1) as f64;
        let saturated = q >= 1 && {
            let early = avg(&active_timeline[q..2 * q]);
            let late = avg(&active_timeline[3 * q..]);
            late > 2.0 * early + 1.0
        };

        ContinuousReport {
            spawned,
            completed,
            avg_active: active_acc as f64 / measured_rounds,
            final_active: live.len(),
            mean_latency_rounds: mean_latency,
            p95_latency_rounds: p95,
            throughput: completed as f64 / measured_rounds,
            saturated,
            total_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optical_paths::select::bfs::bfs_route;
    use optical_topo::topologies;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn params(arrival: f64, rounds: u32) -> ContinuousParams {
        ContinuousParams {
            router: RouterConfig::serve_first(2),
            worm_len: 4,
            schedule: DelaySchedule::Fixed { delta: 32 },
            arrival_prob: arrival,
            rounds,
            warmup: rounds / 4,
        }
    }

    fn torus_sampler(net: &Network) -> impl FnMut(&mut dyn rand::RngCore) -> Path + '_ {
        move |rng| {
            let n = net.node_count() as u32;
            let s = rng.gen_range(0..n);
            let d = rng.gen_range(0..n);
            bfs_route(net, s, d)
        }
    }

    #[test]
    fn light_load_reaches_steady_state() {
        let net = topologies::torus(2, 6);
        let mut run = ContinuousRun::new(&net, torus_sampler(&net), params(0.05, 120));
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let report = run.run(&mut rng);
        assert!(!report.saturated, "5% load must be stable: {report:?}");
        assert!(report.completed > 0);
        // In steady state, throughput tracks offered load.
        let offered = 0.05 * net.node_count() as f64;
        assert!(
            (report.throughput - offered).abs() / offered < 0.35,
            "throughput {} vs offered {offered}",
            report.throughput
        );
        assert!(report.mean_latency_rounds >= 1.0);
        // (p95 can sit *below* the mean in heavily skewed distributions —
        // most worms make it first try, a few retry many times.)
        assert!(report.p95_latency_rounds >= 1.0);
    }

    #[test]
    fn overload_saturates() {
        // Full offered load with a tight delay range on a bandwidth-1
        // ring: retries pile up faster than the round can drain them and
        // the active population grows without bound.
        let net = topologies::ring(16);
        let mut p = params(1.0, 80);
        p.router = RouterConfig::serve_first(1);
        p.schedule = DelaySchedule::Fixed { delta: 6 };
        let mut run = ContinuousRun::new(&net, torus_sampler(&net), p);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let report = run.run(&mut rng);
        assert!(report.saturated, "full load must saturate: {report:?}");
        assert!(report.final_active > 50, "backlog must pile up: {report:?}");
    }

    #[test]
    fn zero_load_is_trivially_stable() {
        let net = topologies::ring(8);
        let mut run = ContinuousRun::new(&net, torus_sampler(&net), params(0.0, 40));
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let report = run.run(&mut rng);
        assert_eq!(report.spawned, 0);
        assert_eq!(report.completed, 0);
        assert!(!report.saturated);
    }

    #[test]
    fn latency_grows_with_load() {
        let net = topologies::torus(2, 6);
        let mut lat = Vec::new();
        for arrival in [0.02, 0.25] {
            let mut p = params(arrival, 100);
            p.router = RouterConfig::serve_first(1);
            let mut run = ContinuousRun::new(&net, torus_sampler(&net), p);
            let mut rng = ChaCha8Rng::seed_from_u64(4);
            let report = run.run(&mut rng);
            lat.push(report.mean_latency_rounds);
        }
        assert!(lat[1] > lat[0], "latency must grow with load: {lat:?}");
    }

    #[test]
    fn reused_workspace_is_bit_identical() {
        let net = topologies::torus(2, 6);
        let mut ws = ProtocolWorkspace::new();
        for seed in [1u64, 2] {
            let mut fresh = ContinuousRun::new(&net, torus_sampler(&net), params(0.1, 80));
            let a = fresh.run(&mut ChaCha8Rng::seed_from_u64(seed));
            let mut reused = ContinuousRun::new(&net, torus_sampler(&net), params(0.1, 80));
            let b = reused.run_with(&mut ws, &mut ChaCha8Rng::seed_from_u64(seed));
            assert_eq!(a, b);
        }
    }

    #[test]
    fn traced_run_reports_spawns_and_sojourns() {
        let net = topologies::torus(2, 4);
        let mut plain = ContinuousRun::new(&net, torus_sampler(&net), params(0.2, 60));
        let a = plain.run(&mut ChaCha8Rng::seed_from_u64(7));

        let sink = optical_obs::CountersSink::new(2);
        let mut traced = ContinuousRun::new(&net, torus_sampler(&net), params(0.2, 60));
        let b = traced.run_traced(
            &mut ProtocolWorkspace::new(),
            &mut ChaCha8Rng::seed_from_u64(7),
            &mut &sink,
        );
        // Tracing never perturbs the simulation…
        assert_eq!(a, b);
        // …and the sink sees every spawn/completion, warmup included.
        let t = sink.totals();
        assert!(t.spawns >= b.spawned, "{t:?}");
        assert!(t.sojourns >= b.completed);
        assert!(t.sojourns > 0);
        assert!(t.latency_p99() >= t.latency_p50());
        assert_eq!(t.latency.len(), t.sojourns);
    }

    #[test]
    #[should_panic(expected = "warmup")]
    fn warmup_must_leave_rounds() {
        let net = topologies::ring(8);
        let mut p = params(0.1, 40);
        p.warmup = 40;
        let _ = ContinuousRun::new(&net, torus_sampler(&net), p);
    }
}
