//! Calendar queue: a bucketed timing wheel for round-indexed events.
//!
//! The steady-state serving engine schedules arrival and injection
//! events by *round number*. A [`CalendarQueue`] hashes each event into
//! `round % buckets`, so scheduling and draining are O(1) amortized no
//! matter how far ahead events land — the classic calendar-queue
//! structure (Brown 1988), here with a fixed wheel width because serving
//! rounds advance monotonically one at a time.
//!
//! Two properties the event-driven engine depends on:
//!
//! * **FIFO within a round.** Events scheduled for the same round drain
//!   in the order they were scheduled. This is what makes the full-load
//!   event-driven path spawn worms in exactly the round-stepped path's
//!   source order (the differential suite in `tests/golden_continuous.rs`
//!   pins it).
//! * **Idle skipping.** [`CalendarQueue::next_occupied`] finds the
//!   earliest round at or after a given round that has any event, letting
//!   the engine jump over stretches where every source is idle instead of
//!   burning a round-loop iteration per empty round.

/// A bucketed timing wheel of `(round, item)` events; see the module
/// docs. Rounds may be scheduled arbitrarily far ahead — an event lands
/// in bucket `round % buckets` and is filtered by its round tag when the
/// round drains.
///
/// Serde note: the wheel serializes its bucket structure verbatim, so a
/// deserialized queue drains in exactly the original's order — the
/// FIFO-within-a-round property survives a checkpoint/restore cycle
/// bit-for-bit.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CalendarQueue<T> {
    buckets: Vec<Vec<(u32, T)>>,
    /// Drain scratch, swapped with the target bucket so draining keeps
    /// scheduling order without allocating per round.
    scratch: Vec<(u32, T)>,
    len: usize,
}

impl<T> CalendarQueue<T> {
    /// A wheel with `buckets` buckets (at least 1). Width only affects
    /// constant factors: more buckets means fewer foreign-round entries
    /// touched per drain.
    pub fn new(buckets: usize) -> Self {
        let buckets = buckets.max(1);
        CalendarQueue {
            buckets: (0..buckets).map(|_| Vec::new()).collect(),
            scratch: Vec::new(),
            len: 0,
        }
    }

    /// Schedule `item` to fire in `round`.
    pub fn schedule(&mut self, round: u32, item: T) {
        let b = round as usize % self.buckets.len();
        self.buckets[b].push((round, item));
        self.len += 1;
    }

    /// Move every event scheduled exactly for `round` into `out`,
    /// preserving scheduling order. Events for other rounds sharing the
    /// bucket are retained, also in order.
    pub fn drain_round(&mut self, round: u32, out: &mut Vec<T>) {
        let b = round as usize % self.buckets.len();
        if self.buckets[b].is_empty() {
            return;
        }
        std::mem::swap(&mut self.buckets[b], &mut self.scratch);
        for (r, item) in self.scratch.drain(..) {
            if r == round {
                self.len -= 1;
                out.push(item);
            } else {
                self.buckets[b].push((r, item));
            }
        }
    }

    /// Total events currently scheduled.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no event is scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Earliest round `>= from` with at least one event, or `None` if
    /// nothing at or after `from` is scheduled.
    ///
    /// Buckets are visited in the order their earliest candidate round
    /// appears (`from`, `from + 1`, …), stopping as soon as no later
    /// bucket can beat the best round found — so when `from` itself is
    /// occupied (the common serving case: the engine asks while the next
    /// round's arrivals are already queued), this touches exactly one
    /// bucket. Only a wheel with no event at or after `from` pays the
    /// full O(total events) sweep.
    pub fn next_occupied(&self, from: u32) -> Option<u32> {
        if self.len == 0 {
            return None;
        }
        let width = self.buckets.len() as u64;
        let mut best: Option<u32> = None;
        for off in 0..width {
            // Bucket `(from + off) % width` is the first place round
            // `from + off` can live; once `best - from <= off`, every
            // unvisited bucket holds only rounds `> best`.
            if let Some(b) = best {
                if u64::from(b - from) <= off {
                    break;
                }
            }
            let bi = ((u64::from(from) + off) % width) as usize;
            for &(round, _) in &self.buckets[bi] {
                if round >= from && best.is_none_or(|b| round < b) {
                    best = Some(round);
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drains_fifo_within_a_round_and_keeps_other_rounds() {
        let mut q = CalendarQueue::new(4);
        // Rounds 3 and 7 share bucket 3 on a 4-wide wheel.
        q.schedule(3, "a");
        q.schedule(7, "x");
        q.schedule(3, "b");
        q.schedule(3, "c");
        assert_eq!(q.len(), 4);

        let mut out = Vec::new();
        q.drain_round(3, &mut out);
        assert_eq!(out, vec!["a", "b", "c"], "FIFO within the round");
        assert_eq!(q.len(), 1);

        out.clear();
        q.drain_round(7, &mut out);
        assert_eq!(out, vec!["x"], "wrapped round survives earlier drains");
        assert!(q.is_empty());
    }

    #[test]
    fn drain_preserves_order_across_multiple_wraps() {
        let mut q = CalendarQueue::new(2);
        for i in 0..30u32 {
            q.schedule(10 + (i % 3) * 2, i); // rounds 10, 12, 14, same bucket
        }
        for round in [10u32, 12, 14] {
            let mut out = Vec::new();
            q.drain_round(round, &mut out);
            let expect: Vec<u32> = (0..30).filter(|i| 10 + (i % 3) * 2 == round).collect();
            assert_eq!(out, expect, "round {round}");
        }
        assert!(q.is_empty());
    }

    #[test]
    fn next_occupied_finds_the_earliest_future_round() {
        let mut q = CalendarQueue::new(8);
        assert_eq!(q.next_occupied(0), None);
        q.schedule(40, ());
        q.schedule(12, ());
        q.schedule(25, ());
        assert_eq!(q.next_occupied(0), Some(12));
        assert_eq!(q.next_occupied(13), Some(25));
        assert_eq!(q.next_occupied(26), Some(40));
        assert_eq!(q.next_occupied(41), None);
        let mut out = Vec::new();
        q.drain_round(12, &mut out);
        assert_eq!(q.next_occupied(0), Some(25));
    }

    #[test]
    fn empty_round_drain_is_a_no_op() {
        let mut q: CalendarQueue<u8> = CalendarQueue::new(1);
        q.schedule(5, 1);
        let mut out = Vec::new();
        q.drain_round(4, &mut out);
        assert!(out.is_empty());
        assert_eq!(q.len(), 1);
    }
}
