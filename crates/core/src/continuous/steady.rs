//! The event-driven steady-state serving engine.
//!
//! [`SteadyRun`] replaces the round-stepped [`super::ContinuousRun`]
//! loop — which pays one coin flip per source per round, idle or not —
//! with a [`CalendarQueue`](super::CalendarQueue) of arrival events: a
//! source consumes work only in the round its next arrival fires, so a
//! million sources at a 0.1% duty cycle cost ~1k events per round
//! instead of 1M coin flips (the `continuous/steady_1m_sparse` perf-gate
//! key holds the receipt). Whole stretches of idle rounds are skipped in
//! O(1) per stretch.
//!
//! In-flight worms live in a slot store (struct-of-arrays with a
//! freelist) keyed by **stable 64-bit spawn sequence ids**, so millions
//! of concurrent worms are representable without per-round reallocation.
//! Latency statistics stream into a fixed-memory
//! [`QuantileSketch`] — no per-sojourn buffering, so arbitrarily long
//! runs hold memory constant.
//!
//! **Full-load equivalence.** With a single Bernoulli tenant at
//! `prob >= 1` and no admission control, a `SteadyRun` consumes the RNG
//! draw-for-draw like `ContinuousRun` at `arrival_prob = 1.0` and
//! produces the identical spawn order, completion rounds, and report —
//! the differential suite `tests/golden_continuous.rs` pins this across
//! topologies and schedules.
//!
//! **Checkpoint & resume.** Every piece of loop state lives in one
//! serde-able [`SteadyProgress`] record; with
//! [`SteadyParams::checkpoint_every`] set, the run cuts a
//! [`SteadyCheckpoint`] (progress + exact RNG position + config
//! fingerprint) at round boundaries and hands it to an `on_checkpoint`
//! hook. [`SteadyRun::resume_from`] continues a checkpoint in a fresh
//! process; the final report, latency sketch, and RNG stream are
//! bit-identical to the uninterrupted run (`tests/checkpoint_resume.rs`
//! pins this). Resuming against a different topology or parameter set
//! fails with a typed [`RestoreError`].

use super::admission::{AdmissionControl, AdmissionPolicy};
use super::arrivals::{SourceState, TrafficMix};
use super::calendar::CalendarQueue;
use crate::persist::rng::{PersistRng, RngState};
use crate::persist::{Fingerprint, RestoreError, Snapshot};
use crate::schedule::{DelaySchedule, ScheduleCtx};
use crate::workspace::ProtocolWorkspace;
use optical_obs::{NullSink, Sink};
use optical_stats::QuantileSketch;
use optical_topo::{LinkId, Network};
use optical_wdm::{RouterConfig, TransmissionSpec};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Parameters of an event-driven steady-state run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SteadyParams {
    /// Router model.
    pub router: RouterConfig,
    /// Worm length `L`.
    pub worm_len: u32,
    /// Delay schedule; steady-state runs should use a *stationary*
    /// schedule ([`DelaySchedule::Fixed`] or `Adaptive`).
    pub schedule: DelaySchedule,
    /// Total rounds to simulate.
    pub rounds: u32,
    /// Rounds to exclude from latency/throughput statistics (ramp-up).
    pub warmup: u32,
    /// Per-tenant arrival processes; sources are split into contiguous
    /// equal blocks, one per tenant.
    pub mix: TrafficMix,
    /// Optional per-tenant in-flight cap with shed/defer policy.
    pub admission: Option<AdmissionControl>,
    /// Intra-round engine shard count (1 = serial engine rounds).
    pub shards: usize,
    /// Checkpoint cadence in rounds (0 = never). With `n > 0`, the run
    /// fires [`Sink::on_checkpoint`] — and, on the
    /// [`SteadyRun::run_checkpointed`] path, cuts a full
    /// [`SteadyCheckpoint`] — at the first served round after each
    /// multiple of `n`. Cadence is **not** part of the config
    /// fingerprint: a run checkpointed at one cadence may resume at
    /// another.
    pub checkpoint_every: u32,
}

impl SteadyParams {
    /// Compat constructor: single Bernoulli tenant, no admission control
    /// — the event-driven equivalent of [`super::ContinuousParams`] with
    /// the same `arrival_prob`, `rounds`, and `warmup`.
    pub fn bernoulli(
        router: RouterConfig,
        worm_len: u32,
        schedule: DelaySchedule,
        arrival_prob: f64,
        rounds: u32,
        warmup: u32,
    ) -> Self {
        SteadyParams {
            router,
            worm_len,
            schedule,
            rounds,
            warmup,
            mix: TrafficMix::bernoulli(arrival_prob),
            admission: None,
            shards: 1,
            checkpoint_every: 0,
        }
    }

    /// Builder-style: set the checkpoint cadence (see the
    /// [`checkpoint_every`](SteadyParams::checkpoint_every) field).
    pub fn checkpoint_every(mut self, n_rounds: u32) -> Self {
        self.checkpoint_every = n_rounds;
        self
    }

    fn validate(&self) {
        self.router.validate();
        assert!(
            self.warmup < self.rounds,
            "warmup must leave measured rounds"
        );
        if let Err(e) = self.mix.validate() {
            panic!("invalid traffic mix: {e}");
        }
        if let Some(ac) = &self.admission {
            if let Err(e) = ac.validate() {
                panic!("invalid admission control: {e}");
            }
        }
    }
}

/// Per-tenant tallies over the **whole run** (warmup included — these
/// are operational counters, not steady-state statistics).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantStats {
    /// Worms spawned (admitted arrivals).
    pub spawned: u64,
    /// Worms delivered end-to-end.
    pub completed: u64,
    /// Arrivals dropped by admission control.
    pub shed: u64,
    /// Deferral events (one arrival may defer repeatedly).
    pub deferred: u64,
    /// Peak concurrent in-flight worms.
    pub peak_in_flight: u32,
}

/// Outcome of an event-driven steady-state run.
///
/// `spawned`, `completed`, `throughput`, `avg_active` and the latency
/// statistics cover post-warmup rounds (matching
/// [`super::ContinuousReport`]); `tenants` and `peak_active` cover the
/// whole run.
///
/// Marked `#[non_exhaustive]`: construct it only through the run entry
/// points and read it field-by-field (every field is public and
/// documented), so future additions — e.g. checkpoint/resume metadata —
/// are not breaking changes for downstream matches or literals.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct SteadyReport {
    /// Worms spawned after warmup.
    pub spawned: u64,
    /// Worms completed after warmup.
    pub completed: u64,
    /// Arrivals shed after warmup.
    pub shed: u64,
    /// Deferral events after warmup.
    pub deferred: u64,
    /// Mean active worms per post-warmup round.
    pub avg_active: f64,
    /// Active worms at the end of the simulation.
    pub final_active: usize,
    /// Peak concurrent active worms over the whole run.
    pub peak_active: usize,
    /// Mean sojourn time in rounds (spawn round to completion round,
    /// inclusive) of post-warmup completions.
    pub mean_latency_rounds: f64,
    /// Median sojourn latency in rounds (sketch lower bound).
    pub p50_latency_rounds: u64,
    /// 99th-percentile sojourn latency in rounds.
    pub p99_latency_rounds: u64,
    /// 99.9th-percentile sojourn latency in rounds.
    pub p999_latency_rounds: u64,
    /// Completed worms per post-warmup round.
    pub throughput: f64,
    /// Heuristic saturation verdict, same quartile test as
    /// [`super::ContinuousReport::saturated`].
    pub saturated: bool,
    /// Total simulated time in flit steps (sum of round budgets; idle
    /// rounds cost 1 each, skipped or not).
    pub total_time: u64,
    /// The full fixed-memory latency sketch (post-warmup sojourns, in
    /// rounds) — query any percentile, or merge across runs.
    pub latency: QuantileSketch,
    /// Per-tenant whole-run tallies, indexed by tenant id.
    pub tenants: Vec<TenantStats>,
}

/// Calendar events: a source's scheduled arrival, or a deferred
/// arrival re-entering admission.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
enum Event {
    Arrival(u32),
    Inject(u32),
}

/// SoA store of in-flight worms with a slot freelist. Slots are reused;
/// identity across reuse is the 64-bit spawn sequence id.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
struct WormStore {
    links: Vec<Vec<LinkId>>,
    spawn_round: Vec<u32>,
    tenant: Vec<u32>,
    seq: Vec<u64>,
    free: Vec<u32>,
}

impl WormStore {
    fn alloc(&mut self) -> usize {
        match self.free.pop() {
            Some(slot) => slot as usize,
            None => {
                self.links.push(Vec::new());
                self.spawn_round.push(0);
                self.tenant.push(0);
                self.seq.push(0);
                self.links.len() - 1
            }
        }
    }

    fn release(&mut self, slot: usize) {
        self.links[slot].clear();
        self.free.push(slot as u32);
    }
}

/// The complete live state of a steady-state serving loop at a round
/// boundary: calendar, arrival processes, worm store, tallies, and
/// streaming statistics. Everything [`SteadyRun::run_traced`] keeps on
/// its stack lives here instead, which is what makes a checkpoint a
/// plain `clone` + serde rather than an archaeology dig.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SteadyProgress {
    /// Next round the loop will serve.
    round: u32,
    cal: CalendarQueue<Event>,
    src_state: Vec<SourceState>,
    store: WormStore,
    active: Vec<u32>,
    next_seq: u64,
    tenant_inflight: Vec<u32>,
    tenants: Vec<TenantStats>,
    spawned: u64,
    completed: u64,
    shed: u64,
    deferred: u64,
    latency: QuantileSketch,
    latency_sum: u64,
    active_acc: u64,
    peak_active: usize,
    total_time: u64,
    early_sum: u64,
    late_sum: u64,
}

/// A resumable checkpoint of a [`SteadyRun`]: loop progress, the exact
/// RNG position, and the fingerprint of the configuration it was cut
/// under. Serialize it (directly, or wrapped via
/// [`Snapshot::snapshot`]), park it anywhere, and hand it to
/// [`SteadyRun::resume_from`] in a fresh process — the continuation is
/// bit-identical to never having stopped.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SteadyCheckpoint {
    fingerprint: Fingerprint,
    rng: RngState,
    progress: SteadyProgress,
}

impl SteadyCheckpoint {
    /// The round the resumed loop will serve next.
    pub fn round(&self) -> u32 {
        self.progress.round
    }

    /// Fingerprint of the topology/parameters this checkpoint belongs
    /// to; [`SteadyRun::resume_from`] refuses any other configuration.
    pub fn fingerprint(&self) -> Fingerprint {
        self.fingerprint
    }

    /// Spawn sequence ids handed out so far (monotone progress marker).
    pub fn spawned_seqs(&self) -> u64 {
        self.progress.next_seq
    }

    fn validate(&self) -> Result<(), RestoreError> {
        let p = &self.progress;
        let n = p.store.links.len();
        if p.store.spawn_round.len() != n || p.store.tenant.len() != n || p.store.seq.len() != n {
            return Err(RestoreError::Invalid(format!(
                "worm store columns disagree: {n}/{}/{}/{}",
                p.store.spawn_round.len(),
                p.store.tenant.len(),
                p.store.seq.len()
            )));
        }
        if p.round == 0 {
            return Err(RestoreError::Invalid(
                "steady rounds are 1-based; round 0 is not a resumable position".to_string(),
            ));
        }
        let n_tenants = p.tenants.len();
        if p.tenant_inflight.len() != n_tenants {
            return Err(RestoreError::Invalid(format!(
                "tenant columns disagree: {} in-flight counters for {n_tenants} tenants",
                p.tenant_inflight.len()
            )));
        }
        for &slot in &p.active {
            if slot as usize >= n {
                return Err(RestoreError::Invalid(format!(
                    "active slot {slot} out of range for a {n}-slot store"
                )));
            }
            if p.store.tenant[slot as usize] as usize >= n_tenants {
                return Err(RestoreError::Invalid(format!(
                    "active slot {slot} names tenant {} of {n_tenants}",
                    p.store.tenant[slot as usize]
                )));
            }
        }
        if p.store.free.iter().any(|&s| s as usize >= n) {
            return Err(RestoreError::Invalid(
                "freelist names slots beyond the store".to_string(),
            ));
        }
        Ok(())
    }
}

impl Snapshot for SteadyCheckpoint {
    type State = SteadyCheckpoint;

    const KIND: &'static str = "steady-checkpoint/v1";

    fn fingerprint(&self) -> Fingerprint {
        self.fingerprint
    }

    fn state(&self) -> SteadyCheckpoint {
        self.clone()
    }

    fn from_state(state: SteadyCheckpoint) -> Result<Self, RestoreError> {
        state.validate()?;
        Ok(state)
    }
}

/// An event-driven steady-state simulation bound to a network and a path
/// sampler. The sampler fills `out` with the directed links of a fresh
/// worm spawned at `source` (it may consume the RNG; draws must not
/// depend on hidden state so runs stay reproducible).
pub struct SteadyRun<'a, F> {
    net: &'a Network,
    sample_path: F,
    params: SteadyParams,
}

impl<'a, F: FnMut(u32, &mut dyn rand::RngCore, &mut Vec<LinkId>)> SteadyRun<'a, F> {
    /// Create a run over `net`; panics on invalid parameters.
    pub fn new(net: &'a Network, sample_path: F, params: SteadyParams) -> Self {
        params.validate();
        SteadyRun {
            net,
            sample_path,
            params,
        }
    }

    /// Fingerprint of everything that shapes this run's bit-stream:
    /// topology dimensions, router, worm length, schedule, horizon,
    /// warmup, traffic mix, and admission policy. Deliberately excludes
    /// the shard count (sharded rounds are bit-identical at any count)
    /// and the checkpoint cadence. The path sampler is a closure and
    /// cannot be fingerprinted — resume with the same sampler.
    pub fn fingerprint(&self) -> Fingerprint {
        let p = &self.params;
        Fingerprint::of_debug(&(
            self.net.node_count(),
            self.net.link_count(),
            p.router,
            p.worm_len,
            &p.schedule,
            p.rounds,
            p.warmup,
            &p.mix,
            &p.admission,
        ))
    }

    /// Simulate with a fresh workspace.
    pub fn run(&mut self, rng: &mut impl Rng) -> SteadyReport {
        self.run_with(&mut ProtocolWorkspace::new(), rng)
    }

    /// Simulate reusing `ws`'s engine and buffers; bit-identical to
    /// [`SteadyRun::run`] for the same RNG state.
    pub fn run_with(&mut self, ws: &mut ProtocolWorkspace, rng: &mut impl Rng) -> SteadyReport {
        self.run_traced(ws, rng, &mut NullSink)
    }

    /// Simulate with an observability [`Sink`]. Emits `on_spawn` /
    /// `on_shed` / `on_defer` per admission decision, the engine-round
    /// hooks while routing, `on_sojourn` per completion (warmup
    /// included), and `on_checkpoint` at every checkpoint boundary when
    /// [`SteadyParams::checkpoint_every`] is set. Hooks never consume
    /// the sim RNG, so any sink is bit-identical to [`NullSink`].
    pub fn run_traced<S: Sink>(
        &mut self,
        ws: &mut ProtocolWorkspace,
        rng: &mut impl Rng,
        sink: &mut S,
    ) -> SteadyReport {
        let start = self.bootstrap(rng);
        self.serve(ws, rng, sink, start, &mut |_, _| {})
    }

    /// Simulate with checkpointing: at every
    /// [`SteadyParams::checkpoint_every`] boundary, cut a full
    /// [`SteadyCheckpoint`] (loop progress + exact RNG position) and
    /// hand it to `on_checkpoint`. The hook borrows the checkpoint;
    /// clone or serialize it to keep it. Requires a [`PersistRng`]
    /// (the simulation's `ChaCha8Rng` qualifies) so the RNG position
    /// is capturable. The run itself is bit-identical to
    /// [`SteadyRun::run_traced`] with the same RNG state — hooks
    /// observe, they never perturb.
    pub fn run_checkpointed<R, S, H>(
        &mut self,
        ws: &mut ProtocolWorkspace,
        rng: &mut R,
        sink: &mut S,
        mut on_checkpoint: H,
    ) -> SteadyReport
    where
        R: Rng + PersistRng,
        S: Sink,
        H: FnMut(&SteadyCheckpoint),
    {
        let fingerprint = self.fingerprint();
        let start = self.bootstrap(rng);
        self.serve(ws, rng, sink, start, &mut |progress, r: &R| {
            on_checkpoint(&SteadyCheckpoint {
                fingerprint,
                rng: r.save_state(),
                progress: progress.clone(),
            });
        })
    }

    /// Resume a checkpoint with a fresh workspace and no sink; see
    /// [`SteadyRun::resume_traced`].
    pub fn resume_from(
        &mut self,
        checkpoint: SteadyCheckpoint,
    ) -> Result<SteadyReport, RestoreError> {
        self.resume_traced(&mut ProtocolWorkspace::new(), checkpoint, &mut NullSink)
    }

    /// Resume a checkpoint: verify it belongs to this run's
    /// topology/parameters (typed [`RestoreError::Fingerprint`]
    /// otherwise), rebuild the RNG at its captured position, and serve
    /// the remaining rounds. The resulting report — counters, latency
    /// sketch, total time — is bit-identical to the uninterrupted run's.
    /// The run must hold the same path sampler the checkpointed run
    /// used (closures are outside the fingerprint).
    pub fn resume_traced<S: Sink>(
        &mut self,
        ws: &mut ProtocolWorkspace,
        checkpoint: SteadyCheckpoint,
        sink: &mut S,
    ) -> Result<SteadyReport, RestoreError> {
        self.check_resume(&checkpoint)?;
        let mut rng = ChaCha8Rng::load_state(&checkpoint.rng);
        Ok(self.serve(ws, &mut rng, sink, checkpoint.progress, &mut |_, _| {}))
    }

    /// Resume a checkpoint and keep checkpointing: the continuation
    /// cuts further [`SteadyCheckpoint`]s at the configured cadence,
    /// identical to the ones the uninterrupted run would have cut.
    pub fn resume_checkpointed<S, H>(
        &mut self,
        ws: &mut ProtocolWorkspace,
        checkpoint: SteadyCheckpoint,
        sink: &mut S,
        mut on_checkpoint: H,
    ) -> Result<SteadyReport, RestoreError>
    where
        S: Sink,
        H: FnMut(&SteadyCheckpoint),
    {
        self.check_resume(&checkpoint)?;
        let fingerprint = checkpoint.fingerprint;
        let mut rng = ChaCha8Rng::load_state(&checkpoint.rng);
        Ok(self.serve(
            ws,
            &mut rng,
            sink,
            checkpoint.progress,
            &mut |progress, r: &ChaCha8Rng| {
                on_checkpoint(&SteadyCheckpoint {
                    fingerprint,
                    rng: r.save_state(),
                    progress: progress.clone(),
                });
            },
        ))
    }

    fn check_resume(&self, checkpoint: &SteadyCheckpoint) -> Result<(), RestoreError> {
        let expected = self.fingerprint();
        if checkpoint.fingerprint != expected {
            return Err(RestoreError::Fingerprint {
                found: checkpoint.fingerprint,
                expected,
            });
        }
        checkpoint.validate()?;
        if checkpoint.progress.src_state.len() != self.net.node_count() {
            return Err(RestoreError::Invalid(format!(
                "checkpoint carries {} sources, network has {}",
                checkpoint.progress.src_state.len(),
                self.net.node_count()
            )));
        }
        Ok(())
    }

    /// Seed the calendar with every source's first arrival (draw-order
    /// contract: one gap draw per source, none at certainty) and return
    /// the loop state positioned at round 1.
    fn bootstrap(&self, rng: &mut impl Rng) -> SteadyProgress {
        let p = &self.params;
        let n_sources = self.net.node_count() as u32;
        let n_tenants = p.mix.tenants.len();
        // Wheel width is a constant-factor knob only; 256 keeps
        // foreign-round scans short for any defer delay.
        let mut cal: CalendarQueue<Event> = CalendarQueue::new(256);
        let mut src_state: Vec<SourceState> = vec![SourceState::default(); n_sources as usize];
        for src in 0..n_sources {
            let t = p.mix.tenant_of(src, n_sources) as usize;
            if let Some(r) = p.mix.tenants[t].next_arrival(0, &mut src_state[src as usize], rng) {
                if r <= p.rounds {
                    cal.schedule(r, Event::Arrival(src));
                }
            }
        }
        SteadyProgress {
            round: 1,
            cal,
            src_state,
            store: WormStore::default(),
            active: Vec::new(),
            next_seq: 0,
            tenant_inflight: vec![0u32; n_tenants],
            tenants: vec![TenantStats::default(); n_tenants],
            spawned: 0,
            completed: 0,
            shed: 0,
            deferred: 0,
            latency: QuantileSketch::new(),
            latency_sum: 0,
            active_acc: 0,
            peak_active: 0,
            total_time: 0,
            early_sum: 0,
            late_sum: 0,
        }
    }

    /// The serving loop proper, picking up from `st.round`. `boundary`
    /// fires at checkpoint cadence boundaries with the loop state and
    /// the RNG (immutably — boundaries are round-aligned, no draw is in
    /// flight); the plain run paths pass a no-op.
    fn serve<R: Rng, S: Sink>(
        &mut self,
        ws: &mut ProtocolWorkspace,
        rng: &mut R,
        sink: &mut S,
        mut st: SteadyProgress,
        boundary: &mut dyn FnMut(&SteadyProgress, &R),
    ) -> SteadyReport {
        let p = &self.params;
        let n_sources = self.net.node_count() as u32;
        ws.prepare(
            self.net.link_count(),
            // Scratch hint: engines grow on demand; seed them for a
            // moderate active population instead of one slot per source
            // (a million mostly-idle sources must not cost 1M-slot
            // reservations).
            (n_sources as usize).min(4096),
            p.router,
            p.shards,
            false,
            &None,
            &None,
        );
        let ProtocolWorkspace {
            engine,
            specs: spec_buf,
            outcome,
            ..
        } = ws;
        let engine = engine.as_mut().expect("prepared above");

        // Per-round event scratch; always empty at round boundaries, so
        // it is not part of the checkpointed state.
        let mut events: Vec<Event> = Vec::new();

        // Streaming quartile accumulators for the saturation verdict
        // (replaces the round-stepped path's full active timeline).
        let q = (p.rounds / 4) as u64;

        // Checkpoint cadence: fire at the first served round after each
        // multiple of `checkpoint_every`. Tracked as "next boundary"
        // rather than a modulus so idle-skipped stretches cannot swallow
        // a boundary.
        let every = u64::from(p.checkpoint_every);
        let mut next_cp: u64 = if every == 0 { u64::MAX } else { every + 1 };

        let b = p.router.bandwidth as u32;
        while st.round <= p.rounds {
            if u64::from(st.round) >= next_cp {
                if S::ENABLED {
                    sink.on_checkpoint(st.round, st.next_seq);
                }
                boundary(&st, rng);
                next_cp = (u64::from(st.round) - 1) / every * every + every + 1;
            }

            // Idle skipping: with nothing in flight, jump straight to the
            // next scheduled event (each skipped round costs 1 time unit,
            // like the round-stepped path's idle rounds).
            if st.active.is_empty() {
                match st.cal.next_occupied(st.round) {
                    Some(r) if r <= p.rounds => {
                        st.total_time += u64::from(r - st.round);
                        st.round = r;
                    }
                    _ => {
                        st.total_time += u64::from(p.rounds - st.round + 1);
                        break;
                    }
                }
            }

            // Admission: drain this round's events in FIFO order.
            events.clear();
            st.cal.drain_round(st.round, &mut events);
            for ev in events.drain(..) {
                let (src, t) = match ev {
                    Event::Arrival(src) => {
                        // Keep the process stationary: schedule the next
                        // arrival before deciding this one's fate.
                        let t = p.mix.tenant_of(src, n_sources) as usize;
                        if let Some(r) = p.mix.tenants[t].next_arrival(
                            st.round,
                            &mut st.src_state[src as usize],
                            rng,
                        ) {
                            if r <= p.rounds {
                                st.cal.schedule(r, Event::Arrival(src));
                            }
                        }
                        (src, t)
                    }
                    Event::Inject(src) => (src, p.mix.tenant_of(src, n_sources) as usize),
                };
                let admitted = match &p.admission {
                    None => true,
                    Some(ac) => st.tenant_inflight[t] < ac.max_in_flight,
                };
                if admitted {
                    let slot = st.store.alloc();
                    st.store.links[slot].clear();
                    (self.sample_path)(src, rng, &mut st.store.links[slot]);
                    st.store.spawn_round[slot] = st.round;
                    st.store.tenant[slot] = t as u32;
                    st.store.seq[slot] = st.next_seq;
                    if S::ENABLED {
                        sink.on_spawn(st.round, st.next_seq, src);
                    }
                    st.next_seq += 1;
                    st.active.push(slot as u32);
                    st.tenant_inflight[t] += 1;
                    st.tenants[t].spawned += 1;
                    st.tenants[t].peak_in_flight =
                        st.tenants[t].peak_in_flight.max(st.tenant_inflight[t]);
                    if st.round > p.warmup {
                        st.spawned += 1;
                    }
                } else {
                    match p.admission.as_ref().expect("checked above").policy {
                        AdmissionPolicy::Shed => {
                            st.tenants[t].shed += 1;
                            if st.round > p.warmup {
                                st.shed += 1;
                            }
                            if S::ENABLED {
                                sink.on_shed(st.round, t as u32);
                            }
                        }
                        AdmissionPolicy::Defer { delay } => {
                            st.tenants[t].deferred += 1;
                            if st.round > p.warmup {
                                st.deferred += 1;
                            }
                            if S::ENABLED {
                                sink.on_defer(st.round, t as u32, delay);
                            }
                            if let Some(r) = st.round.checked_add(delay) {
                                if r <= p.rounds {
                                    st.cal.schedule(r, Event::Inject(src));
                                }
                            }
                        }
                    }
                }
            }

            // Population accounting (post-admission, like the
            // round-stepped path's post-spawn timeline).
            st.peak_active = st.peak_active.max(st.active.len());
            if st.round > p.warmup {
                st.active_acc += st.active.len() as u64;
            }
            if q >= 1 {
                let r = u64::from(st.round);
                if r > q && r <= 2 * q {
                    st.early_sum += st.active.len() as u64;
                } else if r > 3 * q {
                    st.late_sum += st.active.len() as u64;
                }
            }

            if st.active.is_empty() {
                // Events fired but nothing was admitted: idle round.
                st.total_time += 1;
                st.round += 1;
                continue;
            }

            // One engine round over the active population — identical
            // shape (and RNG draw order) to the round-stepped path.
            let ctx = ScheduleCtx {
                n: st.active.len().max(1),
                active: st.active.len(),
                worm_len: p.worm_len,
                bandwidth: p.router.bandwidth,
                path_congestion: st.active.len() as u32,
                dilation: 0,
            };
            let delta = p.schedule.delta(1, &ctx);
            let mut specs = spec_buf.take();
            // `max_len` rides along in the spec pass: a second sweep over
            // `active` would re-miss the cache on every `store.links` row.
            let mut max_len = 0usize;
            let store = &st.store;
            specs.extend(st.active.iter().enumerate().map(|(i, &slot)| {
                let links = &store.links[slot as usize];
                max_len = max_len.max(links.len());
                TransmissionSpec {
                    links,
                    start: rng.gen_range(0..delta),
                    wavelength: rng.gen_range(0..b) as u16,
                    priority: i as u64,
                    length: p.worm_len,
                }
            }));
            st.total_time += u64::from(delta) + 2 * (max_len as u64 + u64::from(p.worm_len));

            engine.run_into_traced(&specs, rng, outcome, sink);
            spec_buf.put(specs);

            // Retire delivered worms, preserving survivor order.
            let mut k = 0usize;
            let round = st.round;
            let warmup = p.warmup;
            let store = &mut st.store;
            let tenant_inflight = &mut st.tenant_inflight;
            let tenants = &mut st.tenants;
            let completed = &mut st.completed;
            let latency_sum = &mut st.latency_sum;
            let latency = &mut st.latency;
            st.active.retain(|&slot| {
                let delivered = outcome.results[k].fate.is_delivered();
                k += 1;
                if delivered {
                    let slot = slot as usize;
                    let lat = round - store.spawn_round[slot] + 1;
                    if S::ENABLED {
                        sink.on_sojourn(round, store.seq[slot], lat);
                    }
                    let t = store.tenant[slot] as usize;
                    tenant_inflight[t] -= 1;
                    tenants[t].completed += 1;
                    if round > warmup {
                        *completed += 1;
                        *latency_sum += u64::from(lat);
                        latency.record(u64::from(lat));
                    }
                    store.release(slot);
                }
                !delivered
            });

            st.round += 1;
        }

        let measured_rounds = f64::from(p.rounds - p.warmup);
        let saturated = q >= 1 && {
            let early = st.early_sum as f64 / q as f64;
            let late = st.late_sum as f64 / (u64::from(p.rounds) - 3 * q) as f64;
            late > 2.0 * early + 1.0
        };
        SteadyReport {
            spawned: st.spawned,
            completed: st.completed,
            shed: st.shed,
            deferred: st.deferred,
            avg_active: st.active_acc as f64 / measured_rounds,
            final_active: st.active.len(),
            peak_active: st.peak_active,
            mean_latency_rounds: if st.completed == 0 {
                0.0
            } else {
                st.latency_sum as f64 / st.completed as f64
            },
            p50_latency_rounds: st.latency.quantile(0.5),
            p99_latency_rounds: st.latency.quantile(0.99),
            p999_latency_rounds: st.latency.quantile(0.999),
            throughput: st.completed as f64 / measured_rounds,
            saturated,
            total_time: st.total_time,
            latency: st.latency,
            tenants: st.tenants,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::arrivals::ArrivalProcess;
    use super::super::{ContinuousParams, ContinuousRun};
    use super::*;
    use optical_paths::select::bfs::bfs_route;
    use optical_topo::topologies;
    use rand::{RngCore, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// Draws source and destination from the RNG (ignoring the event's
    /// source) so the draw order matches the round-stepped sampler
    /// exactly — what the full-load differential tests rely on.
    fn pair_sampler(
        net: &Network,
    ) -> impl FnMut(u32, &mut dyn rand::RngCore, &mut Vec<LinkId>) + '_ {
        move |_src, rng, out| {
            let n = net.node_count() as u32;
            let s = rng.gen_range(0..n);
            let d = rng.gen_range(0..n);
            out.extend_from_slice(bfs_route(net, s, d).links());
        }
    }

    fn stepped_sampler(
        net: &Network,
    ) -> impl FnMut(&mut dyn rand::RngCore) -> optical_paths::Path + '_ {
        move |rng| {
            let n = net.node_count() as u32;
            let s = rng.gen_range(0..n);
            let d = rng.gen_range(0..n);
            bfs_route(net, s, d)
        }
    }

    #[test]
    fn full_load_matches_round_stepped_bit_for_bit() {
        let net = topologies::torus(2, 4);
        let schedule = DelaySchedule::Fixed { delta: 32 };
        let router = RouterConfig::serve_first(2);

        let mut stepped = ContinuousRun::new(
            &net,
            stepped_sampler(&net),
            ContinuousParams {
                router,
                worm_len: 4,
                schedule,
                arrival_prob: 1.0,
                rounds: 40,
                warmup: 10,
            },
        );
        let mut rng_a = ChaCha8Rng::seed_from_u64(11);
        let a = stepped.run(&mut rng_a);

        let mut event = SteadyRun::new(
            &net,
            pair_sampler(&net),
            SteadyParams::bernoulli(router, 4, schedule, 1.0, 40, 10),
        );
        let mut rng_b = ChaCha8Rng::seed_from_u64(11);
        let b = event.run(&mut rng_b);

        assert_eq!(a.spawned, b.spawned);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.avg_active, b.avg_active);
        assert_eq!(a.final_active, b.final_active);
        assert_eq!(a.mean_latency_rounds, b.mean_latency_rounds);
        assert_eq!(a.throughput, b.throughput);
        assert_eq!(a.saturated, b.saturated);
        assert_eq!(a.total_time, b.total_time);
        // Same RNG stream consumed — the strongest equivalence check.
        assert_eq!(rng_a.next_u64(), rng_b.next_u64());
    }

    #[test]
    fn zero_load_skips_everything() {
        let net = topologies::ring(8);
        let mut run = SteadyRun::new(
            &net,
            pair_sampler(&net),
            SteadyParams::bernoulli(
                RouterConfig::serve_first(2),
                4,
                DelaySchedule::Fixed { delta: 16 },
                0.0,
                50,
                10,
            ),
        );
        let report = run.run(&mut ChaCha8Rng::seed_from_u64(1));
        assert_eq!(report.spawned, 0);
        assert_eq!(report.completed, 0);
        assert_eq!(report.peak_active, 0);
        // Every idle round costs exactly one time unit, skipped or not.
        assert_eq!(report.total_time, 50);
        assert!(report.latency.is_empty());
    }

    #[test]
    fn shed_policy_caps_in_flight_and_counts_drops() {
        let net = topologies::torus(2, 4);
        let mut p = SteadyParams::bernoulli(
            RouterConfig::serve_first(1),
            4,
            DelaySchedule::Fixed { delta: 6 },
            1.0,
            60,
            10,
        );
        p.admission = Some(AdmissionControl::shed(5));
        let mut run = SteadyRun::new(&net, pair_sampler(&net), p);
        let report = run.run(&mut ChaCha8Rng::seed_from_u64(2));
        assert_eq!(report.tenants.len(), 1);
        assert!(report.tenants[0].peak_in_flight <= 5, "{report:?}");
        assert!(report.peak_active <= 5);
        assert!(report.shed > 0, "full load over a cap of 5 must shed");
        assert!(report.completed > 0);
        assert_eq!(report.deferred, 0);
    }

    #[test]
    fn defer_policy_parks_and_readmits() {
        let net = topologies::torus(2, 4);
        let mut p = SteadyParams::bernoulli(
            RouterConfig::serve_first(1),
            4,
            DelaySchedule::Fixed { delta: 6 },
            0.5,
            80,
            10,
        );
        p.admission = Some(AdmissionControl::defer(4, 3));
        let mut run = SteadyRun::new(&net, pair_sampler(&net), p);
        let report = run.run(&mut ChaCha8Rng::seed_from_u64(3));
        assert!(report.tenants[0].peak_in_flight <= 4, "{report:?}");
        assert!(report.deferred > 0, "load over a cap of 4 must defer");
        assert_eq!(report.shed, 0);
        assert!(
            report.tenants[0].completed > 0,
            "deferred arrivals must eventually route: {report:?}"
        );
    }

    #[test]
    fn multi_tenant_mix_tallies_per_tenant() {
        let net = topologies::torus(2, 6);
        let mut p = SteadyParams::bernoulli(
            RouterConfig::serve_first(2),
            4,
            DelaySchedule::Fixed { delta: 32 },
            0.0,
            120,
            20,
        );
        p.mix = TrafficMix {
            tenants: vec![
                ArrivalProcess::Bernoulli { prob: 0.05 },
                ArrivalProcess::Poisson { rate: 0.05 },
                ArrivalProcess::BurstyOnOff {
                    on_prob: 0.4,
                    mean_burst: 3.0,
                    mean_off: 40.0,
                },
                ArrivalProcess::Diurnal {
                    base: 0.04,
                    amplitude: 0.9,
                    period: 60,
                },
            ],
        };
        let mut run = SteadyRun::new(&net, pair_sampler(&net), p);
        let report = run.run(&mut ChaCha8Rng::seed_from_u64(4));
        assert_eq!(report.tenants.len(), 4);
        for (i, t) in report.tenants.iter().enumerate() {
            assert!(t.spawned > 0, "tenant {i} must see arrivals: {report:?}");
            assert!(t.completed <= t.spawned);
            assert!(u64::from(t.peak_in_flight) <= t.spawned);
        }
        let spawned_total: u64 = report.tenants.iter().map(|t| t.spawned).sum();
        let completed_total: u64 = report.tenants.iter().map(|t| t.completed).sum();
        assert_eq!(
            spawned_total - completed_total,
            report.final_active as u64,
            "spawn/complete/in-flight conservation: {report:?}"
        );
        assert!(!report.saturated, "light mixed load must be stable");
    }

    #[test]
    fn workspace_reuse_is_bit_identical() {
        let net = topologies::torus(2, 4);
        let mut ws = ProtocolWorkspace::new();
        for seed in [5u64, 6] {
            let p = SteadyParams::bernoulli(
                RouterConfig::serve_first(2),
                4,
                DelaySchedule::Fixed { delta: 16 },
                0.2,
                60,
                10,
            );
            let mut fresh = SteadyRun::new(&net, pair_sampler(&net), p.clone());
            let a = fresh.run(&mut ChaCha8Rng::seed_from_u64(seed));
            let mut reused = SteadyRun::new(&net, pair_sampler(&net), p);
            let b = reused.run_with(&mut ws, &mut ChaCha8Rng::seed_from_u64(seed));
            assert_eq!(a, b);
        }
    }

    #[test]
    fn sketch_percentiles_are_ordered_and_bounded() {
        let net = topologies::torus(2, 6);
        let p = SteadyParams::bernoulli(
            RouterConfig::serve_first(1),
            4,
            DelaySchedule::Fixed { delta: 8 },
            0.15,
            150,
            30,
        );
        let mut run = SteadyRun::new(&net, pair_sampler(&net), p);
        let report = run.run(&mut ChaCha8Rng::seed_from_u64(7));
        assert!(report.completed > 0);
        assert!(report.p50_latency_rounds >= 1);
        assert!(report.p99_latency_rounds >= report.p50_latency_rounds);
        assert!(report.p999_latency_rounds >= report.p99_latency_rounds);
        assert_eq!(report.latency.len(), report.completed);
    }

    #[test]
    fn checkpointing_does_not_perturb_the_run() {
        let net = topologies::torus(2, 4);
        let p = SteadyParams::bernoulli(
            RouterConfig::serve_first(2),
            4,
            DelaySchedule::Fixed { delta: 16 },
            0.3,
            80,
            10,
        );
        let mut plain = SteadyRun::new(&net, pair_sampler(&net), p.clone());
        let a = plain.run(&mut ChaCha8Rng::seed_from_u64(9));
        let mut ckpt = SteadyRun::new(&net, pair_sampler(&net), p.checkpoint_every(16));
        let mut cuts = 0u32;
        let b = ckpt.run_checkpointed(
            &mut ProtocolWorkspace::new(),
            &mut ChaCha8Rng::seed_from_u64(9),
            &mut NullSink,
            |_cp| cuts += 1,
        );
        assert_eq!(a, b, "checkpoint hooks must observe, not perturb");
        assert!(
            cuts >= 3,
            "an 80-round run at cadence 16 must cut checkpoints"
        );
    }

    #[test]
    fn resume_mid_run_is_bit_exact() {
        let net = topologies::torus(2, 4);
        let p = SteadyParams::bernoulli(
            RouterConfig::serve_first(2),
            4,
            DelaySchedule::Fixed { delta: 16 },
            0.3,
            80,
            10,
        )
        .checkpoint_every(32);
        let mut run = SteadyRun::new(&net, pair_sampler(&net), p.clone());
        let mut first_cp: Option<SteadyCheckpoint> = None;
        let golden = run.run_checkpointed(
            &mut ProtocolWorkspace::new(),
            &mut ChaCha8Rng::seed_from_u64(12),
            &mut NullSink,
            |cp| {
                if first_cp.is_none() {
                    first_cp = Some(cp.clone());
                }
            },
        );
        let cp = first_cp.expect("cadence 32 over 80 rounds cuts a checkpoint");
        assert!(cp.round() > 32 && cp.round() <= 80);
        // Fresh run object, fresh workspace: only the checkpoint crosses.
        let mut resumed_run = SteadyRun::new(&net, pair_sampler(&net), p);
        let resumed = resumed_run.resume_from(cp).unwrap();
        assert_eq!(golden, resumed);
    }

    #[test]
    fn resume_rejects_a_different_config() {
        let net = topologies::torus(2, 4);
        let p = SteadyParams::bernoulli(
            RouterConfig::serve_first(2),
            4,
            DelaySchedule::Fixed { delta: 16 },
            0.3,
            80,
            10,
        )
        .checkpoint_every(32);
        let mut run = SteadyRun::new(&net, pair_sampler(&net), p.clone());
        let mut cp: Option<SteadyCheckpoint> = None;
        run.run_checkpointed(
            &mut ProtocolWorkspace::new(),
            &mut ChaCha8Rng::seed_from_u64(12),
            &mut NullSink,
            |c| cp = Some(c.clone()),
        );
        let cp = cp.unwrap();
        // Different topology.
        let other_net = topologies::torus(2, 6);
        let mut other = SteadyRun::new(&other_net, pair_sampler(&other_net), p.clone());
        assert!(matches!(
            other.resume_from(cp.clone()),
            Err(RestoreError::Fingerprint { .. })
        ));
        // Same topology, different worm length.
        let mut p2 = p.clone();
        p2.worm_len = 6;
        let mut other = SteadyRun::new(&net, pair_sampler(&net), p2);
        assert!(matches!(
            other.resume_from(cp.clone()),
            Err(RestoreError::Fingerprint { .. })
        ));
        // Cadence is outside the fingerprint: resuming at a different
        // cadence is allowed.
        let mut recadenced = SteadyRun::new(&net, pair_sampler(&net), p.checkpoint_every(7));
        assert!(recadenced.resume_from(cp).is_ok());
    }

    #[test]
    fn checkpoint_envelope_roundtrips_and_validates() {
        let net = topologies::torus(2, 4);
        let p = SteadyParams::bernoulli(
            RouterConfig::serve_first(2),
            4,
            DelaySchedule::Fixed { delta: 16 },
            0.4,
            60,
            10,
        )
        .checkpoint_every(20);
        let mut run = SteadyRun::new(&net, pair_sampler(&net), p);
        let mut cp: Option<SteadyCheckpoint> = None;
        run.run_checkpointed(
            &mut ProtocolWorkspace::new(),
            &mut ChaCha8Rng::seed_from_u64(3),
            &mut NullSink,
            |c| {
                if cp.is_none() {
                    cp = Some(c.clone());
                }
            },
        );
        let cp = cp.unwrap();
        let snap = cp.snapshot();
        let back = SteadyCheckpoint::restore(snap.clone()).unwrap();
        assert_eq!(cp, back);
        // A corrupted payload is a typed error, not a panic.
        let mut bad = snap;
        bad.state.progress.active.push(u32::MAX);
        assert!(matches!(
            SteadyCheckpoint::restore(bad),
            Err(RestoreError::Invalid(_))
        ));
    }
}
