//! The event-driven steady-state serving engine.
//!
//! [`SteadyRun`] replaces the round-stepped [`super::ContinuousRun`]
//! loop — which pays one coin flip per source per round, idle or not —
//! with a [`CalendarQueue`](super::CalendarQueue) of arrival events: a
//! source consumes work only in the round its next arrival fires, so a
//! million sources at a 0.1% duty cycle cost ~1k events per round
//! instead of 1M coin flips (the `continuous/steady_1m_sparse` perf-gate
//! key holds the receipt). Whole stretches of idle rounds are skipped in
//! O(1) per stretch.
//!
//! In-flight worms live in a slot store (struct-of-arrays with a
//! freelist) keyed by **stable 64-bit spawn sequence ids**, so millions
//! of concurrent worms are representable without per-round reallocation.
//! Latency statistics stream into a fixed-memory
//! [`QuantileSketch`] — no per-sojourn buffering, so arbitrarily long
//! runs hold memory constant.
//!
//! **Full-load equivalence.** With a single Bernoulli tenant at
//! `prob >= 1` and no admission control, a `SteadyRun` consumes the RNG
//! draw-for-draw like `ContinuousRun` at `arrival_prob = 1.0` and
//! produces the identical spawn order, completion rounds, and report —
//! the differential suite `tests/golden_continuous.rs` pins this across
//! topologies and schedules.

use super::admission::{AdmissionControl, AdmissionPolicy};
use super::arrivals::{SourceState, TrafficMix};
use super::calendar::CalendarQueue;
use crate::schedule::{DelaySchedule, ScheduleCtx};
use crate::workspace::ProtocolWorkspace;
use optical_obs::{NullSink, Sink};
use optical_stats::QuantileSketch;
use optical_topo::{LinkId, Network};
use optical_wdm::{RouterConfig, TransmissionSpec};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of an event-driven steady-state run.
#[derive(Clone, Debug)]
pub struct SteadyParams {
    /// Router model.
    pub router: RouterConfig,
    /// Worm length `L`.
    pub worm_len: u32,
    /// Delay schedule; steady-state runs should use a *stationary*
    /// schedule ([`DelaySchedule::Fixed`] or `Adaptive`).
    pub schedule: DelaySchedule,
    /// Total rounds to simulate.
    pub rounds: u32,
    /// Rounds to exclude from latency/throughput statistics (ramp-up).
    pub warmup: u32,
    /// Per-tenant arrival processes; sources are split into contiguous
    /// equal blocks, one per tenant.
    pub mix: TrafficMix,
    /// Optional per-tenant in-flight cap with shed/defer policy.
    pub admission: Option<AdmissionControl>,
    /// Intra-round engine shard count (1 = serial engine rounds).
    pub shards: usize,
}

impl SteadyParams {
    /// Compat constructor: single Bernoulli tenant, no admission control
    /// — the event-driven equivalent of [`super::ContinuousParams`] with
    /// the same `arrival_prob`, `rounds`, and `warmup`.
    pub fn bernoulli(
        router: RouterConfig,
        worm_len: u32,
        schedule: DelaySchedule,
        arrival_prob: f64,
        rounds: u32,
        warmup: u32,
    ) -> Self {
        SteadyParams {
            router,
            worm_len,
            schedule,
            rounds,
            warmup,
            mix: TrafficMix::bernoulli(arrival_prob),
            admission: None,
            shards: 1,
        }
    }

    fn validate(&self) {
        self.router.validate();
        assert!(
            self.warmup < self.rounds,
            "warmup must leave measured rounds"
        );
        if let Err(e) = self.mix.validate() {
            panic!("invalid traffic mix: {e}");
        }
        if let Some(ac) = &self.admission {
            if let Err(e) = ac.validate() {
                panic!("invalid admission control: {e}");
            }
        }
    }
}

/// Per-tenant tallies over the **whole run** (warmup included — these
/// are operational counters, not steady-state statistics).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantStats {
    /// Worms spawned (admitted arrivals).
    pub spawned: u64,
    /// Worms delivered end-to-end.
    pub completed: u64,
    /// Arrivals dropped by admission control.
    pub shed: u64,
    /// Deferral events (one arrival may defer repeatedly).
    pub deferred: u64,
    /// Peak concurrent in-flight worms.
    pub peak_in_flight: u32,
}

/// Outcome of an event-driven steady-state run.
///
/// `spawned`, `completed`, `throughput`, `avg_active` and the latency
/// statistics cover post-warmup rounds (matching
/// [`super::ContinuousReport`]); `tenants` and `peak_active` cover the
/// whole run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SteadyReport {
    /// Worms spawned after warmup.
    pub spawned: u64,
    /// Worms completed after warmup.
    pub completed: u64,
    /// Arrivals shed after warmup.
    pub shed: u64,
    /// Deferral events after warmup.
    pub deferred: u64,
    /// Mean active worms per post-warmup round.
    pub avg_active: f64,
    /// Active worms at the end of the simulation.
    pub final_active: usize,
    /// Peak concurrent active worms over the whole run.
    pub peak_active: usize,
    /// Mean sojourn time in rounds (spawn round to completion round,
    /// inclusive) of post-warmup completions.
    pub mean_latency_rounds: f64,
    /// Median sojourn latency in rounds (sketch lower bound).
    pub p50_latency_rounds: u64,
    /// 99th-percentile sojourn latency in rounds.
    pub p99_latency_rounds: u64,
    /// 99.9th-percentile sojourn latency in rounds.
    pub p999_latency_rounds: u64,
    /// Completed worms per post-warmup round.
    pub throughput: f64,
    /// Heuristic saturation verdict, same quartile test as
    /// [`super::ContinuousReport::saturated`].
    pub saturated: bool,
    /// Total simulated time in flit steps (sum of round budgets; idle
    /// rounds cost 1 each, skipped or not).
    pub total_time: u64,
    /// The full fixed-memory latency sketch (post-warmup sojourns, in
    /// rounds) — query any percentile, or merge across runs.
    pub latency: QuantileSketch,
    /// Per-tenant whole-run tallies, indexed by tenant id.
    pub tenants: Vec<TenantStats>,
}

/// Calendar events: a source's scheduled arrival, or a deferred
/// arrival re-entering admission.
#[derive(Clone, Copy, Debug)]
enum Event {
    Arrival(u32),
    Inject(u32),
}

/// SoA store of in-flight worms with a slot freelist. Slots are reused;
/// identity across reuse is the 64-bit spawn sequence id.
#[derive(Default)]
struct WormStore {
    links: Vec<Vec<LinkId>>,
    spawn_round: Vec<u32>,
    tenant: Vec<u32>,
    seq: Vec<u64>,
    free: Vec<u32>,
}

impl WormStore {
    fn alloc(&mut self) -> usize {
        match self.free.pop() {
            Some(slot) => slot as usize,
            None => {
                self.links.push(Vec::new());
                self.spawn_round.push(0);
                self.tenant.push(0);
                self.seq.push(0);
                self.links.len() - 1
            }
        }
    }

    fn release(&mut self, slot: usize) {
        self.links[slot].clear();
        self.free.push(slot as u32);
    }
}

/// An event-driven steady-state simulation bound to a network and a path
/// sampler. The sampler fills `out` with the directed links of a fresh
/// worm spawned at `source` (it may consume the RNG; draws must not
/// depend on hidden state so runs stay reproducible).
pub struct SteadyRun<'a, F> {
    net: &'a Network,
    sample_path: F,
    params: SteadyParams,
}

impl<'a, F: FnMut(u32, &mut dyn rand::RngCore, &mut Vec<LinkId>)> SteadyRun<'a, F> {
    /// Create a run over `net`; panics on invalid parameters.
    pub fn new(net: &'a Network, sample_path: F, params: SteadyParams) -> Self {
        params.validate();
        SteadyRun {
            net,
            sample_path,
            params,
        }
    }

    /// Simulate with a fresh workspace.
    pub fn run(&mut self, rng: &mut impl Rng) -> SteadyReport {
        self.run_with(&mut ProtocolWorkspace::new(), rng)
    }

    /// Simulate reusing `ws`'s engine and buffers; bit-identical to
    /// [`SteadyRun::run`] for the same RNG state.
    pub fn run_with(&mut self, ws: &mut ProtocolWorkspace, rng: &mut impl Rng) -> SteadyReport {
        self.run_traced(ws, rng, &mut NullSink)
    }

    /// Simulate with an observability [`Sink`]. Emits `on_spawn` /
    /// `on_shed` / `on_defer` per admission decision, the engine-round
    /// hooks while routing, and `on_sojourn` per completion (warmup
    /// included). Hooks never consume the sim RNG, so any sink is
    /// bit-identical to [`NullSink`].
    pub fn run_traced<S: Sink>(
        &mut self,
        ws: &mut ProtocolWorkspace,
        rng: &mut impl Rng,
        sink: &mut S,
    ) -> SteadyReport {
        let p = &self.params;
        let n_sources = self.net.node_count() as u32;
        let n_tenants = p.mix.tenants.len();
        ws.prepare(
            self.net.link_count(),
            // Scratch hint: engines grow on demand; seed them for a
            // moderate active population instead of one slot per source
            // (a million mostly-idle sources must not cost 1M-slot
            // reservations).
            (n_sources as usize).min(4096),
            p.router,
            p.shards,
            false,
            &None,
            &None,
        );
        let ProtocolWorkspace {
            engine,
            specs: spec_buf,
            outcome,
            ..
        } = ws;
        let engine = engine.as_mut().expect("prepared above");

        // Event machinery. Wheel width is a constant-factor knob only;
        // 256 keeps foreign-round scans short for any defer delay.
        let mut cal: CalendarQueue<Event> = CalendarQueue::new(256);
        let mut events: Vec<Event> = Vec::new();
        let mut src_state: Vec<SourceState> = vec![SourceState::default(); n_sources as usize];

        // Seed every source's first arrival, in source order (draw-order
        // contract: one gap draw per source, none at certainty).
        for src in 0..n_sources {
            let t = p.mix.tenant_of(src, n_sources) as usize;
            if let Some(r) = p.mix.tenants[t].next_arrival(0, &mut src_state[src as usize], rng) {
                if r <= p.rounds {
                    cal.schedule(r, Event::Arrival(src));
                }
            }
        }

        // Worm state.
        let mut store = WormStore::default();
        let mut active: Vec<u32> = Vec::new();
        let mut next_seq = 0u64;
        let mut tenant_inflight = vec![0u32; n_tenants];
        let mut tenants = vec![TenantStats::default(); n_tenants];

        // Statistics.
        let mut spawned = 0u64;
        let mut completed = 0u64;
        let mut shed = 0u64;
        let mut deferred = 0u64;
        let mut latency = QuantileSketch::new();
        let mut latency_sum = 0u64;
        let mut active_acc = 0u64;
        let mut peak_active = 0usize;
        let mut total_time = 0u64;
        // Streaming quartile accumulators for the saturation verdict
        // (replaces the round-stepped path's full active timeline).
        let q = (p.rounds / 4) as u64;
        let mut early_sum = 0u64;
        let mut late_sum = 0u64;

        let b = p.router.bandwidth as u32;
        let mut round = 1u32;
        while round <= p.rounds {
            // Idle skipping: with nothing in flight, jump straight to the
            // next scheduled event (each skipped round costs 1 time unit,
            // like the round-stepped path's idle rounds).
            if active.is_empty() {
                match cal.next_occupied(round) {
                    Some(r) if r <= p.rounds => {
                        total_time += u64::from(r - round);
                        round = r;
                    }
                    _ => {
                        total_time += u64::from(p.rounds - round + 1);
                        break;
                    }
                }
            }

            // Admission: drain this round's events in FIFO order.
            events.clear();
            cal.drain_round(round, &mut events);
            for ev in events.drain(..) {
                let (src, t) = match ev {
                    Event::Arrival(src) => {
                        // Keep the process stationary: schedule the next
                        // arrival before deciding this one's fate.
                        let t = p.mix.tenant_of(src, n_sources) as usize;
                        if let Some(r) =
                            p.mix.tenants[t].next_arrival(round, &mut src_state[src as usize], rng)
                        {
                            if r <= p.rounds {
                                cal.schedule(r, Event::Arrival(src));
                            }
                        }
                        (src, t)
                    }
                    Event::Inject(src) => (src, p.mix.tenant_of(src, n_sources) as usize),
                };
                let admitted = match &p.admission {
                    None => true,
                    Some(ac) => tenant_inflight[t] < ac.max_in_flight,
                };
                if admitted {
                    let slot = store.alloc();
                    store.links[slot].clear();
                    (self.sample_path)(src, rng, &mut store.links[slot]);
                    store.spawn_round[slot] = round;
                    store.tenant[slot] = t as u32;
                    store.seq[slot] = next_seq;
                    if S::ENABLED {
                        sink.on_spawn(round, next_seq, src);
                    }
                    next_seq += 1;
                    active.push(slot as u32);
                    tenant_inflight[t] += 1;
                    tenants[t].spawned += 1;
                    tenants[t].peak_in_flight = tenants[t].peak_in_flight.max(tenant_inflight[t]);
                    if round > p.warmup {
                        spawned += 1;
                    }
                } else {
                    match p.admission.as_ref().expect("checked above").policy {
                        AdmissionPolicy::Shed => {
                            tenants[t].shed += 1;
                            if round > p.warmup {
                                shed += 1;
                            }
                            if S::ENABLED {
                                sink.on_shed(round, t as u32);
                            }
                        }
                        AdmissionPolicy::Defer { delay } => {
                            tenants[t].deferred += 1;
                            if round > p.warmup {
                                deferred += 1;
                            }
                            if S::ENABLED {
                                sink.on_defer(round, t as u32, delay);
                            }
                            if let Some(r) = round.checked_add(delay) {
                                if r <= p.rounds {
                                    cal.schedule(r, Event::Inject(src));
                                }
                            }
                        }
                    }
                }
            }

            // Population accounting (post-admission, like the
            // round-stepped path's post-spawn timeline).
            peak_active = peak_active.max(active.len());
            if round > p.warmup {
                active_acc += active.len() as u64;
            }
            if q >= 1 {
                let r = u64::from(round);
                if r > q && r <= 2 * q {
                    early_sum += active.len() as u64;
                } else if r > 3 * q {
                    late_sum += active.len() as u64;
                }
            }

            if active.is_empty() {
                // Events fired but nothing was admitted: idle round.
                total_time += 1;
                round += 1;
                continue;
            }

            // One engine round over the active population — identical
            // shape (and RNG draw order) to the round-stepped path.
            let ctx = ScheduleCtx {
                n: active.len().max(1),
                active: active.len(),
                worm_len: p.worm_len,
                bandwidth: p.router.bandwidth,
                path_congestion: active.len() as u32,
                dilation: 0,
            };
            let delta = p.schedule.delta(1, &ctx);
            let mut specs = spec_buf.take();
            // `max_len` rides along in the spec pass: a second sweep over
            // `active` would re-miss the cache on every `store.links` row.
            let mut max_len = 0usize;
            specs.extend(active.iter().enumerate().map(|(i, &slot)| {
                let links = &store.links[slot as usize];
                max_len = max_len.max(links.len());
                TransmissionSpec {
                    links,
                    start: rng.gen_range(0..delta),
                    wavelength: rng.gen_range(0..b) as u16,
                    priority: i as u64,
                    length: p.worm_len,
                }
            }));
            total_time += u64::from(delta) + 2 * (max_len as u64 + u64::from(p.worm_len));

            engine.run_into_traced(&specs, rng, outcome, sink);
            spec_buf.put(specs);

            // Retire delivered worms, preserving survivor order.
            let mut k = 0usize;
            active.retain(|&slot| {
                let delivered = outcome.results[k].fate.is_delivered();
                k += 1;
                if delivered {
                    let slot = slot as usize;
                    let lat = round - store.spawn_round[slot] + 1;
                    if S::ENABLED {
                        sink.on_sojourn(round, store.seq[slot], lat);
                    }
                    let t = store.tenant[slot] as usize;
                    tenant_inflight[t] -= 1;
                    tenants[t].completed += 1;
                    if round > p.warmup {
                        completed += 1;
                        latency_sum += u64::from(lat);
                        latency.record(u64::from(lat));
                    }
                    store.release(slot);
                }
                !delivered
            });

            round += 1;
        }

        let measured_rounds = f64::from(p.rounds - p.warmup);
        let saturated = q >= 1 && {
            let early = early_sum as f64 / q as f64;
            let late = late_sum as f64 / (u64::from(p.rounds) - 3 * q) as f64;
            late > 2.0 * early + 1.0
        };
        SteadyReport {
            spawned,
            completed,
            shed,
            deferred,
            avg_active: active_acc as f64 / measured_rounds,
            final_active: active.len(),
            peak_active,
            mean_latency_rounds: if completed == 0 {
                0.0
            } else {
                latency_sum as f64 / completed as f64
            },
            p50_latency_rounds: latency.quantile(0.5),
            p99_latency_rounds: latency.quantile(0.99),
            p999_latency_rounds: latency.quantile(0.999),
            throughput: completed as f64 / measured_rounds,
            saturated,
            total_time,
            latency,
            tenants,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::arrivals::ArrivalProcess;
    use super::super::{ContinuousParams, ContinuousRun};
    use super::*;
    use optical_paths::select::bfs::bfs_route;
    use optical_topo::topologies;
    use rand::{RngCore, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// Draws source and destination from the RNG (ignoring the event's
    /// source) so the draw order matches the round-stepped sampler
    /// exactly — what the full-load differential tests rely on.
    fn pair_sampler(
        net: &Network,
    ) -> impl FnMut(u32, &mut dyn rand::RngCore, &mut Vec<LinkId>) + '_ {
        move |_src, rng, out| {
            let n = net.node_count() as u32;
            let s = rng.gen_range(0..n);
            let d = rng.gen_range(0..n);
            out.extend_from_slice(bfs_route(net, s, d).links());
        }
    }

    fn stepped_sampler(
        net: &Network,
    ) -> impl FnMut(&mut dyn rand::RngCore) -> optical_paths::Path + '_ {
        move |rng| {
            let n = net.node_count() as u32;
            let s = rng.gen_range(0..n);
            let d = rng.gen_range(0..n);
            bfs_route(net, s, d)
        }
    }

    #[test]
    fn full_load_matches_round_stepped_bit_for_bit() {
        let net = topologies::torus(2, 4);
        let schedule = DelaySchedule::Fixed { delta: 32 };
        let router = RouterConfig::serve_first(2);

        let mut stepped = ContinuousRun::new(
            &net,
            stepped_sampler(&net),
            ContinuousParams {
                router,
                worm_len: 4,
                schedule,
                arrival_prob: 1.0,
                rounds: 40,
                warmup: 10,
            },
        );
        let mut rng_a = ChaCha8Rng::seed_from_u64(11);
        let a = stepped.run(&mut rng_a);

        let mut event = SteadyRun::new(
            &net,
            pair_sampler(&net),
            SteadyParams::bernoulli(router, 4, schedule, 1.0, 40, 10),
        );
        let mut rng_b = ChaCha8Rng::seed_from_u64(11);
        let b = event.run(&mut rng_b);

        assert_eq!(a.spawned, b.spawned);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.avg_active, b.avg_active);
        assert_eq!(a.final_active, b.final_active);
        assert_eq!(a.mean_latency_rounds, b.mean_latency_rounds);
        assert_eq!(a.throughput, b.throughput);
        assert_eq!(a.saturated, b.saturated);
        assert_eq!(a.total_time, b.total_time);
        // Same RNG stream consumed — the strongest equivalence check.
        assert_eq!(rng_a.next_u64(), rng_b.next_u64());
    }

    #[test]
    fn zero_load_skips_everything() {
        let net = topologies::ring(8);
        let mut run = SteadyRun::new(
            &net,
            pair_sampler(&net),
            SteadyParams::bernoulli(
                RouterConfig::serve_first(2),
                4,
                DelaySchedule::Fixed { delta: 16 },
                0.0,
                50,
                10,
            ),
        );
        let report = run.run(&mut ChaCha8Rng::seed_from_u64(1));
        assert_eq!(report.spawned, 0);
        assert_eq!(report.completed, 0);
        assert_eq!(report.peak_active, 0);
        // Every idle round costs exactly one time unit, skipped or not.
        assert_eq!(report.total_time, 50);
        assert!(report.latency.is_empty());
    }

    #[test]
    fn shed_policy_caps_in_flight_and_counts_drops() {
        let net = topologies::torus(2, 4);
        let mut p = SteadyParams::bernoulli(
            RouterConfig::serve_first(1),
            4,
            DelaySchedule::Fixed { delta: 6 },
            1.0,
            60,
            10,
        );
        p.admission = Some(AdmissionControl::shed(5));
        let mut run = SteadyRun::new(&net, pair_sampler(&net), p);
        let report = run.run(&mut ChaCha8Rng::seed_from_u64(2));
        assert_eq!(report.tenants.len(), 1);
        assert!(report.tenants[0].peak_in_flight <= 5, "{report:?}");
        assert!(report.peak_active <= 5);
        assert!(report.shed > 0, "full load over a cap of 5 must shed");
        assert!(report.completed > 0);
        assert_eq!(report.deferred, 0);
    }

    #[test]
    fn defer_policy_parks_and_readmits() {
        let net = topologies::torus(2, 4);
        let mut p = SteadyParams::bernoulli(
            RouterConfig::serve_first(1),
            4,
            DelaySchedule::Fixed { delta: 6 },
            0.5,
            80,
            10,
        );
        p.admission = Some(AdmissionControl::defer(4, 3));
        let mut run = SteadyRun::new(&net, pair_sampler(&net), p);
        let report = run.run(&mut ChaCha8Rng::seed_from_u64(3));
        assert!(report.tenants[0].peak_in_flight <= 4, "{report:?}");
        assert!(report.deferred > 0, "load over a cap of 4 must defer");
        assert_eq!(report.shed, 0);
        assert!(
            report.tenants[0].completed > 0,
            "deferred arrivals must eventually route: {report:?}"
        );
    }

    #[test]
    fn multi_tenant_mix_tallies_per_tenant() {
        let net = topologies::torus(2, 6);
        let mut p = SteadyParams::bernoulli(
            RouterConfig::serve_first(2),
            4,
            DelaySchedule::Fixed { delta: 32 },
            0.0,
            120,
            20,
        );
        p.mix = TrafficMix {
            tenants: vec![
                ArrivalProcess::Bernoulli { prob: 0.05 },
                ArrivalProcess::Poisson { rate: 0.05 },
                ArrivalProcess::BurstyOnOff {
                    on_prob: 0.4,
                    mean_burst: 3.0,
                    mean_off: 40.0,
                },
                ArrivalProcess::Diurnal {
                    base: 0.04,
                    amplitude: 0.9,
                    period: 60,
                },
            ],
        };
        let mut run = SteadyRun::new(&net, pair_sampler(&net), p);
        let report = run.run(&mut ChaCha8Rng::seed_from_u64(4));
        assert_eq!(report.tenants.len(), 4);
        for (i, t) in report.tenants.iter().enumerate() {
            assert!(t.spawned > 0, "tenant {i} must see arrivals: {report:?}");
            assert!(t.completed <= t.spawned);
            assert!(u64::from(t.peak_in_flight) <= t.spawned);
        }
        let spawned_total: u64 = report.tenants.iter().map(|t| t.spawned).sum();
        let completed_total: u64 = report.tenants.iter().map(|t| t.completed).sum();
        assert_eq!(
            spawned_total - completed_total,
            report.final_active as u64,
            "spawn/complete/in-flight conservation: {report:?}"
        );
        assert!(!report.saturated, "light mixed load must be stable");
    }

    #[test]
    fn workspace_reuse_is_bit_identical() {
        let net = topologies::torus(2, 4);
        let mut ws = ProtocolWorkspace::new();
        for seed in [5u64, 6] {
            let p = SteadyParams::bernoulli(
                RouterConfig::serve_first(2),
                4,
                DelaySchedule::Fixed { delta: 16 },
                0.2,
                60,
                10,
            );
            let mut fresh = SteadyRun::new(&net, pair_sampler(&net), p.clone());
            let a = fresh.run(&mut ChaCha8Rng::seed_from_u64(seed));
            let mut reused = SteadyRun::new(&net, pair_sampler(&net), p);
            let b = reused.run_with(&mut ws, &mut ChaCha8Rng::seed_from_u64(seed));
            assert_eq!(a, b);
        }
    }

    #[test]
    fn sketch_percentiles_are_ordered_and_bounded() {
        let net = topologies::torus(2, 6);
        let p = SteadyParams::bernoulli(
            RouterConfig::serve_first(1),
            4,
            DelaySchedule::Fixed { delta: 8 },
            0.15,
            150,
            30,
        );
        let mut run = SteadyRun::new(&net, pair_sampler(&net), p);
        let report = run.run(&mut ChaCha8Rng::seed_from_u64(7));
        assert!(report.completed > 0);
        assert!(report.p50_latency_rounds >= 1);
        assert!(report.p99_latency_rounds >= report.p50_latency_rounds);
        assert!(report.p999_latency_rounds >= report.p99_latency_rounds);
        assert_eq!(report.latency.len(), report.completed);
    }
}
