//! Admission control for steady-state serving: per-tenant in-flight
//! caps with a shed-or-defer policy.
//!
//! Without admission control an overloaded tenant's backlog grows
//! without bound (the saturation regime of E15). A cap bounds each
//! tenant's in-flight worm population; arrivals beyond the cap are
//! either **shed** (dropped, counted) or **deferred** (re-enter
//! admission a fixed number of rounds later). Both decisions are
//! reported through the observability sink (`on_shed` / `on_defer`) and
//! tallied per tenant in the run report.

use serde::{Deserialize, Serialize};

/// What to do with an arrival that would exceed the tenant's in-flight
/// cap.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionPolicy {
    /// Drop the arrival. Cheapest; load beyond the cap is simply lost
    /// (and counted as shed).
    Shed,
    /// Park the arrival and retry admission `delay` rounds later. A
    /// deferred arrival samples its path only once admitted, and may be
    /// deferred again if the tenant is still at its cap.
    Defer {
        /// Rounds to wait before re-attempting admission (>= 1).
        delay: u32,
    },
}

/// Per-tenant admission control: at most `max_in_flight` worms of each
/// tenant may be in flight; excess arrivals follow `policy`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdmissionControl {
    /// In-flight worm cap per tenant (>= 1).
    pub max_in_flight: u32,
    /// Policy for arrivals beyond the cap.
    pub policy: AdmissionPolicy,
}

impl AdmissionControl {
    /// Shed-policy control with the given cap.
    pub fn shed(max_in_flight: u32) -> Self {
        AdmissionControl {
            max_in_flight,
            policy: AdmissionPolicy::Shed,
        }
    }

    /// Defer-policy control with the given cap and re-admission delay.
    pub fn defer(max_in_flight: u32, delay: u32) -> Self {
        AdmissionControl {
            max_in_flight,
            policy: AdmissionPolicy::Defer { delay },
        }
    }

    /// Validate the parameters, returning a human-readable complaint.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_in_flight == 0 {
            return Err("admission max_in_flight must be >= 1".into());
        }
        if let AdmissionPolicy::Defer { delay } = self.policy {
            if delay == 0 {
                return Err("admission defer delay must be >= 1".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_validation() {
        assert!(AdmissionControl::shed(10).validate().is_ok());
        assert!(AdmissionControl::defer(10, 4).validate().is_ok());
        assert!(AdmissionControl::shed(0).validate().is_err());
        assert!(AdmissionControl::defer(10, 0).validate().is_err());
        assert_eq!(
            AdmissionControl::defer(3, 2).policy,
            AdmissionPolicy::Defer { delay: 2 }
        );
    }
}
