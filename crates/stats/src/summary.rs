//! Summary statistics over replicated trial measurements.

use serde::{Deserialize, Serialize};

/// Summary of a sample of `f64` measurements.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected; 0 for n < 2).
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (average of middle two for even n).
    pub median: f64,
    /// 10th percentile (nearest-rank).
    pub p10: f64,
    /// 90th percentile (nearest-rank).
    pub p90: f64,
}

impl Summary {
    /// Summarize a sample.
    ///
    /// # Panics
    /// On an empty sample.
    pub fn of(values: &[f64]) -> Summary {
        assert!(!values.is_empty(), "cannot summarize an empty sample");
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n >= 2 {
            values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        let pct = |p: f64| -> f64 {
            let rank = ((p * n as f64).ceil() as usize).clamp(1, n);
            sorted[rank - 1]
        };
        Summary {
            n,
            mean,
            stddev: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            median,
            p10: pct(0.10),
            p90: pct(0.90),
        }
    }

    /// Summarize integer measurements.
    pub fn of_u64(values: &[u64]) -> Summary {
        let floats: Vec<f64> = values.iter().map(|&v| v as f64).collect();
        Summary::of(&floats)
    }

    /// Half-width of the normal-approximation 95% confidence interval of
    /// the mean.
    pub fn ci95(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        1.96 * self.stddev / (self.n as f64).sqrt()
    }
}

/// Nearest-rank percentile of a sample (`p` in `[0, 1]`), the same
/// convention as [`Summary`]'s `p10`/`p90` but for an arbitrary rank —
/// tail quantiles like p99 delivery time that a fixed-field summary
/// cannot carry.
///
/// # Panics
/// On an empty sample, a NaN value, or `p` outside `[0, 1]`.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    assert!(
        !values.is_empty(),
        "cannot take a percentile of an empty sample"
    );
    assert!(
        (0.0..=1.0).contains(&p),
        "percentile rank must be within [0, 1]"
    );
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.2} ± {:.2} (min {:.2}, max {:.2}, n={})",
            self.mean,
            self.ci95(),
            self.min,
            self.max,
            self.n
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_value() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.min, 7.0);
        assert_eq!(s.max, 7.0);
        assert_eq!(s.ci95(), 0.0);
    }

    #[test]
    fn known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Bessel-corrected variance = 32/7.
        assert!((s.stddev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.median, 4.5);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn odd_median() {
        let s = Summary::of(&[3.0, 1.0, 2.0]);
        assert_eq!(s.median, 2.0);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let vals: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::of(&vals);
        assert_eq!(s.p10, 10.0);
        assert_eq!(s.p90, 90.0);
    }

    #[test]
    fn of_u64_converts() {
        let s = Summary::of_u64(&[1, 2, 3]);
        assert_eq!(s.mean, 2.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_rejected() {
        Summary::of(&[]);
    }

    #[test]
    fn free_percentile_matches_summary_ranks() {
        let vals: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&vals, 0.10), Summary::of(&vals).p10);
        assert_eq!(percentile(&vals, 0.90), Summary::of(&vals).p90);
        assert_eq!(percentile(&vals, 0.99), 99.0);
        assert_eq!(percentile(&vals, 0.0), 1.0);
        assert_eq!(percentile(&vals, 1.0), 100.0);
        assert_eq!(percentile(&[7.0], 0.5), 7.0);
    }

    #[test]
    #[should_panic(expected = "within [0, 1]")]
    fn percentile_rank_out_of_range_rejected() {
        percentile(&[1.0], 1.5);
    }
}
