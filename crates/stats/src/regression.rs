//! Ordinary least squares on one predictor — used by the experiment
//! harness to fit measured round counts against `log n` or `√(log n)` and
//! report the growth exponent the paper predicts.

use serde::{Deserialize, Serialize};

/// Result of a simple linear fit `y ≈ intercept + slope · x`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Intercept `a`.
    pub intercept: f64,
    /// Slope `b`.
    pub slope: f64,
    /// Coefficient of determination `R²` (1 = perfect fit).
    pub r2: f64,
    /// Sample size.
    pub n: usize,
}

/// Least-squares fit of `y` on `x`.
///
/// # Panics
/// If the slices differ in length, have fewer than two points, or `x` is
/// constant.
pub fn linear_fit(x: &[f64], y: &[f64]) -> LinearFit {
    assert_eq!(x.len(), y.len(), "mismatched sample lengths");
    let n = x.len();
    assert!(n >= 2, "need at least two points");
    let mx = x.iter().sum::<f64>() / n as f64;
    let my = y.iter().sum::<f64>() / n as f64;
    let sxx: f64 = x.iter().map(|&v| (v - mx) * (v - mx)).sum();
    assert!(sxx > 0.0, "x must not be constant");
    let sxy: f64 = x.iter().zip(y).map(|(&a, &b)| (a - mx) * (b - my)).sum();
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let ss_res: f64 = x
        .iter()
        .zip(y)
        .map(|(&a, &b)| (b - intercept - slope * a).powi(2))
        .sum();
    let ss_tot: f64 = y.iter().map(|&b| (b - my) * (b - my)).sum();
    let r2 = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    LinearFit {
        intercept,
        slope,
        r2,
        n,
    }
}

/// Fit `y` against `f(x)` — convenience for fitting rounds against
/// `log₂ n` or `√(log₂ n)`.
pub fn fit_against(x: &[f64], y: &[f64], f: impl Fn(f64) -> f64) -> LinearFit {
    let tx: Vec<f64> = x.iter().map(|&v| f(v)).collect();
    linear_fit(&tx, y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [3.0, 5.0, 7.0, 9.0];
        let f = linear_fit(&x, &y);
        assert!((f.slope - 2.0).abs() < 1e-12);
        assert!((f.intercept - 1.0).abs() < 1e-12);
        assert!((f.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_has_lower_r2() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [2.0, 4.5, 5.5, 8.5, 9.5];
        let f = linear_fit(&x, &y);
        assert!(f.slope > 1.5 && f.slope < 2.5);
        assert!(f.r2 > 0.9 && f.r2 < 1.0);
    }

    #[test]
    fn constant_y_is_zero_slope_perfect_fit() {
        let f = linear_fit(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]);
        assert_eq!(f.slope, 0.0);
        assert_eq!(f.r2, 1.0);
    }

    #[test]
    fn fit_against_transform() {
        // y = 3 * log2(x): fitting against log2 recovers slope 3.
        let x = [4.0f64, 16.0, 256.0, 1024.0];
        let y: Vec<f64> = x.iter().map(|&v| 3.0 * v.log2()).collect();
        let f = fit_against(&x, &y, f64::log2);
        assert!((f.slope - 3.0).abs() < 1e-9);
        assert!((f.r2 - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "constant")]
    fn constant_x_rejected() {
        linear_fit(&[2.0, 2.0], &[1.0, 3.0]);
    }
}
