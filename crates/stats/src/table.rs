//! Minimal aligned plain-text tables for experiment output.

/// A right-aligned plain-text table.
///
/// ```
/// use optical_stats::Table;
/// let mut t = Table::new(&["n", "rounds", "time"]);
/// t.row(&["256".into(), "3.1".into(), "1200".into()]);
/// let s = t.render();
/// assert!(s.contains("rounds"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// If the arity differs from the header.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns and a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for c in 0..cols {
                if c > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[c];
                // Right-align numbers-ish, left-align first column.
                if c == 0 {
                    line.push_str(&format!("{:<width$}", cell, width = widths[c]));
                } else {
                    line.push_str(&format!("{:>width$}", cell, width = widths[c]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format a float compactly for table cells.
pub fn fmt_f64(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer".into(), "23456".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[1].chars().collect::<Vec<_>>().len(), lines[0].len());
        assert!(lines[3].starts_with("longer"));
        assert!(lines[3].ends_with("23456"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only one".into()]);
    }

    #[test]
    fn fmt_f64_ranges() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(5.4321), "5.43");
        assert_eq!(fmt_f64(42.4242), "42.4");
        assert_eq!(fmt_f64(12345.6), "12346");
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::new(&["x"]);
        assert!(t.is_empty());
        assert_eq!(t.render().lines().count(), 2);
    }
}
