//! Fixed-memory streaming quantile sketch.
//!
//! [`QuantileSketch`] is a log-linear (HdrHistogram-style) bucketed
//! histogram over `u64` values: values below `2^(k+1)` (where `k` is the
//! grouping precision) are recorded **exactly**, larger values land in
//! buckets of relative width `2^-k`. Memory is a fixed function of the
//! precision — independent of how many values are recorded — which is
//! what lets steady-state runs of arbitrary length report latency
//! percentiles (P50/P99/P999) without buffering every sojourn time.
//!
//! The bucket layout is exposed ([`QuantileSketch::index_for`],
//! [`QuantileSketch::buckets_for`], [`QuantileSketch::from_counts`]) so
//! lock-free consumers (the atomic counter sink in `optical-obs`) can
//! maintain the same buckets as plain atomics and snapshot them back
//! into a sketch.

use serde::{Deserialize, Serialize};

/// Highest value exponent tracked distinctly; values at or above
/// `2^(MAX_EXP + 1)` saturate into the last bucket.
const MAX_EXP: u32 = 42;

/// A fixed-memory quantile sketch over `u64` samples; see the module
/// docs. `PartialEq` compares the full bucket state, so two sketches fed
/// the same samples (in any order) compare equal.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuantileSketch {
    grouping_bits: u32,
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch::new()
    }
}

impl QuantileSketch {
    /// Default grouping precision: values below `2^8` are exact and the
    /// relative quantile error beyond is at most `2^-7` (< 1%).
    pub const DEFAULT_GROUPING_BITS: u32 = 7;

    /// Sketch with the default precision
    /// ([`QuantileSketch::DEFAULT_GROUPING_BITS`]).
    pub fn new() -> Self {
        Self::with_precision(Self::DEFAULT_GROUPING_BITS)
    }

    /// Sketch with `2^grouping_bits` sub-buckets per octave: values below
    /// `2^(grouping_bits + 1)` are exact, the relative error beyond is at
    /// most `2^-grouping_bits`.
    ///
    /// # Panics
    /// If `grouping_bits` is 0 or above 20 (memory would be pointless or
    /// enormous).
    pub fn with_precision(grouping_bits: u32) -> Self {
        assert!(
            (1..=20).contains(&grouping_bits),
            "grouping_bits must be in 1..=20"
        );
        QuantileSketch {
            grouping_bits,
            counts: vec![0; Self::buckets_for(grouping_bits)],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Number of buckets a sketch of this precision holds — its fixed
    /// memory footprint in `u64` counters.
    pub fn buckets_for(grouping_bits: u32) -> usize {
        // Octave 0 covers [0, 2^k) exactly; each exponent k..=MAX_EXP
        // contributes 2^k sub-buckets.
        ((MAX_EXP - grouping_bits + 2) as usize) << grouping_bits
    }

    /// Bucket index of `value` at the given precision. Stable across
    /// processes — the contract the atomic bucket mirror in `optical-obs`
    /// relies on.
    pub fn index_for(grouping_bits: u32, value: u64) -> usize {
        let k = grouping_bits;
        if value < (1 << k) {
            return value as usize;
        }
        // Saturate out-of-range values into the top octave.
        let v = value.min((1u64 << (MAX_EXP + 1)) - 1);
        let msb = 63 - v.leading_zeros(); // k <= msb <= MAX_EXP
        let sub = ((v >> (msb - k)) - (1 << k)) as usize;
        (((msb - k + 1) as usize) << k) + sub
    }

    /// Smallest value mapping to bucket `index` — the value
    /// [`QuantileSketch::quantile`] reports, never above the true sample.
    fn lower_bound(grouping_bits: u32, index: usize) -> u64 {
        let k = grouping_bits;
        if index < (1usize << (k + 1)) {
            return index as u64;
        }
        let octave = (index >> k) as u32 - 1; // >= 1
        let sub = (index & ((1 << k) - 1)) as u64;
        ((1u64 << k) + sub) << octave
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Record `n` identical samples.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[Self::index_for(self.grouping_bits, value)] += n;
        self.total += n;
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Rebuild a sketch from a bucket-count snapshot (e.g. the atomic
    /// mirror kept by a counter sink). `counts` must have exactly
    /// [`QuantileSketch::buckets_for`]`(grouping_bits)` entries. The sum,
    /// min and max are reconstructed from bucket lower bounds, so
    /// [`QuantileSketch::mean`] is a lower-bound approximation; quantiles
    /// are identical to the recording sketch's.
    ///
    /// # Panics
    /// On a length mismatch.
    pub fn from_counts(grouping_bits: u32, counts: &[u64]) -> Self {
        assert_eq!(
            counts.len(),
            Self::buckets_for(grouping_bits),
            "bucket snapshot length mismatch"
        );
        let mut s = Self::with_precision(grouping_bits);
        for (i, &n) in counts.iter().enumerate() {
            if n > 0 {
                let lb = Self::lower_bound(grouping_bits, i);
                s.counts[i] = n;
                s.total += n;
                s.sum = s.sum.saturating_add(lb.saturating_mul(n));
                s.min = s.min.min(lb);
                s.max = s.max.max(lb);
            }
        }
        s
    }

    /// Nearest-rank quantile (`q` in `[0, 1]`), reported as the lower
    /// bound of the bucket holding that rank: for any recorded sample set
    /// the result is at most the true quantile and at least
    /// `true / (1 + 2^-grouping_bits)`; exact when all samples are below
    /// `2^(grouping_bits + 1)`. Returns 0 on an empty sketch.
    ///
    /// # Panics
    /// If `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile rank must be in [0, 1]");
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut acc = 0u64;
        for (i, &n) in self.counts.iter().enumerate() {
            acc += n;
            if acc >= rank {
                // The first and last buckets carry the exact extremes.
                let lb = Self::lower_bound(self.grouping_bits, i);
                return lb.max(self.min).min(self.max);
            }
        }
        self.max
    }

    /// Fold `other` into `self` bucket-wise. Order-insensitive: merging
    /// shards of a sample equals sketching the whole sample.
    ///
    /// # Panics
    /// If the precisions differ.
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert_eq!(
            self.grouping_bits, other.grouping_bits,
            "cannot merge sketches of different precision"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples recorded.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Whether any sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Arithmetic mean of the recorded samples (0 on an empty sketch).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Smallest recorded sample (0 on an empty sketch).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 on an empty sketch).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The sketch's bucket count — fixed at construction, independent of
    /// how many samples have been recorded (the fixed-memory contract).
    pub fn bucket_count(&self) -> usize {
        self.counts.len()
    }

    /// The configured grouping precision.
    pub fn grouping_bits(&self) -> u32 {
        self.grouping_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact nearest-rank percentile over a sorted copy, the reference
    /// the sketch is judged against.
    fn exact(values: &mut [u64], q: f64) -> u64 {
        values.sort_unstable();
        let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
        values[rank - 1]
    }

    #[test]
    fn small_values_are_exact() {
        // Everything below 2^(k+1) lives in a width-1 bucket.
        let mut s = QuantileSketch::new();
        let mut vals: Vec<u64> = (1..=200).collect();
        for &v in &vals {
            s.record(v);
        }
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(s.quantile(q), exact(&mut vals, q), "q={q}");
        }
        assert_eq!(s.len(), 200);
        assert_eq!(s.min(), 1);
        assert_eq!(s.max(), 200);
        assert!((s.mean() - 100.5).abs() < 1e-9);
    }

    #[test]
    fn accuracy_bound_holds_on_wide_distributions() {
        // Uniform and heavy-tailed samples: the reported quantile is
        // never above the exact one and within the 2^-k relative bound
        // below it.
        let k = QuantileSketch::DEFAULT_GROUPING_BITS;
        let rel = (2f64).powi(-(k as i32));
        let uniform: Vec<u64> = (1..=100_000).collect();
        let tail: Vec<u64> = (0..60_000u64).map(|i| 1 + (i % 40) * i).collect();
        for sample in [uniform, tail] {
            let mut s = QuantileSketch::new();
            for &v in &sample {
                s.record(v);
            }
            let mut sorted = sample.clone();
            for q in [0.5, 0.9, 0.99, 0.999] {
                let e = exact(&mut sorted, q) as f64;
                let got = s.quantile(q) as f64;
                assert!(got <= e, "q={q}: sketch {got} above exact {e}");
                assert!(
                    e <= got * (1.0 + rel) + 1.0,
                    "q={q}: sketch {got} too far below exact {e}"
                );
            }
        }
    }

    #[test]
    fn merge_equals_single_sketch_and_requires_same_precision() {
        let sample: Vec<u64> = (0..10_000u64).map(|i| i * i % 7919 + 1).collect();
        let mut whole = QuantileSketch::new();
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        for (i, &v) in sample.iter().enumerate() {
            whole.record(v);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a, whole, "merge must equal the one-shot sketch");
        assert_eq!(a.quantile(0.99), whole.quantile(0.99));
    }

    #[test]
    #[should_panic(expected = "different precision")]
    fn merge_rejects_precision_mismatch() {
        let mut a = QuantileSketch::with_precision(5);
        a.merge(&QuantileSketch::with_precision(6));
    }

    #[test]
    fn memory_is_fixed_and_saturating() {
        let mut s = QuantileSketch::new();
        let before = s.bucket_count();
        for i in 0..1_000_000u64 {
            s.record(i % 100_000);
        }
        s.record(u64::MAX); // saturates into the top bucket, no growth
        assert_eq!(s.bucket_count(), before, "bucket count must never grow");
        assert_eq!(s.len(), 1_000_001);
        assert!(s.quantile(1.0) >= s.quantile(0.5));
    }

    #[test]
    fn bucket_mirror_roundtrip_matches_quantiles() {
        // The from_counts bridge (used by the atomic counter sink)
        // reproduces the recording sketch's quantiles exactly.
        let mut s = QuantileSketch::new();
        let mut counts = vec![0u64; QuantileSketch::buckets_for(7)];
        for v in [1u64, 3, 3, 900, 17, 42, 65_536, 12] {
            s.record(v);
            counts[QuantileSketch::index_for(7, v)] += 1;
        }
        let rebuilt = QuantileSketch::from_counts(7, &counts);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(rebuilt.quantile(q), s.quantile(q), "q={q}");
        }
        assert_eq!(rebuilt.len(), s.len());
    }

    #[test]
    fn empty_sketch_reports_zeros() {
        let s = QuantileSketch::new();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn index_and_lower_bound_are_consistent() {
        let k = 4;
        for v in (0..5000u64).chain([1 << 20, (1 << 43) + 5, u64::MAX]) {
            let i = QuantileSketch::index_for(k, v);
            let lb = QuantileSketch::lower_bound(k, i);
            assert!(lb <= v.min((1 << (MAX_EXP + 1)) - 1), "v={v} lb={lb}");
            if v < (1 << (k + 1)) {
                assert_eq!(lb, v, "small values are exact");
            } else if v < (1 << MAX_EXP) {
                // Relative bucket width bound.
                assert!(v - lb <= v >> k, "v={v} lb={lb}");
            }
            assert!(i < QuantileSketch::buckets_for(k));
        }
    }
}
