#![warn(missing_docs)]

//! Statistics and reporting helpers for the experiment harness:
//! summary statistics over replicated trials ([`summary`]), a
//! fixed-memory streaming quantile sketch ([`sketch`]), deterministic
//! seed derivation ([`seeds`]), and plain-text table rendering
//! ([`table`]).

pub mod regression;
pub mod seeds;
pub mod sketch;
pub mod summary;
pub mod table;

pub use regression::{fit_against, linear_fit, LinearFit};
pub use seeds::{point_seed, SeedStream};
pub use sketch::QuantileSketch;
pub use summary::{percentile, Summary};
pub use table::Table;
