#![warn(missing_docs)]

//! Statistics and reporting helpers for the experiment harness:
//! summary statistics over replicated trials ([`summary`]), deterministic
//! seed derivation ([`seeds`]), and plain-text table rendering
//! ([`table`]).

pub mod regression;
pub mod seeds;
pub mod summary;
pub mod table;

pub use regression::{fit_against, linear_fit, LinearFit};
pub use seeds::{point_seed, SeedStream};
pub use summary::{percentile, Summary};
pub use table::Table;
