//! Deterministic seed derivation: one master seed fans out into an
//! arbitrary number of independent trial seeds via SplitMix64, so every
//! experiment is exactly reproducible from a single printed number.

/// A stream of derived seeds.
#[derive(Clone, Copy, Debug)]
pub struct SeedStream {
    state: u64,
}

impl SeedStream {
    /// Start a stream from a master seed.
    pub fn new(master: u64) -> Self {
        SeedStream { state: master }
    }

    /// Next derived seed (SplitMix64 step — full-period, well mixed).
    pub fn next_seed(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The seed for trial `index` of the stream, independent of how many
    /// seeds were drawn before (random access).
    pub fn seed_for(master: u64, index: u64) -> u64 {
        let mut s = SeedStream::new(master.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        s.next_seed()
    }
}

/// The seed for sweep point `point` of experiment `experiment` under one
/// `master` seed: two chained [`SeedStream::seed_for`] hops, so a point's
/// seed depends only on its own coordinates — never on how many
/// experiments run, in what order, or on how many points a sweep has.
/// This is what makes a parallel experiment pipeline deterministic: any
/// point can be evaluated on any thread at any time and still draw the
/// same randomness.
pub fn point_seed(master: u64, experiment: u64, point: u64) -> u64 {
    SeedStream::seed_for(SeedStream::seed_for(master, experiment), point)
}

impl Iterator for SeedStream {
    type Item = u64;
    fn next(&mut self) -> Option<u64> {
        Some(self.next_seed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a: Vec<u64> = SeedStream::new(42).take(5).collect();
        let b: Vec<u64> = SeedStream::new(42).take(5).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_masters_diverge() {
        let a: Vec<u64> = SeedStream::new(1).take(5).collect();
        let b: Vec<u64> = SeedStream::new(2).take(5).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn stream_has_no_short_cycles() {
        let seeds: std::collections::HashSet<u64> = SeedStream::new(7).take(10_000).collect();
        assert_eq!(seeds.len(), 10_000);
    }

    #[test]
    fn random_access_matches_nothing_else() {
        // seed_for gives stable per-index seeds.
        assert_eq!(SeedStream::seed_for(9, 3), SeedStream::seed_for(9, 3));
        assert_ne!(SeedStream::seed_for(9, 3), SeedStream::seed_for(9, 4));
    }

    #[test]
    fn point_seeds_are_stable_and_coordinate_separated() {
        assert_eq!(point_seed(1997, 5, 2), point_seed(1997, 5, 2));
        // Varying any single coordinate changes the seed.
        assert_ne!(point_seed(1997, 5, 2), point_seed(1998, 5, 2));
        assert_ne!(point_seed(1997, 5, 2), point_seed(1997, 6, 2));
        assert_ne!(point_seed(1997, 5, 2), point_seed(1997, 5, 3));
        // (experiment, point) does not collide with (point, experiment).
        assert_ne!(point_seed(1997, 5, 2), point_seed(1997, 2, 5));
    }
}
