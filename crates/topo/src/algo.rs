//! Basic graph algorithms on [`Network`]: BFS, shortest paths, diameter,
//! connectivity. These back the path-selection strategies in
//! `optical-paths` and the property checks in tests.

use crate::graph::{Network, NodeId, INVALID_NODE};
use std::collections::VecDeque;

/// Result of a single-source BFS.
#[derive(Clone, Debug)]
pub struct BfsTree {
    /// Distance from the source, `u32::MAX` if unreachable.
    pub dist: Vec<u32>,
    /// BFS parent, [`INVALID_NODE`] for the source and unreachable nodes.
    pub parent: Vec<NodeId>,
    source: NodeId,
}

/// Distance marker for unreachable nodes.
pub const UNREACHABLE: u32 = u32::MAX;

impl BfsTree {
    /// The BFS source node.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Whether `v` is reachable from the source.
    pub fn reachable(&self, v: NodeId) -> bool {
        self.dist[v as usize] != UNREACHABLE
    }

    /// Shortest path source→`v` as a node sequence, or `None` if
    /// unreachable.
    pub fn path_to(&self, v: NodeId) -> Option<Vec<NodeId>> {
        if !self.reachable(v) {
            return None;
        }
        let mut path = Vec::with_capacity(self.dist[v as usize] as usize + 1);
        let mut cur = v;
        path.push(cur);
        while cur != self.source {
            cur = self.parent[cur as usize];
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }

    /// Largest finite distance in the tree (the eccentricity of the source
    /// within its component).
    pub fn eccentricity(&self) -> u32 {
        self.dist
            .iter()
            .copied()
            .filter(|&d| d != UNREACHABLE)
            .max()
            .unwrap_or(0)
    }
}

/// Breadth-first search from `source`.
pub fn bfs(net: &Network, source: NodeId) -> BfsTree {
    bfs_filtered(net, source, |_| true)
}

/// BFS from `source` using only links for which `allow` returns true —
/// the primitive behind rerouting around failed fibers.
pub fn bfs_filtered(
    net: &Network,
    source: NodeId,
    allow: impl Fn(crate::graph::LinkId) -> bool,
) -> BfsTree {
    let n = net.node_count();
    let mut dist = vec![UNREACHABLE; n];
    let mut parent = vec![INVALID_NODE; n];
    let mut queue = VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v as usize];
        for (t, l) in net.neighbors(v) {
            if dist[t as usize] == UNREACHABLE && allow(l) {
                dist[t as usize] = dv + 1;
                parent[t as usize] = v;
                queue.push_back(t);
            }
        }
    }
    BfsTree {
        dist,
        parent,
        source,
    }
}

/// One shortest path `u → v` as a node sequence, or `None` if disconnected.
pub fn shortest_path(net: &Network, u: NodeId, v: NodeId) -> Option<Vec<NodeId>> {
    bfs(net, u).path_to(v)
}

/// Shortest-path distance `u → v`, or `None` if disconnected.
pub fn distance(net: &Network, u: NodeId, v: NodeId) -> Option<u32> {
    let d = bfs(net, u).dist[v as usize];
    (d != UNREACHABLE).then_some(d)
}

/// Whether the network is connected (vacuously true for ≤ 1 nodes).
pub fn is_connected(net: &Network) -> bool {
    let n = net.node_count();
    if n <= 1 {
        return true;
    }
    let t = bfs(net, 0);
    t.dist.iter().all(|&d| d != UNREACHABLE)
}

/// Exact diameter via all-pairs BFS, or `None` if disconnected/empty.
///
/// O(n·m); intended for the moderate sizes used in experiments. For large
/// networks use [`diameter_sampled`].
pub fn diameter(net: &Network) -> Option<u32> {
    let n = net.node_count();
    if n == 0 {
        return None;
    }
    let mut best = 0;
    for v in net.nodes() {
        let t = bfs(net, v);
        if t.dist.contains(&UNREACHABLE) {
            return None;
        }
        best = best.max(t.eccentricity());
    }
    Some(best)
}

/// Lower bound on the diameter from `samples` BFS sources (deterministic
/// stride sampling). Exact when `samples >= node_count`.
pub fn diameter_sampled(net: &Network, samples: usize) -> Option<u32> {
    let n = net.node_count();
    if n == 0 {
        return None;
    }
    if samples >= n {
        return diameter(net);
    }
    let stride = (n / samples.max(1)).max(1);
    let mut best = 0;
    for v in (0..n).step_by(stride) {
        let t = bfs(net, v as NodeId);
        if t.dist.contains(&UNREACHABLE) {
            return None;
        }
        best = best.max(t.eccentricity());
    }
    Some(best)
}

impl Network {
    /// See [`is_connected`].
    pub fn is_connected(&self) -> bool {
        is_connected(self)
    }

    /// See [`diameter`].
    pub fn diameter(&self) -> Option<u32> {
        diameter(self)
    }

    /// See [`shortest_path`].
    pub fn shortest_path(&self, u: NodeId, v: NodeId) -> Option<Vec<NodeId>> {
        shortest_path(self, u, v)
    }

    /// See [`distance`].
    pub fn distance(&self, u: NodeId, v: NodeId) -> Option<u32> {
        distance(self, u, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetworkBuilder;

    fn path_graph(n: usize) -> Network {
        let mut b = NetworkBuilder::new("chain", n);
        for i in 0..n.saturating_sub(1) {
            b.add_edge(i as NodeId, i as NodeId + 1);
        }
        b.build()
    }

    #[test]
    fn bfs_distances_on_chain() {
        let g = path_graph(6);
        let t = bfs(&g, 0);
        assert_eq!(t.dist, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(t.eccentricity(), 5);
    }

    #[test]
    fn path_reconstruction() {
        let g = path_graph(4);
        assert_eq!(shortest_path(&g, 0, 3).unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(shortest_path(&g, 3, 0).unwrap(), vec![3, 2, 1, 0]);
        assert_eq!(shortest_path(&g, 2, 2).unwrap(), vec![2]);
    }

    #[test]
    fn disconnected_graph() {
        let mut b = NetworkBuilder::new("two islands", 4);
        b.add_edge(0, 1);
        b.add_edge(2, 3);
        let g = b.build();
        assert!(!g.is_connected());
        assert_eq!(g.diameter(), None);
        assert_eq!(g.distance(0, 3), None);
        assert!(shortest_path(&g, 0, 2).is_none());
    }

    #[test]
    fn diameter_of_chain_and_singleton() {
        assert_eq!(path_graph(7).diameter(), Some(6));
        assert_eq!(path_graph(1).diameter(), Some(0));
        assert!(path_graph(1).is_connected());
    }

    #[test]
    fn sampled_diameter_is_lower_bound() {
        let g = path_graph(50);
        let exact = g.diameter().unwrap();
        let sampled = diameter_sampled(&g, 5).unwrap();
        assert!(sampled <= exact);
        assert_eq!(diameter_sampled(&g, 100), Some(exact));
    }
}
