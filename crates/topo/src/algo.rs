//! Basic graph algorithms on [`Network`]: BFS, shortest paths, diameter,
//! connectivity. These back the path-selection strategies in
//! `optical-paths` and the property checks in tests.

use crate::graph::{Network, NodeId, INVALID_NODE};
use std::collections::VecDeque;

/// Result of a single-source BFS.
#[derive(Clone, Debug)]
pub struct BfsTree {
    /// Distance from the source, `u32::MAX` if unreachable.
    pub dist: Vec<u32>,
    /// BFS parent, [`INVALID_NODE`] for the source and unreachable nodes.
    pub parent: Vec<NodeId>,
    source: NodeId,
}

/// Distance marker for unreachable nodes.
pub const UNREACHABLE: u32 = u32::MAX;

impl BfsTree {
    /// The BFS source node.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Whether `v` is reachable from the source.
    pub fn reachable(&self, v: NodeId) -> bool {
        self.dist[v as usize] != UNREACHABLE
    }

    /// Shortest path source→`v` as a node sequence, or `None` if
    /// unreachable.
    pub fn path_to(&self, v: NodeId) -> Option<Vec<NodeId>> {
        if !self.reachable(v) {
            return None;
        }
        let mut path = Vec::with_capacity(self.dist[v as usize] as usize + 1);
        let mut cur = v;
        path.push(cur);
        while cur != self.source {
            cur = self.parent[cur as usize];
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }

    /// Largest finite distance in the tree (the eccentricity of the source
    /// within its component).
    pub fn eccentricity(&self) -> u32 {
        self.dist
            .iter()
            .copied()
            .filter(|&d| d != UNREACHABLE)
            .max()
            .unwrap_or(0)
    }
}

/// Breadth-first search from `source`.
pub fn bfs(net: &Network, source: NodeId) -> BfsTree {
    bfs_filtered(net, source, |_| true)
}

/// BFS from `source` using only links for which `allow` returns true —
/// the primitive behind rerouting around failed fibers.
pub fn bfs_filtered(
    net: &Network,
    source: NodeId,
    allow: impl Fn(crate::graph::LinkId) -> bool,
) -> BfsTree {
    let n = net.node_count();
    let mut dist = vec![UNREACHABLE; n];
    let mut parent = vec![INVALID_NODE; n];
    let mut queue = VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v as usize];
        for (t, l) in net.neighbors(v) {
            if dist[t as usize] == UNREACHABLE && allow(l) {
                dist[t as usize] = dv + 1;
                parent[t as usize] = v;
                queue.push_back(t);
            }
        }
    }
    BfsTree {
        dist,
        parent,
        source,
    }
}

/// Reusable point-to-point BFS scratch.
///
/// [`shortest_path`] answers a single query but pays a full single-source
/// BFS (plus three allocations) for it. Route construction asks thousands
/// of such queries back to back — one per (source, destination) pair of a
/// workload — so this scratch keeps the visit marks, parent array, and
/// queue alive across queries (epoch-stamped visit marks make the reset
/// O(1)) and stops the BFS the moment the destination is discovered.
///
/// The traversal is *identical* to [`bfs_filtered`] + `path_to`: same FIFO
/// order, same neighbor order, parents fixed at first visit — so the
/// returned path is byte-for-byte the one the full-tree query returns; the
/// early exit only skips work that cannot affect it.
#[derive(Clone, Debug, Default)]
pub struct PathFinder {
    /// Epoch at which each node was last visited.
    visit: Vec<u32>,
    parent: Vec<NodeId>,
    /// FIFO queue as a flat vector with a head cursor.
    queue: Vec<NodeId>,
    epoch: u32,
}

impl PathFinder {
    /// Fresh scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Shortest path `u → v` as a node sequence, or `None` if disconnected.
    pub fn shortest_path(&mut self, net: &Network, u: NodeId, v: NodeId) -> Option<Vec<NodeId>> {
        self.shortest_path_filtered(net, u, v, |_| true)
    }

    /// [`Self::shortest_path`] using only links for which `allow` returns
    /// true.
    pub fn shortest_path_filtered(
        &mut self,
        net: &Network,
        u: NodeId,
        v: NodeId,
        allow: impl Fn(crate::graph::LinkId) -> bool,
    ) -> Option<Vec<NodeId>> {
        let n = net.node_count();
        if self.visit.len() < n {
            self.visit.resize(n, 0);
            self.parent.resize(n, INVALID_NODE);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.visit.fill(0);
            self.epoch = 1;
        }
        let e = self.epoch;
        self.visit[u as usize] = e;
        if u == v {
            return Some(vec![u]);
        }
        self.queue.clear();
        self.queue.push(u);
        let mut head = 0;
        while head < self.queue.len() {
            let x = self.queue[head];
            head += 1;
            for (t, l) in net.neighbors(x) {
                if self.visit[t as usize] != e && allow(l) {
                    self.visit[t as usize] = e;
                    self.parent[t as usize] = x;
                    if t == v {
                        // `v`'s parent chain is final from its first visit.
                        let mut path = vec![v];
                        let mut cur = v;
                        while cur != u {
                            cur = self.parent[cur as usize];
                            path.push(cur);
                        }
                        path.reverse();
                        return Some(path);
                    }
                    self.queue.push(t);
                }
            }
        }
        None
    }
}

/// One shortest path `u → v` as a node sequence, or `None` if disconnected.
pub fn shortest_path(net: &Network, u: NodeId, v: NodeId) -> Option<Vec<NodeId>> {
    PathFinder::new().shortest_path(net, u, v)
}

/// Shortest-path distance `u → v`, or `None` if disconnected.
pub fn distance(net: &Network, u: NodeId, v: NodeId) -> Option<u32> {
    let d = bfs(net, u).dist[v as usize];
    (d != UNREACHABLE).then_some(d)
}

/// Whether the network is connected (vacuously true for ≤ 1 nodes).
pub fn is_connected(net: &Network) -> bool {
    let n = net.node_count();
    if n <= 1 {
        return true;
    }
    let t = bfs(net, 0);
    t.dist.iter().all(|&d| d != UNREACHABLE)
}

/// Exact diameter via all-pairs BFS, or `None` if disconnected/empty.
///
/// O(n·m); intended for the moderate sizes used in experiments. For large
/// networks use [`diameter_sampled`].
pub fn diameter(net: &Network) -> Option<u32> {
    let n = net.node_count();
    if n == 0 {
        return None;
    }
    let mut best = 0;
    for v in net.nodes() {
        let t = bfs(net, v);
        if t.dist.contains(&UNREACHABLE) {
            return None;
        }
        best = best.max(t.eccentricity());
    }
    Some(best)
}

/// Lower bound on the diameter from `samples` BFS sources (deterministic
/// stride sampling). Exact when `samples >= node_count`.
pub fn diameter_sampled(net: &Network, samples: usize) -> Option<u32> {
    let n = net.node_count();
    if n == 0 {
        return None;
    }
    if samples >= n {
        return diameter(net);
    }
    let stride = (n / samples.max(1)).max(1);
    let mut best = 0;
    for v in (0..n).step_by(stride) {
        let t = bfs(net, v as NodeId);
        if t.dist.contains(&UNREACHABLE) {
            return None;
        }
        best = best.max(t.eccentricity());
    }
    Some(best)
}

impl Network {
    /// See [`is_connected`].
    pub fn is_connected(&self) -> bool {
        is_connected(self)
    }

    /// See [`diameter`].
    pub fn diameter(&self) -> Option<u32> {
        diameter(self)
    }

    /// See [`shortest_path`].
    pub fn shortest_path(&self, u: NodeId, v: NodeId) -> Option<Vec<NodeId>> {
        shortest_path(self, u, v)
    }

    /// See [`distance`].
    pub fn distance(&self, u: NodeId, v: NodeId) -> Option<u32> {
        distance(self, u, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetworkBuilder;

    fn path_graph(n: usize) -> Network {
        let mut b = NetworkBuilder::new("chain", n);
        for i in 0..n.saturating_sub(1) {
            b.add_edge(i as NodeId, i as NodeId + 1);
        }
        b.build()
    }

    #[test]
    fn bfs_distances_on_chain() {
        let g = path_graph(6);
        let t = bfs(&g, 0);
        assert_eq!(t.dist, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(t.eccentricity(), 5);
    }

    #[test]
    fn path_reconstruction() {
        let g = path_graph(4);
        assert_eq!(shortest_path(&g, 0, 3).unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(shortest_path(&g, 3, 0).unwrap(), vec![3, 2, 1, 0]);
        assert_eq!(shortest_path(&g, 2, 2).unwrap(), vec![2]);
    }

    #[test]
    fn path_finder_matches_full_bfs() {
        // A reused finder must return exactly the path the full-tree BFS
        // returns, for every pair — including across many queries on one
        // scratch and under link filters.
        let net = crate::topologies::torus(2, 5);
        let mut finder = PathFinder::new();
        for u in net.nodes() {
            let tree = bfs(&net, u);
            for v in net.nodes() {
                assert_eq!(finder.shortest_path(&net, u, v), tree.path_to(v));
            }
        }
        // Filtered: kill one link and compare against bfs_filtered.
        let allow = |l: crate::graph::LinkId| l != 3;
        for u in net.nodes() {
            let tree = bfs_filtered(&net, u, allow);
            for v in net.nodes() {
                assert_eq!(
                    finder.shortest_path_filtered(&net, u, v, allow),
                    tree.path_to(v)
                );
            }
        }
    }

    #[test]
    fn path_finder_reports_disconnection() {
        let mut b = NetworkBuilder::new("two islands", 4);
        b.add_edge(0, 1);
        b.add_edge(2, 3);
        let g = b.build();
        let mut finder = PathFinder::new();
        assert_eq!(finder.shortest_path(&g, 0, 1), Some(vec![0, 1]));
        assert_eq!(finder.shortest_path(&g, 0, 3), None);
        assert_eq!(finder.shortest_path(&g, 2, 3), Some(vec![2, 3]));
    }

    #[test]
    fn disconnected_graph() {
        let mut b = NetworkBuilder::new("two islands", 4);
        b.add_edge(0, 1);
        b.add_edge(2, 3);
        let g = b.build();
        assert!(!g.is_connected());
        assert_eq!(g.diameter(), None);
        assert_eq!(g.distance(0, 3), None);
        assert!(shortest_path(&g, 0, 2).is_none());
    }

    #[test]
    fn diameter_of_chain_and_singleton() {
        assert_eq!(path_graph(7).diameter(), Some(6));
        assert_eq!(path_graph(1).diameter(), Some(0));
        assert!(path_graph(1).is_connected());
    }

    #[test]
    fn sampled_diameter_is_lower_bound() {
        let g = path_graph(50);
        let exact = g.diameter().unwrap();
        let sampled = diameter_sampled(&g, 5).unwrap();
        assert!(sampled <= exact);
        assert_eq!(diameter_sampled(&g, 100), Some(exact));
    }
}
