//! The core [`Network`] graph type.
//!
//! A `Network` is an undirected multigraph-free graph stored in CSR form.
//! Every undirected edge `{u, v}` materializes two *directed links* `u→v`
//! and `v→u`, each with its own dense [`LinkId`]. The wormhole simulator
//! keys its per-wavelength occupancy state by `LinkId`, so link ids must be
//! dense and cheap.

use serde::{Deserialize, Serialize};

/// Index of a node (router) in the network. Dense in `0..node_count()`.
pub type NodeId = u32;

/// Index of a *directed* optical link. Dense in `0..link_count()`.
///
/// The two links of an undirected edge `{u, v}` are always paired:
/// `LinkId = 2k` and `2k + 1` for undirected edge index `k`, with the even
/// id carrying the direction from the smaller endpoint that was inserted
/// first. Use [`Network::reverse_link`] to flip direction in O(1).
pub type LinkId = u32;

/// Sentinel for "no node".
pub const INVALID_NODE: NodeId = u32::MAX;
/// Sentinel for "no link".
pub const INVALID_LINK: LinkId = u32::MAX;

/// A compact undirected network with dense directed link ids.
///
/// Construct via [`crate::NetworkBuilder`] or one of the
/// [`crate::topologies`] constructors.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Network {
    /// Human-readable topology name, e.g. `"torus(2, 8)"`.
    name: String,
    /// CSR offsets: neighbors of node `v` occupy
    /// `adj_targets[adj_offsets[v] .. adj_offsets[v+1]]`.
    adj_offsets: Vec<u32>,
    /// Neighbor node for each adjacency slot.
    adj_targets: Vec<NodeId>,
    /// Directed link id leaving `v` toward the neighbor in the same slot.
    adj_links: Vec<LinkId>,
    /// For each directed link: (source, target).
    link_ends: Vec<(NodeId, NodeId)>,
}

impl Network {
    pub(crate) fn from_parts(
        name: String,
        adj_offsets: Vec<u32>,
        adj_targets: Vec<NodeId>,
        adj_links: Vec<LinkId>,
        link_ends: Vec<(NodeId, NodeId)>,
    ) -> Self {
        Network {
            name,
            adj_offsets,
            adj_targets,
            adj_links,
            link_ends,
        }
    }

    /// Topology name given at construction time.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes (routers).
    pub fn node_count(&self) -> usize {
        self.adj_offsets.len() - 1
    }

    /// Number of *directed* links (twice the number of undirected edges).
    pub fn link_count(&self) -> usize {
        self.link_ends.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.link_ends.len() / 2
    }

    /// Degree of `v` (number of undirected incident edges).
    pub fn degree(&self, v: NodeId) -> usize {
        let v = v as usize;
        (self.adj_offsets[v + 1] - self.adj_offsets[v]) as usize
    }

    /// Maximum degree over all nodes.
    pub fn max_degree(&self) -> usize {
        (0..self.node_count() as NodeId)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Iterator over `(neighbor, outgoing_link)` pairs of `v`.
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = (NodeId, LinkId)> + '_ {
        let v = v as usize;
        let lo = self.adj_offsets[v] as usize;
        let hi = self.adj_offsets[v + 1] as usize;
        self.adj_targets[lo..hi]
            .iter()
            .copied()
            .zip(self.adj_links[lo..hi].iter().copied())
    }

    /// Endpoints `(source, target)` of a directed link.
    pub fn link_ends(&self, l: LinkId) -> (NodeId, NodeId) {
        self.link_ends[l as usize]
    }

    /// Source node of a directed link.
    pub fn link_source(&self, l: LinkId) -> NodeId {
        self.link_ends[l as usize].0
    }

    /// Target node of a directed link.
    pub fn link_target(&self, l: LinkId) -> NodeId {
        self.link_ends[l as usize].1
    }

    /// The opposite-direction link of the same undirected edge, in O(1).
    pub fn reverse_link(&self, l: LinkId) -> LinkId {
        l ^ 1
    }

    /// Undirected edge index of a link (`link / 2`).
    pub fn undirected_index(&self, l: LinkId) -> u32 {
        l >> 1
    }

    /// The directed link `u→v`, if the edge `{u, v}` exists.
    ///
    /// O(deg(u)) scan; topologies in this crate have small bounded degree.
    pub fn link_between(&self, u: NodeId, v: NodeId) -> Option<LinkId> {
        self.neighbors(u).find(|&(t, _)| t == v).map(|(_, l)| l)
    }

    /// Whether the undirected edge `{u, v}` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.link_between(u, v).is_some()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        0..self.node_count() as NodeId
    }

    /// Iterator over all directed link ids.
    pub fn links(&self) -> impl Iterator<Item = LinkId> {
        0..self.link_count() as LinkId
    }

    /// Translate a node sequence into the directed links connecting it.
    ///
    /// Returns `None` if two consecutive nodes are not adjacent.
    pub fn links_along(&self, nodes: &[NodeId]) -> Option<Vec<LinkId>> {
        let mut out = Vec::with_capacity(nodes.len().saturating_sub(1));
        for w in nodes.windows(2) {
            out.push(self.link_between(w[0], w[1])?);
        }
        Some(out)
    }

    /// Validate internal invariants. Used by tests and debug assertions.
    ///
    /// Checks: offsets monotone; link pairing (`l ^ 1` is the reverse);
    /// adjacency slots agree with `link_ends`; no self loops; no duplicate
    /// edges.
    pub fn check_invariants(&self) -> Result<(), String> {
        let n = self.node_count();
        if self.adj_offsets[0] != 0 {
            return Err("adjacency offsets must start at 0".into());
        }
        for v in 0..n {
            if self.adj_offsets[v] > self.adj_offsets[v + 1] {
                return Err(format!("non-monotone offsets at node {v}"));
            }
        }
        if *self.adj_offsets.last().unwrap() as usize != self.adj_targets.len() {
            return Err("offsets do not cover adjacency array".into());
        }
        if !self.link_ends.len().is_multiple_of(2) {
            return Err("directed link count must be even".into());
        }
        for l in 0..self.link_count() as LinkId {
            let (s, t) = self.link_ends(l);
            if s == t {
                return Err(format!("self loop at node {s}"));
            }
            let (rs, rt) = self.link_ends(self.reverse_link(l));
            if (rs, rt) != (t, s) {
                return Err(format!("link {l} pairing broken"));
            }
            if (s as usize) >= n || (t as usize) >= n {
                return Err(format!("link {l} endpoint out of range"));
            }
        }
        for v in 0..n as NodeId {
            let mut seen = std::collections::HashSet::new();
            for (t, l) in self.neighbors(v) {
                if self.link_ends(l) != (v, t) {
                    return Err(format!("adjacency slot of {v} disagrees with link {l}"));
                }
                if !seen.insert(t) {
                    return Err(format!("duplicate edge {{{v}, {t}}}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::NetworkBuilder;

    fn triangle() -> crate::Network {
        let mut b = NetworkBuilder::new("triangle", 3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 0);
        b.build()
    }

    #[test]
    fn counts() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.link_count(), 6);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn link_pairing_is_involution() {
        let g = triangle();
        for l in g.links() {
            let r = g.reverse_link(l);
            assert_ne!(l, r);
            assert_eq!(g.reverse_link(r), l);
            let (s, t) = g.link_ends(l);
            assert_eq!(g.link_ends(r), (t, s));
        }
    }

    #[test]
    fn link_between_finds_both_directions() {
        let g = triangle();
        let l01 = g.link_between(0, 1).unwrap();
        let l10 = g.link_between(1, 0).unwrap();
        assert_eq!(g.reverse_link(l01), l10);
        assert_eq!(g.link_source(l01), 0);
        assert_eq!(g.link_target(l01), 1);
    }

    #[test]
    fn links_along_path() {
        let g = triangle();
        let links = g.links_along(&[0, 1, 2]).unwrap();
        assert_eq!(links.len(), 2);
        assert_eq!(g.link_ends(links[0]), (0, 1));
        assert_eq!(g.link_ends(links[1]), (1, 2));
        assert!(g.links_along(&[0, 0]).is_none());
    }

    #[test]
    fn invariants_hold() {
        triangle().check_invariants().unwrap();
    }

    #[test]
    fn undirected_index_shared_by_pair() {
        let g = triangle();
        for l in g.links() {
            assert_eq!(g.undirected_index(l), g.undirected_index(g.reverse_link(l)));
        }
    }
}
