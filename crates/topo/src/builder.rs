//! Incremental construction of [`Network`] values.

use crate::graph::{LinkId, Network, NodeId};
use std::collections::HashSet;

/// Builds a [`Network`] from an edge list.
///
/// Self loops and duplicate edges are rejected at insertion time with a
/// panic (topology constructors are deterministic; a duplicate indicates a
/// construction bug, not bad input data).
///
/// ```
/// use optical_topo::NetworkBuilder;
/// let mut b = NetworkBuilder::new("square", 4);
/// for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
///     b.add_edge(u, v);
/// }
/// let g = b.build();
/// assert_eq!(g.edge_count(), 4);
/// ```
#[derive(Debug)]
pub struct NetworkBuilder {
    name: String,
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
    seen: HashSet<(NodeId, NodeId)>,
}

impl NetworkBuilder {
    /// Start a builder for a graph with `n` nodes (ids `0..n`).
    pub fn new(name: impl Into<String>, n: usize) -> Self {
        assert!(n < u32::MAX as usize, "too many nodes");
        NetworkBuilder {
            name: name.into(),
            n,
            edges: Vec::new(),
            seen: HashSet::new(),
        }
    }

    /// Number of nodes declared.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Add the undirected edge `{u, v}`.
    ///
    /// # Panics
    /// If `u == v`, an endpoint is out of range, or the edge already exists.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        assert_ne!(u, v, "self loop {{{u}}} rejected");
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u},{v}) out of range"
        );
        let key = (u.min(v), u.max(v));
        assert!(self.seen.insert(key), "duplicate edge {{{u}, {v}}}");
        self.edges.push((u, v));
    }

    /// Add `{u, v}` unless it already exists; returns whether it was added.
    pub fn add_edge_dedup(&mut self, u: NodeId, v: NodeId) -> bool {
        assert_ne!(u, v, "self loop {{{u}}} rejected");
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u},{v}) out of range"
        );
        let key = (u.min(v), u.max(v));
        if self.seen.insert(key) {
            self.edges.push((u, v));
            true
        } else {
            false
        }
    }

    /// Finalize into a CSR [`Network`].
    pub fn build(self) -> Network {
        let n = self.n;
        // Directed links: edge k yields links 2k (u->v) and 2k+1 (v->u).
        let mut link_ends = Vec::with_capacity(self.edges.len() * 2);
        for &(u, v) in &self.edges {
            link_ends.push((u, v));
            link_ends.push((v, u));
        }

        // Counting sort of directed links by source for CSR layout.
        let mut deg = vec![0u32; n + 1];
        for &(s, _) in &link_ends {
            deg[s as usize + 1] += 1;
        }
        let mut adj_offsets = deg;
        for i in 0..n {
            adj_offsets[i + 1] += adj_offsets[i];
        }
        let m = link_ends.len();
        let mut adj_targets = vec![0 as NodeId; m];
        let mut adj_links = vec![0 as LinkId; m];
        let mut cursor = adj_offsets.clone();
        for (l, &(s, t)) in link_ends.iter().enumerate() {
            let slot = cursor[s as usize] as usize;
            cursor[s as usize] += 1;
            adj_targets[slot] = t;
            adj_links[slot] = l as LinkId;
        }

        let net = Network::from_parts(self.name, adj_offsets, adj_targets, adj_links, link_ends);
        debug_assert!(net.check_invariants().is_ok());
        net
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = NetworkBuilder::new("empty", 5).build();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        g.check_invariants().unwrap();
    }

    #[test]
    fn zero_nodes() {
        let g = NetworkBuilder::new("null", 0).build();
        assert_eq!(g.node_count(), 0);
        g.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "self loop")]
    fn rejects_self_loop() {
        let mut b = NetworkBuilder::new("bad", 2);
        b.add_edge(1, 1);
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn rejects_duplicate() {
        let mut b = NetworkBuilder::new("bad", 2);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
    }

    #[test]
    fn dedup_insert() {
        let mut b = NetworkBuilder::new("g", 3);
        assert!(b.add_edge_dedup(0, 1));
        assert!(!b.add_edge_dedup(1, 0));
        assert!(b.add_edge_dedup(1, 2));
        let g = b.build();
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let mut b = NetworkBuilder::new("bad", 2);
        b.add_edge(0, 2);
    }

    #[test]
    fn directed_link_ids_follow_insertion_order() {
        let mut b = NetworkBuilder::new("g", 3);
        b.add_edge(2, 0);
        b.add_edge(0, 1);
        let g = b.build();
        assert_eq!(g.link_ends(0), (2, 0));
        assert_eq!(g.link_ends(1), (0, 2));
        assert_eq!(g.link_ends(2), (0, 1));
        assert_eq!(g.link_ends(3), (1, 0));
    }

    #[test]
    fn csr_adjacency_complete() {
        let mut b = NetworkBuilder::new("g", 4);
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        b.add_edge(0, 3);
        b.add_edge(2, 3);
        let g = b.build();
        let mut n0: Vec<_> = g.neighbors(0).map(|(t, _)| t).collect();
        n0.sort_unstable();
        assert_eq!(n0, vec![1, 2, 3]);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(1), 1);
        assert_eq!(g.degree(2), 2);
    }
}
