//! Node-symmetry utilities (Definition 1.4 of the paper).
//!
//! A network is *node-symmetric* if for every pair `u, v` there is an
//! automorphism mapping `u` to `v` — "the network looks the same from every
//! node". The paper's Theorem 1.5 applies to this class (tori, wrapped
//! butterflies, hypercubes, rings, …).
//!
//! Deciding node-symmetry in general is as hard as graph isomorphism, so
//! this module offers:
//! * exact *verification* of a claimed automorphism ([`is_automorphism`]),
//! * explicit vertex-transitive automorphism families for the concrete
//!   topologies we construct ([`torus_translation`], [`hypercube_xor`],
//!   [`ring_rotation`]),
//! * a cheap *necessary-condition* test ([`distance_profiles_uniform`])
//!   used by tests and by workload sanity checks.

use crate::algo::bfs;
use crate::coords::GridCoords;
use crate::graph::{Network, NodeId};

/// Verify that `perm` (a bijection given as a dense lookup table) is a graph
/// automorphism of `net`: `{u, v} ∈ E ⇔ {perm(u), perm(v)} ∈ E`.
pub fn is_automorphism(net: &Network, perm: &[NodeId]) -> bool {
    let n = net.node_count();
    if perm.len() != n {
        return false;
    }
    // Bijectivity.
    let mut seen = vec![false; n];
    for &p in perm {
        if (p as usize) >= n || seen[p as usize] {
            return false;
        }
        seen[p as usize] = true;
    }
    // Edge preservation (degrees are preserved by bijection + edge check
    // in one direction since edge counts are equal).
    for v in net.nodes() {
        if net.degree(v) != net.degree(perm[v as usize]) {
            return false;
        }
        for (t, _) in net.neighbors(v) {
            if !net.has_edge(perm[v as usize], perm[t as usize]) {
                return false;
            }
        }
    }
    true
}

/// The translation automorphism of a torus: adds `delta` (component-wise,
/// mod side) to every node's coordinates. Returns the permutation table.
pub fn torus_translation(coords: &GridCoords, delta: &[u32]) -> Vec<NodeId> {
    assert_eq!(delta.len(), coords.dims() as usize);
    let n = coords.node_count();
    let mut perm = Vec::with_capacity(n);
    let mut c = vec![0u32; coords.dims() as usize];
    for v in 0..n as NodeId {
        coords.write_coords_of(v, &mut c);
        for (x, &d) in c.iter_mut().zip(delta) {
            *x = (*x + d) % coords.side();
        }
        perm.push(coords.node_of(&c));
    }
    perm
}

/// The XOR automorphism of a hypercube: `v ↦ v ^ mask`.
pub fn hypercube_xor(dim: u32, mask: u32) -> Vec<NodeId> {
    let n = 1u32 << dim;
    assert!(mask < n, "mask out of range");
    (0..n).map(|v| v ^ mask).collect()
}

/// The rotation automorphism of a ring: `v ↦ (v + shift) mod n`.
pub fn ring_rotation(n: usize, shift: usize) -> Vec<NodeId> {
    (0..n).map(|v| ((v + shift) % n) as NodeId).collect()
}

/// Necessary condition for node-symmetry: every node has the same sorted
/// distance profile (multiset of BFS distances to all other nodes).
///
/// O(n·m) — fine for test-sized networks. A `true` answer does not prove
/// symmetry, but a `false` answer disproves it.
pub fn distance_profiles_uniform(net: &Network) -> bool {
    let n = net.node_count();
    if n <= 1 {
        return true;
    }
    let mut reference: Option<Vec<u32>> = None;
    for v in net.nodes() {
        let mut profile = bfs(net, v).dist;
        profile.sort_unstable();
        match &reference {
            None => reference = Some(profile),
            Some(r) => {
                if *r != profile {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topologies;

    #[test]
    fn torus_translations_are_automorphisms() {
        let g = topologies::torus(2, 5);
        let coords = GridCoords::new(2, 5);
        for delta in [[1, 0], [0, 1], [3, 2], [4, 4]] {
            let perm = torus_translation(&coords, &delta);
            assert!(is_automorphism(&g, &perm), "translation {delta:?} failed");
        }
    }

    #[test]
    fn torus_translation_is_transitive() {
        // Any node can be mapped to any other by some translation.
        let coords = GridCoords::new(2, 4);
        let u = coords.node_of(&[1, 2]);
        let v = coords.node_of(&[3, 0]);
        let delta = [(3 + 4 - 1) % 4, (4 - 2)];
        let perm = torus_translation(&coords, &delta);
        assert_eq!(perm[u as usize], v);
    }

    #[test]
    fn hypercube_xor_is_automorphism() {
        let g = topologies::hypercube(5);
        for mask in [1u32, 7, 31, 16] {
            assert!(is_automorphism(&g, &hypercube_xor(5, mask)));
        }
    }

    #[test]
    fn ring_rotation_is_automorphism() {
        let g = topologies::ring(9);
        for shift in [1usize, 4, 8] {
            assert!(is_automorphism(&g, &ring_rotation(9, shift)));
        }
    }

    #[test]
    fn non_automorphism_rejected() {
        let g = topologies::chain(4);
        // Swapping an endpoint with an interior node breaks degrees.
        assert!(!is_automorphism(&g, &[1, 0, 2, 3]));
        // Wrong length rejected.
        assert!(!is_automorphism(&g, &[0, 1, 2]));
        // Non-bijection rejected.
        assert!(!is_automorphism(&g, &[0, 0, 2, 3]));
    }

    #[test]
    fn identity_is_always_automorphism() {
        let g = topologies::de_bruijn(4);
        let id: Vec<NodeId> = g.nodes().collect();
        assert!(is_automorphism(&g, &id));
    }

    #[test]
    fn symmetric_families_pass_profile_test() {
        assert!(distance_profiles_uniform(&topologies::torus(2, 4)));
        assert!(distance_profiles_uniform(&topologies::hypercube(4)));
        assert!(distance_profiles_uniform(&topologies::ring(8)));
        assert!(distance_profiles_uniform(&topologies::wrapped_butterfly(3)));
        assert!(distance_profiles_uniform(&topologies::complete(6)));
    }

    #[test]
    fn asymmetric_networks_fail_profile_test() {
        assert!(!distance_profiles_uniform(&topologies::chain(5)));
        assert!(!distance_profiles_uniform(&topologies::star(5)));
        assert!(!distance_profiles_uniform(&topologies::mesh(2, 3)));
        assert!(!distance_profiles_uniform(&topologies::butterfly(3)));
    }
}
