//! Butterfly networks (Theorem 1.7 substrate).
//!
//! The `k`-dimensional butterfly has `k + 1` levels of `2^k` rows. A node is
//! a pair `(level, row)`; level `ℓ` connects to level `ℓ + 1` by a *straight*
//! edge (same row) and a *cross* edge (row with bit `ℓ` flipped). Routing a
//! message from an input `(0, r)` to an output `(k, r')` follows the unique
//! leveled path that fixes one address bit per level — this is the leveled
//! path system used by Theorem 1.7.
//!
//! The *wrap-around* butterfly identifies level `k` with level `0`; it is
//! node-symmetric and serves as a Theorem 1.5 example.

use crate::builder::NetworkBuilder;
use crate::graph::{Network, NodeId};
use serde::{Deserialize, Serialize};

/// Mapping between `(level, row)` pairs and dense node ids for butterflies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ButterflyCoords {
    dim: u32,
    levels: u32,
    wrapped: bool,
}

impl ButterflyCoords {
    /// Coordinates for an (ordinary or wrapped) butterfly of dimension `dim`.
    pub fn new(dim: u32, wrapped: bool) -> Self {
        assert!((1..26).contains(&dim), "butterfly dimension out of range");
        let levels = if wrapped { dim } else { dim + 1 };
        ButterflyCoords {
            dim,
            levels,
            wrapped,
        }
    }

    /// Butterfly dimension `k` (number of row bits).
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// Number of distinct levels (`k + 1` plain, `k` wrapped).
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Number of rows `2^k`.
    pub fn rows(&self) -> u32 {
        1 << self.dim
    }

    /// Total node count `levels · 2^k`.
    pub fn node_count(&self) -> usize {
        self.levels as usize * self.rows() as usize
    }

    /// Dense node id of `(level, row)`. For wrapped butterflies the level is
    /// taken modulo `k`.
    pub fn node_of(&self, level: u32, row: u32) -> NodeId {
        let level = if self.wrapped {
            level % self.levels
        } else {
            level
        };
        assert!(level < self.levels, "level {level} out of range");
        assert!(row < self.rows(), "row {row} out of range");
        level * self.rows() + row
    }

    /// `(level, row)` of a dense node id.
    pub fn coords_of(&self, node: NodeId) -> (u32, u32) {
        assert!((node as usize) < self.node_count(), "node out of range");
        (node / self.rows(), node % self.rows())
    }

    /// Input nodes (level 0), in row order.
    pub fn inputs(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.rows()).map(|r| self.node_of(0, r))
    }

    /// Output nodes (level `k` plain; level `0` wrapped, since levels are
    /// identified), in row order.
    pub fn outputs(&self) -> impl Iterator<Item = NodeId> + '_ {
        let out_level = if self.wrapped { 0 } else { self.dim };
        (0..self.rows()).map(move |r| self.node_of(out_level, r))
    }

    /// The unique leveled input→output route: from `(0, src_row)` to the
    /// output row `dst_row`, fixing bit `ℓ` when moving from level `ℓ` to
    /// `ℓ + 1`. Returns the node sequence of length `k + 1`.
    pub fn route(&self, src_row: u32, dst_row: u32) -> Vec<NodeId> {
        assert!(src_row < self.rows() && dst_row < self.rows());
        let mut nodes = Vec::with_capacity(self.dim as usize + 1);
        let mut row = src_row;
        nodes.push(self.node_of(0, row));
        for level in 0..self.dim {
            let bit = 1u32 << level;
            if (row ^ dst_row) & bit != 0 {
                row ^= bit;
            }
            nodes.push(self.node_of(level + 1, row));
        }
        debug_assert_eq!(row, dst_row);
        nodes
    }
}

/// The plain (non-wrapped) `dim`-dimensional butterfly.
pub fn butterfly(dim: u32) -> Network {
    let c = ButterflyCoords::new(dim, false);
    let mut b = NetworkBuilder::new(format!("butterfly({dim})"), c.node_count());
    for level in 0..dim {
        let bit = 1u32 << level;
        for row in 0..c.rows() {
            b.add_edge(c.node_of(level, row), c.node_of(level + 1, row));
            b.add_edge(c.node_of(level, row), c.node_of(level + 1, row ^ bit));
        }
    }
    b.build()
}

/// The wrap-around `dim`-dimensional butterfly (levels mod `dim`).
///
/// Requires `dim ≥ 2`: for `dim = 1` the wrapped edges would be parallel
/// duplicates.
pub fn wrapped_butterfly(dim: u32) -> Network {
    assert!(dim >= 2, "wrapped butterfly needs dim >= 2");
    let c = ButterflyCoords::new(dim, true);
    let mut b = NetworkBuilder::new(format!("wrapped_butterfly({dim})"), c.node_count());
    for level in 0..dim {
        let bit = 1u32 << level;
        for row in 0..c.rows() {
            b.add_edge_dedup(c.node_of(level, row), c.node_of(level + 1, row));
            b.add_edge_dedup(c.node_of(level, row), c.node_of(level + 1, row ^ bit));
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_counts() {
        let g = butterfly(3);
        // (k+1) * 2^k nodes, k * 2^(k+1) edges.
        assert_eq!(g.node_count(), 4 * 8);
        assert_eq!(g.edge_count(), 3 * 16);
        assert!(g.is_connected());
    }

    #[test]
    fn plain_degrees() {
        let g = butterfly(3);
        let c = ButterflyCoords::new(3, false);
        assert_eq!(g.degree(c.node_of(0, 0)), 2); // inputs: degree 2
        assert_eq!(g.degree(c.node_of(3, 0)), 2); // outputs: degree 2
        assert_eq!(g.degree(c.node_of(1, 0)), 4); // interior: degree 4
    }

    #[test]
    fn route_is_a_graph_path_for_all_pairs() {
        let g = butterfly(3);
        let c = ButterflyCoords::new(3, false);
        for src in 0..c.rows() {
            for dst in 0..c.rows() {
                let nodes = c.route(src, dst);
                assert_eq!(nodes.len(), 4);
                assert_eq!(nodes[0], c.node_of(0, src));
                assert_eq!(nodes[3], c.node_of(3, dst));
                assert!(
                    g.links_along(&nodes).is_some(),
                    "route {src}->{dst} not a path"
                );
            }
        }
    }

    #[test]
    fn route_levels_increase() {
        let c = ButterflyCoords::new(4, false);
        let nodes = c.route(5, 10);
        for (i, &n) in nodes.iter().enumerate() {
            assert_eq!(c.coords_of(n).0, i as u32);
        }
    }

    #[test]
    fn coords_roundtrip() {
        let c = ButterflyCoords::new(4, false);
        for id in 0..c.node_count() as NodeId {
            let (l, r) = c.coords_of(id);
            assert_eq!(c.node_of(l, r), id);
        }
    }

    #[test]
    fn wrapped_counts_and_regularity() {
        let g = wrapped_butterfly(3);
        assert_eq!(g.node_count(), 3 * 8);
        assert!(g.is_connected());
        for v in g.nodes() {
            assert_eq!(g.degree(v), 4, "wrapped butterfly is 4-regular");
        }
    }

    #[test]
    fn butterfly_diameter() {
        // Plain butterfly diameter is 2k.
        assert_eq!(butterfly(3).diameter(), Some(6));
    }
}
