//! d-dimensional meshes and tori (Theorem 1.6 substrate).

use crate::builder::NetworkBuilder;
use crate::coords::GridCoords;
use crate::graph::Network;

/// A `d`-dimensional mesh of side length `side` (no wraparound).
///
/// Node ids follow [`GridCoords`] row-major order. Degenerate sides are
/// allowed (`side = 1` yields a single node; a 1-d mesh is a chain).
pub fn mesh(dims: u32, side: u32) -> Network {
    grid(dims, side, false)
}

/// A `d`-dimensional torus of side length `side` (with wraparound).
///
/// For `side <= 2` the wraparound edge would duplicate the mesh edge, so it
/// is skipped (a side-2 torus equals a side-2 mesh, as is conventional).
pub fn torus(dims: u32, side: u32) -> Network {
    grid(dims, side, true)
}

fn grid(dims: u32, side: u32, wrap: bool) -> Network {
    let coords = GridCoords::new(dims, side);
    let n = coords.node_count();
    let kind = if wrap { "torus" } else { "mesh" };
    let mut b = NetworkBuilder::new(format!("{kind}({dims}, {side})"), n);
    let mut c = vec![0u32; dims as usize];
    for v in 0..n as u32 {
        coords.write_coords_of(v, &mut c);
        for dim in 0..dims {
            let x = c[dim as usize];
            if x + 1 < side {
                b.add_edge(v, coords.mesh_step(v, dim, 1).unwrap());
            } else if wrap && side > 2 {
                // Wraparound edge from the last coordinate back to 0.
                b.add_edge(v, coords.torus_step(v, dim, 1));
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_2d_counts() {
        let g = mesh(2, 4);
        assert_eq!(g.node_count(), 16);
        // 2 * side^(d-1) * (side-1) edges = 2 * 4 * 3 = 24.
        assert_eq!(g.edge_count(), 24);
        assert_eq!(g.diameter(), Some(6));
        assert!(g.is_connected());
    }

    #[test]
    fn torus_2d_counts() {
        let g = torus(2, 4);
        assert_eq!(g.node_count(), 16);
        // d * side^d edges = 2 * 16 = 32.
        assert_eq!(g.edge_count(), 32);
        assert_eq!(g.diameter(), Some(4));
        for v in g.nodes() {
            assert_eq!(g.degree(v), 4, "torus is regular");
        }
    }

    #[test]
    fn torus_side_two_equals_mesh() {
        let t = torus(3, 2);
        let m = mesh(3, 2);
        assert_eq!(t.edge_count(), m.edge_count());
        assert_eq!(t.diameter(), m.diameter());
    }

    #[test]
    fn one_dimensional_cases() {
        assert_eq!(mesh(1, 8).diameter(), Some(7)); // chain
        assert_eq!(torus(1, 8).diameter(), Some(4)); // ring
    }

    #[test]
    fn high_dimensional_mesh() {
        let g = mesh(4, 3);
        assert_eq!(g.node_count(), 81);
        assert_eq!(g.diameter(), Some(8)); // d * (side-1)
        assert!(g.is_connected());
    }

    #[test]
    fn single_node_grid() {
        let g = mesh(2, 1);
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn torus_diameter_formula() {
        // d * floor(side/2)
        assert_eq!(torus(2, 5).diameter(), Some(4));
        assert_eq!(torus(3, 4).diameter(), Some(6));
    }
}
