//! Random d-regular graphs — practical stand-ins for the explicit
//! expanders the paper points to for Theorem 1.5 ("the best expanders
//! that have an explicit construction are all node-symmetric", citing
//! Ramanujan graphs \[24, 25, 28\]). A random d-regular graph is an
//! expander w.h.p., which is the property the routing results exploit.

use crate::builder::NetworkBuilder;
use crate::graph::{Network, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// A random simple `d`-regular graph on `n` nodes via the Steger–Wormald
/// pairing procedure: repeatedly match two random unmatched half-edges,
/// rejecting self-loops and parallel edges locally; restart in the rare
/// event the remaining stubs admit no legal pair. Asymptotically uniform
/// for `d = O(n^{1/3})` and fast in practice.
///
/// # Panics
/// If `n·d` is odd, `d ≥ n`, or generation fails 1000 times in a row
/// (vanishingly unlikely for `d ≪ n`).
pub fn random_regular(n: usize, d: usize, rng: &mut impl Rng) -> Network {
    assert!(d >= 1 && d < n, "need 1 <= d < n");
    assert!((n * d).is_multiple_of(2), "n*d must be even");
    'restart: for _attempt in 0..1000 {
        let mut stubs: Vec<NodeId> = (0..n as NodeId)
            .flat_map(|v| std::iter::repeat_n(v, d))
            .collect();
        stubs.shuffle(rng);
        let mut seen = std::collections::HashSet::with_capacity(n * d / 2);
        let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(n * d / 2);
        while !stubs.is_empty() {
            // Try a few random pairs from the remaining stubs; a legal
            // one exists w.h.p. unless the tail is degenerate.
            let mut placed = false;
            for _ in 0..50 {
                let i = rng.gen_range(0..stubs.len());
                let j = rng.gen_range(0..stubs.len());
                if i == j {
                    continue;
                }
                let (u, v) = (stubs[i], stubs[j]);
                if u == v || seen.contains(&(u.min(v), u.max(v))) {
                    continue;
                }
                seen.insert((u.min(v), u.max(v)));
                edges.push((u, v));
                // Remove both stubs, larger index first so the smaller
                // one is not displaced by swap_remove.
                let (hi, lo) = (i.max(j), i.min(j));
                stubs.swap_remove(hi);
                stubs.swap_remove(lo);
                placed = true;
                break;
            }
            if !placed {
                continue 'restart; // degenerate tail — start over
            }
        }
        let mut b = NetworkBuilder::new(format!("random_regular({n}, {d})"), n);
        for (u, v) in edges {
            b.add_edge(u, v);
        }
        return b.build();
    }
    panic!("no simple {d}-regular pairing found for n = {n} after 1000 restarts");
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn regularity_and_connectivity() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for (n, d) in [(16, 3), (64, 4), (100, 6)] {
            let g = random_regular(n, d, &mut rng);
            assert_eq!(g.node_count(), n);
            assert_eq!(g.edge_count(), n * d / 2);
            for v in g.nodes() {
                assert_eq!(g.degree(v), d, "node {v} degree");
            }
            // d >= 3 random regular graphs are connected w.h.p.
            assert!(g.is_connected(), "random_regular({n},{d}) disconnected");
        }
    }

    #[test]
    fn expander_like_diameter() {
        // Diameter of a random 4-regular graph on 256 nodes is O(log n);
        // allow a generous cap.
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = random_regular(256, 4, &mut rng);
        let d = g.diameter().unwrap();
        assert!(d <= 12, "diameter {d} implausibly large for an expander");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = random_regular(32, 3, &mut ChaCha8Rng::seed_from_u64(7));
        let b = random_regular(32, 3, &mut ChaCha8Rng::seed_from_u64(7));
        for v in a.nodes() {
            let na: Vec<_> = a.neighbors(v).map(|(t, _)| t).collect();
            let nb: Vec<_> = b.neighbors(v).map(|(t, _)| t).collect();
            assert_eq!(na, nb);
        }
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_degree_sum_rejected() {
        random_regular(5, 3, &mut ChaCha8Rng::seed_from_u64(0));
    }
}
