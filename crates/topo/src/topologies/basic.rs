//! Elementary topologies: chains, rings, stars and complete graphs.

use crate::builder::NetworkBuilder;
use crate::graph::{Network, NodeId};

/// A chain (path graph) of `n ≥ 1` nodes: `0 — 1 — … — n-1`.
pub fn chain(n: usize) -> Network {
    assert!(n >= 1, "chain needs at least one node");
    let mut b = NetworkBuilder::new(format!("chain({n})"), n);
    for i in 0..n - 1 {
        b.add_edge(i as NodeId, (i + 1) as NodeId);
    }
    b.build()
}

/// A ring (cycle) of `n ≥ 3` nodes.
pub fn ring(n: usize) -> Network {
    assert!(n >= 3, "ring needs at least three nodes");
    let mut b = NetworkBuilder::new(format!("ring({n})"), n);
    for i in 0..n {
        b.add_edge(i as NodeId, ((i + 1) % n) as NodeId);
    }
    b.build()
}

/// The complete graph on `n ≥ 1` nodes.
pub fn complete(n: usize) -> Network {
    assert!(n >= 1, "complete graph needs at least one node");
    let mut b = NetworkBuilder::new(format!("complete({n})"), n);
    for u in 0..n {
        for v in u + 1..n {
            b.add_edge(u as NodeId, v as NodeId);
        }
    }
    b.build()
}

/// A star with center `0` and `n - 1` leaves (`n ≥ 2`).
pub fn star(n: usize) -> Network {
    assert!(n >= 2, "star needs at least two nodes");
    let mut b = NetworkBuilder::new(format!("star({n})"), n);
    for leaf in 1..n {
        b.add_edge(0, leaf as NodeId);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_shape() {
        let g = chain(5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.diameter(), Some(4));
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
    }

    #[test]
    fn single_node_chain() {
        let g = chain(1);
        assert_eq!(g.edge_count(), 0);
        assert!(g.is_connected());
    }

    #[test]
    fn ring_shape() {
        let g = ring(6);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.diameter(), Some(3));
        for v in g.nodes() {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    fn odd_ring_diameter() {
        assert_eq!(ring(7).diameter(), Some(3));
        assert_eq!(ring(3).diameter(), Some(1));
    }

    #[test]
    fn complete_shape() {
        let g = complete(5);
        assert_eq!(g.edge_count(), 10);
        assert_eq!(g.diameter(), Some(1));
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn star_shape() {
        let g = star(9);
        assert_eq!(g.edge_count(), 8);
        assert_eq!(g.diameter(), Some(2));
        assert_eq!(g.degree(0), 8);
        assert_eq!(g.degree(5), 1);
    }
}
