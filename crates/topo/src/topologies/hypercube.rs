//! Boolean hypercubes — node-symmetric networks for Theorem 1.5.

use crate::builder::NetworkBuilder;
use crate::graph::{Network, NodeId};

/// The `dim`-dimensional Boolean hypercube: nodes `0..2^dim`, edges between
/// ids differing in exactly one bit.
///
/// ```
/// let g = optical_topo::topologies::hypercube(4);
/// assert_eq!(g.node_count(), 16);
/// assert_eq!(g.diameter(), Some(4));
/// ```
pub fn hypercube(dim: u32) -> Network {
    assert!((1..31).contains(&dim), "hypercube dimension out of range");
    let n = 1usize << dim;
    let mut b = NetworkBuilder::new(format!("hypercube({dim})"), n);
    for v in 0..n as NodeId {
        for bit in 0..dim {
            let u = v ^ (1 << bit);
            if v < u {
                b.add_edge(v, u);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_regularity() {
        let g = hypercube(5);
        assert_eq!(g.node_count(), 32);
        assert_eq!(g.edge_count(), 5 * 16); // dim * 2^(dim-1)
        for v in g.nodes() {
            assert_eq!(g.degree(v), 5);
        }
    }

    #[test]
    fn diameter_is_dimension() {
        for dim in 1..=6 {
            assert_eq!(hypercube(dim).diameter(), Some(dim));
        }
    }

    #[test]
    fn distance_is_hamming() {
        let g = hypercube(6);
        for &(u, v) in &[(0u32, 63u32), (5, 9), (0, 1), (42, 42)] {
            let hamming = (u ^ v).count_ones();
            assert_eq!(g.distance(u, v), Some(hamming));
        }
    }

    #[test]
    fn dim_one_is_single_edge() {
        let g = hypercube(1);
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }
}
