//! Cube-connected cycles — the classic *bounded-degree* node-symmetric
//! network: exactly the class Theorem 1.5 addresses (hypercubes have
//! logarithmic degree; CCC caps it at 3 while staying node-symmetric).

use crate::builder::NetworkBuilder;
use crate::graph::{Network, NodeId};
use serde::{Deserialize, Serialize};

/// Coordinates of the cube-connected cycles network `CCC(dim)`:
/// a node is a pair `(cycle position p ∈ [dim], hypercube corner
/// w ∈ [2^dim])`; cycle edges connect `(p, w) — (p+1 mod dim, w)` and the
/// rung edge connects `(p, w) — (p, w ^ 2^p)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CccCoords {
    dim: u32,
}

impl CccCoords {
    /// Coordinates for `CCC(dim)`, `dim ≥ 3` (smaller cycles degenerate).
    pub fn new(dim: u32) -> Self {
        assert!(
            (3..28).contains(&dim),
            "CCC dimension out of range (need 3..28)"
        );
        CccCoords { dim }
    }

    /// Cycle length / hypercube dimension.
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// Total node count `dim · 2^dim`.
    pub fn node_count(&self) -> usize {
        self.dim as usize * (1usize << self.dim)
    }

    /// Dense id of `(position, corner)`.
    pub fn node_of(&self, position: u32, corner: u32) -> NodeId {
        assert!(position < self.dim && corner < (1 << self.dim));
        corner * self.dim + position
    }

    /// `(position, corner)` of a dense id.
    pub fn coords_of(&self, node: NodeId) -> (u32, u32) {
        assert!((node as usize) < self.node_count());
        (node % self.dim, node / self.dim)
    }
}

/// The cube-connected cycles network `CCC(dim)`: `dim · 2^dim` nodes of
/// degree exactly 3, node-symmetric, diameter `Θ(dim)`.
pub fn cube_connected_cycles(dim: u32) -> Network {
    let c = CccCoords::new(dim);
    let mut b = NetworkBuilder::new(format!("ccc({dim})"), c.node_count());
    for corner in 0..1u32 << dim {
        for p in 0..dim {
            // Cycle edge to the next position.
            b.add_edge_dedup(c.node_of(p, corner), c.node_of((p + 1) % dim, corner));
            // Rung edge across dimension p.
            let other = corner ^ (1 << p);
            if corner < other {
                b.add_edge(c.node_of(p, corner), c.node_of(p, other));
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symmetry::distance_profiles_uniform;

    #[test]
    fn counts_and_degree() {
        let g = cube_connected_cycles(3);
        assert_eq!(g.node_count(), 3 * 8);
        // 3-regular: edges = 3n/2.
        assert_eq!(g.edge_count(), 3 * 24 / 2);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 3, "CCC is 3-regular");
        }
        assert!(g.is_connected());
    }

    #[test]
    fn coordinates_roundtrip() {
        let c = CccCoords::new(4);
        for id in 0..c.node_count() as NodeId {
            let (p, w) = c.coords_of(id);
            assert_eq!(c.node_of(p, w), id);
        }
    }

    #[test]
    fn node_symmetric() {
        assert!(distance_profiles_uniform(&cube_connected_cycles(3)));
        assert!(distance_profiles_uniform(&cube_connected_cycles(4)));
    }

    #[test]
    fn diameter_is_theta_dim() {
        // Known exact small values: diam(CCC(3)) = 6.
        let g = cube_connected_cycles(3);
        assert_eq!(g.diameter(), Some(6));
        let g4 = cube_connected_cycles(4);
        let d4 = g4.diameter().unwrap();
        assert!((7..=10).contains(&d4), "CCC(4) diameter {d4}");
    }

    #[test]
    fn rung_edges_cross_correct_dimension() {
        let c = CccCoords::new(3);
        let g = cube_connected_cycles(3);
        assert!(g.has_edge(c.node_of(1, 0b000), c.node_of(1, 0b010)));
        assert!(!g.has_edge(c.node_of(1, 0b000), c.node_of(1, 0b100)));
    }
}
