//! De Bruijn and shuffle-exchange networks — the interconnection families
//! Pankaj \[29\] analyzed for wavelength-efficient permutation routing.

use crate::builder::NetworkBuilder;
use crate::graph::{Network, NodeId};

/// The binary de Bruijn network of dimension `dim`: nodes `0..2^dim`, with
/// undirected edges `u — (2u mod 2^dim)` and `u — (2u + 1 mod 2^dim)`.
///
/// Self loops (at `0…0` and `1…1`) are dropped and parallel edges merged, as
/// is standard for the undirected de Bruijn graph.
pub fn de_bruijn(dim: u32) -> Network {
    assert!((1..31).contains(&dim), "de Bruijn dimension out of range");
    let n = 1u32 << dim;
    let mask = n - 1;
    let mut b = NetworkBuilder::new(format!("de_bruijn({dim})"), n as usize);
    for u in 0..n {
        for bit in 0..2 {
            let v = ((u << 1) | bit) & mask;
            if u != v {
                b.add_edge_dedup(u as NodeId, v as NodeId);
            }
        }
    }
    b.build()
}

/// The shuffle-exchange network of dimension `dim`: nodes `0..2^dim`, with
/// *exchange* edges `u — u ^ 1` and *shuffle* edges `u — rotl(u)` (cyclic
/// left rotation of the `dim`-bit string). Self loops dropped, duplicates
/// merged.
pub fn shuffle_exchange(dim: u32) -> Network {
    assert!(
        (1..31).contains(&dim),
        "shuffle-exchange dimension out of range"
    );
    let n = 1u32 << dim;
    let mask = n - 1;
    let rotl = |u: u32| ((u << 1) | (u >> (dim - 1))) & mask;
    let mut b = NetworkBuilder::new(format!("shuffle_exchange({dim})"), n as usize);
    for u in 0..n {
        let x = u ^ 1;
        if u < x {
            b.add_edge_dedup(u as NodeId, x as NodeId);
        }
        let s = rotl(u);
        if u != s {
            b.add_edge_dedup(u as NodeId, s as NodeId);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn de_bruijn_connected_and_bounded_degree() {
        for dim in 2..=8 {
            let g = de_bruijn(dim);
            assert_eq!(g.node_count(), 1 << dim);
            assert!(g.is_connected(), "de_bruijn({dim}) disconnected");
            assert!(g.max_degree() <= 4, "de Bruijn degree bound");
        }
    }

    #[test]
    fn de_bruijn_diameter_is_dim() {
        // The directed de Bruijn graph has diameter exactly dim; the
        // undirected version can only be smaller or equal.
        for dim in 2..=7 {
            let d = de_bruijn(dim).diameter().unwrap();
            assert!(d <= dim, "undirected diameter {d} exceeds {dim}");
            assert!(d >= dim / 2, "implausibly small diameter {d}");
        }
    }

    #[test]
    fn shuffle_exchange_connected_and_bounded_degree() {
        for dim in 2..=8 {
            let g = shuffle_exchange(dim);
            assert_eq!(g.node_count(), 1 << dim);
            assert!(g.is_connected(), "shuffle_exchange({dim}) disconnected");
            assert!(g.max_degree() <= 3, "shuffle-exchange degree bound");
        }
    }

    #[test]
    fn shuffle_exchange_has_exchange_edges() {
        let g = shuffle_exchange(4);
        for u in (0..16u32).step_by(2) {
            assert!(g.has_edge(u, u ^ 1), "missing exchange edge at {u}");
        }
    }

    #[test]
    fn de_bruijn_has_doubling_edges() {
        let g = de_bruijn(4);
        assert!(g.has_edge(3, 6));
        assert!(g.has_edge(3, 7));
        assert!(g.has_edge(8, 0)); // 2*8 mod 16 = 0
    }
}
