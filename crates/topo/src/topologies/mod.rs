//! Constructors for the interconnection topologies used throughout the
//! paper: grids (Theorem 1.6), butterflies (Theorem 1.7), node-symmetric
//! networks such as tori and hypercubes (Theorem 1.5), and the classic
//! networks from the related-work discussion (de Bruijn, shuffle-exchange).

mod basic;
mod butterfly;
mod ccc;
mod debruijn;
mod grid;
mod hypercube;
mod random_regular;

pub use basic::{chain, complete, ring, star};
pub use butterfly::{butterfly, wrapped_butterfly, ButterflyCoords};
pub use ccc::{cube_connected_cycles, CccCoords};
pub use debruijn::{de_bruijn, shuffle_exchange};
pub use grid::{mesh, torus};
pub use hypercube::hypercube;
pub use random_regular::random_regular;
