#![warn(missing_docs)]

//! Network topology substrate for all-optical routing.
//!
//! This crate models the topology of an optical network exactly as in
//! Flammini & Scheideler (SPAA 1997), §1.1: an undirected graph `G = (V, E)`
//! where each node represents a router (connected to a processor) and each
//! undirected edge represents **two optical links, one in each direction**.
//!
//! The central type is [`Network`], a compact CSR-based graph with dense
//! integer node ids ([`NodeId`]) and *directed* link ids ([`LinkId`]). All
//! standard interconnection topologies used by the paper's application
//! theorems are provided in [`topologies`]: d-dimensional meshes and tori
//! (Theorem 1.6), butterflies (Theorem 1.7), hypercubes and other
//! node-symmetric networks (Theorem 1.5), plus rings, chains, de Bruijn and
//! shuffle-exchange graphs referenced in the related-work discussion.
//!
//! # Example
//!
//! ```
//! use optical_topo::topologies;
//!
//! let net = topologies::torus(2, 8); // 8x8 torus
//! assert_eq!(net.node_count(), 64);
//! assert!(net.is_connected());
//! assert_eq!(net.diameter(), Some(8)); // 4 + 4
//! ```

pub mod algo;
pub mod bridges;
pub mod builder;
pub mod coords;
pub mod graph;
pub mod symmetry;
pub mod topologies;

pub use builder::NetworkBuilder;
pub use coords::GridCoords;
pub use graph::{LinkId, Network, NodeId, INVALID_LINK, INVALID_NODE};
