//! Bridge (cut-edge) detection — the fiber-failure analysis primitive:
//! cutting a bridge disconnects the network, so recovery experiments must
//! distinguish survivable cuts from fatal ones.

use crate::graph::{LinkId, Network, NodeId};

/// All bridges of the network, each reported once as the even link id of
/// its undirected edge. Iterative Tarjan lowlink in `O(n + m)`.
pub fn bridges(net: &Network) -> Vec<LinkId> {
    let n = net.node_count();
    let mut disc = vec![u32::MAX; n]; // discovery time
    let mut low = vec![u32::MAX; n];
    let mut timer = 0u32;
    let mut out = Vec::new();

    // Iterative DFS: stack of (node, incoming undirected edge, neighbor
    // iterator position).
    let mut stack: Vec<(NodeId, u32, usize)> = Vec::new();
    for root in net.nodes() {
        if disc[root as usize] != u32::MAX {
            continue;
        }
        disc[root as usize] = timer;
        low[root as usize] = timer;
        timer += 1;
        stack.push((root, u32::MAX, 0));
        while let Some(&mut (v, in_edge, ref mut pos)) = stack.last_mut() {
            let neighbors: Vec<(NodeId, LinkId)> = net.neighbors(v).collect();
            if *pos < neighbors.len() {
                let (t, l) = neighbors[*pos];
                *pos += 1;
                let ue = net.undirected_index(l);
                if ue == in_edge {
                    continue; // don't walk back along the tree edge
                }
                if disc[t as usize] == u32::MAX {
                    disc[t as usize] = timer;
                    low[t as usize] = timer;
                    timer += 1;
                    stack.push((t, ue, 0));
                } else {
                    low[v as usize] = low[v as usize].min(disc[t as usize]);
                }
            } else {
                stack.pop();
                if let Some(&mut (parent, _, _)) = stack.last_mut() {
                    low[parent as usize] = low[parent as usize].min(low[v as usize]);
                    if low[v as usize] > disc[parent as usize] {
                        out.push(in_edge * 2); // even link id of the edge
                    }
                }
            }
        }
    }
    out.sort_unstable();
    out
}

/// Whether cutting the undirected edge of `link` disconnects its
/// component.
pub fn is_bridge(net: &Network, link: LinkId) -> bool {
    let even = (net.undirected_index(link)) * 2;
    bridges(net).contains(&even)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topologies;
    use crate::NetworkBuilder;

    #[test]
    fn chain_is_all_bridges() {
        let g = topologies::chain(5);
        assert_eq!(bridges(&g).len(), 4);
        for l in g.links() {
            assert!(is_bridge(&g, l));
        }
    }

    #[test]
    fn ring_has_no_bridges() {
        let g = topologies::ring(6);
        assert!(bridges(&g).is_empty());
    }

    #[test]
    fn torus_and_hypercube_are_bridgeless() {
        assert!(bridges(&topologies::torus(2, 4)).is_empty());
        assert!(bridges(&topologies::hypercube(4)).is_empty());
    }

    #[test]
    fn barbell_bridge_found() {
        // Two triangles connected by one edge: exactly that edge is a
        // bridge.
        let mut b = NetworkBuilder::new("barbell", 6);
        for (u, v) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            b.add_edge(u, v);
        }
        b.add_edge(2, 3);
        let g = b.build();
        let bs = bridges(&g);
        assert_eq!(bs.len(), 1);
        let l = bs[0];
        let (s, t) = g.link_ends(l);
        assert_eq!((s.min(t), s.max(t)), (2, 3));
        assert!(is_bridge(&g, l));
        assert!(!is_bridge(&g, g.link_between(0, 1).unwrap()));
    }

    #[test]
    fn star_spokes_are_bridges() {
        let g = topologies::star(5);
        assert_eq!(bridges(&g).len(), 4);
    }

    #[test]
    fn disconnected_components_handled() {
        let mut b = NetworkBuilder::new("two chains", 6);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(3, 4);
        b.add_edge(4, 5);
        let g = b.build();
        assert_eq!(bridges(&g).len(), 4);
    }

    #[test]
    fn mesh_interior_is_bridgeless_but_not_all() {
        // A 1xN mesh (chain) is all bridges; a 2-d mesh has none.
        assert!(bridges(&topologies::mesh(2, 4)).is_empty());
        assert_eq!(bridges(&topologies::mesh(1, 5)).len(), 4);
    }
}
