//! Coordinate systems for grid-like topologies (meshes and tori).

use crate::graph::NodeId;
use serde::{Deserialize, Serialize};

/// Mixed-radix coordinates for a `d`-dimensional grid of side length `side`.
///
/// Node ids enumerate coordinates in row-major order with dimension 0 as the
/// fastest-varying digit: `id = Σ_k coord[k] · side^k`.
///
/// ```
/// use optical_topo::GridCoords;
/// let c = GridCoords::new(3, 4); // 4x4x4
/// assert_eq!(c.node_count(), 64);
/// let id = c.node_of(&[1, 2, 3]);
/// assert_eq!(c.coords_of(id), vec![1, 2, 3]);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GridCoords {
    dims: u32,
    side: u32,
}

impl GridCoords {
    /// A `dims`-dimensional grid of side `side`.
    ///
    /// # Panics
    /// If `dims == 0`, `side == 0`, or `side^dims` overflows `u32`.
    pub fn new(dims: u32, side: u32) -> Self {
        assert!(dims > 0, "need at least one dimension");
        assert!(side > 0, "side must be positive");
        let mut count: u64 = 1;
        for _ in 0..dims {
            count *= side as u64;
            assert!(count <= u32::MAX as u64, "grid too large for u32 node ids");
        }
        GridCoords { dims, side }
    }

    /// Number of dimensions `d`.
    pub fn dims(&self) -> u32 {
        self.dims
    }

    /// Side length `n`.
    pub fn side(&self) -> u32 {
        self.side
    }

    /// Total number of nodes `side^dims`.
    pub fn node_count(&self) -> usize {
        (self.side as u64).pow(self.dims) as usize
    }

    /// Node id for the given coordinates.
    ///
    /// # Panics
    /// If `coords.len() != dims` or any coordinate is out of range.
    pub fn node_of(&self, coords: &[u32]) -> NodeId {
        assert_eq!(coords.len(), self.dims as usize, "wrong coordinate arity");
        let mut id: u64 = 0;
        for &c in coords.iter().rev() {
            assert!(c < self.side, "coordinate {c} out of range");
            id = id * self.side as u64 + c as u64;
        }
        id as NodeId
    }

    /// Coordinates of a node id.
    pub fn coords_of(&self, node: NodeId) -> Vec<u32> {
        let mut out = vec![0u32; self.dims as usize];
        self.write_coords_of(node, &mut out);
        out
    }

    /// Allocation-free variant of [`coords_of`](Self::coords_of).
    pub fn write_coords_of(&self, node: NodeId, out: &mut [u32]) {
        assert_eq!(out.len(), self.dims as usize);
        let mut rest = node as u64;
        for slot in out.iter_mut() {
            *slot = (rest % self.side as u64) as u32;
            rest /= self.side as u64;
        }
        debug_assert_eq!(rest, 0, "node id out of range");
    }

    /// Neighbor of `node` one step along `dim` in direction `delta` (+1/-1),
    /// without wraparound. `None` at the boundary.
    pub fn mesh_step(&self, node: NodeId, dim: u32, delta: i32) -> Option<NodeId> {
        let mut c = self.coords_of(node);
        let x = c[dim as usize] as i64 + delta as i64;
        if x < 0 || x >= self.side as i64 {
            return None;
        }
        c[dim as usize] = x as u32;
        Some(self.node_of(&c))
    }

    /// Neighbor of `node` one step along `dim` with wraparound (torus).
    pub fn torus_step(&self, node: NodeId, dim: u32, delta: i32) -> NodeId {
        let mut c = self.coords_of(node);
        let s = self.side as i64;
        let x = (c[dim as usize] as i64 + delta as i64).rem_euclid(s);
        c[dim as usize] = x as u32;
        self.node_of(&c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_nodes() {
        let c = GridCoords::new(3, 5);
        for id in 0..c.node_count() as NodeId {
            assert_eq!(c.node_of(&c.coords_of(id)), id);
        }
    }

    #[test]
    fn dimension_zero_is_fastest() {
        let c = GridCoords::new(2, 10);
        assert_eq!(c.node_of(&[3, 0]), 3);
        assert_eq!(c.node_of(&[0, 3]), 30);
    }

    #[test]
    fn mesh_step_boundaries() {
        let c = GridCoords::new(2, 4);
        let corner = c.node_of(&[0, 0]);
        assert_eq!(c.mesh_step(corner, 0, -1), None);
        assert_eq!(c.mesh_step(corner, 1, -1), None);
        assert_eq!(c.mesh_step(corner, 0, 1), Some(c.node_of(&[1, 0])));
        let far = c.node_of(&[3, 3]);
        assert_eq!(c.mesh_step(far, 0, 1), None);
    }

    #[test]
    fn torus_step_wraps() {
        let c = GridCoords::new(2, 4);
        let corner = c.node_of(&[0, 0]);
        assert_eq!(c.torus_step(corner, 0, -1), c.node_of(&[3, 0]));
        assert_eq!(c.torus_step(corner, 1, -1), c.node_of(&[0, 3]));
        assert_eq!(c.torus_step(c.node_of(&[3, 1]), 0, 1), c.node_of(&[0, 1]));
    }

    #[test]
    fn side_one_grid() {
        let c = GridCoords::new(4, 1);
        assert_eq!(c.node_count(), 1);
        assert_eq!(c.coords_of(0), vec![0, 0, 0, 0]);
        assert_eq!(c.torus_step(0, 2, 1), 0);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn overflow_guard() {
        GridCoords::new(8, 256); // 256^8 = 2^64 overflows u32
    }
}
