//! The parallel experiment pipeline must be a pure function of the
//! configuration: `run_all` fans experiments and sweep points out over
//! rayon, but every random stream is derived from `cfg.seed` alone and
//! results are stitched in declaration order, so the report is
//! byte-identical at any thread count.

use optical_bench::experiments::{run_all, run_all_timed, SECTIONS};
use optical_bench::{ExpConfig, InstanceCache};

#[test]
fn quick_report_is_identical_across_thread_counts() {
    let cfg = ExpConfig::quick();

    // Single-threaded pool vs the default (ambient) pool.
    let single = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap()
        .install(|| run_all(&cfg));
    let ambient = run_all(&cfg);
    assert_eq!(
        single, ambient,
        "run_all must be byte-identical at any thread count"
    );

    // And repeated runs are stable too (the instance cache serves hits the
    // second time around — memoized instances must not perturb results).
    let again = run_all(&cfg);
    assert_eq!(ambient, again, "run_all must be idempotent");

    let stats = InstanceCache::global().stats();
    assert!(
        stats.hits > 0,
        "repeated runs must hit the instance cache (stats: {stats:?})"
    );
}

#[test]
fn timings_cover_every_section_without_touching_the_report() {
    let cfg = ExpConfig::quick();
    let (report, timings) = run_all_timed(&cfg);
    assert_eq!(report, run_all(&cfg));
    assert_eq!(timings.len(), SECTIONS.len());
    for ((id, _), (tid, _)) in SECTIONS.iter().zip(&timings) {
        assert_eq!(id, tid, "timings must be in section order");
    }
}
