//! Instrumented observability runs for `all_experiments --obs` and the
//! `obs_trace` binary.
//!
//! Two demonstrations, both driven through [`SimBuilder`] with real
//! sinks attached:
//!
//! 1. **Counters** — a clean protocol run (random function on a 2-d
//!    torus) with a [`CountersSink`]: per-cause failure totals,
//!    wavelength-slot occupancy, and reconciliation against the run
//!    report.
//! 2. **Event trace** — an E13-style dynamic-fault run (fibers cut while
//!    worms are in flight) with an [`EventSink`]: the structured trace is
//!    aggregated into per-round utilization/blocking tables and also
//!    returned as a JSONL dump for `trace_report`.
//!
//! The sinks never consume simulation randomness, so these runs report
//! exactly what an uninstrumented run would have done.

use crate::harness::ExpConfig;
use optical_core::{FaultSource, ProtocolParams, ProtocolWorkspace, RecoveryPolicy, SimBuilder};
use optical_obs::{report, CountersSink, EventSink};
use optical_paths::select::bfs::bfs_collection;
use optical_topo::topologies;
use optical_wdm::{FaultPlan, RouterConfig};
use optical_workloads::functions::random_function;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fmt::Write as _;

/// Worm length for both obs runs.
pub const WORM_LEN: u32 = 4;
/// Router bandwidth for both obs runs.
pub const BANDWIDTH: u16 = 2;

/// Output of the instrumented section: a rendered report plus the raw
/// event trace.
#[derive(Clone, Debug)]
pub struct ObsRun {
    /// Human-readable section (counter totals + aggregated trace tables).
    pub summary: String,
    /// The event trace as JSONL, one event per line — feed to
    /// `trace_report`.
    pub trace_jsonl: String,
}

fn base_params() -> ProtocolParams {
    let mut params = ProtocolParams::new(RouterConfig::serve_first(BANDWIDTH), WORM_LEN);
    params.max_rounds = 300;
    params
}

/// Pick up to `want` distinct fibers from the middle of long paths — the
/// same "backhoe" construction as `examples/fault_recovery.rs`, so the
/// cut is guaranteed to strike worms that were using those fibers.
fn backhoe_fibers(coll: &optical_paths::PathCollection, want: usize) -> Vec<u32> {
    let mut fibers: Vec<u32> = Vec::new();
    for (_, p) in coll.iter() {
        if p.len() >= 4 {
            let fiber = p.links()[p.len() / 2] / 2;
            if !fibers.contains(&fiber) {
                fibers.push(fiber);
            }
            if fibers.len() == want {
                break;
            }
        }
    }
    fibers
}

/// Run both instrumented demonstrations and render the obs section.
pub fn run(cfg: &ExpConfig) -> ObsRun {
    let side: u32 = if cfg.quick { 6 } else { 12 };
    let net = topologies::torus(2, side);
    let mut summary = String::new();
    writeln!(summary, "== OBS: instrumented runs (sinks attached) ==").unwrap();
    writeln!(
        summary,
        "{}: random function, serve-first B={BANDWIDTH}, L={WORM_LEN}",
        net.name()
    )
    .unwrap();

    // --- 1. Counters over a clean protocol run. ---------------------
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x0B5);
    let f = random_function(net.node_count(), &mut rng);
    let coll = bfs_collection(&net, &f);
    let sim = SimBuilder::new(&net, &coll).params(base_params()).build();
    let counters = CountersSink::new(BANDWIDTH);
    let mut ws = ProtocolWorkspace::new();
    let run_report = sim
        .run_traced(&mut ws, &mut rng, &mut &counters)
        .into_protocol();
    let totals = counters.totals();
    writeln!(summary, "\n-- counters (clean run) --").unwrap();
    writeln!(summary, "{totals}").unwrap();
    writeln!(
        summary,
        "reconciled: trials {} = delivered {} + failures {} (report: {} rounds, completed={})",
        totals.trials,
        totals.delivered,
        totals.failures(),
        run_report.rounds_used(),
        run_report.completed
    )
    .unwrap();

    // --- 2. Event trace over a dynamic-fault recovery run. ----------
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x0E5);
    let f = random_function(net.node_count(), &mut rng);
    let coll = bfs_collection(&net, &f);
    let fibers = backhoe_fibers(&coll, 3);
    let cut_at = |t: u32| {
        fibers.iter().fold(FaultPlan::none(), |plan, &e| {
            plan.down(2 * e, t).down(2 * e + 1, t)
        })
    };
    // Round 1 runs clean; the cut lands at step 5 of round 2 and is
    // permanent from then on.
    let mut plans = vec![FaultPlan::none(), cut_at(5)];
    plans.resize(300, cut_at(0));
    let sim = SimBuilder::new(&net, &coll)
        .params(base_params())
        .recovery(RecoveryPolicy::default())
        .faults(FaultSource::PerRound(plans))
        .build();
    let mut events = EventSink::new();
    let rec_report = sim
        .run_traced(&mut ws, &mut rng, &mut events)
        .into_recovery();
    let trace = report::aggregate(&events.events());
    writeln!(
        summary,
        "\n-- event trace (fibers {fibers:?} cut mid-flight in round 2) --"
    )
    .unwrap();
    writeln!(summary, "{trace}").unwrap();
    writeln!(
        summary,
        "recovery: {} direct, {} rerouted, {} abandoned; {} events buffered ({} dropped)",
        rec_report.delivered_direct(),
        rec_report.rerouted_count(),
        rec_report.abandoned_count(),
        events.len(),
        events.dropped()
    )
    .unwrap();

    ObsRun {
        summary,
        trace_jsonl: events.to_jsonl(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optical_obs::events::parse_jsonl;

    #[test]
    fn obs_run_produces_summary_and_parseable_trace() {
        let obs = run(&ExpConfig::quick());
        assert!(obs.summary.contains("counters"));
        assert!(obs.summary.contains("per-round utilization"));
        assert!(obs.summary.contains("reconciled"));
        let events = parse_jsonl(&obs.trace_jsonl).expect("trace must round-trip");
        assert!(!events.is_empty(), "the trace must be non-empty");
    }

    #[test]
    fn obs_run_is_deterministic() {
        let a = run(&ExpConfig::quick());
        let b = run(&ExpConfig::quick());
        assert_eq!(a.summary, b.summary);
        assert_eq!(a.trace_jsonl, b.trace_jsonl);
    }
}
