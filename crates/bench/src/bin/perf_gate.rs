//! Dependency-free perf gate over the protocol hot paths.
//!
//! Criterion needs a registry mirror to build, so the committed baseline
//! workflow uses this binary instead: it times the same hot paths the
//! criterion suite covers (engine round, protocol run with congestion
//! recording on/off, path metrics) with `std::time::Instant`, reports the
//! median ns/op per bench, and can compare two result files with a
//! tolerance gate.
//!
//! ```text
//! perf_gate [--quick] [--out FILE]          # run benches, emit JSON
//! perf_gate --compare BASE CUR [--tolerance F]   # gate: CUR vs BASE
//! ```
//!
//! The JSON format is a flat `{"bench/name": median_ns, ...}` map — see
//! `scripts/bench.sh` for the `BENCH_baseline.json` / `BENCH_pr.json`
//! workflow.

use optical_bench::ExpConfig;
use optical_core::{ProtocolParams, ProtocolWorkspace, SimBuilder, TrialAndFailure};
use optical_obs::NullSink;
use optical_paths::select::bfs::bfs_route;
use optical_paths::select::butterfly::butterfly_qfunction_collection;
use optical_paths::{properties, PathCollection};
use optical_topo::topologies::ButterflyCoords;
use optical_topo::{topologies, Network};
use optical_wdm::{Engine, RouterConfig, TransmissionSpec};
use optical_workloads::functions::random_function;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;
use std::hint::black_box;
use std::time::Instant;

/// One timed sample: wall-clock nanoseconds of a single `f()` call.
fn sample_ns<F: FnMut()>(f: &mut F) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_nanos() as f64
}

/// Median of `samples` timed calls after `warmup` untimed ones.
fn bench<F: FnMut()>(samples: usize, warmup: usize, mut f: F) -> f64 {
    for _ in 0..warmup {
        f();
    }
    let mut times: Vec<f64> = (0..samples).map(|_| sample_ns(&mut f)).collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

/// The shared workload: a random permutation on a 32x32 torus, routed by
/// BFS — 1024 mostly-short paths over 4096 directed links, the shape the
/// experiment sweeps live in (many paths, sparse per-link overlap).
fn torus_permutation() -> (Network, PathCollection) {
    let net = topologies::torus(2, 32);
    let n = net.node_count() as u32;
    let mut dests: Vec<u32> = (0..n).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    dests.shuffle(&mut rng);
    let mut coll = PathCollection::for_network(&net);
    for (s, &d) in dests.iter().enumerate() {
        coll.push(bfs_route(&net, s as u32, d));
    }
    (net, coll)
}

fn protocol_params(record_congestion: bool) -> ProtocolParams {
    let mut params = ProtocolParams::new(RouterConfig::serve_first(2), 4);
    params.max_rounds = 200;
    params.record_congestion = record_congestion;
    params
}

fn run_benches(quick: bool) -> BTreeMap<String, f64> {
    let (samples, warmup) = if quick { (7, 2) } else { (17, 3) };
    let mut out = BTreeMap::new();
    let (net, coll) = torus_permutation();

    // Engine round: one full forward pass of all 1024 worms.
    {
        let mut engine = Engine::new(coll.link_count(), RouterConfig::serve_first(2));
        let ns = bench(samples, warmup, || {
            let mut rng = ChaCha8Rng::seed_from_u64(11);
            let specs: Vec<TransmissionSpec<'_>> = (0..coll.len())
                .map(|i| TransmissionSpec {
                    links: coll.path(i).links(),
                    start: rng.gen_range(0..64),
                    wavelength: rng.gen_range(0..2),
                    priority: i as u64,
                    length: 4,
                })
                .collect();
            black_box(engine.run(&specs, &mut rng).makespan);
        });
        out.insert("engine/round_1024".into(), ns);
    }

    // Contention-kernel extremes. `resolve_dense` puts every worm on the
    // same start step and wavelength, so nearly every arrival lands in a
    // multi-candidate group (the slow resolver path); `resolve_sparse`
    // staggers starts so almost every arrival is a lone head at a vacant
    // slot (the bitmask fast path). Specs are built once — only the round
    // itself is timed.
    {
        let dense_specs: Vec<TransmissionSpec<'_>> = (0..coll.len())
            .map(|i| TransmissionSpec {
                links: coll.path(i).links(),
                start: 0,
                wavelength: 0,
                priority: i as u64,
                length: 4,
            })
            .collect();
        let mut engine = Engine::new(coll.link_count(), RouterConfig::serve_first(2));
        let ns = bench(samples, warmup, || {
            let mut rng = ChaCha8Rng::seed_from_u64(19);
            black_box(engine.run(&dense_specs, &mut rng).makespan);
        });
        out.insert("engine/resolve_dense".into(), ns);

        let sparse_specs: Vec<TransmissionSpec<'_>> = (0..coll.len())
            .map(|i| TransmissionSpec {
                links: coll.path(i).links(),
                start: 4 * i as u32,
                wavelength: (i % 2) as u16,
                priority: i as u64,
                length: 4,
            })
            .collect();
        let mut engine = Engine::new(coll.link_count(), RouterConfig::serve_first(2));
        let ns = bench(samples, warmup, || {
            let mut rng = ChaCha8Rng::seed_from_u64(23);
            black_box(engine.run(&sparse_specs, &mut rng).makespan);
        });
        out.insert("engine/resolve_sparse".into(), ns);
    }

    // Intra-trial sharded rounds: the dense workload again, but with the
    // round's link range partitioned across rayon workers
    // (`Engine::set_shards`). Results are bit-identical to the serial
    // path at any shard count (the golden determinism matrix pins this);
    // these keys track the merge-pass overhead at 1 thread and the
    // scaling headroom on multi-core hosts.
    {
        let dense_specs: Vec<TransmissionSpec<'_>> = (0..coll.len())
            .map(|i| TransmissionSpec {
                links: coll.path(i).links(),
                start: 0,
                wavelength: 0,
                priority: i as u64,
                length: 4,
            })
            .collect();
        for shards in [2usize, 8] {
            let mut engine = Engine::new(coll.link_count(), RouterConfig::serve_first(2));
            engine.set_shards(shards);
            let ns = bench(samples, warmup, || {
                let mut rng = ChaCha8Rng::seed_from_u64(19);
                black_box(engine.run(&dense_specs, &mut rng).makespan);
            });
            out.insert(format!("engine/round_sharded_{shards}"), ns);
        }
    }

    // The million-node round: torus(2, 1024), one dense 8-hop worm per
    // node (2^20 worms over ~4.2M directed links) — the scale the sharded
    // path exists for. Shard count comes from `PERF_GATE_SHARDS`
    // (default 8). Few samples: one round is orders of magnitude larger
    // than every other key, and the median of a handful is stable at this
    // size.
    {
        let shards: usize = std::env::var("PERF_GATE_SHARDS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(8);
        let w = optical_bench::million::TorusWalkWorkload::new(1024, 8);
        let specs = w.dense_specs(2, 4);
        let mut engine = Engine::new(w.net.link_count(), RouterConfig::serve_first(2));
        engine.set_shards(shards);
        engine.reserve_worms(specs.len());
        let (m_samples, m_warmup) = if quick { (3, 1) } else { (5, 1) };
        let ns = bench(m_samples, m_warmup, || {
            let mut rng = ChaCha8Rng::seed_from_u64(19);
            black_box(engine.run(&specs, &mut rng).makespan);
        });
        out.insert("engine/round_1m".into(), ns);
    }

    // Event-driven steady-state serving vs the round-stepped reference.
    // `steady_1m_sparse` is the headline pair: 2^20 sources at a 0.1%
    // duty cycle. The calendar-queue engine only touches sources whose
    // arrival event fires (~1k spawns/round), while the stepped twin
    // (`steady_1m_sparse_stepped`) pays 2^20 Bernoulli coins every round
    // regardless of load — the committed ratio between the two keys is
    // the speedup receipt for the event-driven core. `steady_dense` runs
    // the event path at full load on a small torus, where it does
    // strictly *more* bookkeeping than a stepped loop: that key guards
    // the dense-end overhead from drifting. Both workloads reuse the
    // BFS-free CSR coordinate walks (see `million.rs`) so setup stays
    // linear and the timed region is the serving loop itself.
    {
        use optical_core::continuous::{SteadyParams, SteadyRun};
        use optical_core::{ContinuousParams, ContinuousRun, DelaySchedule};
        use optical_paths::Path;
        use optical_topo::GridCoords;
        use rand::RngCore;

        let (m_samples, m_warmup) = if quick { (3, 1) } else { (5, 1) };
        // Long enough that the event path's one-time O(sources) arrival
        // bootstrap (one geometric draw per source) is amortized the way
        // a serving run amortizes it; the stepped loop pays its 2^20
        // per-round coins for every one of these rounds.
        let rounds = 512u32;
        // 2-hop walks keep the shared contention-kernel work (which both
        // paths pay identically) from drowning out the scheduling-machinery
        // difference the pair exists to measure.
        let w = optical_bench::million::TorusWalkWorkload::new(1024, 2);
        let n = w.net.node_count() as u32;
        let mut ws = ProtocolWorkspace::new();

        let ns = bench(m_samples, m_warmup, || {
            let mut run = SteadyRun::new(
                &w.net,
                |src: u32, _rng: &mut dyn RngCore, out: &mut Vec<_>| {
                    out.extend_from_slice(w.links_of(src as usize));
                },
                SteadyParams::bernoulli(
                    RouterConfig::serve_first(2),
                    4,
                    DelaySchedule::Fixed { delta: 64 },
                    0.001,
                    rounds,
                    rounds / 4,
                ),
            );
            let mut rng = ChaCha8Rng::seed_from_u64(41);
            black_box(run.run_with(&mut ws, &mut rng).completed);
        });
        out.insert("continuous/steady_1m_sparse".into(), ns);

        // The stepped twin samples the same `+x` walk for whichever
        // source its coin admits, so both paths serve identical traffic
        // shapes; only the scheduling machinery differs.
        let coords = GridCoords::new(2, 1024);
        let ns = bench(m_samples, m_warmup, || {
            let mut run = ContinuousRun::new(
                &w.net,
                |rng: &mut dyn RngCore| {
                    let mut u = rng.gen_range(0..n);
                    let mut nodes = [0u32; 3];
                    nodes[0] = u;
                    for slot in nodes.iter_mut().skip(1) {
                        u = coords.torus_step(u, 0, 1);
                        *slot = u;
                    }
                    Path::from_nodes(&w.net, &nodes)
                },
                ContinuousParams {
                    router: RouterConfig::serve_first(2),
                    worm_len: 4,
                    schedule: DelaySchedule::Fixed { delta: 64 },
                    arrival_prob: 0.001,
                    rounds,
                    warmup: rounds / 4,
                },
            );
            let mut rng = ChaCha8Rng::seed_from_u64(41);
            black_box(run.run_with(&mut ws, &mut rng).completed);
        });
        out.insert("continuous/steady_1m_sparse_stepped".into(), ns);

        let wd = optical_bench::million::TorusWalkWorkload::new(32, 4);
        let ns = bench(m_samples, m_warmup, || {
            let mut run = SteadyRun::new(
                &wd.net,
                |src: u32, _rng: &mut dyn RngCore, out: &mut Vec<_>| {
                    out.extend_from_slice(wd.links_of(src as usize));
                },
                SteadyParams::bernoulli(
                    RouterConfig::serve_first(2),
                    4,
                    DelaySchedule::Fixed { delta: 16 },
                    1.0,
                    24,
                    6,
                ),
            );
            let mut rng = ChaCha8Rng::seed_from_u64(43);
            black_box(run.run_with(&mut ws, &mut rng).completed);
        });
        out.insert("continuous/steady_dense".into(), ns);
    }

    // Persistence at the million-source scale. A 2^20-source steady run
    // cuts one checkpoint mid-run (the calendar carries one pending
    // arrival per source, so the captured progress is genuinely
    // million-element). `snapshot_1m` times wrapping that checkpoint in
    // its versioned envelope — the state clone plus header — i.e. the
    // marginal cost `run_checkpointed` pays at a boundary; it must stay
    // well under a round of serving (`continuous/steady_1m_sparse` / 512)
    // or cadenced checkpointing would distort the runs it observes.
    // `restore_1m` times `SteadyCheckpoint::restore` on that envelope:
    // format/kind/fingerprint checks plus the full O(state) structural
    // validation a resume performs before adopting foreign bytes (the
    // timed region includes one envelope clone, the same O(state) cost).
    {
        use optical_core::continuous::{SteadyCheckpoint, SteadyParams, SteadyRun};
        use optical_core::{DelaySchedule, Snapshot};
        use rand::RngCore;

        let w = optical_bench::million::TorusWalkWorkload::new(1024, 2);
        let rounds = 64u32;
        let mut run = SteadyRun::new(
            &w.net,
            |src: u32, _rng: &mut dyn RngCore, out: &mut Vec<_>| {
                out.extend_from_slice(w.links_of(src as usize));
            },
            SteadyParams::bernoulli(
                RouterConfig::serve_first(2),
                4,
                DelaySchedule::Fixed { delta: 64 },
                0.001,
                rounds,
                rounds / 4,
            )
            .checkpoint_every(rounds / 2),
        );
        let mut ws = ProtocolWorkspace::new();
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        let mut cp: Option<SteadyCheckpoint> = None;
        run.run_checkpointed(&mut ws, &mut rng, &mut NullSink, |c| cp = Some(c.clone()));
        let cp = cp.expect("cadence 32 over 64 rounds cuts a checkpoint");

        let (m_samples, m_warmup) = if quick { (3, 1) } else { (5, 1) };
        let ns = bench(m_samples, m_warmup, || {
            black_box(cp.snapshot().header.fingerprint);
        });
        out.insert("persist/snapshot_1m".into(), ns);

        let envelope = cp.snapshot();
        let ns = bench(m_samples, m_warmup, || {
            let restored = SteadyCheckpoint::restore(envelope.clone()).expect("pristine envelope");
            black_box(restored.round());
        });
        out.insert("persist/restore_1m".into(), ns);
    }

    // Online RWA. `greedy_offline` colors an overlap-heavy stacked
    // workload (eight independent torus permutations over the same 4096
    // links — enough conflicts that the packed color masks run
    // multi-word). The churn pair is the incremental engine's speedup
    // receipt: `online_churn_1m` drives `OnlineRwa` (per-link packed
    // occupancy words, O(path × B/64) per event) and
    // `online_churn_recompute` drives the `RecomputeRwa` reference
    // (rebuilds the per-link wavelength sets from every live connection
    // on each admission) through the identical ~80k-connection churn
    // script on a million-link torus — same seed, same decision stream,
    // pinned by the differential suite; the ratio between the two keys
    // is the committed evidence for the incremental data structures.
    {
        use optical_baselines::rwa::churn::{run_churn, ChurnParams, HoldTime};
        use optical_baselines::rwa::online::{OnlineRwa, RecomputeRwa};
        use optical_baselines::rwa::{greedy_rwa, ColorOrder};
        use optical_core::continuous::TrafficMix;
        use rand::RngCore;

        let net = topologies::torus(2, 32);
        let n = net.node_count() as u32;
        let mut coll = PathCollection::for_network(&net);
        let mut rng = ChaCha8Rng::seed_from_u64(47);
        for _ in 0..8 {
            let mut dests: Vec<u32> = (0..n).collect();
            dests.shuffle(&mut rng);
            for (s, &d) in dests.iter().enumerate() {
                coll.push(bfs_route(&net, s as u32, d));
            }
        }
        let ns = bench(samples, warmup, || {
            black_box(greedy_rwa(&coll, ColorOrder::LongestFirst).num_colors);
        });
        out.insert("rwa/greedy_offline".into(), ns);

        // 2^18 sources over ~1M directed links, 2-hop `+x` walks, B=8:
        // ~840 spawns/round at a 0.32% duty cycle, fixed 8-round holds —
        // ~80k admit/release events per full-mode sample with ~6.7k
        // connections live at a time.
        let w = optical_bench::million::TorusWalkWorkload::new(512, 2);
        let nsrc = w.net.node_count() as u32;
        let rounds: u32 = if quick { 32 } else { 96 };
        let params = ChurnParams {
            rounds,
            mix: TrafficMix::bernoulli(0.0032),
            hold: HoldTime::Fixed(8),
            capture_peak: false,
            checkpoint_every: 0,
        };
        let (m_samples, m_warmup) = if quick { (3, 1) } else { (5, 1) };
        let ns = bench(m_samples, m_warmup, || {
            let mut engine = OnlineRwa::new(w.net.link_count(), 8, 0);
            let mut rng = ChaCha8Rng::seed_from_u64(53);
            let rep = run_churn(
                &mut engine,
                nsrc,
                |src: u32, _rng: &mut dyn RngCore, links: &mut Vec<_>| {
                    links.extend_from_slice(w.links_of(src as usize));
                },
                &params,
                &mut rng,
                &mut NullSink,
            );
            black_box(rep.spawned);
        });
        out.insert("rwa/online_churn_1m".into(), ns);

        let ns = bench(m_samples, m_warmup, || {
            let mut engine = RecomputeRwa::new(w.net.link_count(), 8);
            let mut rng = ChaCha8Rng::seed_from_u64(53);
            let rep = run_churn(
                &mut engine,
                nsrc,
                |src: u32, _rng: &mut dyn RngCore, links: &mut Vec<_>| {
                    links.extend_from_slice(w.links_of(src as usize));
                },
                &params,
                &mut rng,
                &mut NullSink,
            );
            black_box(rep.spawned);
        });
        out.insert("rwa/online_churn_recompute".into(), ns);
    }

    // Full protocol runs, with and without per-round congestion recording.
    for (name, record) in [
        ("protocol/run_cong_on", true),
        ("protocol/run_cong_off", false),
    ] {
        let proto = TrialAndFailure::new(&net, &coll, protocol_params(record));
        let mut ws = ProtocolWorkspace::new();
        let ns = bench(samples, warmup, || {
            let mut rng = ChaCha8Rng::seed_from_u64(13);
            black_box(proto.run_with(&mut ws, &mut rng).total_time);
        });
        out.insert(name.into(), ns);
    }

    // The same full run through the generic traced path with the
    // observability disabled (`NullSink`): guards the zero-overhead
    // contract of the sink plumbing — this must track run_cong_off.
    {
        let sim = SimBuilder::new(&net, &coll)
            .params(protocol_params(false))
            .build();
        let mut ws = ProtocolWorkspace::new();
        let ns = bench(samples, warmup, || {
            let mut rng = ChaCha8Rng::seed_from_u64(13);
            black_box(
                sim.run_traced(&mut ws, &mut rng, &mut NullSink)
                    .total_time(),
            );
        });
        out.insert("protocol/run_obs_off".into(), ns);
    }

    // The recovery loop under chaos: the same 1024-worm torus
    // permutation with MTBF/MTTR churn through the full v2 stack —
    // jittered skip-rounds backoff, circuit breakers, dead-letter
    // queue. Guards the failure-handling hot path (per-round breaker
    // ticks, merged avoid masks, hold bookkeeping) the same way
    // run_cong_off guards the clean path.
    {
        use optical_bench::experiments::e13_failures::chaos_strategies;
        use optical_core::FaultSource;
        use optical_wdm::ChurnModel;
        let policies = chaos_strategies();
        let (_, policy) = policies
            .iter()
            .find(|(name, _)| name.contains("full-jitter"))
            .expect("the chaos grid has a full-jitter row");
        let mut params = protocol_params(false);
        params.max_rounds = 100;
        let sim = SimBuilder::new(&net, &coll)
            .params(params)
            .recovery(*policy)
            .faults(FaultSource::Churn(ChurnModel {
                mtbf: 400.0,
                mttr: 60.0,
                seed: 29,
            }))
            .build();
        let mut ws = ProtocolWorkspace::new();
        let ns = bench(samples, warmup, || {
            let mut rng = ChaCha8Rng::seed_from_u64(31);
            black_box(sim.run_with(&mut ws, &mut rng).total_time());
        });
        out.insert("recovery/chaos_1024".into(), ns);
    }

    // Collection metrics (dilation, congestion, path congestion).
    {
        let ns = bench(samples, warmup, || {
            black_box(coll.metrics().path_congestion);
        });
        out.insert("metrics/collection_1024".into(), ns);
    }

    // Structural-property kernels. Short-cut freeness and link-offset
    // consistency run on the same 1024-worm torus permutation as the
    // metrics; the leveling kernel needs a leveled system, so it runs on
    // the 8-dim butterfly's input→output path system (256 rows, the E1/E8
    // shape).
    {
        let ns = bench(samples, warmup, || {
            black_box(properties::is_shortcut_free(&coll));
        });
        out.insert("properties/shortcut_free_1024".into(), ns);
        let ns = bench(samples, warmup, || {
            black_box(properties::consistent_link_offsets(&coll));
        });
        out.insert("properties/link_offsets_1024".into(), ns);
    }
    {
        let net = topologies::butterfly(8);
        let coords = ButterflyCoords::new(8, false);
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let f = random_function(coords.rows() as usize, &mut rng);
        let bcoll = butterfly_qfunction_collection(&net, &coords, &f);
        let ns = bench(samples, warmup, || {
            black_box(properties::leveling(&bcoll).is_some());
        });
        out.insert("properties/leveling_butterfly8".into(), ns);
    }

    // The whole experiment-regeneration pipeline, quick sweep: E1–E17
    // end to end, exactly what `all_experiments --quick` prints. Few
    // samples — one call is tens of milliseconds, and the pipeline's
    // internal trial fan-out already averages away per-run noise.
    {
        let cfg = ExpConfig::quick();
        let (p_samples, p_warmup) = if quick { (3, 1) } else { (9, 2) };
        let ns = bench(p_samples, p_warmup, || {
            black_box(optical_bench::experiments::run_all(&cfg).len());
        });
        out.insert("pipeline/run_all_quick".into(), ns);
    }

    out
}

fn write_json(path: &str, results: &BTreeMap<String, f64>) {
    let mut s = String::from("{\n");
    for (i, (k, v)) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        s.push_str(&format!("  \"{k}\": {v:.0}{comma}\n"));
    }
    s.push_str("}\n");
    std::fs::write(path, s).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
}

/// Parse the flat `{"name": number, ...}` maps this binary writes.
fn read_json(path: &str) -> BTreeMap<String, f64> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let mut out = BTreeMap::new();
    for part in text
        .trim()
        .trim_start_matches('{')
        .trim_end_matches('}')
        .split(',')
    {
        let Some((key, value)) = part.split_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"').to_string();
        if let Ok(v) = value.trim().parse::<f64>() {
            out.insert(key, v);
        }
    }
    out
}

fn compare(base_path: &str, cur_path: &str, tolerance: f64) -> Vec<String> {
    let base = read_json(base_path);
    let cur = read_json(cur_path);
    let mut regressed: Vec<String> = Vec::new();
    println!(
        "{:<28} {:>12} {:>12} {:>9}",
        "bench", "base ns", "cur ns", "speedup"
    );
    // Geometric mean over the shared keys: the one-number summary of the
    // change (>1 is an overall speedup).
    let mut log_sum = 0.0;
    let mut shared = 0usize;
    for (name, &b) in &base {
        match cur.get(name) {
            Some(&c) => {
                let speedup = b / c.max(1.0);
                log_sum += speedup.ln();
                shared += 1;
                let flag = if c > b * tolerance {
                    regressed.push(name.clone());
                    "  REGRESSION"
                } else {
                    ""
                };
                println!("{name:<28} {b:>12.0} {c:>12.0} {speedup:>8.2}x{flag}");
            }
            None => {
                regressed.push(name.clone());
                println!("{name:<28} {b:>12.0} {:>12} (missing — REGRESSION)", "-");
            }
        }
    }
    for name in cur.keys().filter(|k| !base.contains_key(*k)) {
        println!("{name:<28} (new bench, no baseline)");
    }
    if shared > 0 {
        let geomean = (log_sum / shared as f64).exp();
        println!("{:<28} {:>34}", "geometric mean", format!("{geomean:.3}x"));
    }
    regressed
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut cmp: Option<(String, String)> = None;
    let mut parse: Vec<String> = Vec::new();
    let mut tolerance = 1.25;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--out" => {
                i += 1;
                out = Some(args[i].clone());
            }
            "--compare" => {
                cmp = Some((args[i + 1].clone(), args[i + 2].clone()));
                i += 2;
            }
            "--parse" => {
                i += 1;
                parse.push(args[i].clone());
            }
            "--tolerance" => {
                i += 1;
                tolerance = args[i].parse().expect("--tolerance needs a number");
            }
            other => panic!(
                "unknown argument {other} (try --quick, --out FILE, --compare BASE CUR, --parse FILE, --tolerance F)"
            ),
        }
        i += 1;
    }

    if !parse.is_empty() {
        // CI sanity hook: assert each committed result file parses to a
        // non-empty map of finite timings (tier1.sh runs this on both
        // BENCH_*.json files so a malformed commit fails fast).
        let mut maps: Vec<(String, BTreeMap<String, f64>)> = Vec::new();
        for path in &parse {
            let map = read_json(path);
            assert!(!map.is_empty(), "{path}: no benchmark entries parsed");
            for (k, v) in &map {
                assert!(
                    v.is_finite() && *v > 0.0,
                    "{path}: entry {k} has non-positive timing {v}"
                );
            }
            println!("{path}: {} entries OK", map.len());
            maps.push((path.clone(), map));
        }
        // Cross-file key coverage: a key present in one committed file
        // but absent from another means the gate never compares it (the
        // regression check silently skips unshared keys), so flag the
        // drift here and fail.
        let mut missing: Vec<String> = Vec::new();
        for (pi, mi) in &maps {
            for (pj, mj) in &maps {
                if pi == pj {
                    continue;
                }
                for k in mi.keys().filter(|k| !mj.contains_key(*k)) {
                    missing.push(format!("{k}: in {pi}, missing from {pj}"));
                }
            }
        }
        if !missing.is_empty() {
            println!("perf_gate --parse: bench key coverage drift:");
            for m in &missing {
                println!("  {m}");
            }
            std::process::exit(1);
        }
        return;
    }

    if let Some((base, cur)) = cmp {
        let regressed = compare(&base, &cur, tolerance);
        if regressed.is_empty() {
            println!("perf gate: OK (tolerance {tolerance}x)");
        } else {
            println!(
                "perf gate: FAILED (tolerance {tolerance}x) — regressed: {}",
                regressed.join(", ")
            );
            std::process::exit(1);
        }
        return;
    }

    let results = run_benches(quick);
    println!("{:<28} {:>12}", "bench", "median ns");
    for (name, ns) in &results {
        println!("{name:<28} {ns:>12.0}");
    }
    if let Some(path) = out {
        write_json(&path, &results);
        println!("wrote {path}");
    }
}
