//! Table binary for experiment `e16_steady` — see `EXPERIMENTS.md`.
//! Flags: `--quick`, `--seed N`, `--trials N`.

fn main() {
    let cfg = optical_bench::ExpConfig::from_args();
    print!("{}", optical_bench::experiments::e16_steady::run(&cfg));
}
