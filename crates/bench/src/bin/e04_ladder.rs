//! Table binary for experiment `e04_ladder` — see `EXPERIMENTS.md`.
//! Flags: `--quick`, `--seed N`, `--trials N`.

fn main() {
    let cfg = optical_bench::ExpConfig::from_args();
    print!("{}", optical_bench::experiments::e04_ladder::run(&cfg));
}
