//! Table binary for experiment `e02_shortcut_free` — see `EXPERIMENTS.md`.
//! Flags: `--quick`, `--seed N`, `--trials N`.

fn main() {
    let cfg = optical_bench::ExpConfig::from_args();
    print!(
        "{}",
        optical_bench::experiments::e02_shortcut_free::run(&cfg)
    );
}
