//! Regenerate every experiment table (E1–E16) in one parallel run.
//! Flags: `--quick`, `--seed N`, `--trials N`, `--timings`, `--obs`.
//!
//! The report goes to stdout and is byte-identical at any thread count;
//! `--timings` prints per-experiment wall-clock to stderr so it can be
//! inspected without disturbing the report. `--obs` appends the
//! instrumented observability section (counter totals + aggregated event
//! trace) and writes the raw trace to `obs_trace.jsonl` for
//! `trace_report`.

fn main() {
    let cfg = optical_bench::ExpConfig::from_args();
    let (report, timings) = optical_bench::experiments::run_all_timed(&cfg);
    print!("{report}");
    if cfg.timings {
        eprintln!("per-experiment wall-clock (overlapping under the parallel pool):");
        for (id, elapsed) in &timings {
            eprintln!("  {id:>4}  {:>9.3} ms", elapsed.as_secs_f64() * 1e3);
        }
    }
    if cfg.obs {
        let obs = optical_bench::obs_run::run(&cfg);
        print!("\n{}", obs.summary);
        let path = "obs_trace.jsonl";
        match std::fs::write(path, &obs.trace_jsonl) {
            Ok(()) => println!("event trace written to {path} (try: trace_report {path})"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}
