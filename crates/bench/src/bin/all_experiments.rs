//! Regenerate every experiment table (E1-E10) in one run.
//! Flags: `--quick`, `--seed N`, `--trials N`.

fn main() {
    let cfg = optical_bench::ExpConfig::from_args();
    print!("{}", optical_bench::experiments::run_all(&cfg));
}
