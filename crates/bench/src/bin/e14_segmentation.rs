//! Table binary for experiment `e14_segmentation` — see `EXPERIMENTS.md`.
//! Flags: `--quick`, `--seed N`, `--trials N`.

fn main() {
    let cfg = optical_bench::ExpConfig::from_args();
    print!(
        "{}",
        optical_bench::experiments::e14_segmentation::run(&cfg)
    );
}
