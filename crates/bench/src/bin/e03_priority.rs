//! Table binary for experiment `e03_priority` — see `EXPERIMENTS.md`.
//! Flags: `--quick`, `--seed N`, `--trials N`.

fn main() {
    let cfg = optical_bench::ExpConfig::from_args();
    print!("{}", optical_bench::experiments::e03_priority::run(&cfg));
}
