//! Online RWA smoke: a seeded churn run driven through both engine
//! implementations side by side — the incremental packed-mask engine
//! (`OnlineRwa`) and the recompute-per-event reference (`RecomputeRwa`)
//! — asserting the differential contract end to end: identical driver
//! and engine reports, engine invariants (no double-booked wavelength,
//! occupancy in sync, work-conserving queue), observability counters in
//! lockstep, and a recolor drill that compacts to a fixpoint without
//! widening the spectrum.
//!
//! Tier-1 runs this after the continuous smoke: it is the end-to-end
//! guard for the online RWA stack the same way `continuous_smoke`
//! guards the calendar-queue serving loop.
//!
//! Flags: `--quick`, `--seed N`, `--trials N`.

use optical_baselines::rwa::churn::{run_churn, ChurnParams, HoldTime};
use optical_baselines::rwa::online::{OnlineRwa, RecomputeRwa, RwaEngine};
use optical_bench::ExpConfig;
use optical_core::continuous::TrafficMix;
use optical_obs::{CountersSink, NullSink};
use optical_paths::select::bfs::bfs_route_with;
use optical_topo::algo::PathFinder;
use optical_topo::{topologies, LinkId, Network};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Random-endpoint BFS route on `net`; one fresh `finder` per engine
/// run, but the same RNG stream, so both engines see identical routes.
fn route<'a>(
    net: &'a Network,
    finder: &'a mut PathFinder,
) -> impl FnMut(u32, &mut dyn rand::RngCore, &mut Vec<LinkId>) + 'a {
    let n = net.node_count() as u32;
    move |_src, rng, links| {
        let s = rng.gen_range(0..n);
        let d = rng.gen_range(0..n);
        links.extend_from_slice(bfs_route_with(finder, net, s, d).links());
    }
}

fn main() {
    let cfg = ExpConfig::from_args();
    let rounds: u32 = if cfg.quick { 120 } else { 400 };
    let net = topologies::torus(2, 5);
    let n = net.node_count() as u32;
    let bandwidth = 2u16;
    let params = ChurnParams {
        rounds,
        mix: TrafficMix::bernoulli(0.35),
        hold: HoldTime::Geometric { mean: 5.0 },
        capture_peak: true,
        checkpoint_every: 0,
    };
    // Incremental engine, counters attached, periodic recolor on.
    let counters = CountersSink::new(bandwidth);
    let mut online = OnlineRwa::new(net.link_count(), bandwidth, 16);
    let mut finder = PathFinder::new();
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let churn_online = run_churn(
        &mut online,
        n,
        route(&net, &mut finder),
        &params,
        &mut rng,
        &mut &counters,
    );
    online.validate().expect("online engine invariants");

    // Recompute reference on the same seed, recolor off for both decision
    // streams to be comparable — so rerun the online engine recolor-free
    // for the differential check.
    let mut online_nr = OnlineRwa::new(net.link_count(), bandwidth, 0);
    let mut finder2 = PathFinder::new();
    let mut rng2 = ChaCha8Rng::seed_from_u64(cfg.seed);
    let a = run_churn(
        &mut online_nr,
        n,
        route(&net, &mut finder2),
        &params,
        &mut rng2,
        &mut NullSink,
    );
    let mut naive = RecomputeRwa::new(net.link_count(), bandwidth);
    let mut finder3 = PathFinder::new();
    let mut rng3 = ChaCha8Rng::seed_from_u64(cfg.seed);
    let b = run_churn(
        &mut naive,
        n,
        route(&net, &mut finder3),
        &params,
        &mut rng3,
        &mut NullSink,
    );
    assert_eq!(a, b, "driver reports diverge between engines");
    assert_eq!(
        online_nr.report(),
        naive.report(),
        "engine reports diverge between engines"
    );
    online_nr
        .validate()
        .expect("recolor-free engine invariants");

    // The run exercised the queue, and the counting identities hold.
    let r = online.report().clone();
    assert!(churn_online.spawned > 0, "the mix must admit traffic");
    assert!(r.blocked > 0, "load must exceed the spectrum at some point");
    assert!(r.admitted_from_queue > 0, "the FIFO queue must drain");
    assert_eq!(r.admitted_immediate + r.blocked, churn_online.spawned);
    assert_eq!(r.admitted, r.admitted_immediate + r.admitted_from_queue);
    assert!(r.recolors > 0, "periodic recolor must fire");

    // Counters in lockstep with the engine report.
    let t = counters.totals();
    assert_eq!(t.rwa_admits, r.admitted, "sink admits");
    assert_eq!(
        t.rwa_queue_admits, r.admitted_from_queue,
        "sink queue admits"
    );
    assert_eq!(t.rwa_blocked, r.blocked, "sink blocks");
    assert_eq!(t.rwa_released, r.released, "sink releases");
    assert_eq!(t.rwa_recolors, r.recolors, "sink recolors");
    assert_eq!(t.rwa_recolor_moves, r.recolor_moves, "sink recolor moves");
    assert_eq!(t.rwa_wait, r.wait, "sink wait sketch");

    // Recolor drill: compact to a fixpoint; validity holds at every pass
    // and the spectrum never widens.
    let mut drained = Vec::new();
    let mut passes = 0u32;
    while online.recolor(rounds, &mut NullSink, &mut drained) > 0 {
        online.validate().expect("invariants across recolor passes");
        passes += 1;
        assert!(passes <= 64, "recolor must reach a fixpoint");
    }

    println!(
        "rwa[online]: {} spawned, {} immediate, {} queued ({} drained, wait p99 {}), \
         {} released, peak {} active / {} wavelengths, {} recolors moved {}",
        churn_online.spawned,
        r.admitted_immediate,
        r.blocked,
        r.admitted_from_queue,
        r.wait.quantile(0.99),
        r.released,
        r.peak_active,
        r.peak_wavelengths,
        r.recolors,
        r.recolor_moves,
    );
    println!("rwa smoke: ok");
}
