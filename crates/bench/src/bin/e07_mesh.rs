//! Table binary for experiment `e07_mesh` — see `EXPERIMENTS.md`.
//! Flags: `--quick`, `--seed N`, `--trials N`.

fn main() {
    let cfg = optical_bench::ExpConfig::from_args();
    print!("{}", optical_bench::experiments::e07_mesh::run(&cfg));
}
