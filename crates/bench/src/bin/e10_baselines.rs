//! Table binary for experiment `e10_baselines` — see `EXPERIMENTS.md`.
//! Flags: `--quick`, `--seed N`, `--trials N`.

fn main() {
    let cfg = optical_bench::ExpConfig::from_args();
    print!("{}", optical_bench::experiments::e10_baselines::run(&cfg));
}
