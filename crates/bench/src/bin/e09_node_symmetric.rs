//! Table binary for experiment `e09_node_symmetric` — see `EXPERIMENTS.md`.
//! Flags: `--quick`, `--seed N`, `--trials N`.

fn main() {
    let cfg = optical_bench::ExpConfig::from_args();
    print!(
        "{}",
        optical_bench::experiments::e09_node_symmetric::run(&cfg)
    );
}
