//! Table binary for experiment `e13_failures` — see `EXPERIMENTS.md`.
//! Flags: `--quick`, `--seed N`, `--trials N`.

fn main() {
    let cfg = optical_bench::ExpConfig::from_args();
    print!("{}", optical_bench::experiments::e13_failures::run(&cfg));
}
