//! Run the instrumented observability demos and dump the event trace.
//!
//! ```text
//! obs_trace [--quick] [--seed N] [--trials N] [--out FILE]
//! ```
//!
//! Prints the obs section (counter totals + aggregated trace tables) to
//! stdout and writes the raw JSONL event trace to `--out` (default
//! `obs_trace.jsonl`; `-` dumps the JSONL to stdout instead of the
//! summary). The trace feeds `trace_report`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut cfg = optical_bench::ExpConfig::full();
    let mut out = String::from("obs_trace.jsonl");
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => cfg.quick = true,
            "--seed" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(s) => cfg.seed = s,
                    None => return usage("--seed needs an integer"),
                }
            }
            "--trials" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(t) => cfg.trials = t,
                    None => return usage("--trials needs an integer"),
                }
            }
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(f) => out = f.clone(),
                    None => return usage("--out needs a file name"),
                }
            }
            other => return usage(&format!("unknown argument {other}")),
        }
        i += 1;
    }

    let obs = optical_bench::obs_run::run(&cfg);
    if out == "-" {
        print!("{}", obs.trace_jsonl);
        return ExitCode::SUCCESS;
    }
    print!("{}", obs.summary);
    match std::fs::write(&out, &obs.trace_jsonl) {
        Ok(()) => {
            println!("event trace written to {out} (try: trace_report {out})");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("could not write {out}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("obs_trace: {err}");
    eprintln!("usage: obs_trace [--quick] [--seed N] [--trials N] [--out FILE|-]");
    ExitCode::FAILURE
}
