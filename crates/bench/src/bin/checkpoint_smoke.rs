//! Checkpoint/resume smoke: the persistence layer's headline guarantee
//! exercised end to end on both long-running engines.
//!
//! A seeded steady-state run and a seeded online-RWA churn run each cut
//! checkpoints at a fixed cadence; every checkpoint is then resumed in
//! fresh state (new run value, new workspace, new engine — only the
//! checkpoint carries over) and the binary asserts the continuation is
//! bit-identical to the uninterrupted run: equal reports, equal latency
//! sketches, and — via re-cut checkpoints — an equal RNG stream. It also
//! asserts that a checkpoint refuses to resume under a mismatched
//! configuration with a typed error.
//!
//! Tier-1 runs this after the rwa smoke; it is the end-to-end guard for
//! `optical_core::persist` the way `continuous_smoke` guards the serving
//! loop. Flags: `--quick`, `--seed N`, `--trials N`.

use optical_baselines::rwa::churn::{Churn, ChurnCheckpoint, HoldTime};
use optical_baselines::rwa::online::{OnlineRwa, RwaEngine};
use optical_bench::ExpConfig;
use optical_core::continuous::{SteadyParams, SteadyRun, TrafficMix};
use optical_core::{DelaySchedule, ProtocolWorkspace, RestoreError};
use optical_obs::NullSink;
use optical_paths::select::bfs::bfs_route_with;
use optical_topo::algo::PathFinder;
use optical_topo::{topologies, LinkId, Network};
use optical_wdm::RouterConfig;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn sampler<'a>(
    net: &'a Network,
    finder: &'a mut PathFinder,
) -> impl FnMut(u32, &mut dyn rand::RngCore, &mut Vec<LinkId>) + 'a {
    let n = net.node_count() as u32;
    move |_src, rng, links| {
        let s = rng.gen_range(0..n);
        let d = rng.gen_range(0..n);
        links.extend_from_slice(bfs_route_with(finder, net, s, d).links());
    }
}

fn steady_params(rounds: u32, every: u32) -> SteadyParams {
    SteadyParams::bernoulli(
        RouterConfig::serve_first(2),
        4,
        DelaySchedule::Fixed { delta: 24 },
        0.35,
        rounds,
        rounds / 5,
    )
    .checkpoint_every(every)
}

fn main() {
    let cfg = ExpConfig::from_args();
    let rounds: u32 = if cfg.quick { 150 } else { 600 };
    let every: u32 = rounds / 4;

    // -- Steady-state serving loop ---------------------------------------
    let net = topologies::torus(2, 4);
    let mut finder = PathFinder::new();
    let mut run = SteadyRun::new(
        &net,
        sampler(&net, &mut finder),
        steady_params(rounds, every),
    );
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut cps = Vec::new();
    let golden = run.run_checkpointed(
        &mut ProtocolWorkspace::new(),
        &mut rng,
        &mut NullSink,
        |cp| cps.push(cp.clone()),
    );
    drop(run);
    assert!(
        cps.len() >= 2,
        "cadence {every} over {rounds} rounds must cut checkpoints"
    );
    assert!(golden.spawned > 0, "the mix must admit traffic");

    for cp in &cps {
        let mut finder = PathFinder::new();
        let mut fresh = SteadyRun::new(
            &net,
            sampler(&net, &mut finder),
            steady_params(rounds, every),
        );
        let report = fresh.resume_from(cp.clone()).expect("same config resumes");
        assert_eq!(
            report,
            golden,
            "steady resume from round {} diverged",
            cp.round()
        );
    }

    // RNG-stream witness: the continuation of the first checkpoint re-cuts
    // every later checkpoint identically (equality covers the RNG position).
    let mut finder2 = PathFinder::new();
    let mut cont = SteadyRun::new(
        &net,
        sampler(&net, &mut finder2),
        steady_params(rounds, every),
    );
    let mut recut = Vec::new();
    cont.resume_checkpointed(
        &mut ProtocolWorkspace::new(),
        cps[0].clone(),
        &mut NullSink,
        |cp| recut.push(cp.clone()),
    )
    .expect("same config resumes");
    for later in &cps[1..] {
        let twin = recut
            .iter()
            .find(|cp| cp.round() == later.round())
            .expect("continuation reaches every later boundary");
        assert_eq!(
            twin,
            later,
            "re-cut checkpoint at round {} differs",
            later.round()
        );
    }

    // Mismatched config: typed rejection, not divergence.
    let other = topologies::mesh(2, 4);
    let mut finder3 = PathFinder::new();
    let mut wrong = SteadyRun::new(
        &other,
        sampler(&other, &mut finder3),
        steady_params(rounds, every),
    );
    assert!(
        matches!(
            wrong.resume_from(cps[0].clone()),
            Err(RestoreError::Fingerprint { .. })
        ),
        "wrong topology must be a typed fingerprint error"
    );

    // -- Online-RWA churn -------------------------------------------------
    let links = 24u32;
    let churn = Churn::builder(links)
        .rounds(rounds)
        .mix(TrafficMix::bernoulli(0.45))
        .hold(HoldTime::Geometric { mean: 6.0 })
        .capture_peak(true)
        .checkpoint_every(every)
        .try_build()
        .expect("valid scenario");
    let ring = move |src: u32, _rng: &mut dyn rand::RngCore, out: &mut Vec<LinkId>| {
        out.clear();
        out.push(src % links);
        out.push((src + 1) % links);
    };
    let mut eng = OnlineRwa::new(links as usize, 2, 8);
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0xC0FFEE);
    let mut ccps: Vec<ChurnCheckpoint> = Vec::new();
    let cgolden = churn.run_checkpointed(&mut eng, ring, &mut rng, &mut NullSink, |cp| {
        ccps.push(cp.clone())
    });
    eng.validate().expect("engine invariants");
    assert!(!ccps.is_empty(), "churn cadence must cut checkpoints");

    for cp in &ccps {
        let (reng, report) = churn
            .resume::<OnlineRwa, _>(cp.clone(), ring, &mut NullSink)
            .expect("same scenario resumes");
        assert_eq!(
            report,
            cgolden,
            "churn resume from round {} diverged",
            cp.round()
        );
        assert_eq!(reng.report(), eng.report(), "engine totals diverged");
        reng.validate().expect("restored engine invariants");
    }

    println!(
        "checkpoint[steady]: {} checkpoints over {} rounds, {} spawned; \
         checkpoint[churn]: {} checkpoints, {} spawned",
        cps.len(),
        rounds,
        golden.spawned,
        ccps.len(),
        cgolden.spawned,
    );
    println!("checkpoint smoke: ok");
}
