//! Table binary for experiment `e08_butterfly` — see `EXPERIMENTS.md`.
//! Flags: `--quick`, `--seed N`, `--trials N`.

fn main() {
    let cfg = optical_bench::ExpConfig::from_args();
    print!("{}", optical_bench::experiments::e08_butterfly::run(&cfg));
}
