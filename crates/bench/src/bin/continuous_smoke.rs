//! Steady-state serving smoke: a short diurnal-mix run through the
//! event-driven engine with admission control, asserting the operational
//! invariants end to end — the per-tenant in-flight caps actually bound
//! the active population, the deferral path re-injects instead of
//! dropping, and the streaming latency sketch fills while the
//! observability counters stay in lockstep with the report.
//!
//! Tier-1 runs this after the recovery chaos smoke: it is the end-to-end
//! guard for the calendar-queue serving loop under heterogeneous load,
//! the same way `recovery_chaos` guards the failure stack.
//!
//! Flags: `--quick`, `--seed N`, `--trials N`.

use optical_bench::ExpConfig;
use optical_core::continuous::{
    AdmissionControl, ArrivalProcess, SteadyParams, SteadyRun, TrafficMix,
};
use optical_core::{DelaySchedule, ProtocolWorkspace};
use optical_obs::CountersSink;
use optical_paths::select::bfs::bfs_route_with;
use optical_topo::algo::PathFinder;
use optical_topo::topologies;
use optical_wdm::RouterConfig;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn main() {
    let cfg = ExpConfig::from_args();
    let rounds: u32 = if cfg.quick { 150 } else { 400 };
    let net = topologies::torus(2, 6);
    let cap = 4u32;

    // A hot four-tenant mix: steady floor, Poisson, a hard burster, and
    // a day/night curve — offered load well past the caps, so both
    // admission policies must actually do work.
    let mix = TrafficMix {
        tenants: vec![
            ArrivalProcess::Bernoulli { prob: 0.3 },
            ArrivalProcess::Poisson { rate: 0.3 },
            ArrivalProcess::BurstyOnOff {
                on_prob: 0.8,
                mean_burst: 5.0,
                mean_off: 10.0,
            },
            ArrivalProcess::Diurnal {
                base: 0.3,
                amplitude: 0.9,
                period: rounds / 3,
            },
        ],
    };
    let tenants = mix.tenants.len();

    let mut ws = ProtocolWorkspace::new();
    let mut finder = PathFinder::new();
    for (name, admission) in [
        ("shed", AdmissionControl::shed(cap)),
        ("defer", AdmissionControl::defer(cap, 3)),
    ] {
        let mut params = SteadyParams::bernoulli(
            RouterConfig::serve_first(2),
            4,
            DelaySchedule::Fixed { delta: 24 },
            0.0,
            rounds,
            rounds / 4,
        );
        params.mix = mix.clone();
        params.admission = Some(admission);
        let mut run = SteadyRun::new(
            &net,
            |_src: u32, rng: &mut dyn rand::RngCore, links: &mut Vec<_>| {
                let n = net.node_count() as u32;
                let s = rng.gen_range(0..n);
                let d = rng.gen_range(0..n);
                links.extend_from_slice(bfs_route_with(&mut finder, &net, s, d).links());
            },
            params,
        );
        let counters = CountersSink::new(2);
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let report = run.run_traced(&mut ws, &mut rng, &mut &counters);

        // The caps bound the active population: per tenant, and so in
        // aggregate. This is the admission-control contract.
        for (i, t) in report.tenants.iter().enumerate() {
            assert!(
                t.peak_in_flight <= cap,
                "{name}: tenant {i} peak {} exceeds cap {cap}",
                t.peak_in_flight
            );
        }
        assert!(
            report.peak_active <= cap as usize * tenants,
            "{name}: peak_active {} exceeds {} caps of {cap}",
            report.peak_active,
            tenants
        );

        // The policy actually fired, the right way round.
        let spawned: u64 = report.tenants.iter().map(|t| t.spawned).sum();
        let shed: u64 = report.tenants.iter().map(|t| t.shed).sum();
        let deferred: u64 = report.tenants.iter().map(|t| t.deferred).sum();
        assert!(spawned > 0, "{name}: the mix must admit traffic");
        match name {
            "shed" => assert!(shed > 0, "shed: overload must drop arrivals"),
            _ => {
                assert!(deferred > 0, "defer: overload must park arrivals");
                assert_eq!(shed, 0, "defer: nothing is dropped");
            }
        }

        // The streaming sketch fills and its percentiles are coherent.
        assert!(report.completed > 0, "{name}: worms complete");
        assert_eq!(
            report.latency.len(),
            report.completed,
            "{name}: one sketch sample per completion"
        );
        assert!(report.p50_latency_rounds <= report.p99_latency_rounds);
        assert!(report.p99_latency_rounds <= report.p999_latency_rounds);

        // Observability counters in lockstep with the report (whole-run
        // totals, warmup included).
        let t = counters.totals();
        assert_eq!(t.spawns, spawned, "{name}: sink spawns");
        assert_eq!(t.shed, shed, "{name}: sink sheds");
        assert_eq!(t.deferred, deferred, "{name}: sink deferrals");
        assert!(
            t.sojourns >= report.completed,
            "{name}: sink sees every completion the report counts"
        );

        println!(
            "steady[{name}]: {spawned} spawned, {} completed, peak {} (cap {}), \
             shed {shed}, deferred {deferred}, p99 {} rounds",
            report.completed,
            report.peak_active,
            cap as usize * tenants,
            report.p99_latency_rounds,
        );
    }
    println!("continuous smoke: ok");
}
