//! Table binary for experiment `e05_bundle` — see `EXPERIMENTS.md`.
//! Flags: `--quick`, `--seed N`, `--trials N`.

fn main() {
    let cfg = optical_bench::ExpConfig::from_args();
    print!("{}", optical_bench::experiments::e05_bundle::run(&cfg));
}
