//! Table binary for experiment `e06_triangle_cycles` — see `EXPERIMENTS.md`.
//! Flags: `--quick`, `--seed N`, `--trials N`.

fn main() {
    let cfg = optical_bench::ExpConfig::from_args();
    print!(
        "{}",
        optical_bench::experiments::e06_triangle_cycles::run(&cfg)
    );
}
