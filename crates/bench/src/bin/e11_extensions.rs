//! Table binary for experiment `e11_extensions` — see `EXPERIMENTS.md`.
//! Flags: `--quick`, `--seed N`, `--trials N`.

fn main() {
    let cfg = optical_bench::ExpConfig::from_args();
    print!("{}", optical_bench::experiments::e11_extensions::run(&cfg));
}
