//! Table binary for experiment `e17_online_rwa` — see `EXPERIMENTS.md`.
//! Flags: `--quick`, `--seed N`, `--trials N`.

fn main() {
    let cfg = optical_bench::ExpConfig::from_args();
    print!("{}", optical_bench::experiments::e17_online_rwa::run(&cfg));
}
