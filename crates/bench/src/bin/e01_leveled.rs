//! Table binary for experiment `e01_leveled` — see `EXPERIMENTS.md`.
//! Flags: `--quick`, `--seed N`, `--trials N`.

fn main() {
    let cfg = optical_bench::ExpConfig::from_args();
    print!("{}", optical_bench::experiments::e01_leveled::run(&cfg));
}
