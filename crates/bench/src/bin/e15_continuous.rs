//! Table binary for experiment `e15_continuous` — see `EXPERIMENTS.md`.
//! Flags: `--quick`, `--seed N`, `--trials N`.

fn main() {
    let cfg = optical_bench::ExpConfig::from_args();
    print!("{}", optical_bench::experiments::e15_continuous::run(&cfg));
}
