//! Table binary for experiment `e12_adversarial` — see `EXPERIMENTS.md`.
//! Flags: `--quick`, `--seed N`, `--trials N`.

fn main() {
    let cfg = optical_bench::ExpConfig::from_args();
    print!("{}", optical_bench::experiments::e12_adversarial::run(&cfg));
}
