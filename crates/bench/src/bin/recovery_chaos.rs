//! Recovery-chaos smoke: one seeded churn run through the full v2
//! failure-handling stack (jittered skip-rounds backoff, circuit
//! breakers, dead-letter queue) that must account for every worm.
//!
//! Tier-1 runs this after the experiment pipeline: it is the end-to-end
//! guard that chaos-grade recovery keeps working — nonzero goodput
//! under churn, no worm lost outside the dead-letter queue, and the
//! observability counters in lockstep with the report.
//!
//! Flags: `--quick`, `--seed N`, `--trials N`.

use optical_bench::experiments::e13_failures::chaos_strategies;
use optical_bench::ExpConfig;
use optical_core::{
    BackoffMode, BreakerConfig, DlqConfig, FaultSource, Jitter, ProtocolParams, ProtocolWorkspace,
    RecoveryPolicy, RetryPolicy, SimBuilder,
};
use optical_obs::CountersSink;
use optical_paths::select::bfs::bfs_collection;
use optical_paths::{Path, PathCollection};
use optical_topo::topologies;
use optical_wdm::{ChurnModel, FaultPlan, RouterConfig};
use optical_workloads::functions::random_function;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn main() {
    let cfg = ExpConfig::from_args();
    let side = if cfg.quick { 6 } else { 8 };
    let net = topologies::torus(2, side);
    let n = net.node_count();

    let mut params = ProtocolParams::new(RouterConfig::serve_first(2), 4);
    params.max_rounds = 300;

    let mut ws = ProtocolWorkspace::new();
    for (name, policy) in chaos_strategies() {
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let f = random_function(n, &mut rng);
        let coll = bfs_collection(&net, &f);
        let sim = SimBuilder::new(&net, &coll)
            .params(params.clone())
            .recovery(policy)
            .faults(FaultSource::Churn(ChurnModel {
                // Harsher weather than the E13 sweep: the smoke wants
                // the breaker/DLQ paths exercised, not a clean run.
                mtbf: 150.0,
                mttr: 60.0,
                seed: rng.gen(),
            }))
            .build();
        let counters = CountersSink::new(2);
        let report = sim
            .run_traced(&mut ws, &mut rng, &mut &counters)
            .into_recovery();

        let delivered = report.outcomes.iter().filter(|o| o.is_delivered()).count();
        let parked = report.dead_lettered_count();
        let abandoned = report.abandoned_count();
        assert_eq!(report.outcomes.len(), n, "{name}: one outcome per worm");
        assert!(delivered > 0, "{name}: goodput must be nonzero under churn");
        assert_eq!(
            delivered + abandoned + parked,
            n,
            "{name}: every worm delivered, abandoned, or parked in the DLQ"
        );
        assert_eq!(
            parked,
            report.dead_letters.len(),
            "{name}: parked worms all surface as dead letters"
        );
        if policy.dlq.is_some() {
            assert_eq!(
                abandoned, 0,
                "{name}: with a DLQ, no worm is lost outside it"
            );
        }

        // The observability counters must be in lockstep with the report.
        let t = counters.totals();
        assert_eq!(t.delivered as usize, delivered, "{name}: deliveries");
        assert_eq!(t.dlq_enqueued, report.dlq_enqueued, "{name}: DLQ captures");
        assert_eq!(t.dlq_replayed, report.dlq_replayed, "{name}: DLQ replays");
        assert_eq!(
            t.breaker_transitions(),
            report.breaker_opens + report.breaker_half_opens + report.breaker_closes,
            "{name}: breaker transitions"
        );

        println!(
            "chaos[{name}]: {delivered}/{n} delivered, {} rounds, \
             {} launches, {} breaker opens, dlq {}/{}",
            report.rounds_used(),
            t.trials,
            report.breaker_opens,
            report.dlq_enqueued,
            report.dlq_replayed,
        );
    }

    dlq_drill(&mut ws, cfg.seed);
    println!("chaos smoke: ok");
}

/// Deterministic breaker/DLQ drill: two permanent ring cuts guarantee
/// blockerless failures under any RNG, a 3-trial budget forces captures
/// into the dead-letter queue, and the ring's long way round guarantees
/// every letter a replay detour. Churn alone can be too gentle to reach
/// these paths; the smoke must drive them every run.
fn dlq_drill(ws: &mut ProtocolWorkspace, seed: u64) {
    let n = 10usize;
    let net = topologies::ring(n);
    let mut coll = PathCollection::for_network(&net);
    for v in 0..n as u32 {
        let nodes = [v, (v + 1) % n as u32, (v + 2) % n as u32];
        coll.push(Path::from_nodes(&net, &nodes));
    }
    let cut_a = net.link_between(1, 2).unwrap();
    let cut_b = net.link_between(5, 6).unwrap();
    let plan = FaultPlan::none().down(cut_a, 0).down(cut_b, 0);

    let policy = RecoveryPolicy {
        confirm_after: 1000, // learn nothing; breakers and the DLQ do the work
        stranded_after: 100,
        retry: RetryPolicy {
            jitter: Jitter::Full,
            mode: BackoffMode::SkipRounds,
            budget: Some(3),
            ..RetryPolicy::legacy()
        },
        breaker: Some(BreakerConfig {
            open_after: 1,
            probe_after: 3,
            close_after: 1,
        }),
        dlq: Some(DlqConfig::default()),
        ..RecoveryPolicy::default()
    };
    let mut params = ProtocolParams::new(RouterConfig::serve_first(2), 4);
    params.max_rounds = 300;
    let sim = SimBuilder::new(&net, &coll)
        .params(params)
        .recovery(policy)
        .faults(FaultSource::EveryRound(plan))
        .build();
    let counters = CountersSink::new(2);
    let report = sim
        .run_traced(ws, &mut ChaCha8Rng::seed_from_u64(seed), &mut &counters)
        .into_recovery();

    assert!(
        report.breaker_opens > 0,
        "drill: permanent cuts open breakers"
    );
    assert!(
        report.dlq_enqueued > 0,
        "drill: exhausted budgets feed the DLQ"
    );
    assert!(
        report.dlq_replayed > 0,
        "drill: detours exist, letters replay"
    );
    let delivered = report.outcomes.iter().filter(|o| o.is_delivered()).count();
    assert!(
        delivered > 0,
        "drill: replayed worms deliver around the cuts"
    );
    assert_eq!(
        delivered + report.abandoned_count() + report.dead_lettered_count(),
        n,
        "drill: every worm accounted for"
    );
    let t = counters.totals();
    assert_eq!(t.dlq_enqueued, report.dlq_enqueued, "drill: DLQ captures");
    assert_eq!(t.dlq_replayed, report.dlq_replayed, "drill: DLQ replays");
    assert_eq!(
        t.breaker_transitions(),
        report.breaker_opens + report.breaker_half_opens + report.breaker_closes,
        "drill: breaker transitions"
    );
    assert_eq!(
        t.breaker_open_rounds, report.breaker_open_rounds,
        "drill: open time"
    );
    println!(
        "drill: {delivered}/{n} delivered around 2 cuts, {} breaker opens, dlq {}/{}",
        report.breaker_opens, report.dlq_enqueued, report.dlq_replayed,
    );
}
