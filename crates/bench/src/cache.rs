//! Process-wide memoization of experiment instances.
//!
//! Several experiments build the *same* deterministic inputs: E2 and E3
//! sweep identical Figure-6 triangle instances (that is the point — the
//! two tables compare routers on the same workload), E6 reuses one of
//! those sizes, E1 and E8 route through the same butterfly networks, and
//! E7's bandwidth sweep rebuilt one mesh workload per (B, L) combination.
//! The [`InstanceCache`] makes that sharing explicit: constructors are
//! keyed by their full parameter tuple (including the derived seed where
//! the construction is seeded), values are `Arc`s handed out to every
//! caller, and hit/miss counters make the reuse observable in tests.
//!
//! Everything cached here is a pure function of its key, so the cache
//! never changes results — it only guarantees that "same parameters"
//! means "same instance in memory", and removes rebuild cost from the
//! parallel pipeline.

use optical_paths::PathCollection;
use optical_topo::{topologies, GridCoords, Network};
use optical_workloads::functions::random_function;
use optical_workloads::structures::{bundle, ladder, triangle};
use optical_workloads::Instance;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Key for the deterministic (unseeded) lower-bound structures.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum StructureKey {
    /// `triangle(structures, dilation, worm_len)`.
    Triangle(usize, u32, u32),
    /// `ladder(structures, paths_per_structure, dilation, worm_len)`.
    Ladder(usize, usize, u32, u32),
    /// `bundle(structures, paths_per_structure, dilation)`.
    Bundle(usize, usize, u32),
}

/// Key for plain topology construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum NetworkKey {
    /// `topologies::butterfly(dim)`.
    Butterfly(u32),
    /// `topologies::mesh(dims, side)`.
    Mesh(u32, u32),
}

/// Key for a seeded random-function mesh workload (dimension-order
/// routed): `(dims, side, seed)`. The seed is part of the key, so two
/// experiments share the instance only when they ask for the *same*
/// randomness.
type MeshFunctionKey = (u32, u32, u64);

/// Cache hit/miss counters (all lookups combined).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to build the value.
    pub misses: u64,
}

/// Process-wide instance cache; obtain via [`InstanceCache::global`].
#[derive(Default)]
pub struct InstanceCache {
    structures: Mutex<HashMap<StructureKey, Arc<Instance>>>,
    networks: Mutex<HashMap<NetworkKey, Arc<Network>>>,
    mesh_functions: Mutex<HashMap<MeshFunctionKey, Arc<(Network, PathCollection)>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Look `key` up in `map`, building the value *outside* the lock on a
/// miss. Two threads can race to build the same key; `or_insert` keeps
/// the first value, and builders are pure functions of the key, so the
/// loser's copy is identical and simply dropped.
fn get_or_build<K, V>(
    cache: &InstanceCache,
    map: &Mutex<HashMap<K, Arc<V>>>,
    key: K,
    build: impl FnOnce() -> V,
) -> Arc<V>
where
    K: std::hash::Hash + Eq + Copy,
{
    if let Some(v) = map.lock().unwrap().get(&key) {
        cache.hits.fetch_add(1, Ordering::Relaxed);
        return Arc::clone(v);
    }
    cache.misses.fetch_add(1, Ordering::Relaxed);
    let v = Arc::new(build());
    Arc::clone(map.lock().unwrap().entry(key).or_insert(v))
}

impl InstanceCache {
    /// The process-wide cache.
    pub fn global() -> &'static InstanceCache {
        static CACHE: OnceLock<InstanceCache> = OnceLock::new();
        CACHE.get_or_init(InstanceCache::default)
    }

    /// Memoized [`triangle`].
    pub fn triangle(&self, structures: usize, dilation: u32, worm_len: u32) -> Arc<Instance> {
        get_or_build(
            self,
            &self.structures,
            StructureKey::Triangle(structures, dilation, worm_len),
            || triangle(structures, dilation, worm_len),
        )
    }

    /// Memoized [`ladder`].
    pub fn ladder(
        &self,
        structures: usize,
        paths_per_structure: usize,
        dilation: u32,
        worm_len: u32,
    ) -> Arc<Instance> {
        get_or_build(
            self,
            &self.structures,
            StructureKey::Ladder(structures, paths_per_structure, dilation, worm_len),
            || ladder(structures, paths_per_structure, dilation, worm_len),
        )
    }

    /// Memoized [`bundle`].
    pub fn bundle(
        &self,
        structures: usize,
        paths_per_structure: usize,
        dilation: u32,
    ) -> Arc<Instance> {
        get_or_build(
            self,
            &self.structures,
            StructureKey::Bundle(structures, paths_per_structure, dilation),
            || bundle(structures, paths_per_structure, dilation),
        )
    }

    /// Memoized [`topologies::butterfly`].
    pub fn butterfly(&self, dim: u32) -> Arc<Network> {
        get_or_build(self, &self.networks, NetworkKey::Butterfly(dim), || {
            topologies::butterfly(dim)
        })
    }

    /// Memoized [`topologies::mesh`].
    pub fn mesh(&self, dims: u32, side: u32) -> Arc<Network> {
        get_or_build(self, &self.networks, NetworkKey::Mesh(dims, side), || {
            topologies::mesh(dims, side)
        })
    }

    /// Memoized random-function workload on a `dims`-dimensional mesh of
    /// `side` nodes per dimension, routed dimension-order: the shape E7,
    /// E10, E11 and E14 all sweep (with per-experiment seeds).
    pub fn mesh_function(&self, dims: u32, side: u32, seed: u64) -> Arc<(Network, PathCollection)> {
        get_or_build(self, &self.mesh_functions, (dims, side, seed), || {
            let net = topologies::mesh(dims, side);
            let coords = GridCoords::new(dims, side);
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let f = random_function(net.node_count(), &mut rng);
            let coll = PathCollection::from_function(&net, &f, |s, d| {
                optical_paths::select::grid::mesh_route(&net, &coords, s, d)
            });
            (net, coll)
        })
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_shares_the_instance() {
        // A fresh (non-global) cache so counters are exact under
        // parallel test execution.
        let cache = InstanceCache::default();
        let a = cache.triangle(4, 8, 4);
        let b = cache.triangle(4, 8, 4);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must be the same Arc");
        let c = cache.triangle(8, 8, 4);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 2 });
    }

    #[test]
    fn cached_instances_match_direct_construction() {
        let cache = InstanceCache::default();
        let cached = cache.triangle(3, 8, 4);
        let direct = triangle(3, 8, 4);
        assert_eq!(cached.name, direct.name);
        assert_eq!(cached.coll.len(), direct.coll.len());
        assert_eq!(cached.coll.to_paths(), direct.coll.to_paths());

        let cached = cache.mesh_function(2, 4, 99);
        let net = topologies::mesh(2, 4);
        let coords = GridCoords::new(2, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let f = random_function(net.node_count(), &mut rng);
        let direct = PathCollection::from_function(&net, &f, |s, d| {
            optical_paths::select::grid::mesh_route(&net, &coords, s, d)
        });
        assert_eq!(cached.1.to_paths(), direct.to_paths());
    }

    #[test]
    fn seeded_keys_do_not_alias() {
        let cache = InstanceCache::default();
        let a = cache.mesh_function(2, 4, 1);
        let b = cache.mesh_function(2, 4, 2);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(a.1.to_paths(), b.1.to_paths());
    }

    #[test]
    fn global_cache_is_shared() {
        let a = InstanceCache::global().bundle(1, 2, 3);
        let b = InstanceCache::global().bundle(1, 2, 3);
        assert!(Arc::ptr_eq(&a, &b));
    }
}
