//! Replicated-trial harness: deterministic seeding, rayon fan-out,
//! summaries.

use optical_core::{ProtocolParams, ProtocolWorkspace, RunReport, Sim, SimBuilder};
use optical_paths::PathCollection;
use optical_stats::{SeedStream, Summary};
use optical_topo::Network;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

/// Shared experiment configuration (CLI-controlled).
#[derive(Clone, Copy, Debug)]
pub struct ExpConfig {
    /// Reduced sweep for smoke tests and CI.
    pub quick: bool,
    /// Master seed; every reported number is reproducible from it.
    pub seed: u64,
    /// Replicated trials per configuration point.
    pub trials: usize,
    /// Print per-experiment wall-clock timings to stderr after a
    /// pipeline run. Timings never go to stdout: the rendered report
    /// must stay byte-identical with and without this flag.
    pub timings: bool,
    /// Run the instrumented observability section after the pipeline
    /// (counter summaries plus an event-trace dump, see
    /// [`crate::obs_run`]). Off by default; the main report stays
    /// byte-identical either way because the obs section only appends.
    pub obs: bool,
}

impl ExpConfig {
    /// Full-size defaults.
    pub fn full() -> Self {
        ExpConfig {
            quick: false,
            seed: 1997,
            trials: 10,
            timings: false,
            obs: false,
        }
    }

    /// Quick defaults for tests.
    pub fn quick() -> Self {
        ExpConfig {
            quick: true,
            seed: 1997,
            trials: 3,
            timings: false,
            obs: false,
        }
    }

    /// Parse `--quick`, `--seed N`, `--trials N`, `--timings`, `--obs`
    /// from process args.
    pub fn from_args() -> Self {
        let mut cfg = ExpConfig::full();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => cfg.quick = true,
                "--timings" => cfg.timings = true,
                "--obs" => cfg.obs = true,
                "--seed" => {
                    i += 1;
                    cfg.seed = args[i].parse().expect("--seed needs an integer");
                }
                "--trials" => {
                    i += 1;
                    cfg.trials = args[i].parse().expect("--trials needs an integer");
                }
                other => panic!(
                    "unknown argument {other} (try --quick, --seed N, --trials N, --timings, --obs)"
                ),
            }
            i += 1;
        }
        cfg
    }
}

/// Evaluate every sweep point of an experiment in parallel and return
/// the results in point order. This is the pipeline's inner fan-out:
/// each point must draw its randomness only from its own element of
/// `points` (typically a pre-derived seed), so the mapping is
/// order-independent and the collected output is identical at any
/// thread count.
pub fn par_points<P, R, F>(points: &[P], f: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(&P) -> R + Sync,
{
    points.par_iter().map(f).collect()
}

/// Run `trials` independent evaluations of `f` (seeded deterministically
/// from `master_seed`) in parallel and summarize the returned values.
pub fn replicate<F>(trials: usize, master_seed: u64, f: F) -> Summary
where
    F: Fn(u64) -> f64 + Sync,
{
    let seeds: Vec<u64> = SeedStream::new(master_seed).take(trials).collect();
    let values: Vec<f64> = seeds.par_iter().map(|&s| f(s)).collect();
    Summary::of(&values)
}

/// Aggregated protocol measurements over replicated trials.
#[derive(Clone, Debug)]
pub struct ProtocolTrials {
    /// Rounds used until completion (or the cap, for failed runs).
    pub rounds: Summary,
    /// Total budgeted time `Σ (Δ_t + 2(D+L))`.
    pub total_time: Summary,
    /// Trials that failed to complete within `max_rounds`.
    pub failures: usize,
    /// Duplicate deliveries (lost acks) summed over trials.
    pub duplicates: u64,
}

/// Run the trial-and-failure protocol `trials` times (parallel,
/// deterministic per-trial seeds) and summarize.
pub fn run_protocol_trials(
    net: &Network,
    coll: &PathCollection,
    params: &ProtocolParams,
    trials: usize,
    master_seed: u64,
) -> ProtocolTrials {
    let sim = SimBuilder::new(net, coll).params(params.clone()).build();
    run_sim_trials(&sim, trials, master_seed)
}

/// Run a built [`Sim`] `trials` times (parallel, deterministic per-trial
/// seeds) and summarize the protocol reports. Panics if the sim is a
/// recovery runner — recovery experiments report through
/// [`optical_core::RecoveryReport`] directly.
pub fn run_sim_trials(sim: &Sim, trials: usize, master_seed: u64) -> ProtocolTrials {
    let seeds: Vec<u64> = SeedStream::new(master_seed).take(trials).collect();
    // One workspace per rayon worker: trials on the same thread reuse the
    // engine and round buffers instead of reallocating them per run.
    let reports: Vec<RunReport> = seeds
        .par_iter()
        .map_init(ProtocolWorkspace::new, |ws, &s| {
            let mut rng = ChaCha8Rng::seed_from_u64(s);
            sim.run_with(ws, &mut rng).into_protocol()
        })
        .collect();
    summarize_reports(&reports)
}

/// Summarize a batch of run reports.
pub fn summarize_reports(reports: &[RunReport]) -> ProtocolTrials {
    let rounds: Vec<f64> = reports.iter().map(|r| r.rounds_used() as f64).collect();
    let times: Vec<f64> = reports.iter().map(|r| r.total_time as f64).collect();
    ProtocolTrials {
        rounds: Summary::of(&rounds),
        total_time: Summary::of(&times),
        failures: reports.iter().filter(|r| !r.completed).count(),
        duplicates: reports.iter().map(|r| r.duplicate_deliveries).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optical_paths::Path;
    use optical_topo::topologies;
    use optical_wdm::RouterConfig;

    #[test]
    fn replicate_is_deterministic() {
        let a = replicate(8, 5, |s| (s % 97) as f64);
        let b = replicate(8, 5, |s| (s % 97) as f64);
        assert_eq!(a.mean, b.mean);
        assert_eq!(a.n, 8);
    }

    #[test]
    fn protocol_trials_on_tiny_bundle() {
        let net = topologies::chain(4);
        let mut coll = PathCollection::for_network(&net);
        for _ in 0..6 {
            coll.push(Path::from_nodes(&net, &[0, 1, 2, 3]));
        }
        let mut params = ProtocolParams::new(RouterConfig::serve_first(1), 2);
        params.max_rounds = 200;
        let t = run_protocol_trials(&net, &coll, &params, 4, 7);
        assert_eq!(t.failures, 0);
        assert!(t.rounds.mean >= 1.0);
        assert!(t.total_time.mean > 0.0);
    }

    #[test]
    fn config_defaults() {
        assert!(!ExpConfig::full().quick);
        assert!(ExpConfig::quick().quick);
        assert_eq!(ExpConfig::full().seed, ExpConfig::quick().seed);
        assert!(!ExpConfig::full().timings);
    }

    #[test]
    fn par_points_preserves_point_order() {
        let points: Vec<u64> = (0..100).collect();
        let got = par_points(&points, |&p| p * p);
        let want: Vec<u64> = points.iter().map(|&p| p * p).collect();
        assert_eq!(got, want);
    }
}
