//! The million-node sharding workload.
//!
//! `torus(2, 1024)` has 2^20 nodes and ~4.2M directed links — the scale
//! the intra-trial sharded round path (`Engine::set_shards`) exists for.
//! The workload launches one worm per node on a fixed-length `+x`
//! coordinate walk, built directly into a flat CSR (no per-path `Vec`s,
//! no BFS): construction is a single linear scan, so the expensive part
//! of the benchmark is the round itself, not the setup.
//!
//! Every worm starts at step 0 (dense launch): along each torus row the
//! walks overlap maximally, so the round mixes singleton installs with
//! heavily contended arrival groups — the same mix the shard merge pass
//! has to get right. Used by both the `engine/round_1m` perf-gate key and
//! the opt-in Criterion group (see `benches/engine.rs`).

use optical_topo::{topologies, GridCoords, LinkId, Network};
use optical_wdm::TransmissionSpec;

/// A dense one-worm-per-node `+x`-walk workload on a 2-d torus, with all
/// path links stored in one flat CSR.
pub struct TorusWalkWorkload {
    /// The underlying torus.
    pub net: Network,
    flat: Vec<LinkId>,
    offsets: Vec<u32>,
}

impl TorusWalkWorkload {
    /// Build the workload on `torus(2, side)`: worm `v` walks `hops`
    /// links in the `+x` direction (wrapping) starting at node `v`.
    pub fn new(side: u32, hops: u32) -> Self {
        let net = topologies::torus(2, side);
        let coords = GridCoords::new(2, side);
        let n = net.node_count() as u32;
        let mut flat = Vec::with_capacity(n as usize * hops as usize);
        let mut offsets = Vec::with_capacity(n as usize + 1);
        offsets.push(0);
        for v in 0..n {
            let mut u = v;
            for _ in 0..hops {
                let w = coords.torus_step(u, 0, 1);
                flat.push(net.link_between(u, w).expect("torus +x neighbor"));
                u = w;
            }
            offsets.push(flat.len() as u32);
        }
        TorusWalkWorkload { net, flat, offsets }
    }

    /// Number of worms (one per node).
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the workload is empty (never, for a valid torus).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Worm `i`'s path links.
    pub fn links_of(&self, i: usize) -> &[LinkId] {
        &self.flat[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Dense specs: every worm launches at step 0, wavelengths striped
    /// `i % b` so each wavelength plane carries the same contention.
    pub fn dense_specs(&self, b: u16, len: u32) -> Vec<TransmissionSpec<'_>> {
        (0..self.len())
            .map(|i| TransmissionSpec {
                links: self.links_of(i),
                start: 0,
                wavelength: (i % b as usize) as u16,
                priority: i as u64,
                length: len,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walks_are_contiguous_rows_of_valid_links() {
        let w = TorusWalkWorkload::new(8, 3);
        assert_eq!(w.len(), 64);
        assert!(!w.is_empty());
        for i in 0..w.len() {
            assert_eq!(w.links_of(i).len(), 3);
        }
        let specs = w.dense_specs(2, 4);
        assert_eq!(specs.len(), 64);
        assert!(specs.iter().all(|s| s.start == 0 && s.wavelength < 2));
        // The walk wraps: 8 hops from any node returns to its own row
        // start, so every link id is within the torus's link range.
        let max = specs
            .iter()
            .flat_map(|s| s.links.iter().copied())
            .max()
            .unwrap();
        assert!((max as usize) < w.net.link_count());
    }
}
