#![warn(missing_docs)]

//! Experiment drivers reproducing every bound of the paper.
//!
//! The paper is a theory paper: its "results" are the three Main Theorems,
//! the application theorems (1.5–1.7), and the lower-bound constructions
//! of Figures 5 and 6. Each experiment here regenerates the *shape* of one
//! of those results as a table — measured rounds/times next to the
//! predicted closed forms from [`optical_core::bounds`], with
//! `measured / predicted` ratios that should stay roughly flat across the
//! sweep. See `EXPERIMENTS.md` at the repository root for the recorded
//! outputs and their interpretation.
//!
//! | id | reproduces | module |
//! |----|-----------|--------|
//! | E1 | Main Thm 1.1 (leveled, serve-first, upper) | [`experiments::e01_leveled`] |
//! | E2 | Main Thm 1.2 (short-cut free, serve-first) | [`experiments::e02_shortcut_free`] |
//! | E3 | Main Thm 1.3 (priority beats serve-first) | [`experiments::e03_priority`] |
//! | E4 | Figure 5 ladder lower bound (√log n) | [`experiments::e04_ladder`] |
//! | E5 | Type-2 bundles & Lemma 2.4 congestion decay | [`experiments::e05_bundle`] |
//! | E6 | Figure 6 blocking cycles (Claim 2.6) | [`experiments::e06_triangle_cycles`] |
//! | E7 | Theorem 1.6 (d-dimensional meshes) | [`experiments::e07_mesh`] |
//! | E8 | Theorem 1.7 (butterfly q-functions) | [`experiments::e08_butterfly`] |
//! | E9 | Theorem 1.5 (node-symmetric networks) | [`experiments::e09_node_symmetric`] |
//! | E10 | Baselines & ablations (conversion, RWA, schedules) | [`experiments::e10_baselines`] |
//! | E11 | §4 extensions: sparse converters, bounded hops | [`experiments::e11_extensions`] |
//! | E12 | Adversarial permutations: direct vs Valiant | [`experiments::e12_adversarial`] |
//! | E13 | Failure injection: fiber cuts & recovery | [`experiments::e13_failures`] |
//! | E14 | Message segmentation at constant payload | [`experiments::e14_segmentation`] |
//! | E15 | Continuous traffic: load-latency, saturation | [`experiments::e15_continuous`] |
//! | E16 | Event-driven steady-state serving, admission control | [`experiments::e16_steady`] |

pub mod cache;
pub mod experiments;
pub mod harness;
pub mod million;
pub mod obs_run;

pub use cache::InstanceCache;
pub use harness::{replicate, ExpConfig, ProtocolTrials};
