//! E11 — the paper's §4 open problems, quantified.
//!
//! * **Sparse wavelength conversion** ("only a few routers can convert
//!   wavelengths, see \[23\]"): sweep the fraction of converter-capable
//!   routers from 0% to 100% and measure how much of the full-conversion
//!   benefit a few converters already buy.
//! * **Bounded hops** ("worms are allowed a bounded number of hops, i.e.
//!   conversions to and from electrical form"): sweep `h` and show the
//!   contention regime where electronic buffering pays off.

use crate::cache::InstanceCache;
use crate::harness::{par_points, run_protocol_trials, ExpConfig};
use optical_core::hops::HopTrialAndFailure;
use optical_core::{DelaySchedule, ProtocolParams, ProtocolWorkspace};
use optical_stats::{table::fmt_f64, SeedStream, Summary, Table};
use optical_topo::NodeId;
use optical_wdm::engine::converter_mask;
use optical_wdm::RouterConfig;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::fmt::Write as _;

/// Worm length.
pub const WORM_LEN: u32 = 4;

/// Run E11 and render its tables.
pub fn run(cfg: &ExpConfig) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "== E11: §4 extensions — sparse converters and bounded hops =="
    )
    .unwrap();

    // Part A: converter-fraction sweep.
    let side: u32 = if cfg.quick { 6 } else { 16 };
    let inst = InstanceCache::global().mesh_function(2, side, cfg.seed ^ 0xE11);
    let (net, coll) = (&inst.0, &inst.1);
    let m = coll.metrics();
    writeln!(
        out,
        "sparse conversion on a 2-d mesh random function ({} paths, C~={}), B=4, tight Δ:",
        m.n, m.path_congestion
    )
    .unwrap();
    let mut table = Table::new(&["converter_frac", "round1_delivered", "rounds", "time"]);
    let fracs: &[f64] = if cfg.quick {
        &[0.0, 1.0]
    } else {
        &[0.0, 0.1, 0.25, 0.5, 1.0]
    };
    let rows = par_points(fracs, |&frac| {
        let mut pick_rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0xC0);
        let converter_nodes: Vec<bool> = (0..net.node_count())
            .map(|_| pick_rng.gen_bool(frac))
            .collect();
        let mask = converter_mask(net, |v: NodeId| converter_nodes[v as usize]);
        let mut params = ProtocolParams::new(RouterConfig::serve_first(4), WORM_LEN);
        params.schedule = DelaySchedule::Fixed { delta: 24 };
        params.converters = (frac > 0.0).then_some(mask);
        params.max_rounds = 500;
        let trials = run_protocol_trials(net, coll, &params, cfg.trials, cfg.seed);
        assert_eq!(trials.failures, 0, "E11 part A must complete");

        // First-round deliveries measured separately (1-round cap).
        let mut one = params.clone();
        one.max_rounds = 1;
        let proto = optical_core::TrialAndFailure::new(net, coll, one);
        let mut ws = ProtocolWorkspace::new();
        let first: Vec<f64> = SeedStream::new(cfg.seed)
            .take(cfg.trials)
            .map(|s| {
                let mut rng = ChaCha8Rng::seed_from_u64(s);
                proto.run_with(&mut ws, &mut rng).rounds[0].delivered as f64
            })
            .collect();
        [
            format!("{:.0}%", frac * 100.0),
            fmt_f64(Summary::of(&first).mean),
            fmt_f64(trials.rounds.mean),
            fmt_f64(trials.total_time.mean),
        ]
    });
    for row in &rows {
        table.row(row);
    }
    out.push_str(&table.render());

    // Part B: bounded hops on a heavily contended bundle.
    let (k, len) = if cfg.quick { (16, 16) } else { (48, 32) };
    writeln!(
        out,
        "bounded hops on a bundle of {k} identical worms over {len} links (B=1, Δ=12):"
    )
    .unwrap();
    let inst = InstanceCache::global().bundle(1, k, len);
    let mut table = Table::new(&["hops", "segments", "rounds", "time"]);
    let hop_counts: &[u32] = if cfg.quick { &[0, 2] } else { &[0, 1, 2, 3, 5] };
    let rows = par_points(hop_counts, |&h| {
        let proto = HopTrialAndFailure::new(
            &inst.net,
            &inst.coll,
            RouterConfig::serve_first(1),
            2,
            h,
            5000,
        )
        .with_schedule(DelaySchedule::Fixed { delta: 12 });
        let mut ws = ProtocolWorkspace::new();
        let mut rounds = Vec::new();
        let mut times = Vec::new();
        for seed in SeedStream::new(cfg.seed ^ 0xB0).take(cfg.trials) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let r = proto.run_with(&mut ws, &mut rng);
            assert!(r.completed, "E11 part B must complete");
            rounds.push(r.rounds_used() as f64);
            times.push(r.total_time as f64);
        }
        [
            h.to_string(),
            (h + 1).to_string(),
            fmt_f64(Summary::of(&rounds).mean),
            fmt_f64(Summary::of(&times).mean),
        ]
    });
    for row in &rows {
        table.row(row);
    }
    out.push_str(&table.render());
    writeln!(
        out,
        "(hops add a round per segment but localize retries; they win only under heavy contention)"
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_tables() {
        let out = run(&ExpConfig::quick());
        assert!(out.contains("E11"));
        assert!(out.contains("hops"));
        assert!(out.contains("converter_frac"));
    }
}
