//! E12 — adversarial permutations and the path-selection degree of
//! freedom.
//!
//! The paper's framework treats path selection as a given input (§1.1);
//! the Main Theorem bounds then scale with the resulting `C̃`. This
//! experiment makes that dependence concrete: classic adversarial
//! permutations (bit-reversal, transpose, tornado) are routed directly
//! (oblivious, minimal) and via Valiant's two-phase trick, and the
//! measured protocol time follows the congestion each choice produces.

use crate::harness::{par_points, run_protocol_trials, ExpConfig};
use optical_core::ProtocolParams;
use optical_paths::select::grid::{mesh_route, torus_route};
use optical_paths::select::hypercube::bit_fixing_route;
use optical_paths::select::valiant::valiant_collection;
use optical_paths::{Path, PathCollection};
use optical_stats::{table::fmt_f64, Table};
use optical_topo::{topologies, GridCoords, Network, NodeId};
use optical_wdm::RouterConfig;
use optical_workloads::functions::{bit_reversal, tornado, transpose};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fmt::Write as _;

/// Worm length.
pub const WORM_LEN: u32 = 4;

/// A routing function boxed for heterogeneous case tables
/// (`Send + Sync` so cases can be evaluated on any pipeline worker).
type Router = Box<dyn Fn(&Network, NodeId, NodeId) -> Path + Send + Sync>;

struct Case {
    name: &'static str,
    net: Network,
    f: Vec<NodeId>,
    route: Router,
}

fn cases(quick: bool) -> Vec<Case> {
    let hdim: u32 = if quick { 6 } else { 10 };
    let side: u32 = if quick { 6 } else { 16 };
    let ring_n: usize = if quick { 32 } else { 256 };
    vec![
        Case {
            name: "bit-reversal/hypercube",
            net: topologies::hypercube(hdim),
            f: bit_reversal(hdim),
            route: Box::new(move |net, a, b| bit_fixing_route(net, hdim, a, b)),
        },
        Case {
            name: "transpose/mesh",
            net: topologies::mesh(2, side),
            f: transpose(side as usize),
            route: Box::new(move |net, a, b| {
                let coords = GridCoords::new(2, side);
                mesh_route(net, &coords, a, b)
            }),
        },
        Case {
            name: "tornado/ring",
            net: topologies::torus(1, ring_n as u32),
            f: tornado(ring_n),
            route: Box::new(move |net, a, b| {
                let coords = GridCoords::new(1, ring_n as u32);
                torus_route(net, &coords, a, b)
            }),
        },
    ]
}

/// Run E12 and render its table.
pub fn run(cfg: &ExpConfig) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "== E12: adversarial permutations — direct vs Valiant two-phase =="
    )
    .unwrap();
    writeln!(
        out,
        "serve-first routers, B=2, L={WORM_LEN}; C̃ drives the Main-Theorem time"
    )
    .unwrap();

    let mut table = Table::new(&["workload", "strategy", "D", "C", "C~", "rounds", "time"]);
    let row_groups = par_points(&cases(cfg.quick), |case| {
        let direct =
            PathCollection::from_function(&case.net, &case.f, |a, b| (case.route)(&case.net, a, b));
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0xE12);
        let valiant = valiant_collection(&case.net, &case.f, &mut rng, |a, b| {
            (case.route)(&case.net, a, b)
        });

        let mut group: Vec<[String; 7]> = Vec::with_capacity(2);
        for (strategy, coll) in [("direct", &direct), ("valiant", &valiant)] {
            let m = coll.metrics();
            let mut params = ProtocolParams::new(RouterConfig::serve_first(2), WORM_LEN);
            params.max_rounds = 500;
            let trials = run_protocol_trials(&case.net, coll, &params, cfg.trials, cfg.seed);
            assert_eq!(trials.failures, 0, "E12 must complete");
            group.push([
                case.name.to_string(),
                strategy.to_string(),
                m.dilation.to_string(),
                m.congestion.to_string(),
                m.path_congestion.to_string(),
                fmt_f64(trials.rounds.mean),
                fmt_f64(trials.total_time.mean),
            ]);
        }
        group
    });
    for group in &row_groups {
        for row in group {
            table.row(row);
        }
    }
    out.push_str(&table.render());
    writeln!(
        out,
        "(Valiant flattens hot links at the cost of ~2x dilation and extra path overlap;\n\
         it pays off where the direct pattern concentrates load — tornado — and loses\n\
         where direct C~ was already moderate — exactly the C~-vs-D trade the Main\n\
         Theorem time bound predicts)"
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_table() {
        let out = run(&ExpConfig::quick());
        assert!(out.contains("E12"));
        assert!(out.contains("valiant"));
        assert!(out.contains("tornado"));
    }
}
