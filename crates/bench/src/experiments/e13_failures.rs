//! E13 — failure injection: fiber cuts, flaky links, churn, and
//! self-healing recovery.
//!
//! Not in the paper (its network is fault-free), but the first question a
//! deployment asks. Two tables:
//!
//! 1. **Static cuts** — a random fraction of fibers is cut before the run.
//!    *Aware* routing knows the failures and routes around them from the
//!    start (BFS avoiding dead links); *self-healing* routing starts on
//!    healthy-topology paths and must discover the cuts from blockerless
//!    failures, strand, and reroute ([`optical_core::Recovery`]).
//! 2. **Dynamic faults** — the fiber plant misbehaves *while worms are in
//!    flight*: mid-run cuts, stochastically garbling links, and MTBF/MTTR
//!    churn, quantifying detection latency and backoff cost.

use crate::harness::{par_points, ExpConfig};
use optical_core::{
    FaultSource, ProtocolParams, ProtocolWorkspace, RecoveryPolicy, RecoveryReport, SimBuilder,
};
use optical_paths::select::bfs::{bfs_collection, bfs_route_avoiding_with};
use optical_paths::PathCollection;
use optical_stats::{table::fmt_f64, SeedStream, Summary, Table};
use optical_topo::algo::PathFinder;
use optical_topo::{topologies, Network};
use optical_wdm::{ChurnModel, FaultPlan, RouterConfig};
use optical_workloads::functions::random_function;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::fmt::Write as _;

/// Worm length.
pub const WORM_LEN: u32 = 4;
/// Round budget for every mode.
pub const MAX_ROUNDS: u32 = 300;
/// Attempts to draw a cut mask that keeps all pairs routable before the
/// trial is skipped (never panic on an unlucky draw).
const RESAMPLE_CAP: u32 = 64;

/// Run E13 and render its tables.
pub fn run(cfg: &ExpConfig) -> String {
    let side: u32 = if cfg.quick { 6 } else { 16 };
    let net = topologies::torus(2, side);
    let mut out = String::new();
    writeln!(
        out,
        "== E13: fiber faults — aware routing vs self-healing recovery =="
    )
    .unwrap();
    writeln!(
        out,
        "{}: random function, serve-first B=2, L={WORM_LEN}; policy {:?}",
        net.name(),
        RecoveryPolicy::default()
    )
    .unwrap();

    static_cut_table(cfg, &net, &mut out);
    dynamic_fault_table(cfg, &net, &mut out);
    out
}

fn base_params(dead: Option<Vec<bool>>) -> ProtocolParams {
    let mut params = ProtocolParams::new(RouterConfig::serve_first(2), WORM_LEN);
    params.dead_links = dead;
    params.max_rounds = MAX_ROUNDS;
    params
}

/// Draw a cut mask (both directions of a fiber fail together) under which
/// every pair of `f` is still routable. Returns the mask plus how many
/// draws it took; `None` if `RESAMPLE_CAP` draws all disconnected a pair.
fn routable_cut_mask(
    net: &Network,
    f: &[u32],
    frac: f64,
    rng: &mut impl Rng,
) -> Option<(Vec<bool>, u32)> {
    let mut finder = PathFinder::new();
    for attempt in 0..RESAMPLE_CAP {
        let mut dead = vec![false; net.link_count()];
        for e in 0..net.link_count() / 2 {
            if rng.gen_bool(frac) {
                dead[2 * e] = true;
                dead[2 * e + 1] = true;
            }
        }
        // Every net this table runs on is connected, so a draw that cut
        // nothing is routable without the per-pair BFS sweep (common at
        // low fractions; the RNG draws above are consumed either way).
        let routable = !dead.contains(&true)
            || f.iter().enumerate().all(|(s, &d)| {
                bfs_route_avoiding_with(&mut finder, net, &dead, s as u32, d).is_some()
            });
        if routable {
            return Some((dead, attempt));
        }
    }
    None
}

/// Table 1: static pre-run cuts, aware vs self-healing.
fn static_cut_table(cfg: &ExpConfig, net: &Network, out: &mut String) {
    let mut table = Table::new(&[
        "cut_frac",
        "fibers_cut",
        "resampled",
        "aware_time",
        "heal_time",
        "rerouted",
        "abandoned",
        "detect_lat",
        "penalty",
    ]);
    let fracs: &[f64] = if cfg.quick {
        &[0.0, 0.05]
    } else {
        &[0.0, 0.01, 0.02, 0.05, 0.10]
    };
    let rows = par_points(fracs, |&frac| {
        let mut ws = ProtocolWorkspace::new();
        let mut finder = PathFinder::new();
        let mut cut_counts = Vec::new();
        let mut resamples = 0u32;
        let mut skipped = 0usize;
        let mut aware_times = Vec::new();
        let mut heal_times = Vec::new();
        let mut rerouted = Vec::new();
        let mut abandoned = 0usize;
        let mut latencies = Vec::new();
        for seed in SeedStream::new(cfg.seed ^ 0xE13).take(cfg.trials) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let f = random_function(net.node_count(), &mut rng);
            // Resample unlucky masks instead of panicking on them.
            let Some((dead, tries)) = routable_cut_mask(net, &f, frac, &mut rng) else {
                skipped += 1;
                continue;
            };
            resamples += tries;
            cut_counts.push(dead.iter().filter(|&&d| d).count() as f64 / 2.0);

            // Aware mode: route around failures from the start.
            let mut aware = PathCollection::for_network(net);
            for (s, &d) in f.iter().enumerate() {
                // Routability was just verified for this exact mask.
                aware.push(bfs_route_avoiding_with(&mut finder, net, &dead, s as u32, d).unwrap());
            }
            let sim = SimBuilder::new(net, &aware)
                .params(base_params(Some(dead.clone())))
                .build();
            let report = sim.run_with(&mut ws, &mut rng).into_protocol();
            assert!(report.completed, "aware routing must complete");
            aware_times.push(report.total_time as f64);

            // Self-healing mode: healthy-topology paths must discover the
            // cuts from blockerless failures and reroute.
            let naive = bfs_collection(net, &f);
            let sim = SimBuilder::new(net, &naive)
                .params(base_params(Some(dead.clone())))
                .recovery(RecoveryPolicy::default())
                .build();
            let report = sim.run_with(&mut ws, &mut rng).into_recovery();
            heal_times.push(report.total_time as f64);
            rerouted.push(report.rerouted_count() as f64);
            abandoned += report.abandoned_count();
            latencies.extend(report.detection_latencies.iter().map(|&l| l as f64));
        }
        if cut_counts.is_empty() {
            return [
                format!("{:.0}%", frac * 100.0),
                "-".into(),
                format!("{skipped} skipped"),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ];
        }
        let aware = Summary::of(&aware_times);
        let heal = Summary::of(&heal_times);
        [
            format!("{:.0}%", frac * 100.0),
            fmt_f64(Summary::of(&cut_counts).mean),
            resamples.to_string(),
            fmt_f64(aware.mean),
            fmt_f64(heal.mean),
            fmt_f64(Summary::of(&rerouted).mean),
            abandoned.to_string(),
            if latencies.is_empty() {
                "-".into()
            } else {
                fmt_f64(Summary::of(&latencies).mean)
            },
            fmt_f64(heal.mean / aware.mean),
        ]
    });
    for row in &rows {
        table.row(row);
    }
    out.push_str(&table.render());
    writeln!(
        out,
        "(fibers_cut and the penalty are means over {} trials; detect_lat is the mean\n\
         number of rounds from a worm's first blockerless failure to its reroute)",
        cfg.trials
    )
    .unwrap();
}

/// Table 2: faults striking while worms are in flight.
fn dynamic_fault_table(cfg: &ExpConfig, net: &Network, out: &mut String) {
    writeln!(out, "\n-- dynamic faults (striking mid-run) --").unwrap();
    let fibers = net.link_count() / 2;
    let hit = (fibers / 20).max(1); // ~5% of fibers misbehave

    let mut table = Table::new(&[
        "scenario",
        "direct",
        "rerouted",
        "abandoned",
        "rounds",
        "detect_lat",
        "backoff_cost",
        "total_time",
    ]);

    type FaultMaker = Box<dyn Fn(&mut ChaCha8Rng) -> FaultSource + Send + Sync>;
    let scenarios: Vec<(String, FaultMaker)> = vec![
        (
            format!("mid-run cut of {hit} fibers (round 3+)"),
            Box::new(move |rng: &mut ChaCha8Rng| {
                // Rounds 1–2 run clean; from round 3 the cut is permanent.
                let link_count = (fibers * 2) as u32;
                let mut plan = FaultPlan::none();
                for _ in 0..hit {
                    let e = rng.gen_range(0..link_count / 2);
                    plan = plan.down(2 * e, 0).down(2 * e + 1, 0);
                }
                let mut plans = vec![FaultPlan::none(), FaultPlan::none()];
                plans.resize(MAX_ROUNDS as usize, plan);
                FaultSource::PerRound(plans)
            }),
        ),
        (
            format!("{hit} flaky fibers, garble p=0.3"),
            Box::new(move |rng: &mut ChaCha8Rng| {
                let link_count = (fibers * 2) as u32;
                let mut plan = FaultPlan::with_seed(rng.gen());
                for _ in 0..hit {
                    let e = rng.gen_range(0..link_count / 2);
                    plan = plan.flaky(2 * e, 0.3).flaky(2 * e + 1, 0.3);
                }
                FaultSource::EveryRound(plan)
            }),
        ),
        (
            "churn mtbf=500 mttr=50 steps".into(),
            Box::new(|rng: &mut ChaCha8Rng| {
                FaultSource::Churn(ChurnModel {
                    mtbf: 500.0,
                    mttr: 50.0,
                    seed: rng.gen(),
                })
            }),
        ),
    ];

    let rows = par_points(&scenarios, |(name, make_faults)| {
        let mut ws = ProtocolWorkspace::new();
        let mut direct = Vec::new();
        let mut rerouted = Vec::new();
        let mut abandoned = Vec::new();
        let mut rounds = Vec::new();
        let mut latencies = Vec::new();
        let mut backoff = Vec::new();
        let mut times = Vec::new();
        for seed in SeedStream::new(cfg.seed ^ 0xD13).take(cfg.trials) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let f = random_function(net.node_count(), &mut rng);
            let coll = bfs_collection(net, &f);
            let faults = make_faults(&mut rng);
            let sim = SimBuilder::new(net, &coll)
                .params(base_params(None))
                .recovery(RecoveryPolicy::default())
                .faults(faults)
                .build();
            let report: RecoveryReport = sim.run_with(&mut ws, &mut rng).into_recovery();
            direct.push(report.delivered_direct() as f64);
            rerouted.push(report.rerouted_count() as f64);
            abandoned.push(report.abandoned_count() as f64);
            rounds.push(report.rounds_used() as f64);
            latencies.extend(report.detection_latencies.iter().map(|&l| l as f64));
            backoff.push(report.backoff_extra_time as f64);
            times.push(report.total_time as f64);
        }
        [
            name.clone(),
            fmt_f64(Summary::of(&direct).mean),
            fmt_f64(Summary::of(&rerouted).mean),
            fmt_f64(Summary::of(&abandoned).mean),
            fmt_f64(Summary::of(&rounds).mean),
            if latencies.is_empty() {
                "-".into()
            } else {
                fmt_f64(Summary::of(&latencies).mean)
            },
            fmt_f64(Summary::of(&backoff).mean),
            fmt_f64(Summary::of(&times).mean),
        ]
    });
    for row in &rows {
        table.row(row);
    }
    out.push_str(&table.render());
    writeln!(
        out,
        "(direct/rerouted/abandoned are mean worm counts of {} per trial; backoff_cost\n\
         is the mean extra steps spent on widened delay ranges)",
        net.node_count()
    )
    .unwrap();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_both_tables() {
        let out = run(&ExpConfig::quick());
        assert!(out.contains("E13"));
        assert!(out.contains("heal_time"));
        assert!(out.contains("dynamic faults"));
        assert!(out.contains("churn"));
    }

    #[test]
    fn resampling_gives_up_gracefully_at_hopeless_rates() {
        // frac = 1.0 cuts every fiber: no mask can be routable, so the
        // helper must return None instead of panicking.
        let net = topologies::torus(2, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let f = random_function(net.node_count(), &mut rng);
        assert!(routable_cut_mask(&net, &f, 1.0, &mut rng).is_none());
    }
}
