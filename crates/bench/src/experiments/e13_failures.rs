//! E13 — failure injection: fiber cuts and recovery.
//!
//! Not in the paper (its network is fault-free), but the first question a
//! deployment asks. We cut a random fraction of fibers in a torus and
//! compare two operating modes:
//!
//! * **aware** — path selection knows the failures and routes around them
//!   from the start (BFS avoiding dead links);
//! * **unaware + reroute** — paths are chosen on the healthy topology,
//!   worms crossing cuts strand for a detection period, then the stranded
//!   ones are rerouted and retried.

use crate::harness::ExpConfig;
use optical_core::{ProtocolParams, TrialAndFailure};
use optical_paths::select::bfs::{bfs_collection, bfs_route_avoiding};
use optical_paths::PathCollection;
use optical_stats::{table::fmt_f64, SeedStream, Summary, Table};
use optical_topo::topologies;
use optical_wdm::RouterConfig;
use optical_workloads::functions::random_function;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::fmt::Write as _;

/// Worm length.
pub const WORM_LEN: u32 = 4;
/// Rounds the unaware mode wastes before declaring worms stranded.
pub const DETECTION_ROUNDS: u32 = 3;

/// Run E13 and render its table.
pub fn run(cfg: &ExpConfig) -> String {
    let side: u32 = if cfg.quick { 6 } else { 16 };
    let net = topologies::torus(2, side);
    let mut out = String::new();
    writeln!(out, "== E13: fiber cuts — failure-aware routing vs strand-and-reroute ==").unwrap();
    writeln!(
        out,
        "{}: random function, serve-first B=2, L={WORM_LEN}; {} detection rounds for the unaware mode",
        net.name(),
        DETECTION_ROUNDS
    )
    .unwrap();

    let mut table = Table::new(&[
        "cut_frac", "fibers_cut", "stranded", "aware_time", "unaware_time", "penalty",
    ]);
    let fracs: &[f64] = if cfg.quick { &[0.0, 0.05] } else { &[0.0, 0.01, 0.02, 0.05, 0.10] };
    for &frac in fracs {
        let mut stranded_acc = 0f64;
        let mut aware_times = Vec::new();
        let mut unaware_times = Vec::new();
        let mut cut_count = 0usize;
        for seed in SeedStream::new(cfg.seed ^ 0xE13).take(cfg.trials) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            // Cut fibers: mark both directions; keep the network connected
            // (a torus tolerates these rates w.h.p. — assert it).
            let mut dead = vec![false; net.link_count()];
            for e in 0..net.link_count() / 2 {
                if rng.gen_bool(frac) {
                    dead[2 * e] = true;
                    dead[2 * e + 1] = true;
                }
            }
            cut_count = dead.iter().filter(|&&d| d).count() / 2;
            let f = random_function(net.node_count(), &mut rng);

            // Aware mode: route around failures from the start.
            let mut aware = PathCollection::for_network(&net);
            for (s, &d) in f.iter().enumerate() {
                aware.push(
                    bfs_route_avoiding(&net, &dead, s as u32, d)
                        .expect("torus disconnected by cuts — rate too high"),
                );
            }
            let mut params = ProtocolParams::new(RouterConfig::serve_first(2), WORM_LEN);
            params.dead_links = Some(dead.clone());
            params.max_rounds = 300;
            let proto = TrialAndFailure::new(&net, &aware, params.clone());
            let report = proto.run(&mut rng);
            assert!(report.completed, "aware routing must complete");
            aware_times.push(report.total_time as f64);

            // Unaware mode: healthy-topology paths strand on cuts.
            let naive = bfs_collection(&net, &f);
            let mut detect = params.clone();
            detect.max_rounds = DETECTION_ROUNDS;
            let proto = TrialAndFailure::new(&net, &naive, detect);
            let first = proto.run(&mut rng);
            stranded_acc += first.remaining.len() as f64;
            let mut total = first.total_time;
            if !first.completed {
                let mut recovery = PathCollection::for_network(&net);
                for &pid in &first.remaining {
                    let p = naive.path(pid as usize);
                    recovery.push(
                        bfs_route_avoiding(&net, &dead, p.source(), p.dest()).expect("connected"),
                    );
                }
                let proto = TrialAndFailure::new(&net, &recovery, params);
                let rec = proto.run(&mut rng);
                assert!(rec.completed, "recovery must complete");
                total += rec.total_time;
            }
            unaware_times.push(total as f64);
        }
        let aware = Summary::of(&aware_times);
        let unaware = Summary::of(&unaware_times);
        table.row(&[
            format!("{:.0}%", frac * 100.0),
            cut_count.to_string(),
            fmt_f64(stranded_acc / cfg.trials as f64),
            fmt_f64(aware.mean),
            fmt_f64(unaware.mean),
            fmt_f64(unaware.mean / aware.mean),
        ]);
    }
    out.push_str(&table.render());
    writeln!(
        out,
        "(the unaware penalty is the price of failure detection: {} wasted round budgets\n\
         plus a recovery pass for the stranded worms)",
        DETECTION_ROUNDS
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_table() {
        let out = run(&ExpConfig::quick());
        assert!(out.contains("E13"));
        assert!(out.contains("stranded"));
    }
}
