//! E13 — failure injection: fiber cuts, flaky links, churn, and
//! self-healing recovery.
//!
//! Not in the paper (its network is fault-free), but the first question a
//! deployment asks. Two tables:
//!
//! 1. **Static cuts** — a random fraction of fibers is cut before the run.
//!    *Aware* routing knows the failures and routes around them from the
//!    start (BFS avoiding dead links); *self-healing* routing starts on
//!    healthy-topology paths and must discover the cuts from blockerless
//!    failures, strand, and reroute ([`optical_core::Recovery`]).
//! 2. **Dynamic faults** — the fiber plant misbehaves *while worms are in
//!    flight*: mid-run cuts, stochastically garbling links, and MTBF/MTTR
//!    churn, quantifying detection latency and backoff cost.
//! 3. **Chaos at scale** — MTBF/MTTR churn on the big torus and wrapped
//!    butterfly instances, one row per retry strategy: legacy widened
//!    windows against skip-rounds backoff with and without jitter, plus
//!    circuit breakers and the dead-letter queue. Goodput, p99 delivery
//!    round, and the retry-collision rate (blocked trials per launch)
//!    quantify why jitter matters: plain exponential re-injects whole
//!    failure cohorts into the same round.

use crate::harness::{par_points, ExpConfig};
use optical_core::{
    BackoffMode, BackoffStrategy, BreakerConfig, DlqConfig, FaultSource, Jitter, ProtocolParams,
    ProtocolWorkspace, RecoveryPolicy, RecoveryReport, RetryPolicy, SimBuilder, WormOutcome,
};
use optical_obs::CountersSink;
use optical_paths::select::bfs::{bfs_collection, bfs_route_avoiding_with};
use optical_paths::PathCollection;
use optical_stats::{percentile, table::fmt_f64, SeedStream, Summary, Table};
use optical_topo::algo::PathFinder;
use optical_topo::{topologies, Network};
use optical_wdm::{ChurnModel, FaultPlan, RouterConfig};
use optical_workloads::functions::random_function;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::fmt::Write as _;

/// Worm length.
pub const WORM_LEN: u32 = 4;
/// Round budget for every mode.
pub const MAX_ROUNDS: u32 = 300;
/// Attempts to draw a cut mask that keeps all pairs routable before the
/// trial is skipped (never panic on an unlucky draw).
const RESAMPLE_CAP: u32 = 64;

/// Run E13 and render its tables.
pub fn run(cfg: &ExpConfig) -> String {
    let side: u32 = if cfg.quick { 6 } else { 16 };
    let net = topologies::torus(2, side);
    let mut out = String::new();
    writeln!(
        out,
        "== E13: fiber faults — aware routing vs self-healing recovery =="
    )
    .unwrap();
    writeln!(
        out,
        "{}: random function, serve-first B=2, L={WORM_LEN}; policy {:?}",
        net.name(),
        RecoveryPolicy::default()
    )
    .unwrap();

    static_cut_table(cfg, &net, &mut out);
    dynamic_fault_table(cfg, &net, &mut out);
    chaos_at_scale_table(cfg, &mut out);
    out
}

fn base_params(dead: Option<Vec<bool>>) -> ProtocolParams {
    let mut params = ProtocolParams::new(RouterConfig::serve_first(2), WORM_LEN);
    params.dead_links = dead;
    params.max_rounds = MAX_ROUNDS;
    params
}

/// Draw a cut mask (both directions of a fiber fail together) under which
/// every pair of `f` is still routable. Returns the mask plus how many
/// draws it took; `None` if `RESAMPLE_CAP` draws all disconnected a pair.
fn routable_cut_mask(
    net: &Network,
    f: &[u32],
    frac: f64,
    rng: &mut impl Rng,
) -> Option<(Vec<bool>, u32)> {
    let mut finder = PathFinder::new();
    for attempt in 0..RESAMPLE_CAP {
        let mut dead = vec![false; net.link_count()];
        for e in 0..net.link_count() / 2 {
            if rng.gen_bool(frac) {
                dead[2 * e] = true;
                dead[2 * e + 1] = true;
            }
        }
        // Every net this table runs on is connected, so a draw that cut
        // nothing is routable without the per-pair BFS sweep (common at
        // low fractions; the RNG draws above are consumed either way).
        let routable = !dead.contains(&true)
            || f.iter().enumerate().all(|(s, &d)| {
                bfs_route_avoiding_with(&mut finder, net, &dead, s as u32, d).is_some()
            });
        if routable {
            return Some((dead, attempt));
        }
    }
    None
}

/// Table 1: static pre-run cuts, aware vs self-healing.
fn static_cut_table(cfg: &ExpConfig, net: &Network, out: &mut String) {
    let mut table = Table::new(&[
        "cut_frac",
        "fibers_cut",
        "resampled",
        "aware_time",
        "heal_time",
        "rerouted",
        "abandoned",
        "detect_lat",
        "penalty",
    ]);
    let fracs: &[f64] = if cfg.quick {
        &[0.0, 0.05]
    } else {
        &[0.0, 0.01, 0.02, 0.05, 0.10]
    };
    let rows = par_points(fracs, |&frac| {
        let mut ws = ProtocolWorkspace::new();
        let mut finder = PathFinder::new();
        let mut cut_counts = Vec::new();
        let mut resamples = 0u32;
        let mut skipped = 0usize;
        let mut aware_times = Vec::new();
        let mut heal_times = Vec::new();
        let mut rerouted = Vec::new();
        let mut abandoned = 0usize;
        let mut latencies = Vec::new();
        for seed in SeedStream::new(cfg.seed ^ 0xE13).take(cfg.trials) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let f = random_function(net.node_count(), &mut rng);
            // Resample unlucky masks instead of panicking on them.
            let Some((dead, tries)) = routable_cut_mask(net, &f, frac, &mut rng) else {
                skipped += 1;
                continue;
            };
            resamples += tries;
            cut_counts.push(dead.iter().filter(|&&d| d).count() as f64 / 2.0);

            // Aware mode: route around failures from the start.
            let mut aware = PathCollection::for_network(net);
            for (s, &d) in f.iter().enumerate() {
                // Routability was just verified for this exact mask.
                aware.push(bfs_route_avoiding_with(&mut finder, net, &dead, s as u32, d).unwrap());
            }
            let sim = SimBuilder::new(net, &aware)
                .params(base_params(Some(dead.clone())))
                .build();
            let report = sim.run_with(&mut ws, &mut rng).into_protocol();
            assert!(report.completed, "aware routing must complete");
            aware_times.push(report.total_time as f64);

            // Self-healing mode: healthy-topology paths must discover the
            // cuts from blockerless failures and reroute.
            let naive = bfs_collection(net, &f);
            let sim = SimBuilder::new(net, &naive)
                .params(base_params(Some(dead.clone())))
                .recovery(RecoveryPolicy::default())
                .build();
            let report = sim.run_with(&mut ws, &mut rng).into_recovery();
            heal_times.push(report.total_time as f64);
            rerouted.push(report.rerouted_count() as f64);
            abandoned += report.abandoned_count();
            latencies.extend(report.detection_latencies.iter().map(|&l| l as f64));
        }
        if cut_counts.is_empty() {
            return [
                format!("{:.0}%", frac * 100.0),
                "-".into(),
                format!("{skipped} skipped"),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ];
        }
        let aware = Summary::of(&aware_times);
        let heal = Summary::of(&heal_times);
        [
            format!("{:.0}%", frac * 100.0),
            fmt_f64(Summary::of(&cut_counts).mean),
            resamples.to_string(),
            fmt_f64(aware.mean),
            fmt_f64(heal.mean),
            fmt_f64(Summary::of(&rerouted).mean),
            abandoned.to_string(),
            if latencies.is_empty() {
                "-".into()
            } else {
                fmt_f64(Summary::of(&latencies).mean)
            },
            fmt_f64(heal.mean / aware.mean),
        ]
    });
    for row in &rows {
        table.row(row);
    }
    out.push_str(&table.render());
    writeln!(
        out,
        "(fibers_cut and the penalty are means over {} trials; detect_lat is the mean\n\
         number of rounds from a worm's first blockerless failure to its reroute)",
        cfg.trials
    )
    .unwrap();
}

/// Table 2: faults striking while worms are in flight.
fn dynamic_fault_table(cfg: &ExpConfig, net: &Network, out: &mut String) {
    writeln!(out, "\n-- dynamic faults (striking mid-run) --").unwrap();
    let fibers = net.link_count() / 2;
    let hit = (fibers / 20).max(1); // ~5% of fibers misbehave

    let mut table = Table::new(&[
        "scenario",
        "direct",
        "rerouted",
        "abandoned",
        "rounds",
        "detect_lat",
        "backoff_cost",
        "total_time",
    ]);

    type FaultMaker = Box<dyn Fn(&mut ChaCha8Rng) -> FaultSource + Send + Sync>;
    let scenarios: Vec<(String, FaultMaker)> = vec![
        (
            format!("mid-run cut of {hit} fibers (round 3+)"),
            Box::new(move |rng: &mut ChaCha8Rng| {
                // Rounds 1–2 run clean; from round 3 the cut is permanent.
                let link_count = (fibers * 2) as u32;
                let mut plan = FaultPlan::none();
                for _ in 0..hit {
                    let e = rng.gen_range(0..link_count / 2);
                    plan = plan.down(2 * e, 0).down(2 * e + 1, 0);
                }
                let mut plans = vec![FaultPlan::none(), FaultPlan::none()];
                plans.resize(MAX_ROUNDS as usize, plan);
                FaultSource::PerRound(plans)
            }),
        ),
        (
            format!("{hit} flaky fibers, garble p=0.3"),
            Box::new(move |rng: &mut ChaCha8Rng| {
                let link_count = (fibers * 2) as u32;
                let mut plan = FaultPlan::with_seed(rng.gen());
                for _ in 0..hit {
                    let e = rng.gen_range(0..link_count / 2);
                    plan = plan.flaky(2 * e, 0.3).flaky(2 * e + 1, 0.3);
                }
                FaultSource::EveryRound(plan)
            }),
        ),
        (
            "churn mtbf=500 mttr=50 steps".into(),
            Box::new(|rng: &mut ChaCha8Rng| {
                FaultSource::Churn(ChurnModel {
                    mtbf: 500.0,
                    mttr: 50.0,
                    seed: rng.gen(),
                })
            }),
        ),
    ];

    let rows = par_points(&scenarios, |(name, make_faults)| {
        let mut ws = ProtocolWorkspace::new();
        let mut direct = Vec::new();
        let mut rerouted = Vec::new();
        let mut abandoned = Vec::new();
        let mut rounds = Vec::new();
        let mut latencies = Vec::new();
        let mut backoff = Vec::new();
        let mut times = Vec::new();
        for seed in SeedStream::new(cfg.seed ^ 0xD13).take(cfg.trials) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let f = random_function(net.node_count(), &mut rng);
            let coll = bfs_collection(net, &f);
            let faults = make_faults(&mut rng);
            let sim = SimBuilder::new(net, &coll)
                .params(base_params(None))
                .recovery(RecoveryPolicy::default())
                .faults(faults)
                .build();
            let report: RecoveryReport = sim.run_with(&mut ws, &mut rng).into_recovery();
            direct.push(report.delivered_direct() as f64);
            rerouted.push(report.rerouted_count() as f64);
            abandoned.push(report.abandoned_count() as f64);
            rounds.push(report.rounds_used() as f64);
            latencies.extend(report.detection_latencies.iter().map(|&l| l as f64));
            backoff.push(report.backoff_extra_time as f64);
            times.push(report.total_time as f64);
        }
        [
            name.clone(),
            fmt_f64(Summary::of(&direct).mean),
            fmt_f64(Summary::of(&rerouted).mean),
            fmt_f64(Summary::of(&abandoned).mean),
            fmt_f64(Summary::of(&rounds).mean),
            if latencies.is_empty() {
                "-".into()
            } else {
                fmt_f64(Summary::of(&latencies).mean)
            },
            fmt_f64(Summary::of(&backoff).mean),
            fmt_f64(Summary::of(&times).mean),
        ]
    });
    for row in &rows {
        table.row(row);
    }
    out.push_str(&table.render());
    writeln!(
        out,
        "(direct/rerouted/abandoned are mean worm counts of {} per trial; backoff_cost\n\
         is the mean extra steps spent on widened delay ranges)",
        net.node_count()
    )
    .unwrap();
}

/// The retry-strategy grid of the chaos sweep. The first row is the
/// legacy v1 loop (exponential widened windows, no breakers, no DLQ);
/// the rest run skip-rounds backoff behind circuit breakers and the
/// dead-letter queue, differing only in how they draw the hold.
pub fn chaos_strategies() -> Vec<(&'static str, RecoveryPolicy)> {
    // Churn heals, so don't condemn links on first offence in any row.
    let base = RecoveryPolicy {
        confirm_after: 3,
        ..RecoveryPolicy::default()
    };
    let v2 = |retry: RetryPolicy| RecoveryPolicy {
        retry,
        breaker: Some(BreakerConfig::default()),
        dlq: Some(DlqConfig::default()),
        ..base
    };
    let skip = RetryPolicy {
        mode: BackoffMode::SkipRounds,
        ..RetryPolicy::legacy()
    };
    vec![
        ("exp/widen (legacy)", base),
        ("exp/skip plain", v2(skip)),
        (
            "exp/skip full-jitter",
            v2(RetryPolicy {
                jitter: Jitter::Full,
                ..skip
            }),
        ),
        (
            "fib/skip decorrelated",
            v2(RetryPolicy {
                strategy: BackoffStrategy::Fibonacci,
                jitter: Jitter::Decorrelated,
                ..skip
            }),
        ),
    ]
}

/// Table 3: chaos at scale — churn on the big instances, one row per
/// (topology, retry strategy).
fn chaos_at_scale_table(cfg: &ExpConfig, out: &mut String) {
    writeln!(out, "\n-- chaos at scale: churn x retry strategy --").unwrap();
    let topos: Vec<Network> = if cfg.quick {
        vec![topologies::torus(2, 6), topologies::wrapped_butterfly(3)]
    } else {
        vec![topologies::torus(2, 16), topologies::wrapped_butterfly(5)]
    };
    let strategies = chaos_strategies();
    writeln!(
        out,
        "churn mtbf=400 mttr=60 steps; policies share confirm_after=3; v2 rows add\n\
         breakers {:?} and DLQ {:?}",
        BreakerConfig::default(),
        DlqConfig::default()
    )
    .unwrap();

    let mut table = Table::new(&[
        "topology",
        "strategy",
        "goodput",
        "p99_round",
        "collide",
        "launches",
        "brk_open",
        "dlq_in/out",
        "abandoned",
        "total_time",
    ]);
    let points: Vec<(usize, usize)> = (0..topos.len())
        .flat_map(|ti| (0..strategies.len()).map(move |si| (ti, si)))
        .collect();
    let rows = par_points(&points, |&(ti, si)| {
        let net = &topos[ti];
        let (name, policy) = strategies[si];
        let n = net.node_count();
        let mut ws = ProtocolWorkspace::new();
        let mut goodput = Vec::new();
        let mut delivery_rounds = Vec::new();
        let mut blocked = 0u64;
        let mut launches = 0u64;
        let mut brk_opens = 0u64;
        let mut dlq_in = 0u64;
        let mut dlq_out = 0u64;
        let mut abandoned = Vec::new();
        let mut times = Vec::new();
        let salt = 0xC4A0 ^ ((ti as u64) << 8) ^ si as u64;
        for seed in SeedStream::new(cfg.seed ^ salt).take(cfg.trials) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let f = random_function(n, &mut rng);
            let coll = bfs_collection(net, &f);
            let sim = SimBuilder::new(net, &coll)
                .params(base_params(None))
                .recovery(policy)
                .faults(FaultSource::Churn(ChurnModel {
                    mtbf: 400.0,
                    mttr: 60.0,
                    seed: rng.gen(),
                }))
                .build();
            let counters = CountersSink::new(2);
            let report: RecoveryReport = sim
                .run_traced(&mut ws, &mut rng, &mut &counters)
                .into_recovery();
            let delivered = report.outcomes.iter().filter(|o| o.is_delivered()).count();
            goodput.push(delivered as f64 / n as f64);
            delivery_rounds.extend(report.outcomes.iter().filter_map(|o| match o {
                WormOutcome::Delivered { round } | WormOutcome::Rerouted { round, .. } => {
                    Some(f64::from(*round))
                }
                _ => None,
            }));
            let t = counters.totals();
            blocked += t.blocked;
            launches += t.trials;
            brk_opens += report.breaker_opens;
            dlq_in += report.dlq_enqueued;
            dlq_out += report.dlq_replayed;
            abandoned.push((report.abandoned_count() + report.dead_lettered_count()) as f64);
            times.push(report.total_time as f64);
        }
        [
            topos[ti].name().to_string(),
            name.to_string(),
            fmt_f64(Summary::of(&goodput).mean),
            if delivery_rounds.is_empty() {
                "-".into()
            } else {
                fmt_f64(percentile(&delivery_rounds, 0.99))
            },
            fmt_f64(blocked as f64 / launches.max(1) as f64),
            fmt_f64(launches as f64 / (cfg.trials * n) as f64),
            brk_opens.to_string(),
            format!("{dlq_in}/{dlq_out}"),
            fmt_f64(Summary::of(&abandoned).mean),
            fmt_f64(Summary::of(&times).mean),
        ]
    });
    for row in &rows {
        table.row(row);
    }
    out.push_str(&table.render());
    writeln!(
        out,
        "(goodput is the delivered fraction; collide is blocked trials per launch —\n\
         the retry-collision rate; launches is mean worm launches per worm; dlq_in/out\n\
         is captures/replays; abandoned includes worms parked in the DLQ at the end)"
    )
    .unwrap();
}

#[cfg(test)]
mod tests {
    use super::*;
    use optical_paths::Path;

    #[test]
    fn quick_run_produces_all_tables() {
        let out = run(&ExpConfig::quick());
        assert!(out.contains("E13"));
        assert!(out.contains("heal_time"));
        assert!(out.contains("dynamic faults"));
        assert!(out.contains("churn"));
        assert!(out.contains("chaos at scale"));
        assert!(out.contains("full-jitter"));
        assert!(out.contains("decorrelated"));
    }

    /// Retry-collision rate of one policy on the maximal-contention
    /// instance: `m` worms on an identical path, bandwidth 1, with a
    /// scripted outage that synchronizes every worm's failure count
    /// before the backoff strategy decides how they re-enter.
    fn collision_count(policy: RecoveryPolicy, seeds: std::ops::Range<u64>) -> u64 {
        let net = topologies::ring(8);
        let mut coll = PathCollection::for_network(&net);
        for _ in 0..8 {
            coll.push(Path::from_nodes(&net, &[0, 1, 2, 3]));
        }
        let cut = net.link_between(0, 1).unwrap();
        let mut plans = vec![FaultPlan::none().down(cut, 0); 3];
        plans.resize(200, FaultPlan::none());

        let mut params = ProtocolParams::new(RouterConfig::serve_first(1), WORM_LEN);
        params.max_rounds = 200;
        let mut ws = ProtocolWorkspace::new();
        let mut blocked = 0u64;
        for seed in seeds {
            let sim = SimBuilder::new(&net, &coll)
                .params(params.clone())
                .recovery(policy)
                .faults(FaultSource::PerRound(plans.clone()))
                .build();
            let counters = CountersSink::new(1);
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let report = sim
                .run_traced(&mut ws, &mut rng, &mut &counters)
                .into_recovery();
            assert_eq!(
                report.abandoned_count() + report.dead_lettered_count(),
                0,
                "the outage is transient: every worm must make it"
            );
            blocked += counters.totals().blocked;
        }
        blocked
    }

    #[test]
    fn jittered_backoff_beats_plain_exponential_on_collisions() {
        // Both policies run pure skip-rounds exponential backoff (no
        // breakers, no DLQ, no learning or rerouting) so the only
        // difference is the jitter. Plain backoff re-injects the whole
        // failure cohort into the same round; full jitter spreads the
        // holds, so strictly fewer worm-vs-worm collisions happen on
        // the shared path. Aggregated over seeds to keep the margin
        // comfortable for any RNG backend.
        let freeze = RecoveryPolicy {
            confirm_after: 1000,  // never condemn the link
            stranded_after: 1000, // never reroute
            ..RecoveryPolicy::default()
        };
        let plain = RecoveryPolicy {
            retry: RetryPolicy {
                mode: BackoffMode::SkipRounds,
                ..RetryPolicy::legacy()
            },
            ..freeze
        };
        let jittered = RecoveryPolicy {
            retry: RetryPolicy {
                jitter: Jitter::Full,
                ..plain.retry
            },
            ..freeze
        };
        let plain_blocked = collision_count(plain, 0..8);
        let jittered_blocked = collision_count(jittered, 0..8);
        assert!(
            jittered_blocked < plain_blocked,
            "full jitter must desynchronize retry cohorts: \
             jittered {jittered_blocked} vs plain {plain_blocked} blocked trials"
        );
    }

    #[test]
    fn chaos_strategies_cover_the_required_grid() {
        let grid = chaos_strategies();
        assert!(grid.len() >= 3, "at least three backoff strategies");
        // One legacy row (byte-identical v1 path), one plain and one
        // jittered skip-rounds row — the comparison the sweep exists
        // to make.
        assert!(grid[0].1.breaker.is_none() && grid[0].1.dlq.is_none());
        assert!(matches!(grid[1].1.retry.jitter, Jitter::None));
        assert!(!matches!(grid[2].1.retry.jitter, Jitter::None));
        for (_, p) in &grid {
            p.validate().expect("every grid policy is valid");
        }
    }

    #[test]
    fn resampling_gives_up_gracefully_at_hopeless_rates() {
        // frac = 1.0 cuts every fiber: no mask can be routable, so the
        // helper must return None instead of panicking.
        let net = topologies::torus(2, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let f = random_function(net.node_count(), &mut rng);
        assert!(routable_cut_mask(&net, &f, 1.0, &mut rng).is_none());
    }
}
