//! E7 — Theorem 1.6: random functions on d-dimensional meshes with
//! dimension-order routing and serve-first routers.
//!
//! The theorem predicts total time
//! `O(L·d·n/B + (√d + loglog n)(d·n + L + L·d·log n/B))` for side length
//! `n`. We sweep the shape (d, side), the bandwidth `B`, and the worm
//! length `L`, reporting measured rounds/time against the closed form.

use crate::cache::InstanceCache;
use crate::harness::{par_points, run_protocol_trials, ExpConfig};
use optical_core::bounds::mesh_bound;
use optical_core::ProtocolParams;
use optical_stats::{table::fmt_f64, Table};
use optical_wdm::RouterConfig;
use std::fmt::Write as _;

/// Run E7 and render its tables.
pub fn run(cfg: &ExpConfig) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "== E7: Thm 1.6 — random functions on d-dimensional meshes =="
    )
    .unwrap();
    writeln!(out, "dimension-order routing, serve-first routers").unwrap();

    // Part A: shape sweep at B = 1, L = 4.
    let shapes: &[(u32, u32)] = if cfg.quick {
        &[(2, 6)]
    } else {
        &[(1, 512), (2, 24), (3, 9), (2, 32)]
    };
    let mut table = Table::new(&[
        "mesh",
        "n_nodes",
        "D",
        "C~",
        "rounds",
        "time",
        "pred(Thm1.6)",
        "t/pred",
    ]);
    let rows = par_points(shapes, |&(d, side)| {
        let inst = InstanceCache::global().mesh_function(
            d,
            side,
            cfg.seed ^ ((d as u64) << 8 | side as u64),
        );
        let (net, coll) = (&inst.0, &inst.1);
        let mut params = ProtocolParams::new(RouterConfig::serve_first(1), 4);
        params.max_rounds = 500;
        let trials = run_protocol_trials(net, coll, &params, cfg.trials, cfg.seed);
        assert_eq!(trials.failures, 0, "E7 runs must complete");
        let m = coll.metrics();
        let pred = mesh_bound(d, side, 4, 1);
        [
            format!("{d}d side {side}"),
            net.node_count().to_string(),
            m.dilation.to_string(),
            m.path_congestion.to_string(),
            fmt_f64(trials.rounds.mean),
            fmt_f64(trials.total_time.mean),
            fmt_f64(pred),
            fmt_f64(trials.total_time.mean / pred),
        ]
    });
    for row in &rows {
        table.row(row);
    }
    out.push_str(&table.render());

    // Part B: bandwidth and worm-length sweep on a fixed 2-d mesh.
    let side: u32 = if cfg.quick { 6 } else { 16 };
    writeln!(
        out,
        "bandwidth/worm-length sweep on the {side}x{side} mesh:"
    )
    .unwrap();
    let mut table = Table::new(&["B", "L", "rounds", "time", "pred", "t/pred"]);
    let bs: &[u16] = if cfg.quick { &[1, 4] } else { &[1, 2, 4, 8] };
    let ls: &[u32] = if cfg.quick { &[4] } else { &[1, 4, 16] };
    let grid: Vec<(u16, u32)> = bs
        .iter()
        .flat_map(|&b| ls.iter().map(move |&l| (b, l)))
        .collect();
    // Every (B, L) point runs on the same workload; the cache builds it
    // once instead of once per point.
    let rows = par_points(&grid, |&(b, l)| {
        let inst = InstanceCache::global().mesh_function(2, side, cfg.seed ^ 0x55AA);
        let (net, coll) = (&inst.0, &inst.1);
        let mut params = ProtocolParams::new(RouterConfig::serve_first(b), l);
        params.max_rounds = 500;
        let trials = run_protocol_trials(net, coll, &params, cfg.trials, cfg.seed);
        assert_eq!(trials.failures, 0);
        let pred = mesh_bound(2, side, l, b);
        [
            b.to_string(),
            l.to_string(),
            fmt_f64(trials.rounds.mean),
            fmt_f64(trials.total_time.mean),
            fmt_f64(pred),
            fmt_f64(trials.total_time.mean / pred),
        ]
    });
    for row in &rows {
        table.row(row);
    }
    out.push_str(&table.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_tables() {
        let out = run(&ExpConfig::quick());
        assert!(out.contains("E7"));
        assert!(out.contains("sweep"));
    }
}
