//! E17 — online RWA under churn: incremental admit/release vs the
//! offline comparators.
//!
//! Connections arrive (Bernoulli per source), hold a wavelength for a
//! geometric time, and depart; the incremental engine
//! ([`OnlineRwa`](optical_baselines::rwa::online::OnlineRwa)) grants
//! first-fit wavelengths in `O(path length × B/64)` per event and parks
//! requests that find no free wavelength in a FIFO queue. The first
//! table sweeps the per-link bandwidth `B` and reports the admission
//! outcomes (immediate vs queued, queue-wait quantiles, recolor drift
//! repair). The second table freezes the *peak* active set — the
//! largest population the engine ever carried — and hands it to the
//! offline machinery: greedy RWA says how many wavelengths that set
//! needs when colored as a batch, which calibrates how much of the
//! online queueing is congestion (the set genuinely needs more than
//! `B`) versus first-fit drift. The wall-clock receipt for the
//! incremental data structures is the perf-gate pair
//! `rwa/online_churn_1m` vs `rwa/online_churn_recompute`.

use crate::harness::{par_points, run_protocol_trials, ExpConfig};
use optical_baselines::rwa::churn::{run_churn, ChurnParams, ChurnReport, HoldTime};
use optical_baselines::rwa::online::{OnlineRwa, RwaEngine};
use optical_baselines::rwa::{color_lower_bound, greedy_rwa, ColorOrder};
use optical_core::continuous::TrafficMix;
use optical_core::ProtocolParams;
use optical_obs::NullSink;
use optical_paths::select::bfs::bfs_route_with;
use optical_paths::{Path, PathCollection};
use optical_stats::table::fmt_f64;
use optical_stats::Table;
use optical_topo::algo::PathFinder;
use optical_topo::{topologies, Network};
use optical_wdm::RouterConfig;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::fmt::Write as _;

/// Worm length for the trial-and-failure comparator (matches E10).
pub const WORM_LEN: u32 = 4;

/// Arrival probability per source per round.
const ARRIVAL: f64 = 0.3;

/// Mean holding time in rounds.
const HOLD_MEAN: f64 = 6.0;

/// One churn run: random BFS routes on `net`, recording each spawn's
/// path so the peak set can be rebuilt as a [`PathCollection`].
fn churn_run(
    net: &Network,
    bandwidth: u16,
    recolor_every: u64,
    rounds: u32,
    seed: u64,
) -> (OnlineRwa, ChurnReport, Vec<Path>) {
    let n = net.node_count() as u32;
    let mut engine = OnlineRwa::new(net.link_count(), bandwidth, recolor_every);
    let mut finder = PathFinder::new();
    let mut spawn_paths: Vec<Path> = Vec::new();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let params = ChurnParams {
        rounds,
        mix: TrafficMix::bernoulli(ARRIVAL),
        hold: HoldTime::Geometric { mean: HOLD_MEAN },
        capture_peak: true,
        checkpoint_every: 0,
    };
    let report = run_churn(
        &mut engine,
        n,
        |_src, rng, links| {
            let s = rng.gen_range(0..n);
            let d = rng.gen_range(0..n);
            let p = bfs_route_with(&mut finder, net, s, d);
            links.extend_from_slice(p.links());
            spawn_paths.push(p);
        },
        &params,
        &mut rng,
        &mut NullSink,
    );
    engine
        .validate()
        .expect("engine invariants hold after churn");
    (engine, report, spawn_paths)
}

/// Run E17 and render its tables.
pub fn run(cfg: &ExpConfig) -> String {
    let side: u32 = if cfg.quick { 4 } else { 8 };
    let rounds: u32 = if cfg.quick { 80 } else { 400 };
    let net = topologies::torus(2, side);
    let mut out = String::new();
    writeln!(
        out,
        "== E17: online RWA under churn — incremental admit/release =="
    )
    .unwrap();
    writeln!(
        out,
        "{}: Bernoulli({ARRIVAL}) arrivals per node, geometric hold (mean {HOLD_MEAN}), \
         random BFS routes, {rounds} rounds",
        net.name()
    )
    .unwrap();

    // Part A: bandwidth sweep. Admissions split into immediate grants
    // and queue drains; the wait quantiles price the queueing, and the
    // recolor columns show how much first-fit drift the periodic
    // compaction pass (every 25 releases) repairs.
    let bs: &[u16] = if cfg.quick { &[2, 4] } else { &[1, 2, 4, 8] };
    let mut table = Table::new(&[
        "B",
        "spawned",
        "immediate",
        "queued",
        "q_admits",
        "wait_p50",
        "wait_p99",
        "peak_active",
        "peak_wl",
        "recolors",
        "moves",
    ]);
    let rows = par_points(bs, |&b| {
        let (engine, churn, _) = churn_run(&net, b, 25, rounds, cfg.seed ^ 0xE17);
        let r = engine.report();
        assert_eq!(
            r.admitted_immediate + r.blocked,
            churn.spawned,
            "every spawn admits immediately or queues"
        );
        [
            b.to_string(),
            churn.spawned.to_string(),
            r.admitted_immediate.to_string(),
            r.blocked.to_string(),
            r.admitted_from_queue.to_string(),
            r.wait.quantile(0.5).to_string(),
            r.wait.quantile(0.99).to_string(),
            r.peak_active.to_string(),
            r.peak_wavelengths.to_string(),
            r.recolors.to_string(),
            r.recolor_moves.to_string(),
        ]
    });
    for row in &rows {
        table.row(row);
    }
    out.push_str(&table.render());
    writeln!(
        out,
        "(queued requests re-enter FIFO on release; wait quantiles are rounds\n\
         spent parked — 0 for immediate grants)"
    )
    .unwrap();

    // Part B: freeze the peak active set at a fixed bandwidth and color
    // it offline. `colors` is what greedy needs when the whole set is
    // known up front; if it exceeds B the online queueing at that load
    // is congestion, not drift. Trial-and-failure routes the same frozen
    // set dynamically for a rounds-based reference point.
    let b_fixed: u16 = 4;
    let (engine, churn, spawn_paths) = churn_run(&net, b_fixed, 25, rounds, cfg.seed ^ 0x17B);
    let mut peak_coll = PathCollection::for_network(&net);
    for &seq in &churn.peak_set {
        // Admission sequence numbers are assigned in spawn order, so seq
        // s is exactly the s-th recorded path.
        peak_coll.push(spawn_paths[seq as usize].clone());
    }
    let m = peak_coll.metrics();
    writeln!(
        out,
        "\npeak set at B={b_fixed}: {} connections in system at round {} \
         (of {} spawned; online peak {} wavelengths)",
        churn.peak_set.len(),
        churn.peak_round,
        churn.spawned,
        engine.report().peak_wavelengths
    )
    .unwrap();
    let mut table = Table::new(&["comparator", "colors", "batches", "time", "rounds"]);
    for (name, order) in [
        ("greedy (arrival order)", ColorOrder::Input),
        ("greedy (longest first)", ColorOrder::LongestFirst),
    ] {
        let rwa = greedy_rwa(&peak_coll, order);
        table.row(&[
            name.to_string(),
            rwa.num_colors.to_string(),
            rwa.batches(b_fixed).to_string(),
            rwa.total_time(b_fixed, m.dilation, WORM_LEN).to_string(),
            "-".into(),
        ]);
    }
    table.row(&[
        "clique lower bound".to_string(),
        color_lower_bound(&peak_coll).to_string(),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    {
        let mut params = ProtocolParams::new(RouterConfig::serve_first(b_fixed), WORM_LEN);
        params.max_rounds = 1000;
        let t = run_protocol_trials(&net, &peak_coll, &params, cfg.trials, cfg.seed ^ 0x17C);
        assert_eq!(t.failures, 0, "trial-and-failure must route the peak set");
        table.row(&[
            "trial-and-failure".to_string(),
            "-".into(),
            "-".into(),
            fmt_f64(t.total_time.mean),
            fmt_f64(t.rounds.mean),
        ]);
    }
    out.push_str(&table.render());
    writeln!(
        out,
        "(colors > B means the peak population genuinely exceeds the spectrum —\n\
         the online queue is congestion; colors <= B bounds the drift the\n\
         recolor pass is there to repair)"
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_both_tables() {
        let out = run(&ExpConfig::quick());
        assert!(out.contains("E17"));
        assert!(out.contains("wait_p99"));
        assert!(out.contains("peak set at B=4"));
        assert!(out.contains("trial-and-failure"));
    }

    #[test]
    fn peak_set_rebuild_is_consistent() {
        let net = topologies::torus(2, 4);
        let (_, churn, spawn_paths) = churn_run(&net, 2, 0, 60, 99);
        assert!(churn.peak_in_system > 0);
        assert_eq!(churn.peak_set.len() as u32, churn.peak_in_system);
        for &seq in &churn.peak_set {
            assert!((seq as usize) < spawn_paths.len());
        }
    }
}
