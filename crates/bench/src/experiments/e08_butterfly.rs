//! E8 — Theorem 1.7: random q-functions through the butterfly's leveled
//! path system.
//!
//! Predicts `O(L·q·log n/B + √(log n / log(q log n))(L + log n + L·log n/B))`;
//! we sweep `q` and `B` at a fixed dimension and the dimension itself.

use crate::cache::InstanceCache;
use crate::harness::{par_points, run_protocol_trials, ExpConfig};
use optical_core::bounds::butterfly_bound;
use optical_core::ProtocolParams;
use optical_paths::select::butterfly::butterfly_qfunction_collection;
use optical_stats::{table::fmt_f64, Table};
use optical_topo::topologies::ButterflyCoords;
use optical_wdm::RouterConfig;
use optical_workloads::functions::random_qfunction;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fmt::Write as _;

/// Worm length.
pub const WORM_LEN: u32 = 4;

/// Run E8 and render its tables.
pub fn run(cfg: &ExpConfig) -> String {
    let dim: u32 = if cfg.quick { 5 } else { 8 };
    let qs: &[u32] = if cfg.quick { &[1, 2] } else { &[1, 2, 4, 8] };
    let bs: &[u16] = if cfg.quick { &[1] } else { &[1, 4] };

    let mut out = String::new();
    writeln!(
        out,
        "== E8: Thm 1.7 — random q-functions on the {dim}-dim butterfly =="
    )
    .unwrap();
    writeln!(
        out,
        "leveled input->output path system, serve-first routers, L={WORM_LEN}"
    )
    .unwrap();

    // Same butterfly network E1 already built (at matching dim).
    let net = InstanceCache::global().butterfly(dim);
    let coords = ButterflyCoords::new(dim, false);
    let rows = coords.rows() as usize;

    let mut table = Table::new(&[
        "q",
        "B",
        "n_paths",
        "C~",
        "rounds",
        "time",
        "pred(Thm1.7)",
        "t/pred",
    ]);
    // The q sweep fans out; the small inner B loop stays serial and
    // shares each q's collection.
    let row_groups = par_points(qs, |&q| {
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ (q as u64));
        let f = random_qfunction(q as usize, rows, &mut rng);
        let coll = butterfly_qfunction_collection(&net, &coords, &f);
        let m = coll.metrics();
        let mut group: Vec<[String; 8]> = Vec::with_capacity(bs.len());
        for &b in bs {
            let mut params = ProtocolParams::new(RouterConfig::serve_first(b), WORM_LEN);
            params.max_rounds = 500;
            let trials = run_protocol_trials(&net, &coll, &params, cfg.trials, cfg.seed);
            assert_eq!(trials.failures, 0, "E8 runs must complete");
            let pred = butterfly_bound(rows, q, WORM_LEN, b);
            group.push([
                q.to_string(),
                b.to_string(),
                m.n.to_string(),
                m.path_congestion.to_string(),
                fmt_f64(trials.rounds.mean),
                fmt_f64(trials.total_time.mean),
                fmt_f64(pred),
                fmt_f64(trials.total_time.mean / pred),
            ]);
        }
        group
    });
    for group in &row_groups {
        for row in group {
            table.row(row);
        }
    }
    out.push_str(&table.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_table() {
        let out = run(&ExpConfig::quick());
        assert!(out.contains("E8"));
        assert!(out.lines().count() >= 5);
    }
}
