//! E6 — Claim 2.6 and Figure 6, executably: blocking graphs are forests
//! under (leveled + serve-first) and under priority routers, while
//! serve-first on cyclic short-cut free collections produces genuine
//! blocking **cycles**.
//!
//! For each configuration we run with blocking recording on and feed every
//! round's `loser → blocker` map through the witness-tree analyzer.

use crate::cache::InstanceCache;
use crate::harness::{par_points, ExpConfig};
use optical_core::witness::analyze_blocking;
use optical_core::{DelaySchedule, ProtocolParams, ProtocolWorkspace, TrialAndFailure};
use optical_stats::{table::fmt_f64, SeedStream, Table};
use optical_wdm::{RouterConfig, TieRule};
use optical_workloads::Instance;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fmt::Write as _;
use std::sync::Arc;

/// Worm length.
pub const WORM_LEN: u32 = 4;
/// Fixed delay range.
pub const DELTA: u32 = 8;

struct CycleCount {
    rounds: f64,
    cycle_rounds: usize,
    total_cycles: usize,
    total_rounds: usize,
}

fn count_cycles(inst: &Instance, router: RouterConfig, cfg: &ExpConfig, salt: u64) -> CycleCount {
    // The paper's couplers are asynchronous, so "two heads in the same
    // step" does not exist there; under the discrete AllEliminated tie
    // rule such ties become mutual-blocking 2-cycles by construction.
    // Claim 2.6 is therefore checked under a winner-picking tie rule.
    let mut params = ProtocolParams::new(router.with_tie(TieRule::Random), WORM_LEN);
    params.schedule = DelaySchedule::Fixed { delta: DELTA };
    params.max_rounds = 2000;
    params.record_blocking = true;
    let proto = TrialAndFailure::new(&inst.net, &inst.coll, params);

    let mut ws = ProtocolWorkspace::new();
    let mut rounds_sum = 0f64;
    let mut cycle_rounds = 0usize;
    let mut total_cycles = 0usize;
    let mut total_rounds = 0usize;
    for seed in SeedStream::new(cfg.seed ^ salt).take(cfg.trials) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let report = proto.run_with(&mut ws, &mut rng);
        assert!(report.completed, "E6 runs must complete");
        rounds_sum += report.rounds_used() as f64;
        for r in &report.rounds {
            total_rounds += 1;
            let analysis = analyze_blocking(r.blocking.as_ref().unwrap());
            if !analysis.is_forest() {
                cycle_rounds += 1;
                total_cycles += analysis.cycles.len();
            }
        }
    }
    CycleCount {
        rounds: rounds_sum / cfg.trials as f64,
        cycle_rounds,
        total_cycles,
        total_rounds,
    }
}

/// Run E6 and render its table.
pub fn run(cfg: &ExpConfig) -> String {
    let structures: usize = if cfg.quick { 32 } else { 1024 };
    let mut out = String::new();
    writeln!(
        out,
        "== E6: blocking graphs — Claim 2.6 forests vs Figure 6 cycles =="
    )
    .unwrap();
    writeln!(
        out,
        "fixed Δ={DELTA}, L={WORM_LEN}, B=1; cycles can appear ONLY for serve-first on cyclic collections"
    )
    .unwrap();

    // The cache also shares the triangle instance between the two
    // triangle cases here and (at matching sizes) with E2/E3.
    let cache = InstanceCache::global();
    let triangle_inst = cache.triangle(structures, 8, WORM_LEN);
    let ladder_inst = cache.ladder(structures / 4, 4, 10, WORM_LEN);
    let bundle_inst = cache.bundle(structures / 8, 16, 8);

    let mut table = Table::new(&[
        "workload+rule",
        "rounds",
        "cycle_rounds",
        "cycles",
        "rounds_seen",
    ]);
    let cases: Vec<(&str, Arc<Instance>, RouterConfig, u64)> = vec![
        (
            "triangle/serve-first",
            Arc::clone(&triangle_inst),
            RouterConfig::serve_first(1),
            1,
        ),
        (
            "triangle/priority",
            triangle_inst,
            RouterConfig::priority(1),
            2,
        ),
        (
            "ladder/serve-first",
            ladder_inst,
            RouterConfig::serve_first(1),
            3,
        ),
        (
            "bundle/serve-first",
            bundle_inst,
            RouterConfig::serve_first(1),
            4,
        ),
    ];
    let rows = par_points(&cases, |(name, inst, router, salt)| {
        let c = count_cycles(inst, *router, cfg, *salt);
        // Claim 2.6: leveled + serve-first and priority must be forests.
        if *name != "triangle/serve-first" {
            assert_eq!(
                c.total_cycles, 0,
                "{name}: Claim 2.6 violated — blocking cycle found"
            );
        }
        [
            name.to_string(),
            fmt_f64(c.rounds),
            c.cycle_rounds.to_string(),
            c.total_cycles.to_string(),
            c.total_rounds.to_string(),
        ]
    });
    for row in &rows {
        table.row(row);
    }
    out.push_str(&table.render());
    writeln!(
        out,
        "(ladder and bundle collections are leveled; priority routers break cycles — Claim 2.6)"
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_asserts_claim_2_6() {
        let out = run(&ExpConfig::quick());
        assert!(out.contains("E6"));
        assert!(out.contains("triangle/serve-first"));
    }
}
