//! E16 — event-driven steady-state serving: sparse vs dense duty cycles.
//!
//! The round-stepped loop (E15) charges every source a Bernoulli coin
//! every round, so a mostly-idle network still pays
//! `O(sources * rounds)` scheduler work. The calendar-queue engine
//! ([`SteadyRun`]) wakes only sources whose next arrival event fires, so
//! its scheduler work is `O(arrivals)`. The first table sweeps the duty
//! cycle and reports both *counted* work terms — deterministic, so the
//! regenerated report stays byte-identical at any thread count; the
//! wall-clock receipt for the same gap lives in the perf gate
//! (`continuous/steady_1m_sparse` vs `continuous/steady_1m_sparse_stepped`).
//! The second table runs a four-tenant diurnal mix under the admission
//! policies (none / shed / defer) and reports the operational counters.

use crate::harness::{par_points, ExpConfig};
use optical_core::continuous::{
    AdmissionControl, ArrivalProcess, SteadyParams, SteadyRun, TrafficMix,
};
use optical_core::{DelaySchedule, ProtocolWorkspace};
use optical_paths::select::bfs::bfs_route_with;
use optical_stats::{table::fmt_f64, SeedStream, Table};
use optical_topo::algo::PathFinder;
use optical_topo::topologies;
use optical_wdm::RouterConfig;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::fmt::Write as _;

/// Worm length (matches E15 so the two reports compare directly).
pub const WORM_LEN: u32 = 4;

/// Run E16 and render its tables.
pub fn run(cfg: &ExpConfig) -> String {
    let side: u32 = if cfg.quick { 4 } else { 8 };
    let rounds: u32 = if cfg.quick { 60 } else { 400 };
    let net = topologies::torus(2, side);
    let sources = net.node_count() as u64;
    let mut out = String::new();
    writeln!(
        out,
        "== E16: event-driven steady-state serving — duty-cycle sweep, admission control =="
    )
    .unwrap();
    writeln!(
        out,
        "{}: calendar-queue arrivals, serve-first, fixed Δ=24, L={WORM_LEN}, {rounds} rounds",
        net.name()
    )
    .unwrap();

    // Duty-cycle sweep: stepped scheduler work is sources*rounds coins no
    // matter the load; event-driven work is one geometric draw per actual
    // arrival. The events/coins column is the asymptotic gap.
    let mut table = Table::new(&[
        "arrival",
        "stepped_coins",
        "arrival_events",
        "events/coins",
        "throughput",
        "mean_lat",
        "p50",
        "p99",
        "saturated",
    ]);
    let loads: &[f64] = if cfg.quick {
        &[0.01, 1.0]
    } else {
        &[0.001, 0.01, 0.1, 0.5, 1.0]
    };
    let trials = cfg.trials.clamp(1, 3);
    let rows = par_points(loads, |&arrival| {
        let mut ws = ProtocolWorkspace::new();
        let mut finder = PathFinder::new();
        let (mut events, mut thr, mut lat) = (0u64, 0.0, 0.0);
        let (mut p50, mut p99) = (0u64, 0u64);
        let mut any_sat = false;
        for seed in SeedStream::new(cfg.seed ^ 0xE16).take(trials) {
            let mut run = SteadyRun::new(
                &net,
                |_src: u32, rng: &mut dyn rand::RngCore, links: &mut Vec<_>| {
                    let n = net.node_count() as u32;
                    let s = rng.gen_range(0..n);
                    let d = rng.gen_range(0..n);
                    links.extend_from_slice(bfs_route_with(&mut finder, &net, s, d).links());
                },
                SteadyParams::bernoulli(
                    RouterConfig::serve_first(1),
                    WORM_LEN,
                    DelaySchedule::Fixed { delta: 24 },
                    arrival,
                    rounds,
                    rounds / 4,
                ),
            );
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let r = run.run_with(&mut ws, &mut rng);
            events += r.tenants.iter().map(|t| t.spawned).sum::<u64>();
            thr += r.throughput;
            lat += r.mean_latency_rounds;
            p50 += r.p50_latency_rounds;
            p99 += r.p99_latency_rounds;
            any_sat |= r.saturated;
        }
        let t = trials as f64;
        let coins = sources * u64::from(rounds) * trials as u64;
        [
            format!("{arrival:.3}"),
            coins.to_string(),
            events.to_string(),
            format!("{:.4}", events as f64 / coins as f64),
            fmt_f64(thr / t),
            fmt_f64(lat / t),
            fmt_f64(p50 as f64 / t),
            fmt_f64(p99 as f64 / t),
            if any_sat { "YES".into() } else { "no".into() },
        ]
    });
    for row in &rows {
        table.row(row);
    }
    out.push_str(&table.render());
    writeln!(
        out,
        "(stepped_coins is what a round-stepped scheduler pays; the event-driven\n\
         engine pays one draw per arrival — at sparse duty cycles the gap is the\n\
         speedup, measured for real by the continuous/steady_1m_* perf-gate keys)"
    )
    .unwrap();

    // Admission control under a heterogeneous four-tenant mix: a steady
    // Bernoulli floor, a Poisson tenant, an on/off burster, and a diurnal
    // day/night curve. Shed drops at the cap; defer parks and re-injects.
    let mix = TrafficMix {
        tenants: vec![
            ArrivalProcess::Bernoulli { prob: 0.3 },
            ArrivalProcess::Poisson { rate: 0.3 },
            ArrivalProcess::BurstyOnOff {
                on_prob: 0.8,
                mean_burst: 5.0,
                mean_off: 10.0,
            },
            ArrivalProcess::Diurnal {
                base: 0.3,
                amplitude: 0.9,
                period: rounds / 3,
            },
        ],
    };
    let cap = 2;
    let policies: [(&str, Option<AdmissionControl>); 3] = [
        ("none", None),
        ("shed(2)", Some(AdmissionControl::shed(cap))),
        ("defer(2,4)", Some(AdmissionControl::defer(cap, 4))),
    ];
    writeln!(
        out,
        "\nfour-tenant mix (bernoulli / poisson / bursty / diurnal), per-tenant cap {cap}:"
    )
    .unwrap();
    let mut table = Table::new(&[
        "admission",
        "spawned",
        "completed",
        "shed",
        "deferred",
        "peak_active",
        "p99",
    ]);
    let mut ws = ProtocolWorkspace::new();
    let mut finder = PathFinder::new();
    for (name, admission) in policies {
        let mut params = SteadyParams::bernoulli(
            RouterConfig::serve_first(1),
            WORM_LEN,
            DelaySchedule::Fixed { delta: 24 },
            0.0,
            rounds,
            rounds / 4,
        );
        params.mix = mix.clone();
        params.admission = admission;
        let mut run = SteadyRun::new(
            &net,
            |_src: u32, rng: &mut dyn rand::RngCore, links: &mut Vec<_>| {
                let n = net.node_count() as u32;
                let s = rng.gen_range(0..n);
                let d = rng.gen_range(0..n);
                links.extend_from_slice(bfs_route_with(&mut finder, &net, s, d).links());
            },
            params,
        );
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x16AD);
        let r = run.run_with(&mut ws, &mut rng);
        table.row(&[
            name.to_string(),
            r.spawned.to_string(),
            r.completed.to_string(),
            r.shed.to_string(),
            r.deferred.to_string(),
            r.peak_active.to_string(),
            r.p99_latency_rounds.to_string(),
        ]);
    }
    out.push_str(&table.render());
    writeln!(
        out,
        "(shed trades completed load for a hard in-flight bound; defer keeps the\n\
         arrivals but smears them past the burst — both cap peak_active)"
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_both_tables() {
        let out = run(&ExpConfig::quick());
        assert!(out.contains("E16"));
        assert!(out.contains("events/coins"));
        assert!(out.contains("shed(2)"));
    }

    #[test]
    fn sparse_duty_cycle_does_sublinear_scheduler_work() {
        let cfg = ExpConfig::quick();
        let out = run(&cfg);
        // The first data row is the sparsest load: its arrival_events
        // column must be far below its stepped_coins column.
        let row = out
            .lines()
            .find(|l| l.trim_start().starts_with("0.01"))
            .expect("sparse row present");
        let cols: Vec<&str> = row.split_whitespace().collect();
        let coins: u64 = cols[1].parse().expect("coins column");
        let events: u64 = cols[2].parse().expect("events column");
        assert!(events * 10 < coins, "sparse load: {events} vs {coins}");
    }
}
