//! E9 — Theorem 1.5: random functions on node-symmetric networks via
//! short-cut free shortest-path systems, priority routers.
//!
//! Two claims are checked: (a) a randomly chosen function routed through a
//! randomized shortest-path system has path congestion `O(D² + log n)`
//! (the Chernoff step in the theorem's proof), and (b) total routing time
//! tracks `O(L·D²/B + (√(log_D n) + loglog n)(D + L))`.

use crate::harness::{par_points, run_protocol_trials, ExpConfig};
use optical_core::bounds::node_symmetric_bound;
use optical_core::ProtocolParams;
use optical_paths::select::bfs::randomized_bfs_collection;
use optical_stats::{table::fmt_f64, Table};
use optical_topo::{topologies, Network};
use optical_wdm::RouterConfig;
use optical_workloads::functions::random_function;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fmt::Write as _;

/// Worm length.
pub const WORM_LEN: u32 = 4;

fn networks(quick: bool) -> Vec<Network> {
    if quick {
        vec![topologies::torus(2, 6), topologies::hypercube(5)]
    } else {
        vec![
            topologies::torus(2, 8),
            topologies::torus(2, 16),
            topologies::torus(2, 24),
            topologies::hypercube(6),
            topologies::hypercube(8),
            topologies::hypercube(10),
            topologies::wrapped_butterfly(4),
            topologies::wrapped_butterfly(6),
            topologies::cube_connected_cycles(4),
            topologies::cube_connected_cycles(6),
        ]
    }
}

/// Run E9 and render its table.
pub fn run(cfg: &ExpConfig) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "== E9: Thm 1.5 — node-symmetric networks, priority routers =="
    )
    .unwrap();
    writeln!(
        out,
        "random function, randomized BFS path system, B=1, L={WORM_LEN}"
    )
    .unwrap();

    let mut table = Table::new(&[
        "network",
        "n",
        "D",
        "C~",
        "D²+log n",
        "rounds",
        "time",
        "pred(Thm1.5)",
        "t/pred",
    ]);
    let rows = par_points(&networks(cfg.quick), |net| {
        let n = net.node_count();
        let diameter = net.diameter().expect("connected");
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ n as u64);
        let f = random_function(n, &mut rng);
        let coll = randomized_bfs_collection(net, &f, &mut rng);
        let m = coll.metrics();

        let mut params = ProtocolParams::new(RouterConfig::priority(1), WORM_LEN);
        params.max_rounds = 500;
        let trials = run_protocol_trials(net, &coll, &params, cfg.trials, cfg.seed);
        assert_eq!(trials.failures, 0, "E9 runs must complete");

        let cong_pred = (diameter as f64).powi(2) + (n as f64).log2();
        let pred = node_symmetric_bound(n, diameter, WORM_LEN, 1);
        [
            net.name().to_string(),
            n.to_string(),
            diameter.to_string(),
            m.path_congestion.to_string(),
            fmt_f64(cong_pred),
            fmt_f64(trials.rounds.mean),
            fmt_f64(trials.total_time.mean),
            fmt_f64(pred),
            fmt_f64(trials.total_time.mean / pred),
        ]
    });
    for row in &rows {
        table.row(row);
    }
    out.push_str(&table.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_table() {
        let out = run(&ExpConfig::quick());
        assert!(out.contains("E9"));
        assert!(out.contains("torus"));
    }
}
