//! E15 — continuous traffic: the load–latency curve and saturation
//! throughput of trial-and-failure routing.
//!
//! The paper's batch analysis answers "how long to drain n worms"; a
//! deployed network asks "what offered load can I sustain, at what
//! latency". We sweep Bernoulli per-node arrival rates on a torus and
//! report the classic hockey-stick: flat latency up to a knee, then
//! unbounded backlog. Bandwidth shifts the knee right.

use crate::harness::{par_points, ExpConfig};
use optical_core::continuous::{ContinuousParams, ContinuousRun};
use optical_core::{DelaySchedule, ProtocolWorkspace};
use optical_paths::select::bfs::bfs_route_with;
use optical_stats::{table::fmt_f64, SeedStream, Table};
use optical_topo::algo::PathFinder;
use optical_topo::topologies;
use optical_wdm::RouterConfig;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fmt::Write as _;

/// Worm length.
pub const WORM_LEN: u32 = 4;

/// Run E15 and render its table.
pub fn run(cfg: &ExpConfig) -> String {
    let side: u32 = if cfg.quick { 4 } else { 8 };
    let rounds: u32 = if cfg.quick { 60 } else { 200 };
    let net = topologies::torus(2, side);
    let mut out = String::new();
    writeln!(
        out,
        "== E15: continuous traffic — load-latency curve, saturation knee =="
    )
    .unwrap();
    writeln!(
        out,
        "{}: Bernoulli arrivals per node per round, serve-first, fixed Δ=24, L={WORM_LEN}, {rounds} rounds",
        net.name()
    )
    .unwrap();

    let mut table = Table::new(&[
        "B",
        "arrival",
        "offered/round",
        "throughput",
        "avg_active",
        "mean_lat",
        "p95_lat",
        "saturated",
    ]);
    let bs: &[u16] = if cfg.quick { &[1] } else { &[1, 2] };
    let loads: &[f64] = if cfg.quick {
        &[0.05, 0.5]
    } else {
        &[0.02, 0.05, 0.1, 0.2, 0.4, 0.7, 1.0]
    };
    let grid: Vec<(u16, f64)> = bs
        .iter()
        .flat_map(|&b| loads.iter().map(move |&arrival| (b, arrival)))
        .collect();
    let rows = par_points(&grid, |&(b, arrival)| {
        // Average a few seeds.
        let mut ws = ProtocolWorkspace::new();
        let mut finder = PathFinder::new();
        let (mut thr, mut act, mut lat, mut p95) = (0.0, 0.0, 0.0, 0.0);
        let mut any_sat = false;
        let trials = cfg.trials.clamp(1, 5);
        for seed in SeedStream::new(cfg.seed ^ 0xE15).take(trials) {
            let params = ContinuousParams {
                router: RouterConfig::serve_first(b),
                worm_len: WORM_LEN,
                schedule: DelaySchedule::Fixed { delta: 24 },
                arrival_prob: arrival,
                rounds,
                warmup: rounds / 4,
            };
            let mut run = ContinuousRun::new(
                &net,
                |rng: &mut dyn rand::RngCore| {
                    let n = net.node_count() as u32;
                    let s = rng.gen_range(0..n);
                    let d = rng.gen_range(0..n);
                    bfs_route_with(&mut finder, &net, s, d)
                },
                params,
            );
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let r = run.run_with(&mut ws, &mut rng);
            thr += r.throughput;
            act += r.avg_active;
            lat += r.mean_latency_rounds;
            p95 += r.p95_latency_rounds;
            any_sat |= r.saturated;
        }
        let t = trials as f64;
        [
            b.to_string(),
            format!("{arrival:.2}"),
            fmt_f64(arrival * net.node_count() as f64),
            fmt_f64(thr / t),
            fmt_f64(act / t),
            fmt_f64(lat / t),
            fmt_f64(p95 / t),
            if any_sat { "YES".into() } else { "no".into() },
        ]
    });
    for row in &rows {
        table.row(row);
    }
    out.push_str(&table.render());
    writeln!(
        out,
        "(throughput tracks offered load until the knee; past it the backlog diverges\n\
         and the run is flagged saturated — more bandwidth moves the knee right)"
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_table() {
        let out = run(&ExpConfig::quick());
        assert!(out.contains("E15"));
        assert!(out.contains("saturated"));
    }
}
