//! E2 — Main Theorem 1.2: short-cut free collections containing blocking
//! cycles, serve-first routers.
//!
//! Workload: the Figure 6 triangle structures at a *fixed* per-round delay
//! range, so each structure has a constant per-round probability of a
//! three-way mutual elimination. The expected number of rounds until the
//! last structure drains then grows **linearly in log n** — the hallmark
//! of Main Theorem 1.2 — matching the §3.2 closed form
//! `log(n/6) / (2 log(3B(Δ̄+L)/L))`.

use crate::cache::InstanceCache;
use crate::harness::{par_points, run_protocol_trials, ExpConfig};
use optical_core::bounds::triangle_lower_rounds;
use optical_core::{DelaySchedule, ProtocolParams};
use optical_stats::{table::fmt_f64, Table};
use optical_wdm::RouterConfig;
use std::fmt::Write as _;

/// Worm length (needs L ≥ 2 for blocking cycles).
pub const WORM_LEN: u32 = 4;
/// Fixed per-round delay range.
pub const DELTA: u32 = 8;
/// Path length of each triangle structure.
pub const DILATION: u32 = 8;

/// Parameters shared with E3 so the two tables are directly comparable.
pub fn protocol_params(router: RouterConfig) -> ProtocolParams {
    let mut params = ProtocolParams::new(router, WORM_LEN);
    params.schedule = DelaySchedule::Fixed { delta: DELTA };
    params.max_rounds = 2000;
    params
}

/// The structure-count sweep.
pub fn sweep(quick: bool) -> Vec<usize> {
    if quick {
        vec![8, 32]
    } else {
        vec![16, 64, 256, 1024, 4096, 16384]
    }
}

/// Run E2 and render its table.
pub fn run(cfg: &ExpConfig) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "== E2: Main Thm 1.2 — short-cut free + blocking cycles, serve-first =="
    )
    .unwrap();
    writeln!(
        out,
        "workload: Figure 6 triangles, fixed Δ={DELTA}, L={WORM_LEN}, B=1; rounds should grow ~ log n"
    )
    .unwrap();

    let mut table = Table::new(&["n", "rounds", "pred(§3.2)", "ratio", "time"]);
    let points = par_points(&sweep(cfg.quick), |&s| {
        // E3 sweeps the very same triangle instances; the cache shares
        // them between the two experiments.
        let inst = InstanceCache::global().triangle(s, DILATION, WORM_LEN);
        let params = protocol_params(RouterConfig::serve_first(1));
        let trials = run_protocol_trials(&inst.net, &inst.coll, &params, cfg.trials, cfg.seed);
        assert_eq!(trials.failures, 0, "E2 runs must complete");
        let n = inst.coll.len();
        let pred = triangle_lower_rounds(n, 1, DELTA, WORM_LEN);
        (
            n,
            trials.rounds.mean,
            [
                n.to_string(),
                fmt_f64(trials.rounds.mean),
                fmt_f64(pred),
                fmt_f64(trials.rounds.mean / pred),
                fmt_f64(trials.total_time.mean),
            ],
        )
    });
    let mut ns: Vec<f64> = Vec::new();
    let mut rounds: Vec<f64> = Vec::new();
    for (n, mean_rounds, row) in &points {
        ns.push(*n as f64);
        rounds.push(*mean_rounds);
        table.row(row);
    }
    out.push_str(&table.render());
    if ns.len() >= 3 {
        let log_fit = optical_stats::fit_against(&ns, &rounds, f64::log2);
        let sqrt_fit = optical_stats::fit_against(&ns, &rounds, |x| x.log2().sqrt());
        writeln!(
            out,
            "growth fit: rounds vs log2(n): slope {:.3} (R²={:.3}); vs sqrt(log2 n): R²={:.3}",
            log_fit.slope, log_fit.r2, sqrt_fit.r2
        )
        .unwrap();
        writeln!(
            out,
            "(a straight log-fit confirms the Thm 1.2 linear-in-log-n regime)"
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_table() {
        let out = run(&ExpConfig::quick());
        assert!(out.contains("E2"));
        assert!(out.lines().count() >= 5);
    }
}
