//! E5 — Type-2 bundles: congestion decay (Lemma 2.4) and `loglog`
//! draining (Lemma 2.10).
//!
//! A bundle is `C̃` identical paths. Under the paper schedule the
//! surviving path congestion should halve (at least) per round until it
//! hits the `O(log n)` floor — exactly Lemma 2.4 — and the number of
//! rounds to drain everything grows like `log log C̃`.

use crate::cache::InstanceCache;
use crate::harness::{par_points, ExpConfig};
use optical_core::{DelaySchedule, ProtocolParams, ProtocolWorkspace, TrialAndFailure};
use optical_stats::{table::fmt_f64, SeedStream, Summary, Table};
use optical_wdm::RouterConfig;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fmt::Write as _;

/// Worm length (short worms emphasize the congestion term).
pub const WORM_LEN: u32 = 2;
/// Bundle path length.
pub const DILATION: u32 = 8;

/// Run E5 and render its tables.
pub fn run(cfg: &ExpConfig) -> String {
    let sizes: &[usize] = if cfg.quick {
        &[64, 256]
    } else {
        &[256, 1024, 4096, 16384]
    };
    let mut out = String::new();
    writeln!(
        out,
        "== E5: type-2 bundles — Lemma 2.4 congestion decay, loglog draining =="
    )
    .unwrap();
    writeln!(
        out,
        "one bundle of C identical paths, paper schedule, B=1, L={WORM_LEN}"
    )
    .unwrap();

    // Part A: rounds to drain vs log log C.
    let mut table = Table::new(&["C", "rounds", "loglog C", "ratio", "time"]);
    let largest = *sizes.last().unwrap();
    let points = par_points(sizes, |&c| {
        let inst = InstanceCache::global().bundle(1, c, DILATION);
        let mut params = ProtocolParams::new(RouterConfig::serve_first(1), WORM_LEN);
        params.schedule = DelaySchedule::paper();
        params.max_rounds = 500;
        params.record_congestion = true;
        let proto = TrialAndFailure::new(&inst.net, &inst.coll, params);

        let mut ws = ProtocolWorkspace::new();
        let mut rounds = Vec::new();
        let mut times = Vec::new();
        let mut per_round_congestion: Vec<Vec<u32>> = Vec::new();
        for seed in SeedStream::new(cfg.seed).take(cfg.trials) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let report = proto.run_with(&mut ws, &mut rng);
            assert!(report.completed, "E5 bundle must drain");
            rounds.push(report.rounds_used() as f64);
            times.push(report.total_time as f64);
            per_round_congestion.push(
                report
                    .rounds
                    .iter()
                    .map(|r| r.congestion_before.unwrap())
                    .collect(),
            );
        }
        let rounds = Summary::of(&rounds);
        let loglog = (c.max(4) as f64).log2().log2();
        let row = [
            c.to_string(),
            fmt_f64(rounds.mean),
            fmt_f64(loglog),
            fmt_f64(rounds.mean / loglog),
            fmt_f64(Summary::of(&times).mean),
        ];

        // Part B (largest size only): per-round congestion vs the Lemma
        // 2.4 prediction max(C/2^{t-1}, log n).
        let mut decay_lines: Vec<String> = Vec::new();
        if c == largest {
            let log_n = (c as f64).log2();
            let max_rounds = per_round_congestion.iter().map(|v| v.len()).max().unwrap();
            let mut dt = Table::new(&["round", "mean_C_t", "pred max(C/2^t-1, log n)", "ratio"]);
            for t in 0..max_rounds {
                let vals: Vec<f64> = per_round_congestion
                    .iter()
                    .filter_map(|v| v.get(t).map(|&x| x as f64))
                    .collect();
                if vals.is_empty() {
                    break;
                }
                let mean = Summary::of(&vals).mean;
                let pred = (c as f64 / 2f64.powi(t as i32)).max(log_n);
                dt.row(&[
                    (t + 1).to_string(),
                    fmt_f64(mean),
                    fmt_f64(pred),
                    fmt_f64(mean / pred),
                ]);
            }
            decay_lines.push(format!("congestion decay for C = {c} (Lemma 2.4):"));
            decay_lines.push(dt.render());
        }
        (row, decay_lines)
    });
    for (row, _) in &points {
        table.row(row);
    }
    out.push_str(&table.render());
    for (_, decay_lines) in points {
        for l in decay_lines {
            out.push_str(&l);
            if !l.ends_with('\n') {
                out.push('\n');
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_tables() {
        let out = run(&ExpConfig::quick());
        assert!(out.contains("E5"));
        assert!(out.contains("Lemma 2.4"));
    }
}
