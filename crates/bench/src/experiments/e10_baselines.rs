//! E10 — baselines and ablations.
//!
//! Part A compares, on one workload across bandwidths: the paper's
//! serve-first and priority routers (no conversion), the Cypher et al.
//! wavelength-conversion regime, and classical offline greedy RWA.
//! Part B ablates protocol ingredients at a fixed bandwidth: delay
//! schedule, tie rule, and ideal vs physically simulated acks.

use crate::cache::InstanceCache;
use crate::harness::{par_points, run_protocol_trials, ExpConfig};
use optical_baselines::conversion::conversion_params;
use optical_baselines::rwa::{color_lower_bound, greedy_rwa, ColorOrder};
use optical_core::{AckMode, DelaySchedule, ProtocolParams};
use optical_stats::{table::fmt_f64, Table};
use optical_wdm::{RouterConfig, TieRule};
use std::fmt::Write as _;

/// Worm length.
pub const WORM_LEN: u32 = 4;

/// Run E10 and render its tables.
pub fn run(cfg: &ExpConfig) -> String {
    let side: u32 = if cfg.quick { 6 } else { 16 };
    let inst = InstanceCache::global().mesh_function(2, side, cfg.seed ^ 0xE10);
    let (net, coll) = (&inst.0, &inst.1);
    let m = coll.metrics();
    let mut out = String::new();
    writeln!(
        out,
        "== E10: baselines (conversion, offline RWA) and ablations =="
    )
    .unwrap();
    writeln!(
        out,
        "workload: random function on a 2-d mesh ({} paths, D={}, C~={}), L={WORM_LEN}",
        m.n, m.dilation, m.path_congestion
    )
    .unwrap();

    // Part A: rules x bandwidth, plus offline RWA.
    let bs: &[u16] = if cfg.quick { &[1, 4] } else { &[1, 2, 4, 8] };
    let rwa = greedy_rwa(coll, ColorOrder::LongestFirst);
    writeln!(
        out,
        "offline RWA: {} wavelengths needed (greedy, lower bound {})",
        rwa.num_colors,
        color_lower_bound(coll)
    )
    .unwrap();
    let mut table = Table::new(&[
        "B",
        "sf_rounds",
        "sf_time",
        "prio_rounds",
        "prio_time",
        "conv_rounds",
        "conv_time",
        "rwa_batches",
        "rwa_time",
    ]);
    let rows = par_points(bs, |&b| {
        let mut row: Vec<String> = vec![b.to_string()];
        for router in [RouterConfig::serve_first(b), RouterConfig::priority(b)] {
            let mut params = ProtocolParams::new(router, WORM_LEN);
            params.max_rounds = 500;
            let t = run_protocol_trials(net, coll, &params, cfg.trials, cfg.seed);
            assert_eq!(t.failures, 0, "E10 part A must complete");
            row.push(fmt_f64(t.rounds.mean));
            row.push(fmt_f64(t.total_time.mean));
        }
        let mut params = conversion_params(b, WORM_LEN);
        params.max_rounds = 500;
        let t = run_protocol_trials(net, coll, &params, cfg.trials, cfg.seed);
        assert_eq!(t.failures, 0);
        row.push(fmt_f64(t.rounds.mean));
        row.push(fmt_f64(t.total_time.mean));
        row.push(rwa.batches(b).to_string());
        row.push(rwa.total_time(b, m.dilation, WORM_LEN).to_string());
        row
    });
    for row in &rows {
        table.row(row);
    }
    out.push_str(&table.render());

    // Part B: ablations at fixed B = 2.
    writeln!(out, "ablations at B=2 (serve-first unless noted):").unwrap();
    let mut table = Table::new(&["variant", "rounds", "time", "duplicates"]);
    let schedules: Vec<(&str, DelaySchedule)> = vec![
        ("schedule: paper", DelaySchedule::paper()),
        ("schedule: paper-literal", DelaySchedule::paper_literal()),
        ("schedule: fixed Δ=64", DelaySchedule::Fixed { delta: 64 }),
        (
            "schedule: adaptive",
            DelaySchedule::Adaptive {
                c_cong: 2.0,
                c_log: 1.0,
            },
        ),
    ];
    // One flat variant list so every ablation runs as its own parallel
    // point; only the ack variants report real duplicate counts.
    let mut variants: Vec<(&'static str, ProtocolParams, bool)> = Vec::new();
    for (name, schedule) in schedules {
        let mut params = ProtocolParams::new(RouterConfig::serve_first(2), WORM_LEN);
        params.schedule = schedule;
        params.max_rounds = 1000;
        variants.push((name, params, false));
    }
    for (name, tie) in [
        ("tie: all-eliminated", TieRule::AllEliminated),
        ("tie: lowest-id", TieRule::LowestId),
        ("tie: random", TieRule::Random),
    ] {
        let mut params = ProtocolParams::new(RouterConfig::serve_first(2).with_tie(tie), WORM_LEN);
        params.max_rounds = 1000;
        variants.push((name, params, false));
    }
    for (name, wl) in [
        (
            "wavelengths: re-randomized",
            optical_core::priority::WavelengthStrategy::RandomPerRound,
        ),
        (
            "wavelengths: fixed per worm",
            optical_core::priority::WavelengthStrategy::FixedPerWorm,
        ),
        (
            "wavelengths: by path id",
            optical_core::priority::WavelengthStrategy::ByPathId,
        ),
    ] {
        let mut params = ProtocolParams::new(RouterConfig::serve_first(2), WORM_LEN);
        params.wavelengths = wl;
        params.max_rounds = 1000;
        variants.push((name, params, false));
    }
    for (name, ack) in [
        ("acks: ideal", AckMode::Ideal),
        (
            "acks: simulated (len L)",
            AckMode::Simulated { ack_len: None },
        ),
        (
            "acks: simulated (len 1)",
            AckMode::Simulated { ack_len: Some(1) },
        ),
    ] {
        let mut params = ProtocolParams::new(RouterConfig::serve_first(2), WORM_LEN);
        params.ack = ack;
        params.max_rounds = 1000;
        variants.push((name, params, true));
    }
    let rows = par_points(&variants, |(name, params, real_dups)| {
        let t = run_protocol_trials(net, coll, params, cfg.trials, cfg.seed);
        assert_eq!(t.failures, 0, "{name} must complete");
        [
            name.to_string(),
            fmt_f64(t.rounds.mean),
            fmt_f64(t.total_time.mean),
            if *real_dups {
                t.duplicates.to_string()
            } else {
                "0".into()
            },
        ]
    });
    for row in &rows {
        table.row(row);
    }
    out.push_str(&table.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_tables() {
        let out = run(&ExpConfig::quick());
        assert!(out.contains("E10"));
        assert!(out.contains("offline RWA"));
        assert!(out.contains("ablations"));
    }
}
