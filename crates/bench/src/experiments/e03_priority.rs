//! E3 — Main Theorem 1.3: priority routers on the *same* cyclic
//! short-cut free collections as E2.
//!
//! The paper's headline structural claim: for short-cut free path
//! collections the priority rule is more powerful than the serve-first
//! rule, because priorities break mutual-elimination cycles (Claim 2.6
//! then guarantees blocking forests). Measured rounds under priority
//! routers should grow markedly slower than E2's `log n` — and the
//! serve-first/priority ratio should widen with `n`.

use crate::cache::InstanceCache;
use crate::experiments::e02_shortcut_free::{protocol_params, sweep, DELTA, DILATION, WORM_LEN};
use crate::harness::{par_points, run_protocol_trials, ExpConfig};
use optical_core::bounds::{ladder_lower_rounds, triangle_lower_rounds};
use optical_stats::{table::fmt_f64, Table};
use optical_wdm::RouterConfig;
use std::fmt::Write as _;

/// Run E3 and render its table.
pub fn run(cfg: &ExpConfig) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "== E3: Main Thm 1.3 — priority vs serve-first on cyclic collections =="
    )
    .unwrap();
    writeln!(
        out,
        "same Figure 6 triangles as E2 (Δ={DELTA}, L={WORM_LEN}, B=1); priority breaks blocking cycles"
    )
    .unwrap();

    let mut table = Table::new(&[
        "n",
        "sf_rounds",
        "prio_rounds",
        "sf/prio",
        "pred_log",
        "pred_sqrt",
    ]);
    let rows = par_points(&sweep(cfg.quick), |&s| {
        // Same cached instances E2 built — the comparison is on the
        // identical workload by construction.
        let inst = InstanceCache::global().triangle(s, DILATION, WORM_LEN);
        let sf = run_protocol_trials(
            &inst.net,
            &inst.coll,
            &protocol_params(RouterConfig::serve_first(1)),
            cfg.trials,
            cfg.seed,
        );
        let prio = run_protocol_trials(
            &inst.net,
            &inst.coll,
            &protocol_params(RouterConfig::priority(1)),
            cfg.trials,
            cfg.seed ^ 0xABCD,
        );
        assert_eq!(sf.failures + prio.failures, 0, "E3 runs must complete");
        let n = inst.coll.len();
        [
            n.to_string(),
            fmt_f64(sf.rounds.mean),
            fmt_f64(prio.rounds.mean),
            fmt_f64(sf.rounds.mean / prio.rounds.mean),
            fmt_f64(triangle_lower_rounds(n, 1, DELTA, WORM_LEN)),
            fmt_f64(ladder_lower_rounds(n, 1, DELTA, WORM_LEN)),
        ]
    });
    for row in &rows {
        table.row(row);
    }
    out.push_str(&table.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_table() {
        let out = run(&ExpConfig::quick());
        assert!(out.contains("E3"));
        assert!(out.lines().count() >= 5);
    }
}
