//! E14 — message segmentation: one long worm or many short ones?
//!
//! The model prices a worm of length `L` at an `L`-step occupancy of every
//! link it crosses, and the §2.1 collision probability per contender pair
//! is `≈ 2L/(BΔ)`. Splitting each message into `m` worms of length `L/m`
//! shrinks the collision window per worm but multiplies the number of
//! contenders (and `C̃`) by `m` — the classic wormhole-vs-packet trade,
//! expressible entirely inside the paper's framework. We sweep `m` at
//! constant payload and report where the optimum falls.

use crate::cache::InstanceCache;
use crate::harness::{par_points, run_protocol_trials, ExpConfig};
use optical_core::ProtocolParams;
use optical_paths::PathCollection;
use optical_stats::{table::fmt_f64, Table};
use optical_wdm::RouterConfig;
use std::fmt::Write as _;

/// Total payload per source, in flits.
pub const PAYLOAD: u32 = 32;

/// Run E14 and render its table.
pub fn run(cfg: &ExpConfig) -> String {
    let side: u32 = if cfg.quick { 6 } else { 16 };
    let inst = InstanceCache::global().mesh_function(2, side, cfg.seed ^ 0xE14);
    let (net, base) = (&inst.0, &inst.1);

    let mut out = String::new();
    writeln!(
        out,
        "== E14: message segmentation — {PAYLOAD}-flit payload per source =="
    )
    .unwrap();
    writeln!(
        out,
        "{}: random function, serve-first B=2; m worms of {PAYLOAD}/m flits each",
        net.name()
    )
    .unwrap();

    let mut table = Table::new(&["m", "L", "worms", "C~", "rounds", "time", "goodput"]);
    let ms: &[u32] = if cfg.quick {
        &[1, 4]
    } else {
        &[1, 2, 4, 8, 16]
    };
    let rows = par_points(ms, |&m| {
        let worm_len = PAYLOAD / m;
        // m copies of every path — each segment is an independent worm.
        let mut coll = PathCollection::for_network(net);
        for _ in 0..m {
            for (_, p) in base.iter() {
                coll.push_ref(p);
            }
        }
        let metrics = coll.metrics();
        let mut params = ProtocolParams::new(RouterConfig::serve_first(2), worm_len);
        params.max_rounds = 500;
        let trials = run_protocol_trials(net, &coll, &params, cfg.trials, cfg.seed);
        assert_eq!(trials.failures, 0, "E14 must complete");
        let goodput = base.len() as f64 * PAYLOAD as f64 / trials.total_time.mean;
        [
            m.to_string(),
            worm_len.to_string(),
            coll.len().to_string(),
            metrics.path_congestion.to_string(),
            fmt_f64(trials.rounds.mean),
            fmt_f64(trials.total_time.mean),
            fmt_f64(goodput),
        ]
    });
    for row in &rows {
        table.row(row);
    }
    out.push_str(&table.render());
    writeln!(
        out,
        "(L·C̃/B is invariant under segmentation, but the per-round term trades the\n\
         collision window 2L/(BΔ) against the contender count — the optimum is interior)"
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_table() {
        let out = run(&ExpConfig::quick());
        assert!(out.contains("E14"));
        assert!(out.contains("goodput"));
    }
}
