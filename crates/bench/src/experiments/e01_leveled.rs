//! E1 — Main Theorem 1.1 (upper bound): leveled collections under
//! serve-first routers.
//!
//! Workload: a random function routed through the `k`-dimensional
//! butterfly's unique leveled input→output path system, for growing `k`.
//! Measured rounds and total protocol time are compared against the
//! theorem's closed forms; their ratio should stay roughly flat as `n`
//! grows (the hidden constant).

use crate::cache::InstanceCache;
use crate::harness::{par_points, run_sim_trials, ExpConfig};
use optical_core::bounds::{self, BoundParams};
use optical_core::SimBuilder;
use optical_paths::select::butterfly::butterfly_qfunction_collection;
use optical_stats::{table::fmt_f64, Table};
use optical_topo::topologies::ButterflyCoords;
use optical_wdm::RouterConfig;
use optical_workloads::functions::random_function;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fmt::Write as _;

/// Worm length used throughout E1.
pub const WORM_LEN: u32 = 4;

/// Run E1 and render its table.
pub fn run(cfg: &ExpConfig) -> String {
    let dims: &[u32] = if cfg.quick {
        &[4, 5]
    } else {
        &[6, 7, 8, 9, 10, 11]
    };
    let mut out = String::new();
    writeln!(
        out,
        "== E1: Main Thm 1.1 — leveled collections, serve-first routers =="
    )
    .unwrap();
    writeln!(
        out,
        "workload: random function on the k-dim butterfly path system; B=1, L={WORM_LEN}"
    )
    .unwrap();

    let mut table = Table::new(&[
        "n",
        "D",
        "C~",
        "rounds",
        "pred_rounds",
        "r/pred",
        "time",
        "pred_time",
        "t/pred",
    ]);
    let rows = par_points(dims, |&k| {
        let net = InstanceCache::global().butterfly(k);
        let coords = ButterflyCoords::new(k, false);
        let rows = coords.rows() as usize;
        let mut wl_rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ (k as u64) << 32);
        let f = random_function(rows, &mut wl_rng);
        let coll = butterfly_qfunction_collection(&net, &coords, &f);
        debug_assert!(coll.is_leveled());

        let sim = SimBuilder::new(&net, &coll)
            .router(RouterConfig::serve_first(1))
            .worm_len(WORM_LEN)
            .max_rounds(300)
            .build();
        let trials = run_sim_trials(&sim, cfg.trials, cfg.seed);
        assert_eq!(trials.failures, 0, "E1 runs must complete");

        let m = coll.metrics();
        let bp = BoundParams {
            n: m.n,
            dilation: m.dilation,
            path_congestion: m.path_congestion,
            worm_len: WORM_LEN,
            bandwidth: 1,
        };
        let pred_rounds = bounds::rounds_leveled_or_priority(&bp);
        let pred_time = bounds::upper_bound_leveled(&bp);
        [
            m.n.to_string(),
            m.dilation.to_string(),
            m.path_congestion.to_string(),
            fmt_f64(trials.rounds.mean),
            fmt_f64(pred_rounds),
            fmt_f64(trials.rounds.mean / pred_rounds),
            fmt_f64(trials.total_time.mean),
            fmt_f64(pred_time),
            fmt_f64(trials.total_time.mean / pred_time),
        ]
    });
    for row in &rows {
        table.row(row);
    }
    out.push_str(&table.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_table() {
        let out = run(&ExpConfig::quick());
        assert!(out.contains("E1"));
        // Header + separator + 2 sweep points.
        assert!(out.lines().count() >= 5);
    }
}
