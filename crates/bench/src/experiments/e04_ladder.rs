//! E4 — Figure 5 / §2.2 lower bound: type-1 ladder structures.
//!
//! Each ladder chains `k ≈ √(log n)` paths so that worm `i+1`, starting
//! `d = ⌊(L−1)/2⌋+1` levels ahead, eliminates worm `i` whenever their
//! delays land within `±⌊(L−1)/2⌋`. At a fixed delay range the expected
//! rounds until all ladders drain grows like `√(log_α n)` — strictly
//! slower than E2's `log n`, and the measurable content of the
//! lower-bound terms in Main Theorems 1.1/1.3.

use crate::cache::InstanceCache;
use crate::harness::{par_points, run_protocol_trials, ExpConfig};
use optical_core::bounds::ladder_lower_rounds;
use optical_core::{DelaySchedule, ProtocolParams};
use optical_stats::{table::fmt_f64, Table};
use optical_wdm::RouterConfig;
use optical_workloads::structures::ladder_overlap;
use std::fmt::Write as _;

/// Worm length.
pub const WORM_LEN: u32 = 4;
/// Fixed delay range (same as E2 for comparability).
pub const DELTA: u32 = 8;

/// Run E4 and render its table.
pub fn run(cfg: &ExpConfig) -> String {
    let totals: &[usize] = if cfg.quick {
        &[64, 256]
    } else {
        &[256, 1024, 4096, 16384, 65536]
    };
    let mut out = String::new();
    writeln!(
        out,
        "== E4: Figure 5 ladders — the √(log n) lower-bound structures =="
    )
    .unwrap();
    writeln!(
        out,
        "fixed Δ={DELTA}, L={WORM_LEN}, B=1, k=⌈√log₂ n⌉ paths per ladder; rounds should grow ~ √(log n)"
    )
    .unwrap();

    let mut table = Table::new(&["n", "k", "rounds", "pred(§2.2)", "ratio", "time"]);
    let points = par_points(totals, |&total| {
        let k = ((total as f64).log2().sqrt().ceil() as usize).max(2);
        let structures = (total / k).max(1);
        let d = ladder_overlap(WORM_LEN);
        let dilation = (k as u32 * d + 2).max(8);
        let inst = InstanceCache::global().ladder(structures, k, dilation, WORM_LEN);

        let mut params = ProtocolParams::new(RouterConfig::serve_first(1), WORM_LEN);
        params.schedule = DelaySchedule::Fixed { delta: DELTA };
        params.max_rounds = 2000;
        let trials = run_protocol_trials(&inst.net, &inst.coll, &params, cfg.trials, cfg.seed);
        assert_eq!(trials.failures, 0, "E4 runs must complete");

        let n = inst.coll.len();
        let pred = ladder_lower_rounds(n, 1, DELTA, WORM_LEN);
        (
            n,
            trials.rounds.mean,
            [
                n.to_string(),
                k.to_string(),
                fmt_f64(trials.rounds.mean),
                fmt_f64(pred),
                fmt_f64(trials.rounds.mean / pred),
                fmt_f64(trials.total_time.mean),
            ],
        )
    });
    let mut ns: Vec<f64> = Vec::new();
    let mut rounds_series: Vec<f64> = Vec::new();
    for (n, mean_rounds, row) in &points {
        ns.push(*n as f64);
        rounds_series.push(*mean_rounds);
        table.row(row);
    }
    out.push_str(&table.render());
    if ns.len() >= 3 {
        let sqrt_fit = optical_stats::fit_against(&ns, &rounds_series, |x| x.log2().sqrt());
        let log_fit = optical_stats::fit_against(&ns, &rounds_series, f64::log2);
        writeln!(
            out,
            "growth fit: rounds vs sqrt(log2 n): slope {:.3} (R²={:.3}); vs log2(n): R²={:.3}",
            sqrt_fit.slope, sqrt_fit.r2, log_fit.r2
        )
        .unwrap();
        writeln!(
            out,
            "(the sqrt-fit should match at least as well as the straight log fit)"
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_table() {
        let out = run(&ExpConfig::quick());
        assert!(out.contains("E4"));
        assert!(out.lines().count() >= 5);
    }
}
