//! Protocol-level hot-path benchmarks: a full `TrialAndFailure` run over
//! a routed torus permutation, with and without per-round congestion
//! recording, plus the cost split between a fresh workspace per run and a
//! reused one. These are the criterion mirrors of the `perf_gate` binary
//! (see `scripts/bench.sh`), which times the same workload without the
//! criterion dependency for the committed-JSON gate.

use criterion::{criterion_group, criterion_main, Criterion};
use optical_core::{ProtocolParams, ProtocolWorkspace, TrialAndFailure};
use optical_paths::select::bfs::bfs_route;
use optical_paths::PathCollection;
use optical_topo::{topologies, Network};
use optical_wdm::RouterConfig;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

/// Same workload as `perf_gate`: a random permutation on a 32x32 torus
/// routed by BFS (1024 paths over 4096 directed links).
fn torus_permutation() -> (Network, PathCollection) {
    let net = topologies::torus(2, 32);
    let n = net.node_count() as u32;
    let mut dests: Vec<u32> = (0..n).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    dests.shuffle(&mut rng);
    let mut coll = PathCollection::for_network(&net);
    for (s, &d) in dests.iter().enumerate() {
        coll.push(bfs_route(&net, s as u32, d));
    }
    (net, coll)
}

fn params(record_congestion: bool) -> ProtocolParams {
    let mut p = ProtocolParams::new(RouterConfig::serve_first(2), 4);
    p.max_rounds = 200;
    p.record_congestion = record_congestion;
    p
}

fn bench_protocol_run(c: &mut Criterion) {
    let (net, coll) = torus_permutation();
    let mut group = c.benchmark_group("protocol/run_1024");
    group.sample_size(20);
    for (name, record) in [("cong_on", true), ("cong_off", false)] {
        let proto = TrialAndFailure::new(&net, &coll, params(record));
        let mut ws = ProtocolWorkspace::new();
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(13);
                black_box(proto.run_with(&mut ws, &mut rng).total_time)
            })
        });
    }
    group.finish();
}

fn bench_workspace_reuse(c: &mut Criterion) {
    let (net, coll) = torus_permutation();
    let proto = TrialAndFailure::new(&net, &coll, params(false));
    let mut group = c.benchmark_group("protocol/workspace");
    group.sample_size(20);
    group.bench_function("fresh_per_run", |b| {
        b.iter(|| {
            let mut ws = ProtocolWorkspace::new();
            let mut rng = ChaCha8Rng::seed_from_u64(13);
            black_box(proto.run_with(&mut ws, &mut rng).total_time)
        })
    });
    let mut ws = ProtocolWorkspace::new();
    group.bench_function("reused", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(13);
            black_box(proto.run_with(&mut ws, &mut rng).total_time)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_protocol_run, bench_workspace_reuse);
criterion_main!(benches);
