//! Benchmarks of the supporting machinery: path selection, collection
//! metrics (the `C̃` computation), property validation, and the greedy
//! RWA baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use optical_baselines::rwa::churn::{run_churn, ChurnParams, HoldTime};
use optical_baselines::rwa::online::{OnlineRwa, RecomputeRwa};
use optical_baselines::rwa::{greedy_rwa, ColorOrder};
use optical_core::continuous::TrafficMix;
use optical_obs::NullSink;
use optical_paths::select::grid::mesh_route;
use optical_paths::{metrics, properties, PathCollection};
use optical_topo::{topologies, GridCoords};
use optical_workloads::functions::random_function;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn mesh_collection(side: u32) -> PathCollection {
    let net = topologies::mesh(2, side);
    let coords = GridCoords::new(2, side);
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let f = random_function(net.node_count(), &mut rng);
    PathCollection::from_function(&net, &f, |s, d| mesh_route(&net, &coords, s, d))
}

fn bench_path_congestion(c: &mut Criterion) {
    let mut group = c.benchmark_group("paths/path_congestion");
    for &side in &[16u32, 32, 64] {
        let coll = mesh_collection(side);
        group.bench_with_input(
            BenchmarkId::from_parameter(side * side),
            &coll,
            |b, coll| {
                b.iter(|| metrics::path_congestion(coll));
            },
        );
    }
    group.finish();
}

fn bench_selection(c: &mut Criterion) {
    let net = topologies::mesh(2, 64);
    let coords = GridCoords::new(2, 64);
    let mut rng = ChaCha8Rng::seed_from_u64(10);
    let f = random_function(net.node_count(), &mut rng);
    c.bench_function("paths/dimension_order_4096", |b| {
        b.iter(|| PathCollection::from_function(&net, &f, |s, d| mesh_route(&net, &coords, s, d)));
    });
}

fn bench_properties(c: &mut Criterion) {
    let coll = mesh_collection(16);
    c.bench_function("paths/is_shortcut_free_256", |b| {
        b.iter(|| properties::is_shortcut_free(&coll));
    });
    c.bench_function("paths/leveling_256", |b| {
        b.iter(|| properties::leveling(&coll));
    });
}

fn bench_rwa(c: &mut Criterion) {
    let mut group = c.benchmark_group("rwa/greedy");
    for &side in &[16u32, 32] {
        let coll = mesh_collection(side);
        group.bench_with_input(
            BenchmarkId::from_parameter(side * side),
            &coll,
            |b, coll| {
                b.iter(|| greedy_rwa(coll, ColorOrder::LongestFirst));
            },
        );
    }
    group.finish();
}

/// Criterion twin of the perf-gate churn pair (`rwa/online_churn_1m` vs
/// `rwa/online_churn_recompute`), scaled down to criterion-friendly
/// size: the same fixed-hold Bernoulli churn script through the
/// incremental engine and the recompute-per-event reference.
fn bench_online_rwa(c: &mut Criterion) {
    let w = optical_bench::million::TorusWalkWorkload::new(64, 2);
    let nsrc = w.net.node_count() as u32;
    let params = ChurnParams {
        rounds: 48,
        mix: TrafficMix::bernoulli(0.01),
        hold: HoldTime::Fixed(8),
        capture_peak: false,
        checkpoint_every: 0,
    };
    let mut group = c.benchmark_group("rwa/online_churn");
    group.bench_function("incremental", |b| {
        b.iter(|| {
            let mut engine = OnlineRwa::new(w.net.link_count(), 8, 0);
            let mut rng = ChaCha8Rng::seed_from_u64(53);
            run_churn(
                &mut engine,
                nsrc,
                |src, _rng, links| links.extend_from_slice(w.links_of(src as usize)),
                &params,
                &mut rng,
                &mut NullSink,
            )
            .spawned
        });
    });
    group.bench_function("recompute", |b| {
        b.iter(|| {
            let mut engine = RecomputeRwa::new(w.net.link_count(), 8);
            let mut rng = ChaCha8Rng::seed_from_u64(53);
            run_churn(
                &mut engine,
                nsrc,
                |src, _rng, links| links.extend_from_slice(w.links_of(src as usize)),
                &params,
                &mut rng,
                &mut NullSink,
            )
            .spawned
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_path_congestion,
    bench_selection,
    bench_properties,
    bench_rwa,
    bench_online_rwa
);
criterion_main!(benches);
