//! Microbenchmarks of the round engine: cost of one simulated round as a
//! function of worm count, path length, bandwidth and collision rule.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use optical_paths::PathCollection;
use optical_topo::topologies;
use optical_wdm::{Engine, RouterConfig, TransmissionSpec};
use optical_workloads::functions::random_function;
use optical_workloads::structures::bundle;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn specs_for<'a>(
    coll: &'a PathCollection,
    delta: u32,
    b: u16,
    len: u32,
    rng: &mut impl Rng,
) -> Vec<TransmissionSpec<'a>> {
    coll.iter()
        .map(|(i, p)| TransmissionSpec {
            links: p.links(),
            start: rng.gen_range(0..delta),
            wavelength: rng.gen_range(0..b),
            priority: i as u64,
            length: len,
        })
        .collect()
}

fn bench_round_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/round_scaling");
    for &worms in &[256usize, 1024, 4096] {
        let inst = bundle(worms / 16, 16, 16);
        group.throughput(Throughput::Elements(worms as u64));
        group.bench_with_input(BenchmarkId::from_parameter(worms), &worms, |bch, _| {
            let mut engine = Engine::new(inst.coll.link_count(), RouterConfig::serve_first(2));
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            let specs = specs_for(&inst.coll, 64, 2, 4, &mut rng);
            bch.iter(|| engine.run(&specs, &mut rng));
        });
    }
    group.finish();
}

fn bench_rules(c: &mut Criterion) {
    let net = topologies::mesh(2, 32);
    let coords = optical_topo::GridCoords::new(2, 32);
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let f = random_function(net.node_count(), &mut rng);
    let coll = PathCollection::from_function(&net, &f, |s, d| {
        optical_paths::select::grid::mesh_route(&net, &coords, s, d)
    });
    let mut group = c.benchmark_group("engine/rules");
    for (name, cfg) in [
        ("serve_first", RouterConfig::serve_first(4)),
        ("priority", RouterConfig::priority(4)),
        ("conversion", RouterConfig::conversion(4)),
    ] {
        group.bench_function(name, |bch| {
            let mut engine = Engine::new(net.link_count(), cfg);
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            let specs = specs_for(&coll, 128, 4, 8, &mut rng);
            bch.iter(|| engine.run(&specs, &mut rng));
        });
    }
    group.finish();
}

/// Contention-kernel extremes on the perf-gate workload (a 1024-path
/// random permutation on a 32x32 torus): `dense` launches every worm at
/// step 0 on wavelength 0, so nearly every arrival lands in a
/// multi-candidate group (the slow resolver path); `sparse` staggers
/// starts so almost every arrival is a lone head at a vacant slot (the
/// bitmask short-circuit). Criterion twins of the committed
/// `engine/resolve_dense` / `engine/resolve_sparse` gate keys.
fn bench_contention_kernel(c: &mut Criterion) {
    use optical_paths::select::bfs::bfs_route;
    use rand::seq::SliceRandom;

    let net = topologies::torus(2, 32);
    let n = net.node_count() as u32;
    let mut dests: Vec<u32> = (0..n).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    dests.shuffle(&mut rng);
    let mut coll = PathCollection::for_network(&net);
    for (s, &d) in dests.iter().enumerate() {
        coll.push(bfs_route(&net, s as u32, d));
    }

    let mut group = c.benchmark_group("engine/contention");
    for (name, stagger) in [("dense_round", false), ("sparse_round", true)] {
        let specs: Vec<TransmissionSpec<'_>> = (0..coll.len())
            .map(|i| TransmissionSpec {
                links: coll.path(i).links(),
                start: if stagger { 4 * i as u32 } else { 0 },
                wavelength: if stagger { (i % 2) as u16 } else { 0 },
                priority: i as u64,
                length: 4,
            })
            .collect();
        group.throughput(Throughput::Elements(coll.len() as u64));
        group.bench_function(name, |bch| {
            let mut engine = Engine::new(coll.link_count(), RouterConfig::serve_first(2));
            bch.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(19);
                engine.run(&specs, &mut rng).makespan
            });
        });
    }
    group.finish();
}

/// Intra-trial sharded rounds at 1/2/8 shards on the dense contention
/// workload (the `engine/round_sharded_{2,8}` twins of the perf-gate
/// keys). Results are bit-identical across the row — see the determinism
/// matrix in `crates/wdm/tests/golden_engine.rs` — so any spread between
/// the bars is pure execution cost, not a workload change.
fn bench_sharded_round(c: &mut Criterion) {
    use optical_paths::select::bfs::bfs_route;
    use rand::seq::SliceRandom;

    let net = topologies::torus(2, 32);
    let n = net.node_count() as u32;
    let mut dests: Vec<u32> = (0..n).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    dests.shuffle(&mut rng);
    let mut coll = PathCollection::for_network(&net);
    for (s, &d) in dests.iter().enumerate() {
        coll.push(bfs_route(&net, s as u32, d));
    }
    let specs: Vec<TransmissionSpec<'_>> = (0..coll.len())
        .map(|i| TransmissionSpec {
            links: coll.path(i).links(),
            start: 0,
            wavelength: (i % 2) as u16,
            priority: i as u64,
            length: 4,
        })
        .collect();

    let mut group = c.benchmark_group("engine/round_sharded");
    for &shards in &[1usize, 2, 8] {
        group.throughput(Throughput::Elements(coll.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(shards), &shards, |bch, &s| {
            let mut engine = Engine::new(coll.link_count(), RouterConfig::serve_first(2));
            engine.set_shards(s);
            bch.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(19);
                engine.run(&specs, &mut rng).makespan
            });
        });
    }
    group.finish();
}

/// The million-node case: `torus(2, 1024)`, one 8-hop worm per node,
/// dense launch (the Criterion twin of the `engine/round_1m` gate key).
/// Opt-in via `OPTICAL_BENCH_1M=1` — the workload holds ~4.2M-link
/// engine state and a round takes seconds, which would dominate an
/// ordinary `cargo bench` sweep.
fn bench_million_node_round(c: &mut Criterion) {
    if std::env::var_os("OPTICAL_BENCH_1M").is_none() {
        return;
    }
    let w = optical_bench::million::TorusWalkWorkload::new(1024, 8);
    let specs = w.dense_specs(2, 4);
    let mut group = c.benchmark_group("engine/round_1m");
    group.sample_size(10);
    for &shards in &[1usize, 2, 4, 8] {
        group.throughput(Throughput::Elements(specs.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(shards), &shards, |bch, &s| {
            let mut engine = Engine::new(w.net.link_count(), RouterConfig::serve_first(2));
            engine.set_shards(s);
            engine.reserve_worms(specs.len());
            bch.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(19);
                engine.run(&specs, &mut rng).makespan
            });
        });
    }
    group.finish();
}

fn bench_worm_length(c: &mut Criterion) {
    let inst = bundle(64, 16, 16);
    let mut group = c.benchmark_group("engine/worm_length");
    for &len in &[1u32, 8, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |bch, &len| {
            let mut engine = Engine::new(inst.coll.link_count(), RouterConfig::serve_first(2));
            let mut rng = ChaCha8Rng::seed_from_u64(4);
            let specs = specs_for(&inst.coll, 256, 2, len, &mut rng);
            bch.iter(|| engine.run(&specs, &mut rng));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_round_scaling,
    bench_rules,
    bench_contention_kernel,
    bench_sharded_round,
    bench_million_node_round,
    bench_worm_length
);
criterion_main!(benches);
