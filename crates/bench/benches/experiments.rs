//! One Criterion group per paper artifact (E1–E15): benchmarks the code
//! path that regenerates each table at a reduced, fixed size, so
//! regressions in any experiment's pipeline are caught by `cargo bench`.

use criterion::{criterion_group, criterion_main, Criterion};
use optical_bench::experiments;
use optical_bench::ExpConfig;

fn cfg() -> ExpConfig {
    ExpConfig {
        quick: true,
        seed: 1997,
        trials: 2,
        timings: false,
        obs: false,
    }
}

macro_rules! exp_bench {
    ($fn_name:ident, $module:ident, $label:literal) => {
        fn $fn_name(c: &mut Criterion) {
            let mut group = c.benchmark_group("experiments");
            group.sample_size(10);
            group.bench_function($label, |b| {
                b.iter(|| experiments::$module::run(&cfg()));
            });
            group.finish();
        }
    };
}

exp_bench!(bench_e01, e01_leveled, "e01_leveled_thm1.1");
exp_bench!(bench_e02, e02_shortcut_free, "e02_shortcut_free_thm1.2");
exp_bench!(bench_e03, e03_priority, "e03_priority_thm1.3");
exp_bench!(bench_e04, e04_ladder, "e04_ladder_fig5");
exp_bench!(bench_e05, e05_bundle, "e05_bundle_lemma2.4");
exp_bench!(bench_e06, e06_triangle_cycles, "e06_cycles_fig6");
exp_bench!(bench_e07, e07_mesh, "e07_mesh_thm1.6");
exp_bench!(bench_e08, e08_butterfly, "e08_butterfly_thm1.7");
exp_bench!(bench_e09, e09_node_symmetric, "e09_node_symmetric_thm1.5");
exp_bench!(bench_e10, e10_baselines, "e10_baselines_ablations");
exp_bench!(bench_e11, e11_extensions, "e11_extensions_sec4");
exp_bench!(bench_e12, e12_adversarial, "e12_adversarial_valiant");
exp_bench!(bench_e13, e13_failures, "e13_fiber_cuts");
exp_bench!(bench_e14, e14_segmentation, "e14_segmentation");
exp_bench!(bench_e15, e15_continuous, "e15_continuous_load");

criterion_group!(
    benches, bench_e01, bench_e02, bench_e03, bench_e04, bench_e05, bench_e06, bench_e07,
    bench_e08, bench_e09, bench_e10, bench_e11, bench_e12, bench_e13, bench_e14, bench_e15
);
criterion_main!(benches);
