//! Pins the flat-array property kernels against the `HashMap` reference
//! implementations in [`optical_paths::properties::reference`].
//!
//! The flat kernels (`leveling`, `is_shortcut_free`,
//! `consistent_link_offsets`) replace the historical map-based code on the
//! hot paths; the reference module keeps that code as an executable
//! specification. These property tests generate randomized collections —
//! dimension-order torus routes (leveled-ish, overlapping) and random
//! walks (non-simple, direction-reversing, usually *not* leveled) — and
//! require bit-for-bit agreement on every property, including the exact
//! per-node levels (both sides normalize each constraint component to a
//! minimum level of 0).

use optical_paths::properties::{self, reference};
use optical_paths::{Path, PathCollection};
use optical_topo::{topologies, Network, NodeId};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Shortest paths between random pairs on a 2-d torus. Overlapping but
/// well-behaved: frequently leveled and short-cut free.
fn torus_paths(side: u32, n_paths: usize, seed: u64) -> (Network, PathCollection) {
    let net = topologies::torus(2, side);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut c = PathCollection::for_network(&net);
    let n = net.node_count() as u32;
    for _ in 0..n_paths {
        let s = rng.gen_range(0..n);
        let d = rng.gen_range(0..n);
        let nodes = net.shortest_path(s, d).unwrap();
        c.push(Path::from_nodes(&net, &nodes));
    }
    (net, c)
}

/// Random walks on a 2-d torus: non-simple (nodes and links repeat),
/// direction-reversing, and usually not leveled — the adversarial side of
/// the input space, where the occurrence bookkeeping matters most.
fn torus_walks(side: u32, n_paths: usize, max_len: usize, seed: u64) -> (Network, PathCollection) {
    let net = topologies::torus(2, side);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut c = PathCollection::for_network(&net);
    let n = net.node_count() as u32;
    for _ in 0..n_paths {
        let len = rng.gen_range(0..=max_len);
        let mut v: NodeId = rng.gen_range(0..n);
        let mut nodes = vec![v];
        for _ in 0..len {
            let nbrs: Vec<NodeId> = net.neighbors(v).map(|(t, _)| t).collect();
            v = nbrs[rng.gen_range(0..nbrs.len())];
            nodes.push(v);
        }
        c.push(Path::from_nodes(&net, &nodes));
    }
    (net, c)
}

/// Assert that every flat kernel agrees with its reference on `c`.
fn assert_kernels_match(c: &PathCollection) -> Result<(), TestCaseError> {
    // Leveling: same verdict, and on success the same per-node levels.
    let flat = properties::leveling(c);
    let map = reference::leveling(c);
    prop_assert_eq!(flat.is_some(), map.is_some());
    if let (Some(flat), Some(map)) = (flat, map) {
        prop_assert!(properties::check_leveling(c, &flat));
        let got: Vec<(NodeId, u32)> = flat.iter().collect();
        let mut want: Vec<(NodeId, u32)> = map.into_iter().collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }
    prop_assert_eq!(properties::is_leveled(c), reference::leveling(c).is_some());

    prop_assert_eq!(
        properties::is_shortcut_free(c),
        reference::is_shortcut_free(c)
    );
    prop_assert_eq!(
        properties::consistent_link_offsets(c),
        reference::consistent_link_offsets(c)
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn shortest_path_collections_match(
        side in 3u32..7,
        n_paths in 1usize..24,
        seed in 0u64..1000,
    ) {
        let (_, c) = torus_paths(side, n_paths, seed);
        assert_kernels_match(&c)?;
    }

    #[test]
    fn random_walk_collections_match(
        side in 3u32..6,
        n_paths in 1usize..12,
        max_len in 1usize..12,
        seed in 0u64..1000,
    ) {
        let (_, c) = torus_walks(side, n_paths, max_len, seed);
        assert_kernels_match(&c)?;
    }

    #[test]
    fn mixed_collections_match(
        side in 3u32..6,
        n_paths in 1usize..10,
        seed in 0u64..1000,
    ) {
        // Shortest paths and walks in one collection: leveled components
        // next to unleveled ones, simple paths next to non-simple ones.
        let (net, mut c) = torus_paths(side, n_paths, seed);
        let (_, walks) = torus_walks(side, n_paths, 8, seed ^ 0x5eed);
        for (_, p) in walks.iter() {
            c.push(Path::from_nodes(&net, p.nodes()));
        }
        assert_kernels_match(&c)?;
    }
}

/// Fixed regression inputs the sweeps in the paper actually exercise.
#[test]
fn butterfly_system_matches_reference() {
    use optical_topo::topologies::ButterflyCoords;
    let net = topologies::butterfly(4);
    let coords = ButterflyCoords::new(4, false);
    let mut c = PathCollection::for_network(&net);
    for r in 0..16 {
        c.push(Path::from_nodes(&net, &coords.route(r, 15 - r)));
    }
    let flat = properties::leveling(&c).expect("butterfly system is leveled");
    let map = reference::leveling(&c).expect("reference agrees");
    for (v, l) in flat.iter() {
        assert_eq!(map.get(&v), Some(&l));
    }
    assert_eq!(flat.len(), map.len());
    assert!(properties::is_shortcut_free(&c));
    assert!(reference::is_shortcut_free(&c));
    assert!(properties::consistent_link_offsets(&c));
    assert!(reference::consistent_link_offsets(&c));
}
