//! The leveled input→output path system of the butterfly (Theorem 1.7).
//!
//! The routing logic itself lives in
//! [`optical_topo::topologies::ButterflyCoords::route`]; this module wraps
//! it into [`Path`] values and whole q-function collections.

use crate::collection::PathCollection;
use crate::path::Path;
use optical_topo::topologies::ButterflyCoords;
use optical_topo::Network;

/// The unique leveled route from input row `src_row` to output row
/// `dst_row`.
pub fn butterfly_route(
    net: &Network,
    coords: &ButterflyCoords,
    src_row: u32,
    dst_row: u32,
) -> Path {
    Path::from_nodes(net, &coords.route(src_row, dst_row))
}

/// Collection realizing a q-function from inputs to outputs: entry
/// `(j, r)` of `f` (flattened as `f[j * rows + r]`) is the destination row
/// of the `j`-th message originating at input row `r`.
pub fn butterfly_qfunction_collection(
    net: &Network,
    coords: &ButterflyCoords,
    f: &[u32],
) -> PathCollection {
    assert!(
        f.len().is_multiple_of(coords.rows() as usize),
        "q-function length must be a multiple of rows"
    );
    let mut c = PathCollection::for_network(net);
    for (i, &dst) in f.iter().enumerate() {
        let src_row = (i % coords.rows() as usize) as u32;
        c.push(butterfly_route(net, coords, src_row, dst));
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;
    use optical_topo::topologies;

    #[test]
    fn identity_function_routes_straight() {
        let net = topologies::butterfly(3);
        let coords = ButterflyCoords::new(3, false);
        let p = butterfly_route(&net, &coords, 5, 5);
        assert_eq!(p.len(), 3, "still traverses all levels");
        for &n in p.nodes() {
            assert_eq!(coords.coords_of(n).1, 5, "row never changes");
        }
    }

    #[test]
    fn qfunction_collection_is_leveled() {
        let net = topologies::butterfly(3);
        let coords = ButterflyCoords::new(3, false);
        // q = 2: two messages per input, destinations reversed/shifted.
        let mut f = Vec::new();
        for r in 0..8u32 {
            f.push(7 - r);
        }
        for r in 0..8u32 {
            f.push((r + 3) % 8);
        }
        let c = butterfly_qfunction_collection(&net, &coords, &f);
        assert_eq!(c.len(), 16);
        assert!(properties::is_leveled(&c));
        assert!(properties::is_shortcut_free(&c));
        assert_eq!(c.dilation(), 3);
    }

    #[test]
    fn all_to_one_congestion() {
        // Every input sends to output row 0: last-level links into row 0
        // carry everything.
        let net = topologies::butterfly(3);
        let coords = ButterflyCoords::new(3, false);
        let f: Vec<u32> = vec![0; 8];
        let c = butterfly_qfunction_collection(&net, &coords, &f);
        let m = c.metrics();
        assert_eq!(m.n, 8);
        assert_eq!(
            m.congestion, 4,
            "each level-2 link into output 0 carries half"
        );
        // Paths from rows 4..8 reach output 0 through the *other* level-2
        // link, so they share the output node but no link with rows 0..4.
        assert_eq!(m.path_congestion, 3);
    }

    #[test]
    #[should_panic(expected = "multiple of rows")]
    fn rejects_ragged_qfunction() {
        let net = topologies::butterfly(2);
        let coords = ButterflyCoords::new(2, false);
        butterfly_qfunction_collection(&net, &coords, &[0, 1, 2]);
    }
}
