//! Dimension-order ("e-cube") routing on meshes and tori.
//!
//! Corrects dimension 0 first, then dimension 1, and so on. On a torus each
//! dimension takes the shorter way around (ties broken toward increasing
//! coordinates). Dimension-order path systems on meshes are short-cut free
//! and are the strategy underlying Theorem 1.6.

use crate::path::Path;
use optical_topo::{GridCoords, Network, NodeId};

/// Dimension-order route on a *mesh* (no wraparound).
pub fn mesh_route(net: &Network, coords: &GridCoords, src: NodeId, dst: NodeId) -> Path {
    let mut nodes = vec![src];
    let mut cur = coords.coords_of(src);
    let goal = coords.coords_of(dst);
    for dim in 0..coords.dims() as usize {
        while cur[dim] != goal[dim] {
            let step: i32 = if goal[dim] > cur[dim] { 1 } else { -1 };
            cur[dim] = (cur[dim] as i64 + step as i64) as u32;
            nodes.push(coords.node_of(&cur));
        }
    }
    Path::from_nodes(net, &nodes)
}

/// Dimension-order route on a *torus*, taking the shorter wrap direction
/// per dimension (ties toward +1).
pub fn torus_route(net: &Network, coords: &GridCoords, src: NodeId, dst: NodeId) -> Path {
    let side = coords.side() as i64;
    let mut nodes = vec![src];
    let mut cur = coords.coords_of(src);
    let goal = coords.coords_of(dst);
    for dim in 0..coords.dims() as usize {
        let fwd = (goal[dim] as i64 - cur[dim] as i64).rem_euclid(side);
        let step: i64 = if fwd <= side - fwd { 1 } else { -1 };
        while cur[dim] != goal[dim] {
            cur[dim] = ((cur[dim] as i64 + step).rem_euclid(side)) as u32;
            nodes.push(coords.node_of(&cur));
        }
    }
    Path::from_nodes(net, &nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::PathCollection;
    use crate::properties;
    use optical_topo::topologies;

    #[test]
    fn mesh_route_is_shortest() {
        let net = topologies::mesh(2, 5);
        let coords = GridCoords::new(2, 5);
        let src = coords.node_of(&[0, 0]);
        let dst = coords.node_of(&[4, 3]);
        let p = mesh_route(&net, &coords, src, dst);
        assert_eq!(p.len(), 7); // 4 + 3
        assert_eq!(p.source(), src);
        assert_eq!(p.dest(), dst);
        assert!(p.is_simple());
    }

    #[test]
    fn mesh_route_corrects_dim0_first() {
        let net = topologies::mesh(2, 4);
        let coords = GridCoords::new(2, 4);
        let p = mesh_route(
            &net,
            &coords,
            coords.node_of(&[0, 0]),
            coords.node_of(&[2, 2]),
        );
        let mid = p.nodes()[2];
        assert_eq!(coords.coords_of(mid), vec![2, 0], "x fixed before y");
    }

    #[test]
    fn torus_route_wraps_short_way() {
        let net = topologies::torus(1, 8);
        let coords = GridCoords::new(1, 8);
        let p = torus_route(&net, &coords, 0, 6);
        assert_eq!(p.len(), 2, "0 -> 7 -> 6 wraps backwards");
        let p = torus_route(&net, &coords, 0, 4);
        assert_eq!(p.len(), 4, "tie goes forward");
        assert_eq!(p.nodes()[1], 1);
    }

    #[test]
    fn zero_length_route() {
        let net = topologies::mesh(2, 3);
        let coords = GridCoords::new(2, 3);
        let p = mesh_route(&net, &coords, 4, 4);
        assert!(p.is_empty());
    }

    #[test]
    fn torus_route_matches_distance() {
        let net = topologies::torus(2, 5);
        let coords = GridCoords::new(2, 5);
        for (s, d) in [(0u32, 25u32 - 1), (3, 17), (6, 6), (24, 0)] {
            let p = torus_route(&net, &coords, s, d);
            assert_eq!(
                p.len() as u32,
                net.distance(s, d).unwrap(),
                "{s}->{d} not shortest"
            );
        }
    }

    #[test]
    fn mesh_dimension_order_system_is_shortcut_free() {
        // All-pairs dimension-order system on a small mesh must be
        // short-cut free (paths that meet, separate, and meet again do not
        // occur in x-then-y routing with consistent directions; distances
        // along shared segments agree).
        let net = topologies::mesh(2, 3);
        let coords = GridCoords::new(2, 3);
        let mut c = PathCollection::for_network(&net);
        for s in 0..9u32 {
            for d in 0..9u32 {
                c.push(mesh_route(&net, &coords, s, d));
            }
        }
        assert!(properties::is_shortcut_free(&c));
        assert!(properties::consistent_link_offsets(&c));
    }

    #[test]
    fn mesh_congestion_of_transpose() {
        // Transpose permutation on an n x n mesh has known hot spots; just
        // sanity-check that congestion is positive and dilation = 2(n-1).
        let n = 4u32;
        let net = topologies::mesh(2, n);
        let coords = GridCoords::new(2, n);
        let mut c = PathCollection::for_network(&net);
        for x in 0..n {
            for y in 0..n {
                c.push(mesh_route(
                    &net,
                    &coords,
                    coords.node_of(&[x, y]),
                    coords.node_of(&[y, x]),
                ));
            }
        }
        let m = c.metrics();
        assert_eq!(m.dilation, 2 * (n - 1));
        assert!(m.congestion >= n - 1);
    }
}
