//! Bit-fixing routing on the hypercube: correct address bits from least to
//! most significant. The classic oblivious strategy whose random
//! intermediate-destination variant underlies many routing analyses.

use crate::path::Path;
use optical_topo::{Network, NodeId};

/// Bit-fixing route from `src` to `dst` on the `dim`-dimensional hypercube
/// produced by [`optical_topo::topologies::hypercube`].
pub fn bit_fixing_route(net: &Network, dim: u32, src: NodeId, dst: NodeId) -> Path {
    assert!(src < (1 << dim) && dst < (1 << dim), "node out of range");
    let mut nodes = Vec::with_capacity((src ^ dst).count_ones() as usize + 1);
    let mut cur = src;
    nodes.push(cur);
    for bit in 0..dim {
        let mask = 1u32 << bit;
        if (cur ^ dst) & mask != 0 {
            cur ^= mask;
            nodes.push(cur);
        }
    }
    debug_assert_eq!(cur, dst);
    Path::from_nodes(net, &nodes)
}

/// Valiant-style two-phase route: `src → via → dst`, each phase bit-fixing.
/// Used to turn worst-case permutations into two random-function phases.
pub fn valiant_route(net: &Network, dim: u32, src: NodeId, via: NodeId, dst: NodeId) -> Path {
    let first = bit_fixing_route(net, dim, src, via);
    let second = bit_fixing_route(net, dim, via, dst);
    let mut nodes = first.nodes().to_vec();
    nodes.extend_from_slice(&second.nodes()[1..]);
    Path::from_nodes(net, &nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::PathCollection;
    use crate::properties;
    use optical_topo::topologies;

    #[test]
    fn route_length_is_hamming_distance() {
        let net = topologies::hypercube(5);
        for (s, d) in [(0u32, 31u32), (5, 9), (12, 12), (1, 0)] {
            let p = bit_fixing_route(&net, 5, s, d);
            assert_eq!(p.len() as u32, (s ^ d).count_ones());
            assert_eq!(p.source(), s);
            assert_eq!(p.dest(), d);
        }
    }

    #[test]
    fn bits_fixed_lsb_first() {
        let net = topologies::hypercube(4);
        let p = bit_fixing_route(&net, 4, 0b0000, 0b1010);
        assert_eq!(p.nodes(), &[0b0000, 0b0010, 0b1010]);
    }

    #[test]
    fn all_pairs_system_is_shortcut_free() {
        let net = topologies::hypercube(3);
        let mut c = PathCollection::for_network(&net);
        for s in 0..8u32 {
            for d in 0..8u32 {
                c.push(bit_fixing_route(&net, 3, s, d));
            }
        }
        assert!(properties::is_shortcut_free(&c));
    }

    #[test]
    fn valiant_route_concatenates() {
        let net = topologies::hypercube(4);
        let p = valiant_route(&net, 4, 3, 12, 5);
        assert_eq!(p.source(), 3);
        assert_eq!(p.dest(), 5);
        assert!(p.nodes().contains(&12));
        assert_eq!(
            p.len() as u32,
            (3u32 ^ 12).count_ones() + (12u32 ^ 5).count_ones()
        );
    }

    #[test]
    fn valiant_degenerate_phases() {
        let net = topologies::hypercube(3);
        let p = valiant_route(&net, 3, 2, 2, 2);
        assert!(p.is_empty());
        let p = valiant_route(&net, 3, 2, 2, 7);
        assert_eq!(p.len() as u32, (2u32 ^ 7).count_ones());
    }
}
