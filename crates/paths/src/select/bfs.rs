//! BFS shortest-path systems.
//!
//! Theorem 1.5 relies on a short-cut free path *system* (a path for every
//! node pair) with optimal dilation in node-symmetric networks, from
//! Meyer auf der Heide & Scheideler \[27\]. We realize the practical analog:
//! shortest paths taken from per-source BFS trees. Paths out of one BFS
//! tree never shortcut each other, and a randomized tie-broken variant
//! spreads load the way \[27\]'s randomized system does.

use crate::collection::PathCollection;
use crate::path::Path;
use optical_topo::algo::{bfs, PathFinder};
use optical_topo::{Network, NodeId, INVALID_NODE};
use rand::seq::SliceRandom;
use rand::Rng;

/// Shortest path `src → dst` from the deterministic BFS tree of `src`.
///
/// # Panics
/// If `dst` is unreachable from `src`.
pub fn bfs_route(net: &Network, src: NodeId, dst: NodeId) -> Path {
    bfs_route_with(&mut PathFinder::new(), net, src, dst)
}

/// [`bfs_route`] on a caller-held [`PathFinder`] — identical paths, but
/// batches of queries (one route per workload pair, or one per spawned
/// worm in continuous traffic) skip the per-query scratch allocations.
pub fn bfs_route_with(finder: &mut PathFinder, net: &Network, src: NodeId, dst: NodeId) -> Path {
    let nodes = finder
        .shortest_path(net, src, dst)
        .unwrap_or_else(|| panic!("{dst} unreachable from {src}"));
    Path::from_nodes(net, &nodes)
}

/// A randomized BFS tree: parents are chosen uniformly among all
/// shortest-path predecessors, so each `path_to` is a uniformly random
/// member of a canonical shortest-path family.
pub struct RandomizedBfsTree {
    dist: Vec<u32>,
    parent: Vec<NodeId>,
    source: NodeId,
}

impl RandomizedBfsTree {
    /// Build a randomized shortest-path tree from `source`.
    pub fn new(net: &Network, source: NodeId, rng: &mut impl Rng) -> Self {
        let base = bfs(net, source);
        let n = net.node_count();
        let mut parent = vec![INVALID_NODE; n];
        // Every node picks a uniformly random predecessor at distance - 1.
        let mut preds: Vec<NodeId> = Vec::new();
        for v in net.nodes() {
            let dv = base.dist[v as usize];
            if v == source || dv == u32::MAX {
                continue;
            }
            preds.clear();
            preds.extend(
                net.neighbors(v)
                    .filter(|&(t, _)| base.dist[t as usize] + 1 == dv)
                    .map(|(t, _)| t),
            );
            parent[v as usize] = *preds.choose(rng).expect("BFS predecessor exists");
        }
        RandomizedBfsTree {
            dist: base.dist,
            parent,
            source,
        }
    }

    /// Shortest path source→`dst`, or `None` if unreachable.
    pub fn path_to(&self, net: &Network, dst: NodeId) -> Option<Path> {
        if self.dist[dst as usize] == u32::MAX {
            return None;
        }
        let mut nodes = Vec::with_capacity(self.dist[dst as usize] as usize + 1);
        let mut cur = dst;
        nodes.push(cur);
        while cur != self.source {
            cur = self.parent[cur as usize];
            nodes.push(cur);
        }
        nodes.reverse();
        Some(Path::from_nodes(net, &nodes))
    }
}

/// Collection realizing the function `f` via *randomized* per-source BFS
/// trees: one tree per distinct source, each with fresh random
/// tie-breaking. This approximates the randomized short-cut free path
/// system of Theorem 1.5 on node-symmetric networks.
pub fn randomized_bfs_collection(
    net: &Network,
    f: &[NodeId],
    rng: &mut impl Rng,
) -> PathCollection {
    let mut c = PathCollection::for_network(net);
    for (src, &dst) in f.iter().enumerate() {
        let tree = RandomizedBfsTree::new(net, src as NodeId, rng);
        c.push(tree.path_to(net, dst).expect("network must be connected"));
    }
    c
}

/// Deterministic variant of [`randomized_bfs_collection`].
pub fn bfs_collection(net: &Network, f: &[NodeId]) -> PathCollection {
    let mut finder = PathFinder::new();
    let mut c = PathCollection::for_network(net);
    for (src, &dst) in f.iter().enumerate() {
        c.push(bfs_route_with(&mut finder, net, src as NodeId, dst));
    }
    c
}

/// Shortest path `src → dst` avoiding *dead* links (both directions of a
/// cut fiber should be marked). Returns `None` when the failure
/// disconnects the pair — the rerouting primitive for fiber-cut recovery.
pub fn bfs_route_avoiding(
    net: &Network,
    dead_links: &[bool],
    src: NodeId,
    dst: NodeId,
) -> Option<Path> {
    bfs_route_avoiding_with(&mut PathFinder::new(), net, dead_links, src, dst)
}

/// [`bfs_route_avoiding`] on a caller-held [`PathFinder`] — identical
/// paths; batches of queries (routability sweeps, aware-mode workload
/// construction) skip the per-query scratch allocations.
pub fn bfs_route_avoiding_with(
    finder: &mut PathFinder,
    net: &Network,
    dead_links: &[bool],
    src: NodeId,
    dst: NodeId,
) -> Option<Path> {
    assert_eq!(dead_links.len(), net.link_count(), "mask length mismatch");
    finder
        .shortest_path_filtered(net, src, dst, |l| !dead_links[l as usize])
        .map(|nodes| Path::from_nodes(net, &nodes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use optical_topo::topologies;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn bfs_route_is_shortest() {
        let net = topologies::torus(2, 5);
        for (s, d) in [(0u32, 12u32), (3, 3), (24, 1)] {
            let p = bfs_route(&net, s, d);
            assert_eq!(p.len() as u32, net.distance(s, d).unwrap());
        }
    }

    #[test]
    fn randomized_tree_paths_are_shortest() {
        let net = topologies::hypercube(4);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let tree = RandomizedBfsTree::new(&net, 0, &mut rng);
        for d in net.nodes() {
            let p = tree.path_to(&net, d).unwrap();
            assert_eq!(p.len() as u32, net.distance(0, d).unwrap());
            assert_eq!(p.source(), 0);
            assert_eq!(p.dest(), d);
        }
    }

    #[test]
    fn randomized_trees_vary_with_seed() {
        let net = topologies::torus(2, 4);
        let far = 10; // a node with multiple shortest paths from 0
        let mut distinct = std::collections::HashSet::new();
        for seed in 0..20 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let tree = RandomizedBfsTree::new(&net, 0, &mut rng);
            distinct.insert(tree.path_to(&net, far).unwrap().nodes().to_vec());
        }
        assert!(
            distinct.len() > 1,
            "tie-breaking should produce different paths"
        );
    }

    #[test]
    fn collection_for_shift_function() {
        let net = topologies::ring(8);
        let f: Vec<NodeId> = (0..8).map(|v| (v + 3) % 8).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let c = randomized_bfs_collection(&net, &f, &mut rng);
        assert_eq!(c.len(), 8);
        assert_eq!(c.dilation(), 3);
        let cd = bfs_collection(&net, &f);
        assert_eq!(cd.dilation(), 3);
    }

    #[test]
    fn route_avoiding_detours_around_cut() {
        let net = topologies::ring(8);
        // Cut the fiber {0, 1} in both directions.
        let l = net.link_between(0, 1).unwrap();
        let mut dead = vec![false; net.link_count()];
        dead[l as usize] = true;
        dead[net.reverse_link(l) as usize] = true;
        // 0 -> 1 must now go the long way around: 7 hops.
        let p = bfs_route_avoiding(&net, &dead, 0, 1).unwrap();
        assert_eq!(p.len(), 7);
        assert!(!p.links().contains(&l));
        // Unaffected pair keeps its shortest path.
        let q = bfs_route_avoiding(&net, &dead, 2, 4).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn route_avoiding_reports_disconnection() {
        let net = topologies::chain(4);
        let l = net.link_between(1, 2).unwrap();
        let mut dead = vec![false; net.link_count()];
        dead[l as usize] = true;
        dead[net.reverse_link(l) as usize] = true;
        assert!(bfs_route_avoiding(&net, &dead, 0, 3).is_none());
        assert!(bfs_route_avoiding(&net, &dead, 0, 1).is_some());
    }

    #[test]
    fn unreachable_destination_is_none() {
        let mut b = optical_topo::NetworkBuilder::new("islands", 3);
        b.add_edge(0, 1);
        let net = b.build();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let tree = RandomizedBfsTree::new(&net, 0, &mut rng);
        assert!(tree.path_to(&net, 2).is_none());
    }
}
