//! Path-selection strategies ("the first part of a routing scheme", §1.1).
//!
//! * [`grid`] — dimension-order (e-cube) routing for meshes and tori,
//!   the strategy behind Theorem 1.6;
//! * [`hypercube`] — bit-fixing routing;
//! * [`butterfly`] — the unique leveled input→output system of Theorem 1.7;
//! * [`bfs`] — BFS shortest-path systems (deterministic or randomized),
//!   standing in for the short-cut free path systems of Theorem 1.5;
//! * [`valiant`] — generic two-phase randomized routing (random
//!   intermediate destinations) for taming adversarial permutations.

pub mod bfs;
pub mod butterfly;
pub mod grid;
pub mod hypercube;
pub mod valiant;
