//! Generic Valiant (two-phase randomized) routing: send each message to a
//! uniformly random intermediate node first, then on to its destination.
//!
//! Turns any adversarial permutation into two random-function phases —
//! the classical trick for taming the congestion spikes of patterns like
//! transpose or tornado, at the price of doubling the dilation. Within
//! the paper's framework this is a *path-selection* strategy (§1.1: "we
//! assume that some suitable strategy for the path selection is given"),
//! and its effect on `C̃` feeds straight into the Main Theorem bounds.

use crate::collection::PathCollection;
use crate::path::Path;
use optical_topo::{Network, NodeId};
use rand::Rng;

/// Concatenate a two-phase route `src → via → dst` from a base router.
///
/// The phase boundary is a genuine buffer-free splice: the worm traverses
/// `route(src, via)` immediately followed by `route(via, dst)` as one
/// path. Degenerate phases (empty legs) splice cleanly.
pub fn valiant_route(
    net: &Network,
    src: NodeId,
    via: NodeId,
    dst: NodeId,
    mut route: impl FnMut(NodeId, NodeId) -> Path,
) -> Path {
    let first = route(src, via);
    let second = route(via, dst);
    debug_assert_eq!(first.dest(), via);
    debug_assert_eq!(second.source(), via);
    let mut nodes = first.nodes().to_vec();
    nodes.extend_from_slice(&second.nodes()[1..]);
    Path::from_nodes(net, &nodes)
}

/// Collection realizing `f` with uniformly random intermediates.
pub fn valiant_collection(
    net: &Network,
    f: &[NodeId],
    rng: &mut impl Rng,
    mut route: impl FnMut(NodeId, NodeId) -> Path,
) -> PathCollection {
    let n = net.node_count();
    let mut coll = PathCollection::for_network(net);
    for (src, &dst) in f.iter().enumerate() {
        let via = rng.gen_range(0..n) as NodeId;
        coll.push(valiant_route(net, src as NodeId, via, dst, &mut route));
    }
    coll
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::grid::mesh_route;
    use optical_topo::{topologies, GridCoords};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn route_splices_cleanly() {
        let net = topologies::mesh(2, 4);
        let coords = GridCoords::new(2, 4);
        let p = valiant_route(&net, 0, 10, 15, |a, b| mesh_route(&net, &coords, a, b));
        assert_eq!(p.source(), 0);
        assert_eq!(p.dest(), 15);
        assert!(p.nodes().contains(&10));
    }

    #[test]
    fn degenerate_phases() {
        let net = topologies::mesh(2, 3);
        let coords = GridCoords::new(2, 3);
        let route = |a, b| mesh_route(&net, &coords, a, b);
        assert_eq!(valiant_route(&net, 4, 4, 4, route).len(), 0);
        let p = valiant_route(&net, 0, 0, 8, |a, b| mesh_route(&net, &coords, a, b));
        assert_eq!(p.source(), 0);
        assert_eq!(p.dest(), 8);
    }

    #[test]
    fn valiant_tames_bit_reversal_congestion() {
        // Bit-reversal under bit-fixing is the textbook oblivious-routing
        // killer: link congestion 2^(d/2 - 1) (= 16 at d = 10). Valiant's
        // random intermediates flatten it to O(d / log d)-ish (~6).
        use crate::select::hypercube::bit_fixing_route;
        let d = 10u32;
        let net = topologies::hypercube(d);
        let n = net.node_count();
        let f: Vec<NodeId> = (0..n)
            .map(|i| (i as u32).reverse_bits() >> (32 - d))
            .collect();
        let direct =
            PathCollection::from_function(&net, &f, |a, b| bit_fixing_route(&net, d, a, b));
        assert_eq!(
            direct.congestion(),
            1 << (d / 2 - 1),
            "known bit-reversal hot spot"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let two_phase =
            valiant_collection(&net, &f, &mut rng, |a, b| bit_fixing_route(&net, d, a, b));
        assert_eq!(two_phase.len(), direct.len());
        assert!(two_phase.dilation() <= 2 * d);
        assert!(
            two_phase.congestion() * 2 <= direct.congestion(),
            "valiant C = {} should clearly beat direct C = {}",
            two_phase.congestion(),
            direct.congestion()
        );
    }
}
