//! Structural properties of path collections: *leveled* and *short-cut
//! free* (§1.1). These are exactly the hypotheses of Main Theorems 1.1–1.3.

use crate::collection::PathCollection;
use optical_topo::NodeId;
use std::collections::HashMap;

/// A witness that the collection is leveled: `levels[v]` for every node
/// that appears on some path (other nodes are absent).
pub type Leveling = HashMap<NodeId, u32>;

/// Try to assign levels to nodes such that every link of every path goes
/// from level `i` to level `i + 1`.
///
/// Returns the normalized leveling (minimum level 0 per the paper's
/// "`i ≥ 0`") or `None` if the collection is not leveled. Works per
/// connected component of the link-constraint graph; levels are normalized
/// within each component.
pub fn leveling(c: &PathCollection) -> Option<Leveling> {
    // Constraint graph: for each used link (u, v): level[v] = level[u] + 1.
    let mut adj: HashMap<NodeId, Vec<(NodeId, i64)>> = HashMap::new();
    for (_, p) in c.iter() {
        for w in p.nodes().windows(2) {
            adj.entry(w[0]).or_default().push((w[1], 1));
            adj.entry(w[1]).or_default().push((w[0], -1));
        }
    }
    let mut raw: HashMap<NodeId, i64> = HashMap::new();
    let mut components: Vec<Vec<NodeId>> = Vec::new();
    for &start in adj.keys() {
        if raw.contains_key(&start) {
            continue;
        }
        let mut comp = vec![start];
        raw.insert(start, 0);
        let mut queue = std::collections::VecDeque::from([start]);
        while let Some(v) = queue.pop_front() {
            let lv = raw[&v];
            for &(t, d) in &adj[&v] {
                match raw.get(&t) {
                    Some(&lt) => {
                        if lt != lv + d {
                            return None; // inconsistent constraint
                        }
                    }
                    None => {
                        raw.insert(t, lv + d);
                        comp.push(t);
                        queue.push_back(t);
                    }
                }
            }
        }
        components.push(comp);
    }
    // Normalize each component so its minimum level is 0.
    let mut out = HashMap::with_capacity(raw.len());
    for comp in components {
        let min = comp.iter().map(|v| raw[v]).min().unwrap();
        for v in comp {
            out.insert(v, (raw[&v] - min) as u32);
        }
    }
    Some(out)
}

/// Whether the collection is leveled.
pub fn is_leveled(c: &PathCollection) -> bool {
    leveling(c).is_some()
}

/// Verify a leveling against the collection (every used link climbs by
/// exactly one level). Useful for externally supplied levelings.
pub fn check_leveling(c: &PathCollection, levels: &Leveling) -> bool {
    c.iter().all(|(_, p)| {
        p.nodes()
            .windows(2)
            .all(|w| match (levels.get(&w[0]), levels.get(&w[1])) {
                (Some(&a), Some(&b)) => b == a + 1,
                _ => false,
            })
    })
}

/// Whether the collection is *short-cut free*: no subpath of one path is
/// strictly shorter than a subpath of another path with the same endpoints
/// traversed in the same order.
///
/// Checks all occurrence pairs, so it is correct for non-simple paths too.
/// Cost is quadratic in the number of co-occurrences per path pair —
/// intended as a validator for workload generators and tests, not a hot
/// path.
pub fn is_shortcut_free(c: &PathCollection) -> bool {
    // node -> [(path id, position)...], including repeated occurrences.
    let mut occ: HashMap<NodeId, Vec<(u32, u32)>> = HashMap::new();
    for (id, p) in c.iter() {
        for (pos, &v) in p.nodes().iter().enumerate() {
            occ.entry(v).or_default().push((id as u32, pos as u32));
        }
    }
    // For each path pair: collect co-occurrence position pairs.
    let mut shared: HashMap<(u32, u32), Vec<(u32, u32)>> = HashMap::new();
    for slots in occ.values() {
        for (a, &(p, i)) in slots.iter().enumerate() {
            for &(q, j) in &slots[a + 1..] {
                if p == q {
                    continue;
                }
                let (key, val) = if p < q {
                    ((p, q), (i, j))
                } else {
                    ((q, p), (j, i))
                };
                shared.entry(key).or_default().push(val);
            }
        }
    }
    for pairs in shared.values() {
        // Same-order pairs must advance by equal amounts on both paths.
        for (a, &(i1, j1)) in pairs.iter().enumerate() {
            for &(i2, j2) in &pairs[a + 1..] {
                let di = i2 as i64 - i1 as i64;
                let dj = j2 as i64 - j1 as i64;
                if di == 0 || dj == 0 {
                    continue; // same occurrence on one side
                }
                if di.signum() == dj.signum() && di != dj {
                    return false;
                }
            }
        }
    }
    true
}

/// The property the collision analysis actually uses (§2.1): for any two
/// paths and any *link* they share, the difference of the link's positions
/// on the two paths is the same for every shared link ("the difference
/// between the time points when their first flits pass an edge remains the
/// same for any commonly used edge"). Strictly stronger than literal
/// short-cut freeness on exotic wrap-around collections (see the tests);
/// equivalent on the collections used in the paper. Cost `O(Σ_links cnt²)`
/// worst case.
pub fn consistent_link_offsets(c: &PathCollection) -> bool {
    let by_link = c.paths_by_link();
    // Position of each link on each path (first occurrence).
    let mut pos: HashMap<(u32, u32), u32> = HashMap::new();
    for (id, p) in c.iter() {
        for (s, &l) in p.links().iter().enumerate() {
            pos.entry((id as u32, l)).or_insert(s as u32);
        }
    }
    let mut offsets: HashMap<(u32, u32), i64> = HashMap::new();
    for (l, users) in by_link.iter().enumerate() {
        let l = l as u32;
        for (a, &p) in users.iter().enumerate() {
            for &q in &users[a + 1..] {
                if p == q {
                    continue;
                }
                let off = pos[&(p, l)] as i64 - pos[&(q, l)] as i64;
                let key = (p.min(q), p.max(q));
                let off = if p < q { off } else { -off };
                match offsets.get(&key) {
                    Some(&prev) if prev != off => return false,
                    Some(_) => {}
                    None => {
                        offsets.insert(key, off);
                    }
                }
            }
        }
    }
    true
}

impl PathCollection {
    /// See [`is_leveled`].
    pub fn is_leveled(&self) -> bool {
        is_leveled(self)
    }

    /// See [`is_shortcut_free`].
    pub fn is_shortcut_free(&self) -> bool {
        is_shortcut_free(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::Path;
    use optical_topo::topologies;

    #[test]
    fn chain_paths_are_leveled() {
        let net = topologies::chain(6);
        let mut c = PathCollection::for_network(&net);
        c.push(Path::from_nodes(&net, &[0, 1, 2, 3]));
        c.push(Path::from_nodes(&net, &[2, 3, 4, 5]));
        let levels = leveling(&c).expect("leveled");
        assert!(check_leveling(&c, &levels));
        assert_eq!(levels[&0], 0);
        assert_eq!(levels[&3], 3);
    }

    #[test]
    fn opposite_directions_not_leveled() {
        let net = topologies::chain(3);
        let mut c = PathCollection::for_network(&net);
        c.push(Path::from_nodes(&net, &[0, 1, 2]));
        c.push(Path::from_nodes(&net, &[2, 1, 0]));
        assert!(!is_leveled(&c));
    }

    #[test]
    fn odd_cycle_not_leveled() {
        let net = topologies::ring(3);
        let mut c = PathCollection::for_network(&net);
        c.push(Path::from_nodes(&net, &[0, 1, 2, 0]));
        assert!(!is_leveled(&c));
    }

    #[test]
    fn butterfly_routes_are_leveled() {
        use optical_topo::topologies::ButterflyCoords;
        let net = topologies::butterfly(3);
        let coords = ButterflyCoords::new(3, false);
        let mut c = PathCollection::for_network(&net);
        for r in 0..8 {
            c.push(Path::from_nodes(&net, &coords.route(r, 7 - r)));
        }
        let levels = leveling(&c).expect("butterfly system is leveled");
        assert!(check_leveling(&c, &levels));
        // Levels match butterfly levels.
        for (&node, &lvl) in &levels {
            assert_eq!(coords.coords_of(node).0, lvl);
        }
    }

    #[test]
    fn disjoint_components_leveled_independently() {
        let net = topologies::chain(7);
        let mut c = PathCollection::for_network(&net);
        c.push(Path::from_nodes(&net, &[0, 1, 2]));
        c.push(Path::from_nodes(&net, &[4, 5, 6]));
        let levels = leveling(&c).unwrap();
        assert_eq!(levels[&0], 0);
        assert_eq!(levels[&4], 0, "each component normalized to 0");
        assert!(!levels.contains_key(&3));
    }

    #[test]
    fn parallel_shortest_paths_are_shortcut_free() {
        let net = topologies::torus(2, 4);
        let mut c = PathCollection::for_network(&net);
        for s in 0..16u32 {
            let p = net.shortest_path(s, (s + 5) % 16).unwrap();
            c.push(Path::from_nodes(&net, &p));
        }
        assert!(is_shortcut_free(&c));
        assert!(consistent_link_offsets(&c));
    }

    #[test]
    fn detects_shortcut() {
        // Path A goes the long way around the ring 0->1->2->3; path B
        // shortcuts 0->3 ... but in a ring 0-3 are adjacent, so B's subpath
        // 0..3 (length 1) shortcuts A's (length 3).
        let net = topologies::ring(4);
        let mut c = PathCollection::for_network(&net);
        c.push(Path::from_nodes(&net, &[0, 1, 2, 3]));
        c.push(Path::from_nodes(&net, &[1, 0, 3, 2]));
        // Shared nodes 0 and 3: A: pos 0 -> 3 (dist 3); B: pos 1 -> 2
        // (dist 1) — B shortcuts A.
        assert!(!is_shortcut_free(&c));
    }

    #[test]
    fn meets_separates_meets_again_is_shortcut() {
        // Two equal-length routes around a 6-ring that meet, separate and
        // meet again would need a 4-cycle; emulate on a hypercube.
        let net = topologies::hypercube(2); // 4-cycle 0-1-3-2-0
        let mut c = PathCollection::for_network(&net);
        c.push(Path::from_nodes(&net, &[0, 1, 3])); // 0->3 via 1
        c.push(Path::from_nodes(&net, &[0, 2, 3])); // 0->3 via 2
                                                    // Equal lengths: same-order distances agree (2 == 2) — fine.
        assert!(is_shortcut_free(&c));
        // Now make one strictly longer between the meets.
        let net = topologies::ring(5);
        let mut c = PathCollection::for_network(&net);
        c.push(Path::from_nodes(&net, &[0, 1, 2])); // 0->2 length 2
        c.push(Path::from_nodes(&net, &[0, 4, 3, 2])); // 0->2 length 3
        assert!(!is_shortcut_free(&c));
    }

    #[test]
    fn single_path_is_trivially_fine() {
        let net = topologies::chain(4);
        let mut c = PathCollection::for_network(&net);
        c.push(Path::from_nodes(&net, &[0, 1, 2, 3]));
        assert!(is_shortcut_free(&c));
        assert!(is_leveled(&c));
        assert!(consistent_link_offsets(&c));
    }

    #[test]
    fn empty_collection_has_all_properties() {
        let c = PathCollection::new(4);
        assert!(is_shortcut_free(&c));
        assert!(is_leveled(&c));
        assert!(consistent_link_offsets(&c));
    }

    #[test]
    fn link_offsets_strictly_stronger_than_shortcut_freeness() {
        // p: 0->1->2->3->4 ; q wraps: 2->3->4->0->1. Every same-order node
        // pair advances equally on both paths, so the collection is
        // short-cut free by the paper's literal definition — yet the shared
        // links (0,1) and (2,3) sit at different relative offsets (-3 vs
        // +2), because the paths share two segments in different "phases".
        // The §2.1 constant-arrival-difference property is therefore a
        // (slightly) stronger condition; all our generated systems satisfy
        // both.
        let net = topologies::ring(5);
        let mut c = PathCollection::for_network(&net);
        c.push(Path::from_nodes(&net, &[0, 1, 2, 3, 4]));
        c.push(Path::from_nodes(&net, &[2, 3, 4, 0, 1]));
        assert!(is_shortcut_free(&c));
        assert!(!consistent_link_offsets(&c));
    }
}
