//! Structural properties of path collections: *leveled* and *short-cut
//! free* (§1.1). These are exactly the hypotheses of Main Theorems 1.1–1.3.
//!
//! The public kernels run on dense flat arrays (counting sorts + CSR
//! adjacency over node/link ids, which are dense `0..count` in every
//! generator); [`reference`] keeps the original `HashMap` formulations as
//! an executable specification that the flat kernels are pinned against
//! in the tests.

use crate::collection::PathCollection;
use optical_topo::NodeId;

/// Sentinel in [`Leveling::levels`] for nodes with no level constraint.
const ABSENT: u32 = u32::MAX;
/// Sentinel for a not-yet-visited node in the BFS raw-level array.
const UNSET: i64 = i64::MIN;

/// A witness that the collection is leveled: a dense node-indexed level
/// array. Only nodes that appear on some link of some path carry a level
/// (isolated nodes — including sources of zero-length paths — are absent,
/// exactly as in the historical `HashMap<NodeId, u32>` witness).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Leveling {
    /// `levels[v]` is node `v`'s level, or [`ABSENT`].
    levels: Vec<u32>,
    /// Number of non-absent entries.
    assigned: usize,
}

impl Leveling {
    /// Level of node `v`, or `None` if `v` has no level constraint.
    pub fn get(&self, v: NodeId) -> Option<u32> {
        match self.levels.get(v as usize) {
            Some(&l) if l != ABSENT => Some(l),
            _ => None,
        }
    }

    /// Whether node `v` carries a level.
    pub fn contains(&self, v: NodeId) -> bool {
        self.get(v).is_some()
    }

    /// Number of leveled nodes.
    pub fn len(&self) -> usize {
        self.assigned
    }

    /// Whether no node carries a level.
    pub fn is_empty(&self) -> bool {
        self.assigned == 0
    }

    /// Iterate over `(node, level)` in ascending node order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, u32)> + '_ {
        self.levels
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l != ABSENT)
            .map(|(v, &l)| (v as NodeId, l))
    }
}

/// Try to assign levels to nodes such that every link of every path goes
/// from level `i` to level `i + 1`.
///
/// Returns the normalized leveling (minimum level 0 per the paper's
/// "`i ≥ 0`") or `None` if the collection is not leveled. Works per
/// connected component of the link-constraint graph; levels are normalized
/// within each component.
///
/// One pass builds a CSR constraint adjacency (each used link `(u, v)`
/// contributes arcs `u → v` with delta `+1` and `v → u` with `-1`), then a
/// BFS per component propagates raw levels and rejects on the first
/// inconsistent arc.
pub fn leveling(c: &PathCollection) -> Option<Leveling> {
    let v_count = c.max_node_id().map_or(0, |m| m as usize + 1);
    // Constraint-arc degrees; `deg` then becomes the scatter cursor.
    let mut deg = vec![0u32; v_count];
    for i in 0..c.len() {
        for w in c.nodes_of(i).windows(2) {
            deg[w[0] as usize] += 1;
            deg[w[1] as usize] += 1;
        }
    }
    let mut starts = Vec::with_capacity(v_count + 1);
    let mut acc = 0u32;
    starts.push(0);
    for d in &mut deg {
        acc += *d;
        starts.push(acc);
        *d = 0;
    }
    let total = acc as usize;
    let mut adj_to = vec![0u32; total];
    let mut adj_delta = vec![0i8; total];
    for i in 0..c.len() {
        for w in c.nodes_of(i).windows(2) {
            let (u, v) = (w[0] as usize, w[1] as usize);
            let s = (starts[u] + deg[u]) as usize;
            adj_to[s] = w[1];
            adj_delta[s] = 1;
            deg[u] += 1;
            let s = (starts[v] + deg[v]) as usize;
            adj_to[s] = w[0];
            adj_delta[s] = -1;
            deg[v] += 1;
        }
    }

    let mut raw = vec![UNSET; v_count];
    let mut levels = vec![ABSENT; v_count];
    let mut assigned = 0usize;
    let mut queue: Vec<u32> = Vec::new();
    for s in 0..v_count {
        if starts[s + 1] == starts[s] || raw[s] != UNSET {
            continue;
        }
        // BFS this component from `s`; `queue` doubles as the component's
        // node list for the normalization pass.
        queue.clear();
        raw[s] = 0;
        queue.push(s as u32);
        let mut head = 0;
        let mut min = 0i64;
        while head < queue.len() {
            let v = queue[head] as usize;
            head += 1;
            let lv = raw[v];
            for k in starts[v] as usize..starts[v + 1] as usize {
                let t = adj_to[k] as usize;
                let lt = lv + adj_delta[k] as i64;
                if raw[t] == UNSET {
                    raw[t] = lt;
                    min = min.min(lt);
                    queue.push(t as u32);
                } else if raw[t] != lt {
                    return None; // inconsistent constraint
                }
            }
        }
        // Normalize the component so its minimum level is 0.
        for &v in &queue {
            levels[v as usize] = (raw[v as usize] - min) as u32;
        }
        assigned += queue.len();
    }
    Some(Leveling { levels, assigned })
}

/// Whether the collection is leveled.
pub fn is_leveled(c: &PathCollection) -> bool {
    leveling(c).is_some()
}

/// Verify a leveling against the collection (every used link climbs by
/// exactly one level). Useful for externally supplied levelings.
pub fn check_leveling(c: &PathCollection, levels: &Leveling) -> bool {
    c.iter().all(|(_, p)| {
        p.nodes()
            .windows(2)
            .all(|w| match (levels.get(w[0]), levels.get(w[1])) {
                (Some(a), Some(b)) => b == a + 1,
                _ => false,
            })
    })
}

/// Pack an ordered path pair `(p, q)`, `p < q`, into one sortable key.
#[inline]
fn pair_key(p: u32, q: u32) -> u64 {
    ((p as u64) << 32) | q as u64
}

/// Whether the collection is *short-cut free*: no subpath of one path is
/// strictly shorter than a subpath of another path with the same endpoints
/// traversed in the same order.
///
/// Checks all occurrence pairs, so it is correct for non-simple paths too.
/// Node occurrences are counting-sorted into per-node groups, the
/// co-occurrence records of each group are flattened into one array keyed
/// by path pair and sorted, and each path pair's records are then checked
/// quadratically (co-occurrence counts per pair are small in practice).
pub fn is_shortcut_free(c: &PathCollection) -> bool {
    let v_count = c.max_node_id().map_or(0, |m| m as usize + 1);
    let nodes = c.flat_nodes();
    // Counting sort of node occurrences by node id; `cnt` becomes the
    // scatter cursor.
    let mut cnt = vec![0u32; v_count];
    for &v in nodes {
        cnt[v as usize] += 1;
    }
    let mut starts = Vec::with_capacity(v_count + 1);
    let mut acc = 0u32;
    starts.push(0);
    for d in &mut cnt {
        acc += *d;
        starts.push(acc);
        *d = 0;
    }
    let mut occ_path = vec![0u32; nodes.len()];
    let mut occ_pos = vec![0u32; nodes.len()];
    for i in 0..c.len() {
        for (pos, &v) in c.nodes_of(i).iter().enumerate() {
            let v = v as usize;
            let slot = (starts[v] + cnt[v]) as usize;
            occ_path[slot] = i as u32;
            occ_pos[slot] = pos as u32;
            cnt[v] += 1;
        }
    }
    // Co-occurrence records `(pair key, pos on p, pos on q)`. Within a
    // node's group occurrences are ordered by ascending path id (the
    // scatter walks paths in order), so `a < b` implies `p <= q`.
    let mut records: Vec<(u64, u32, u32)> = Vec::new();
    for v in 0..v_count {
        let (lo, hi) = (starts[v] as usize, starts[v + 1] as usize);
        for a in lo..hi {
            let (p, i) = (occ_path[a], occ_pos[a]);
            for b in a + 1..hi {
                let (q, j) = (occ_path[b], occ_pos[b]);
                if p != q {
                    records.push((pair_key(p, q), i, j));
                }
            }
        }
    }
    records.sort_unstable();
    // Same-order occurrence pairs must advance by equal amounts on both
    // paths. Scan each path pair's contiguous group.
    let mut g = 0;
    while g < records.len() {
        let key = records[g].0;
        let mut h = g + 1;
        while h < records.len() && records[h].0 == key {
            h += 1;
        }
        let group = &records[g..h];
        for (a, &(_, i1, j1)) in group.iter().enumerate() {
            for &(_, i2, j2) in &group[a + 1..] {
                let di = i2 as i64 - i1 as i64;
                let dj = j2 as i64 - j1 as i64;
                if di == 0 || dj == 0 {
                    continue; // same occurrence on one side
                }
                if di.signum() == dj.signum() && di != dj {
                    return false;
                }
            }
        }
        g = h;
    }
    true
}

/// The property the collision analysis actually uses (§2.1): for any two
/// paths and any *link* they share, the difference of the link's positions
/// on the two paths is the same for every shared link ("the difference
/// between the time points when their first flits pass an edge remains the
/// same for any commonly used edge"). Strictly stronger than literal
/// short-cut freeness on exotic wrap-around collections (see the tests);
/// equivalent on the collections used in the paper. Cost `O(Σ_links cnt²)`
/// worst case.
///
/// Runs on the collection's [`LinkIndex`](crate::collection::LinkIndex):
/// per link, the first occurrence per path is kept (groups are sorted by
/// path then position), each path pair contributes one offset record, and
/// one sort groups the records for the all-equal check.
pub fn consistent_link_offsets(c: &PathCollection) -> bool {
    let idx = c.link_index();
    let mut records: Vec<(u64, i64)> = Vec::new();
    let mut firsts: Vec<(u32, u32)> = Vec::new();
    for l in 0..idx.link_count() as u32 {
        let users = idx.users(l);
        if users.len() < 2 {
            continue;
        }
        // First occurrence of `l` per path: within a link's group,
        // occurrences are sorted by (path, position), so the first entry
        // of each path run is its minimum position.
        let positions = idx.positions(l);
        firsts.clear();
        let mut k = 0;
        while k < users.len() {
            let p = users[k];
            firsts.push((p, positions[k]));
            while k < users.len() && users[k] == p {
                k += 1;
            }
        }
        for (a, &(p, pi)) in firsts.iter().enumerate() {
            for &(q, qi) in &firsts[a + 1..] {
                records.push((pair_key(p, q), pi as i64 - qi as i64));
            }
        }
    }
    records.sort_unstable();
    // Every record of a path pair must carry the same offset; groups are
    // contiguous after the sort, so adjacent equality suffices.
    records
        .windows(2)
        .all(|w| w[0].0 != w[1].0 || w[0].1 == w[1].1)
}

impl PathCollection {
    /// See [`is_leveled`].
    pub fn is_leveled(&self) -> bool {
        is_leveled(self)
    }

    /// See [`is_shortcut_free`].
    pub fn is_shortcut_free(&self) -> bool {
        is_shortcut_free(self)
    }
}

/// The original `HashMap`-based formulations, kept as an executable
/// specification. The flat kernels above are pinned against these in
/// `tests/flat_kernels_match_reference.rs`; they are not exported from the
/// crate root and should not be used on hot paths.
pub mod reference {
    use super::PathCollection;
    use optical_topo::NodeId;
    use std::collections::HashMap;

    /// The historical leveling witness shape.
    pub type LevelingMap = HashMap<NodeId, u32>;

    /// Map-based [`super::leveling`].
    pub fn leveling(c: &PathCollection) -> Option<LevelingMap> {
        // Constraint graph: for each used link (u, v): level[v] = level[u] + 1.
        let mut adj: HashMap<NodeId, Vec<(NodeId, i64)>> = HashMap::new();
        for (_, p) in c.iter() {
            for w in p.nodes().windows(2) {
                adj.entry(w[0]).or_default().push((w[1], 1));
                adj.entry(w[1]).or_default().push((w[0], -1));
            }
        }
        let mut raw: HashMap<NodeId, i64> = HashMap::new();
        let mut components: Vec<Vec<NodeId>> = Vec::new();
        for &start in adj.keys() {
            if raw.contains_key(&start) {
                continue;
            }
            let mut comp = vec![start];
            raw.insert(start, 0);
            let mut queue = std::collections::VecDeque::from([start]);
            while let Some(v) = queue.pop_front() {
                let lv = raw[&v];
                for &(t, d) in &adj[&v] {
                    match raw.get(&t) {
                        Some(&lt) => {
                            if lt != lv + d {
                                return None; // inconsistent constraint
                            }
                        }
                        None => {
                            raw.insert(t, lv + d);
                            comp.push(t);
                            queue.push_back(t);
                        }
                    }
                }
            }
            components.push(comp);
        }
        // Normalize each component so its minimum level is 0.
        let mut out = HashMap::with_capacity(raw.len());
        for comp in components {
            let min = comp.iter().map(|v| raw[v]).min().unwrap();
            for v in comp {
                out.insert(v, (raw[&v] - min) as u32);
            }
        }
        Some(out)
    }

    /// Map-based [`super::is_shortcut_free`].
    pub fn is_shortcut_free(c: &PathCollection) -> bool {
        // node -> [(path id, position)...], including repeated occurrences.
        let mut occ: HashMap<NodeId, Vec<(u32, u32)>> = HashMap::new();
        for (id, p) in c.iter() {
            for (pos, &v) in p.nodes().iter().enumerate() {
                occ.entry(v).or_default().push((id as u32, pos as u32));
            }
        }
        // For each path pair: collect co-occurrence position pairs.
        let mut shared: HashMap<(u32, u32), Vec<(u32, u32)>> = HashMap::new();
        for slots in occ.values() {
            for (a, &(p, i)) in slots.iter().enumerate() {
                for &(q, j) in &slots[a + 1..] {
                    if p == q {
                        continue;
                    }
                    let (key, val) = if p < q {
                        ((p, q), (i, j))
                    } else {
                        ((q, p), (j, i))
                    };
                    shared.entry(key).or_default().push(val);
                }
            }
        }
        for pairs in shared.values() {
            // Same-order pairs must advance by equal amounts on both paths.
            for (a, &(i1, j1)) in pairs.iter().enumerate() {
                for &(i2, j2) in &pairs[a + 1..] {
                    let di = i2 as i64 - i1 as i64;
                    let dj = j2 as i64 - j1 as i64;
                    if di == 0 || dj == 0 {
                        continue; // same occurrence on one side
                    }
                    if di.signum() == dj.signum() && di != dj {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Map-based [`super::consistent_link_offsets`].
    pub fn consistent_link_offsets(c: &PathCollection) -> bool {
        let by_link = c.paths_by_link();
        // Position of each link on each path (first occurrence).
        let mut pos: HashMap<(u32, u32), u32> = HashMap::new();
        for (id, p) in c.iter() {
            for (s, &l) in p.links().iter().enumerate() {
                pos.entry((id as u32, l)).or_insert(s as u32);
            }
        }
        let mut offsets: HashMap<(u32, u32), i64> = HashMap::new();
        for (l, users) in by_link.iter().enumerate() {
            let l = l as u32;
            for (a, &p) in users.iter().enumerate() {
                for &q in &users[a + 1..] {
                    if p == q {
                        continue;
                    }
                    let off = pos[&(p, l)] as i64 - pos[&(q, l)] as i64;
                    let key = (p.min(q), p.max(q));
                    let off = if p < q { off } else { -off };
                    match offsets.get(&key) {
                        Some(&prev) if prev != off => return false,
                        Some(_) => {}
                        None => {
                            offsets.insert(key, off);
                        }
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::Path;
    use optical_topo::topologies;

    #[test]
    fn chain_paths_are_leveled() {
        let net = topologies::chain(6);
        let mut c = PathCollection::for_network(&net);
        c.push(Path::from_nodes(&net, &[0, 1, 2, 3]));
        c.push(Path::from_nodes(&net, &[2, 3, 4, 5]));
        let levels = leveling(&c).expect("leveled");
        assert!(check_leveling(&c, &levels));
        assert_eq!(levels.get(0), Some(0));
        assert_eq!(levels.get(3), Some(3));
        assert_eq!(levels.len(), 6);
    }

    #[test]
    fn opposite_directions_not_leveled() {
        let net = topologies::chain(3);
        let mut c = PathCollection::for_network(&net);
        c.push(Path::from_nodes(&net, &[0, 1, 2]));
        c.push(Path::from_nodes(&net, &[2, 1, 0]));
        assert!(!is_leveled(&c));
    }

    #[test]
    fn odd_cycle_not_leveled() {
        let net = topologies::ring(3);
        let mut c = PathCollection::for_network(&net);
        c.push(Path::from_nodes(&net, &[0, 1, 2, 0]));
        assert!(!is_leveled(&c));
    }

    #[test]
    fn butterfly_routes_are_leveled() {
        use optical_topo::topologies::ButterflyCoords;
        let net = topologies::butterfly(3);
        let coords = ButterflyCoords::new(3, false);
        let mut c = PathCollection::for_network(&net);
        for r in 0..8 {
            c.push(Path::from_nodes(&net, &coords.route(r, 7 - r)));
        }
        let levels = leveling(&c).expect("butterfly system is leveled");
        assert!(check_leveling(&c, &levels));
        // Levels match butterfly levels.
        for (node, lvl) in levels.iter() {
            assert_eq!(coords.coords_of(node).0, lvl);
        }
    }

    #[test]
    fn disjoint_components_leveled_independently() {
        let net = topologies::chain(7);
        let mut c = PathCollection::for_network(&net);
        c.push(Path::from_nodes(&net, &[0, 1, 2]));
        c.push(Path::from_nodes(&net, &[4, 5, 6]));
        let levels = leveling(&c).unwrap();
        assert_eq!(levels.get(0), Some(0));
        assert_eq!(levels.get(4), Some(0), "each component normalized to 0");
        assert!(!levels.contains(3));
        assert_eq!(levels.len(), 6);
    }

    #[test]
    fn zero_length_paths_carry_no_level() {
        let net = topologies::chain(4);
        let mut c = PathCollection::for_network(&net);
        c.push(Path::from_nodes(&net, &[2]));
        c.push(Path::from_nodes(&net, &[0, 1]));
        let levels = leveling(&c).unwrap();
        assert!(!levels.contains(2), "isolated source has no constraint");
        assert_eq!(levels.len(), 2);
        assert_eq!(levels.iter().collect::<Vec<_>>(), vec![(0, 0), (1, 1)]);
    }

    #[test]
    fn parallel_shortest_paths_are_shortcut_free() {
        let net = topologies::torus(2, 4);
        let mut c = PathCollection::for_network(&net);
        for s in 0..16u32 {
            let p = net.shortest_path(s, (s + 5) % 16).unwrap();
            c.push(Path::from_nodes(&net, &p));
        }
        assert!(is_shortcut_free(&c));
        assert!(consistent_link_offsets(&c));
    }

    #[test]
    fn detects_shortcut() {
        // Path A goes the long way around the ring 0->1->2->3; path B
        // shortcuts 0->3 ... but in a ring 0-3 are adjacent, so B's subpath
        // 0..3 (length 1) shortcuts A's (length 3).
        let net = topologies::ring(4);
        let mut c = PathCollection::for_network(&net);
        c.push(Path::from_nodes(&net, &[0, 1, 2, 3]));
        c.push(Path::from_nodes(&net, &[1, 0, 3, 2]));
        // Shared nodes 0 and 3: A: pos 0 -> 3 (dist 3); B: pos 1 -> 2
        // (dist 1) — B shortcuts A.
        assert!(!is_shortcut_free(&c));
    }

    #[test]
    fn meets_separates_meets_again_is_shortcut() {
        // Two equal-length routes around a 6-ring that meet, separate and
        // meet again would need a 4-cycle; emulate on a hypercube.
        let net = topologies::hypercube(2); // 4-cycle 0-1-3-2-0
        let mut c = PathCollection::for_network(&net);
        c.push(Path::from_nodes(&net, &[0, 1, 3])); // 0->3 via 1
        c.push(Path::from_nodes(&net, &[0, 2, 3])); // 0->3 via 2
                                                    // Equal lengths: same-order distances agree (2 == 2) — fine.
        assert!(is_shortcut_free(&c));
        // Now make one strictly longer between the meets.
        let net = topologies::ring(5);
        let mut c = PathCollection::for_network(&net);
        c.push(Path::from_nodes(&net, &[0, 1, 2])); // 0->2 length 2
        c.push(Path::from_nodes(&net, &[0, 4, 3, 2])); // 0->2 length 3
        assert!(!is_shortcut_free(&c));
    }

    #[test]
    fn single_path_is_trivially_fine() {
        let net = topologies::chain(4);
        let mut c = PathCollection::for_network(&net);
        c.push(Path::from_nodes(&net, &[0, 1, 2, 3]));
        assert!(is_shortcut_free(&c));
        assert!(is_leveled(&c));
        assert!(consistent_link_offsets(&c));
    }

    #[test]
    fn empty_collection_has_all_properties() {
        let c = PathCollection::new(4);
        assert!(is_shortcut_free(&c));
        assert!(is_leveled(&c));
        assert!(consistent_link_offsets(&c));
        let levels = leveling(&c).unwrap();
        assert!(levels.is_empty());
        assert_eq!(levels.iter().count(), 0);
    }

    #[test]
    fn link_offsets_strictly_stronger_than_shortcut_freeness() {
        // p: 0->1->2->3->4 ; q wraps: 2->3->4->0->1. Every same-order node
        // pair advances equally on both paths, so the collection is
        // short-cut free by the paper's literal definition — yet the shared
        // links (0,1) and (2,3) sit at different relative offsets (-3 vs
        // +2), because the paths share two segments in different "phases".
        // The §2.1 constant-arrival-difference property is therefore a
        // (slightly) stronger condition; all our generated systems satisfy
        // both.
        let net = topologies::ring(5);
        let mut c = PathCollection::for_network(&net);
        c.push(Path::from_nodes(&net, &[0, 1, 2, 3, 4]));
        c.push(Path::from_nodes(&net, &[2, 3, 4, 0, 1]));
        assert!(is_shortcut_free(&c));
        assert!(!consistent_link_offsets(&c));
    }

    #[test]
    fn non_simple_path_occurrences_all_checked() {
        // A figure-eight path revisits node 1; the flat kernel must keep
        // both occurrences, like the reference.
        let net = topologies::ring(4);
        let mut c = PathCollection::for_network(&net);
        c.push(Path::from_nodes(&net, &[0, 1, 2, 1, 0]));
        c.push(Path::from_nodes(&net, &[3, 0, 1]));
        assert_eq!(is_shortcut_free(&c), reference::is_shortcut_free(&c));
        assert_eq!(
            consistent_link_offsets(&c),
            reference::consistent_link_offsets(&c)
        );
    }
}
