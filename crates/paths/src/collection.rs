//! [`PathCollection`] — the multiset of paths that defines a routing
//! problem instance (§1.1 of the paper).

use crate::path::Path;
use optical_topo::{LinkId, Network, NodeId};
use serde::{Deserialize, Serialize};

/// A multiset of paths over a common network.
///
/// Only the network's link count is retained (not the network itself) so a
/// collection is a small self-contained value; generators that synthesize
/// their own scratch networks can still hand the simulator a collection
/// plus the matching link count.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PathCollection {
    paths: Vec<Path>,
    link_count: usize,
}

impl PathCollection {
    /// An empty collection over a network with `link_count` directed links.
    pub fn new(link_count: usize) -> Self {
        PathCollection {
            paths: Vec::new(),
            link_count,
        }
    }

    /// An empty collection sized for `net`.
    pub fn for_network(net: &Network) -> Self {
        Self::new(net.link_count())
    }

    /// Build from ready-made paths.
    pub fn from_paths(link_count: usize, paths: Vec<Path>) -> Self {
        let c = PathCollection { paths, link_count };
        c.assert_links_in_range();
        c
    }

    /// Build a collection realizing a function `f`: one path `i → f(i)` per
    /// entry, with paths produced by `route(src, dst)`.
    pub fn from_function(
        net: &Network,
        f: &[NodeId],
        mut route: impl FnMut(NodeId, NodeId) -> Path,
    ) -> Self {
        let mut c = Self::for_network(net);
        for (src, &dst) in f.iter().enumerate() {
            c.push(route(src as NodeId, dst));
        }
        c
    }

    fn assert_links_in_range(&self) {
        for p in &self.paths {
            for &l in p.links() {
                assert!((l as usize) < self.link_count, "link {l} out of range");
            }
        }
    }

    /// Append a path.
    pub fn push(&mut self, p: Path) {
        debug_assert!(p.links().iter().all(|&l| (l as usize) < self.link_count));
        self.paths.push(p);
    }

    /// Number of paths `n`.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// Whether the collection has no paths.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Directed-link count of the underlying network.
    pub fn link_count(&self) -> usize {
        self.link_count
    }

    /// The paths, in insertion order (path ids are indices here).
    pub fn paths(&self) -> &[Path] {
        &self.paths
    }

    /// Path with id `i`.
    pub fn path(&self, i: usize) -> &Path {
        &self.paths[i]
    }

    /// Iterate over `(path_id, path)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Path)> {
        self.paths.iter().enumerate()
    }

    /// Per-link usage counts (ordinary congestion `C` per directed link).
    pub fn link_usage(&self) -> Vec<u32> {
        let mut usage = vec![0u32; self.link_count];
        for p in &self.paths {
            for &l in p.links() {
                usage[l as usize] += 1;
            }
        }
        usage
    }

    /// For each link, the ids of paths that use it ("link → path" index).
    ///
    /// A path using a link twice appears twice; the metrics code dedups
    /// where the paper's definitions require sets.
    pub fn paths_by_link(&self) -> Vec<Vec<u32>> {
        let mut by_link: Vec<Vec<u32>> = vec![Vec::new(); self.link_count];
        for (id, p) in self.iter() {
            for &l in p.links() {
                by_link[l as usize].push(id as u32);
            }
        }
        by_link
    }

    /// Concatenate another collection (must be over the same network).
    pub fn extend(&mut self, other: PathCollection) {
        assert_eq!(
            self.link_count, other.link_count,
            "collections over different networks"
        );
        self.paths.extend(other.paths);
    }
}

/// Marker for which link a path uses at which step; used by the simulator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkUse {
    /// The directed link.
    pub link: LinkId,
    /// Zero-based position along the path.
    pub step: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use optical_topo::topologies;

    fn demo() -> (Network, PathCollection) {
        let net = topologies::ring(6);
        let mut c = PathCollection::for_network(&net);
        c.push(Path::from_nodes(&net, &[0, 1, 2, 3]));
        c.push(Path::from_nodes(&net, &[1, 2, 3, 4]));
        c.push(Path::from_nodes(&net, &[5, 4]));
        (net, c)
    }

    #[test]
    fn basic_accessors() {
        let (_, c) = demo();
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert_eq!(c.path(2).source(), 5);
    }

    #[test]
    fn link_usage_counts() {
        let (net, c) = demo();
        let usage = c.link_usage();
        let l12 = net.link_between(1, 2).unwrap();
        assert_eq!(usage[l12 as usize], 2);
        let l21 = net.link_between(2, 1).unwrap();
        assert_eq!(usage[l21 as usize], 0, "directions are distinct");
        assert_eq!(usage.iter().sum::<u32>(), 3 + 3 + 1);
    }

    #[test]
    fn paths_by_link_index() {
        let (net, c) = demo();
        let by_link = c.paths_by_link();
        let l23 = net.link_between(2, 3).unwrap();
        assert_eq!(by_link[l23 as usize], vec![0, 1]);
    }

    #[test]
    fn from_function_builds_one_path_per_entry() {
        let net = topologies::chain(4);
        let f = [3u32, 3, 3, 3];
        let c = PathCollection::from_function(&net, &f, |s, d| {
            Path::from_nodes(&net, &net.shortest_path(s, d).unwrap())
        });
        assert_eq!(c.len(), 4);
        assert_eq!(c.path(0).len(), 3);
        assert_eq!(c.path(3).len(), 0);
    }

    #[test]
    #[should_panic(expected = "different networks")]
    fn extend_rejects_mismatched_networks() {
        let (_, mut a) = demo();
        let b = PathCollection::new(2);
        a.extend(b);
    }

    #[test]
    fn extend_concatenates() {
        let (net, mut a) = demo();
        let mut b = PathCollection::for_network(&net);
        b.push(Path::from_nodes(&net, &[2, 3]));
        a.extend(b);
        assert_eq!(a.len(), 4);
    }
}
