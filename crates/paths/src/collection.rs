//! [`PathCollection`] — the multiset of paths that defines a routing
//! problem instance (§1.1 of the paper).

use crate::path::Path;
use optical_topo::{LinkId, Network, NodeId};
use serde::{Deserialize, Serialize};

/// A multiset of paths over a common network, stored in CSR layout.
///
/// All link sequences live in one flat `links` array and all node
/// sequences in one flat `nodes` array; `offsets[i]..offsets[i + 1]`
/// delimits path `i`'s links (a path with `k` links has `k + 1` nodes, so
/// its nodes are the matching window shifted by `i`). This keeps every
/// worm's link slice contiguous — `TransmissionSpec { links: &[...] }`
/// borrows straight out of the collection — and lets the metrics iterate
/// cache-linearly instead of chasing one heap box per path.
///
/// Only the network's link count is retained (not the network itself) so a
/// collection is a small self-contained value; generators that synthesize
/// their own scratch networks can still hand the simulator a collection
/// plus the matching link count.
///
/// The serde format is unchanged from the historical `Vec<Path>` layout
/// (via [`CollectionRepr`]), so snapshots written before the CSR refactor
/// still load.
#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(into = "CollectionRepr", from = "CollectionRepr")]
pub struct PathCollection {
    /// Node sequences of all paths, concatenated.
    nodes: Vec<NodeId>,
    /// Link sequences of all paths, concatenated.
    links: Vec<LinkId>,
    /// CSR offsets over `links`, length `len() + 1`. Path `i` has links
    /// `links[offsets[i]..offsets[i+1]]` and nodes
    /// `nodes[offsets[i] + i .. offsets[i+1] + i + 1]`.
    offsets: Vec<u32>,
    link_count: usize,
}

/// The on-disk shape of a collection: the historical `{paths, link_count}`
/// struct, used by serde via `#[serde(into/from)]` to keep snapshots
/// format-stable across the CSR refactor.
#[derive(Clone, Serialize, Deserialize)]
pub struct CollectionRepr {
    paths: Vec<Path>,
    link_count: usize,
}

impl From<PathCollection> for CollectionRepr {
    fn from(c: PathCollection) -> Self {
        CollectionRepr {
            paths: c.to_paths(),
            link_count: c.link_count,
        }
    }
}

impl From<CollectionRepr> for PathCollection {
    fn from(r: CollectionRepr) -> Self {
        PathCollection::from_paths(r.link_count, r.paths)
    }
}

/// A borrowed view of one path inside a [`PathCollection`] — the CSR
/// counterpart of [`Path`], `Copy` and allocation-free.
#[derive(Clone, Copy, Debug)]
pub struct PathRef<'a> {
    nodes: &'a [NodeId],
    links: &'a [LinkId],
}

impl<'a> PathRef<'a> {
    /// Number of links (the paper's path length).
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Whether the path has zero links.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// First node.
    pub fn source(&self) -> NodeId {
        self.nodes[0]
    }

    /// Last node.
    pub fn dest(&self) -> NodeId {
        *self.nodes.last().unwrap()
    }

    /// The node sequence (length `len() + 1`).
    pub fn nodes(&self) -> &'a [NodeId] {
        self.nodes
    }

    /// The directed link sequence (length `len()`).
    pub fn links(&self) -> &'a [LinkId] {
        self.links
    }

    /// Whether no node repeats (a *simple* path).
    pub fn is_simple(&self) -> bool {
        let mut seen = std::collections::HashSet::with_capacity(self.nodes.len());
        self.nodes.iter().all(|&v| seen.insert(v))
    }

    /// Position of the first occurrence of `v` on the path, if any.
    pub fn position_of(&self, v: NodeId) -> Option<usize> {
        self.nodes.iter().position(|&x| x == v)
    }

    /// Copy out an owned [`Path`].
    pub fn to_path(&self) -> Path {
        Path::from_parts(self.nodes.to_vec(), self.links.to_vec())
    }

    /// The reversed path, resolving reverse links in O(len).
    pub fn reversed(&self, net: &Network) -> Path {
        let nodes: Vec<NodeId> = self.nodes.iter().rev().copied().collect();
        let links: Vec<LinkId> = self
            .links
            .iter()
            .rev()
            .map(|&l| net.reverse_link(l))
            .collect();
        Path::from_parts(nodes, links)
    }
}

impl PartialEq for PathRef<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.nodes == other.nodes && self.links == other.links
    }
}
impl Eq for PathRef<'_> {}

impl PartialEq<Path> for PathRef<'_> {
    fn eq(&self, other: &Path) -> bool {
        self.nodes == other.nodes() && self.links == other.links()
    }
}

impl PathCollection {
    /// An empty collection over a network with `link_count` directed links.
    pub fn new(link_count: usize) -> Self {
        PathCollection {
            nodes: Vec::new(),
            links: Vec::new(),
            offsets: vec![0],
            link_count,
        }
    }

    /// An empty collection sized for `net`.
    pub fn for_network(net: &Network) -> Self {
        Self::new(net.link_count())
    }

    /// Build from ready-made paths.
    pub fn from_paths(link_count: usize, paths: Vec<Path>) -> Self {
        let mut c = Self::new(link_count);
        c.nodes.reserve(paths.iter().map(|p| p.nodes().len()).sum());
        c.links.reserve(paths.iter().map(|p| p.len()).sum());
        c.offsets.reserve(paths.len());
        for p in &paths {
            for &l in p.links() {
                assert!((l as usize) < link_count, "link {l} out of range");
            }
            c.push_parts(p.nodes(), p.links());
        }
        c
    }

    /// Build a collection realizing a function `f`: one path `i → f(i)` per
    /// entry, with paths produced by `route(src, dst)`.
    pub fn from_function(
        net: &Network,
        f: &[NodeId],
        mut route: impl FnMut(NodeId, NodeId) -> Path,
    ) -> Self {
        let mut c = Self::for_network(net);
        for (src, &dst) in f.iter().enumerate() {
            c.push(route(src as NodeId, dst));
        }
        c
    }

    fn push_parts(&mut self, nodes: &[NodeId], links: &[LinkId]) {
        debug_assert_eq!(nodes.len(), links.len() + 1, "inconsistent path parts");
        self.nodes.extend_from_slice(nodes);
        self.links.extend_from_slice(links);
        self.offsets.push(self.links.len() as u32);
    }

    /// Append a path.
    pub fn push(&mut self, p: Path) {
        debug_assert!(p.links().iter().all(|&l| (l as usize) < self.link_count));
        self.push_parts(p.nodes(), p.links());
    }

    /// Append a borrowed path view (e.g. from another collection).
    pub fn push_ref(&mut self, p: PathRef<'_>) {
        debug_assert!(p.links().iter().all(|&l| (l as usize) < self.link_count));
        self.push_parts(p.nodes(), p.links());
    }

    /// Number of paths `n`.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the collection has no paths.
    pub fn is_empty(&self) -> bool {
        self.offsets.len() == 1
    }

    /// Directed-link count of the underlying network.
    pub fn link_count(&self) -> usize {
        self.link_count
    }

    /// Path with id `i`, as a borrowed CSR view.
    pub fn path(&self, i: usize) -> PathRef<'_> {
        PathRef {
            nodes: self.nodes_of(i),
            links: self.links_of(i),
        }
    }

    /// The directed link slice of path `i` (contiguous in the flat array).
    pub fn links_of(&self, i: usize) -> &[LinkId] {
        let (lo, hi) = (self.offsets[i] as usize, self.offsets[i + 1] as usize);
        &self.links[lo..hi]
    }

    /// The node slice of path `i` (length `links_of(i).len() + 1`).
    pub fn nodes_of(&self, i: usize) -> &[NodeId] {
        let (lo, hi) = (self.offsets[i] as usize, self.offsets[i + 1] as usize);
        &self.nodes[lo + i..hi + i + 1]
    }

    /// Copy the collection out as owned [`Path`] values, in id order.
    pub fn to_paths(&self) -> Vec<Path> {
        (0..self.len()).map(|i| self.path(i).to_path()).collect()
    }

    /// Iterate over `(path_id, path)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, PathRef<'_>)> {
        (0..self.len()).map(move |i| (i, self.path(i)))
    }

    /// All links of all paths, concatenated in path order (the flat CSR
    /// array). Useful for cache-linear whole-collection scans.
    pub fn flat_links(&self) -> &[LinkId] {
        &self.links
    }

    /// All nodes of all paths, concatenated in path order (the flat CSR
    /// array; path `i`'s slice is `nodes_of(i)`). One entry per node
    /// *occurrence*, so repeated visits of non-simple paths appear
    /// repeatedly.
    pub fn flat_nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Highest node id appearing on any path, or `None` for a collection
    /// with no nodes. Collections are built over networks with dense
    /// `0..node_count` ids, so `max_node_id() + 1` bounds every dense
    /// node-indexed scratch array.
    pub fn max_node_id(&self) -> Option<NodeId> {
        self.nodes.iter().copied().max()
    }

    /// Flat CSR "link → path occurrences" index: the allocation-lean
    /// replacement for [`paths_by_link`](Self::paths_by_link) used by the
    /// metrics and property kernels (three flat arrays instead of one
    /// heap `Vec` per link).
    pub fn link_index(&self) -> LinkIndex {
        let m = self.link_count;
        // Counting pass; `counts` then becomes the scatter cursor.
        let mut counts = vec![0u32; m];
        for &l in &self.links {
            counts[l as usize] += 1;
        }
        let mut starts = Vec::with_capacity(m + 1);
        let mut acc = 0u32;
        starts.push(0);
        for cnt in &mut counts {
            acc += *cnt;
            starts.push(acc);
            *cnt = 0;
        }
        let total = self.links.len();
        let mut paths = vec![0u32; total];
        let mut positions = vec![0u32; total];
        for i in 0..self.len() {
            for (pos, &l) in self.links_of(i).iter().enumerate() {
                let l = l as usize;
                let slot = (starts[l] + counts[l]) as usize;
                paths[slot] = i as u32;
                positions[slot] = pos as u32;
                counts[l] += 1;
            }
        }
        LinkIndex {
            starts,
            paths,
            positions,
        }
    }

    /// Per-link usage counts (ordinary congestion `C` per directed link).
    pub fn link_usage(&self) -> Vec<u32> {
        let mut usage = vec![0u32; self.link_count];
        for &l in &self.links {
            usage[l as usize] += 1;
        }
        usage
    }

    /// For each link, the ids of paths that use it ("link → path" index).
    ///
    /// A path using a link twice appears twice; the metrics code dedups
    /// where the paper's definitions require sets.
    pub fn paths_by_link(&self) -> Vec<Vec<u32>> {
        let mut by_link: Vec<Vec<u32>> = vec![Vec::new(); self.link_count];
        for i in 0..self.len() {
            for &l in self.links_of(i) {
                by_link[l as usize].push(i as u32);
            }
        }
        by_link
    }

    /// Concatenate another collection (must be over the same network).
    pub fn extend(&mut self, other: PathCollection) {
        assert_eq!(
            self.link_count, other.link_count,
            "collections over different networks"
        );
        let base = *self.offsets.last().unwrap();
        self.nodes.extend_from_slice(&other.nodes);
        self.links.extend_from_slice(&other.links);
        self.offsets
            .extend(other.offsets[1..].iter().map(|&o| base + o));
    }
}

/// Flat CSR "link → path occurrences" index over a [`PathCollection`].
///
/// `users(l)` / `positions(l)` are parallel slices: occurrence `k` of link
/// `l` is used by path `users(l)[k]` at position `positions(l)[k]` on that
/// path. Occurrences are grouped by link and, within a link, ordered by
/// ascending path id, then ascending position (the scatter pass walks
/// paths in id order and each path's links front to back). Built in two
/// counting passes with exactly three allocations — the kernel-friendly
/// replacement for [`PathCollection::paths_by_link`]'s `Vec<Vec<u32>>`.
#[derive(Clone, Debug)]
pub struct LinkIndex {
    /// Per-link CSR start offsets into `paths`/`positions`
    /// (length `link_count + 1`).
    starts: Vec<u32>,
    /// Path id per link occurrence, grouped by link.
    paths: Vec<u32>,
    /// Position of the occurrence on its path, parallel to `paths`.
    positions: Vec<u32>,
}

impl LinkIndex {
    /// Path ids using link `l`, one entry per occurrence (a path using
    /// the link twice appears twice).
    pub fn users(&self, l: LinkId) -> &[u32] {
        let (lo, hi) = (self.starts[l as usize], self.starts[l as usize + 1]);
        &self.paths[lo as usize..hi as usize]
    }

    /// Positions parallel to [`users`](Self::users): where on each path
    /// the occurrence of link `l` sits.
    pub fn positions(&self, l: LinkId) -> &[u32] {
        let (lo, hi) = (self.starts[l as usize], self.starts[l as usize + 1]);
        &self.positions[lo as usize..hi as usize]
    }

    /// Number of directed links indexed.
    pub fn link_count(&self) -> usize {
        self.starts.len() - 1
    }

    /// Total number of link occurrences (Σ path lengths).
    pub fn total_occurrences(&self) -> usize {
        self.paths.len()
    }
}

/// Marker for which link a path uses at which step; used by the simulator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkUse {
    /// The directed link.
    pub link: LinkId,
    /// Zero-based position along the path.
    pub step: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use optical_topo::topologies;

    fn demo() -> (Network, PathCollection) {
        let net = topologies::ring(6);
        let mut c = PathCollection::for_network(&net);
        c.push(Path::from_nodes(&net, &[0, 1, 2, 3]));
        c.push(Path::from_nodes(&net, &[1, 2, 3, 4]));
        c.push(Path::from_nodes(&net, &[5, 4]));
        (net, c)
    }

    #[test]
    fn basic_accessors() {
        let (_, c) = demo();
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert_eq!(c.path(2).source(), 5);
    }

    #[test]
    fn csr_views_match_owned_paths() {
        let (net, c) = demo();
        let owned = [
            Path::from_nodes(&net, &[0, 1, 2, 3]),
            Path::from_nodes(&net, &[1, 2, 3, 4]),
            Path::from_nodes(&net, &[5, 4]),
        ];
        for (i, p) in c.iter() {
            assert_eq!(p, owned[i]);
            assert_eq!(p.nodes().len(), p.links().len() + 1);
            assert_eq!(p.to_path(), owned[i]);
        }
        assert_eq!(c.to_paths(), owned);
    }

    #[test]
    fn zero_length_paths_in_csr() {
        let net = topologies::ring(4);
        let mut c = PathCollection::for_network(&net);
        c.push(Path::from_nodes(&net, &[2]));
        c.push(Path::from_nodes(&net, &[0, 1]));
        c.push(Path::from_nodes(&net, &[3]));
        assert!(c.path(0).is_empty());
        assert_eq!(c.path(0).source(), 2);
        assert_eq!(c.path(0).dest(), 2);
        assert_eq!(c.path(1).len(), 1);
        assert_eq!(c.path(2).nodes(), &[3]);
    }

    #[test]
    fn link_usage_counts() {
        let (net, c) = demo();
        let usage = c.link_usage();
        let l12 = net.link_between(1, 2).unwrap();
        assert_eq!(usage[l12 as usize], 2);
        let l21 = net.link_between(2, 1).unwrap();
        assert_eq!(usage[l21 as usize], 0, "directions are distinct");
        assert_eq!(usage.iter().sum::<u32>(), 3 + 3 + 1);
    }

    #[test]
    fn paths_by_link_index() {
        let (net, c) = demo();
        let by_link = c.paths_by_link();
        let l23 = net.link_between(2, 3).unwrap();
        assert_eq!(by_link[l23 as usize], vec![0, 1]);
    }

    #[test]
    fn link_index_matches_paths_by_link() {
        let (net, mut c) = demo();
        // A non-simple path that reuses a link, to pin occurrence
        // (not path-set) semantics.
        c.push(Path::from_nodes(&net, &[2, 3, 2, 3]));
        let idx = c.link_index();
        let by_link = c.paths_by_link();
        assert_eq!(idx.link_count(), c.link_count());
        assert_eq!(idx.total_occurrences(), c.flat_links().len());
        for l in 0..c.link_count() as u32 {
            assert_eq!(idx.users(l), by_link[l as usize].as_slice(), "link {l}");
            for (&p, &pos) in idx.users(l).iter().zip(idx.positions(l)) {
                assert_eq!(c.links_of(p as usize)[pos as usize], l);
            }
        }
        let l23 = net.link_between(2, 3).unwrap();
        assert_eq!(idx.users(l23), &[0, 1, 3, 3]);
        assert_eq!(idx.positions(l23), &[2, 1, 0, 2]);
    }

    #[test]
    fn max_node_and_flat_nodes() {
        let (_, c) = demo();
        assert_eq!(c.max_node_id(), Some(5));
        assert_eq!(c.flat_nodes().len(), 4 + 4 + 2);
        assert_eq!(PathCollection::new(3).max_node_id(), None);
    }

    #[test]
    fn from_function_builds_one_path_per_entry() {
        let net = topologies::chain(4);
        let f = [3u32, 3, 3, 3];
        let c = PathCollection::from_function(&net, &f, |s, d| {
            Path::from_nodes(&net, &net.shortest_path(s, d).unwrap())
        });
        assert_eq!(c.len(), 4);
        assert_eq!(c.path(0).len(), 3);
        assert_eq!(c.path(3).len(), 0);
    }

    #[test]
    fn roundtrip_through_repr_preserves_everything() {
        let (_, c) = demo();
        let repr = CollectionRepr::from(c.clone());
        let back = PathCollection::from(repr);
        assert_eq!(back.len(), c.len());
        assert_eq!(back.link_count(), c.link_count());
        for (i, p) in c.iter() {
            assert_eq!(back.path(i), p);
        }
    }

    #[test]
    #[should_panic(expected = "different networks")]
    fn extend_rejects_mismatched_networks() {
        let (_, mut a) = demo();
        let b = PathCollection::new(2);
        a.extend(b);
    }

    #[test]
    fn extend_concatenates() {
        let (net, mut a) = demo();
        let mut b = PathCollection::for_network(&net);
        b.push(Path::from_nodes(&net, &[2, 3]));
        let expect: Vec<Path> = a.to_paths().into_iter().chain(b.to_paths()).collect();
        a.extend(b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.to_paths(), expect);
    }
}
