//! A single routing path: a node sequence plus its directed links.

use optical_topo::{LinkId, Network, NodeId};
use serde::{Deserialize, Serialize};

/// A walk through the network, stored as both its node sequence and the
/// directed links connecting consecutive nodes.
///
/// A path of *length* `k` has `k + 1` nodes and `k` links; length 0 is
/// allowed (a message whose source equals its destination).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Path {
    nodes: Box<[NodeId]>,
    links: Box<[LinkId]>,
}

impl Path {
    /// Build a path from a node sequence, resolving links against `net`.
    ///
    /// # Panics
    /// If the sequence is empty or two consecutive nodes are not adjacent.
    pub fn from_nodes(net: &Network, nodes: &[NodeId]) -> Self {
        assert!(!nodes.is_empty(), "a path needs at least one node");
        let links = net
            .links_along(nodes)
            .unwrap_or_else(|| panic!("node sequence is not a path in {}", net.name()));
        Path {
            nodes: nodes.into(),
            links: links.into(),
        }
    }

    /// Build directly from pre-resolved parts (used by generators that
    /// construct synthetic networks and paths together).
    ///
    /// # Panics
    /// If `links.len() + 1 != nodes.len()`.
    pub fn from_parts(nodes: Vec<NodeId>, links: Vec<LinkId>) -> Self {
        assert_eq!(nodes.len(), links.len() + 1, "inconsistent path parts");
        Path {
            nodes: nodes.into(),
            links: links.into(),
        }
    }

    /// Number of links (the paper's path length).
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Whether the path has zero links.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// First node.
    pub fn source(&self) -> NodeId {
        self.nodes[0]
    }

    /// Last node.
    pub fn dest(&self) -> NodeId {
        *self.nodes.last().unwrap()
    }

    /// The node sequence (length `len() + 1`).
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The directed link sequence (length `len()`).
    pub fn links(&self) -> &[LinkId] {
        &self.links
    }

    /// Whether no node repeats (a *simple* path).
    pub fn is_simple(&self) -> bool {
        let mut seen = std::collections::HashSet::with_capacity(self.nodes.len());
        self.nodes.iter().all(|&v| seen.insert(v))
    }

    /// Position of the first occurrence of `v` on the path, if any.
    pub fn position_of(&self, v: NodeId) -> Option<usize> {
        self.nodes.iter().position(|&x| x == v)
    }

    /// The reversed path, resolving reverse links in O(len).
    pub fn reversed(&self, net: &Network) -> Path {
        let nodes: Vec<NodeId> = self.nodes.iter().rev().copied().collect();
        let links: Vec<LinkId> = self
            .links
            .iter()
            .rev()
            .map(|&l| net.reverse_link(l))
            .collect();
        Path {
            nodes: nodes.into(),
            links: links.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optical_topo::topologies;

    #[test]
    fn from_nodes_resolves_links() {
        let net = topologies::chain(5);
        let p = Path::from_nodes(&net, &[1, 2, 3, 4]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.source(), 1);
        assert_eq!(p.dest(), 4);
        for (i, &l) in p.links().iter().enumerate() {
            assert_eq!(net.link_ends(l), (p.nodes()[i], p.nodes()[i + 1]));
        }
    }

    #[test]
    fn zero_length_path() {
        let net = topologies::chain(3);
        let p = Path::from_nodes(&net, &[2]);
        assert!(p.is_empty());
        assert_eq!(p.source(), p.dest());
        assert!(p.is_simple());
    }

    #[test]
    #[should_panic(expected = "not a path")]
    fn rejects_non_adjacent() {
        let net = topologies::chain(5);
        Path::from_nodes(&net, &[0, 2]);
    }

    #[test]
    fn simplicity_detection() {
        let net = topologies::ring(4);
        let simple = Path::from_nodes(&net, &[0, 1, 2]);
        assert!(simple.is_simple());
        let loopy = Path::from_nodes(&net, &[0, 1, 2, 3, 0, 1]);
        assert!(!loopy.is_simple());
    }

    #[test]
    fn reversed_path() {
        let net = topologies::ring(5);
        let p = Path::from_nodes(&net, &[0, 1, 2, 3]);
        let r = p.reversed(&net);
        assert_eq!(r.nodes(), &[3, 2, 1, 0]);
        assert_eq!(r.len(), 3);
        for (i, &l) in r.links().iter().enumerate() {
            assert_eq!(net.link_ends(l), (r.nodes()[i], r.nodes()[i + 1]));
        }
    }

    #[test]
    fn position_of_first_occurrence() {
        let net = topologies::ring(4);
        let loopy = Path::from_nodes(&net, &[0, 1, 2, 3, 0]);
        assert_eq!(loopy.position_of(0), Some(0));
        assert_eq!(loopy.position_of(3), Some(3));
        assert_eq!(loopy.position_of(9), None);
    }
}
