//! The paper's measures of a path collection (§1.1): size `n`, dilation
//! `D`, ordinary congestion `C`, and path congestion `C̃`.

use crate::collection::{LinkIndex, PathCollection};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Summary metrics of a [`PathCollection`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CollectionMetrics {
    /// Number of paths `n`.
    pub n: usize,
    /// Dilation `D`: length of the longest path.
    pub dilation: u32,
    /// Ordinary congestion `C`: max over directed links of paths using it.
    pub congestion: u32,
    /// Path congestion `C̃`: max over paths `p` of the number of other
    /// paths sharing at least one link with `p`.
    pub path_congestion: u32,
}

/// Dilation `D` of the collection (0 for an empty collection).
pub fn dilation(c: &PathCollection) -> u32 {
    c.iter().map(|(_, p)| p.len() as u32).max().unwrap_or(0)
}

/// Ordinary congestion `C`: the maximum number of paths crossing any single
/// directed link.
pub fn congestion(c: &PathCollection) -> u32 {
    c.link_usage().into_iter().max().unwrap_or(0)
}

/// Minimum collection size before [`path_congestion_each`] fans out over
/// rayon: below this the per-worker scratch setup costs more than the scan.
const PAR_MIN_PATHS: usize = 512;

/// Count the distinct *other* paths sharing a link with path `i`, using a
/// stamp array where `stamp[q] == i + 1` means `q` was already counted for
/// `i`. Stamps are monotone per scratch array, so one array serves many
/// consecutive paths without clearing.
#[inline]
fn count_link_neighbors(c: &PathCollection, idx: &LinkIndex, i: usize, stamp: &mut [u32]) -> u32 {
    let me = i as u32 + 1;
    let mut count = 0u32;
    for &l in c.links_of(i) {
        for &q in idx.users(l) {
            if q != i as u32 && stamp[q as usize] != me {
                stamp[q as usize] = me;
                count += 1;
            }
        }
    }
    count
}

/// Path congestion `C̃` of every path: entry `i` counts the *distinct other*
/// paths that share at least one directed link with path `i`.
///
/// Cost is `O(Σ_links cnt(link)²)` in the worst case but uses an epoch
///-stamped scratch array, so each (path, neighbor) pair is charged O(1).
/// Large collections fan out over rayon with one stamp array per worker;
/// results are collected in path order, so the output is identical to the
/// sequential scan.
pub fn path_congestion_each(c: &PathCollection) -> Vec<u32> {
    let n = c.len();
    let idx = c.link_index();
    if n < PAR_MIN_PATHS {
        let mut stamp = vec![0u32; n];
        return (0..n)
            .map(|i| count_link_neighbors(c, &idx, i, &mut stamp))
            .collect();
    }
    (0..n)
        .into_par_iter()
        .map_init(
            || vec![0u32; n],
            |stamp, i| count_link_neighbors(c, &idx, i, stamp),
        )
        .collect()
}

/// Path congestion `C̃` of the collection: `max_i path_congestion_each[i]`.
///
/// Computed with the same bound-pruned scan as
/// [`ActiveCongestion::path_congestion`]: the cheap per-path upper bound
/// `Σ_links (load − 1) ≥ #distinct neighbors` orders the exact stamped
/// scans, which stop at the first path whose bound cannot beat the best
/// exact count already seen (or once some path conflicts with everyone).
/// Only the *maximum* admits this pruning — per-path values still pay the
/// full scan in [`path_congestion_each`].
pub fn path_congestion(c: &PathCollection) -> u32 {
    max_path_congestion(c, &c.link_index())
}

/// [`path_congestion`] on a caller-built [`LinkIndex`].
fn max_path_congestion(c: &PathCollection, idx: &LinkIndex) -> u32 {
    let n = c.len();
    // `(upper bound, path id)`, scanned in decreasing-bound order.
    let mut bounds: Vec<(u32, u32)> = (0..n)
        .map(|i| {
            let ub = c
                .links_of(i)
                .iter()
                .map(|&l| idx.users(l).len() as u32 - 1)
                .sum::<u32>();
            (ub, i as u32)
        })
        .collect();
    bounds.sort_unstable_by(|a, b| b.cmp(a));
    let ceiling = n.saturating_sub(1) as u32;
    let mut stamp = vec![0u32; n];
    let mut max = 0u32;
    for &(ub, p) in &bounds {
        if ub <= max || max == ceiling {
            break;
        }
        max = max.max(count_link_neighbors(c, idx, p as usize, &mut stamp));
    }
    max
}

/// Cheap upper bound on `C̃`: for each path, the sum over its links of
/// `(cnt(link) − 1)`. Exact when no two paths share more than one link.
pub fn path_congestion_upper(c: &PathCollection) -> u32 {
    let usage = c.link_usage();
    c.iter()
        .map(|(_, p)| {
            p.links()
                .iter()
                .map(|&l| usage[l as usize] - 1)
                .sum::<u32>()
        })
        .max()
        .unwrap_or(0)
}

/// Reusable scratch for computing the path congestion `C̃` of an *active
/// subset* of a collection without building a sub-collection.
///
/// The per-round `record_congestion` accounting in the protocol needs
/// `C̃` restricted to the still-active paths every round; cloning the
/// surviving paths into a fresh [`PathCollection`] made that the dominant
/// cost of a run. This scratch builds a link → active-path CSR index in
/// two counting passes over the active paths' link slices and then charges
/// each (path, neighbor) pair O(1) via an epoch-stamped array — identical
/// semantics to `path_congestion(&sub_collection)`, zero allocations once
/// the buffers have grown.
#[derive(Clone, Debug, Default)]
pub struct ActiveCongestion {
    /// Per-link entry count for the current call; doubles as the fill
    /// cursor while scattering `entries`.
    counts: Vec<u32>,
    /// Per-link CSR start offsets into `entries` (length `link_count + 1`).
    starts: Vec<u32>,
    /// Active path ids flattened by link (one entry per link occurrence).
    entries: Vec<u32>,
    /// `stamp[q] == mark` means path `q` was already counted as a
    /// neighbor of the path currently being scanned.
    stamp: Vec<u32>,
    mark: u32,
    /// `(upper bound, path id)` work list for the pruned exact pass.
    bounds: Vec<(u32, u32)>,
}

impl ActiveCongestion {
    /// Fresh scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Path congestion `C̃` of `active` (path ids into `c`): the maximum
    /// over active paths `p` of the number of *distinct other* active
    /// paths sharing at least one directed link with `p`.
    pub fn path_congestion(&mut self, c: &PathCollection, active: &[u32]) -> u32 {
        let m = c.link_count();
        self.counts.clear();
        self.counts.resize(m, 0);
        let mut total = 0u32;
        for &p in active {
            for &l in c.links_of(p as usize) {
                self.counts[l as usize] += 1;
                total += 1;
            }
        }
        // Exclusive prefix sums; `counts` becomes the scatter cursor.
        self.starts.clear();
        self.starts.reserve(m + 1);
        let mut acc = 0u32;
        self.starts.push(0);
        for cnt in &mut self.counts {
            acc += *cnt;
            self.starts.push(acc);
            *cnt = 0;
        }
        // The exact pass below charges every (path, link-occurrence) pair,
        // which dominates when links are shared widely. It is pruned with
        // the cheap per-path bound Σ_links (load − 1) ≥ #distinct
        // neighbors, computed here inside the scatter pass (the loads —
        // `starts` deltas — are already final).
        self.entries.clear();
        self.entries.resize(total as usize, 0);
        let mut bounds = std::mem::take(&mut self.bounds);
        bounds.clear();
        for &p in active {
            let mut ub = 0u32;
            for &l in c.links_of(p as usize) {
                let l = l as usize;
                ub += self.starts[l + 1] - self.starts[l] - 1;
                self.entries[(self.starts[l] + self.counts[l]) as usize] = p;
                self.counts[l] += 1;
            }
            bounds.push((ub, p));
        }

        if self.stamp.len() < c.len() {
            self.stamp.resize(c.len(), 0);
        }
        // Scan paths in decreasing-bound order; stop at the first path
        // whose bound cannot beat the best exact count already seen, or as
        // soon as some path conflicts with every other active path (no
        // count can exceed `active.len() - 1`).
        bounds.sort_unstable_by(|a, b| b.cmp(a));
        let ceiling = active.len().saturating_sub(1) as u32;
        let mut max = 0u32;
        for &(ub, p) in &bounds {
            if ub <= max || max == ceiling {
                break;
            }
            self.mark = self.mark.wrapping_add(1);
            if self.mark == 0 {
                self.stamp.fill(0);
                self.mark = 1;
            }
            let mark = self.mark;
            let mut count = 0u32;
            for &l in c.links_of(p as usize) {
                let l = l as usize;
                let lo = self.starts[l] as usize;
                let hi = self.starts[l + 1] as usize;
                for &q in &self.entries[lo..hi] {
                    if q != p && self.stamp[q as usize] != mark {
                        self.stamp[q as usize] = mark;
                        count += 1;
                    }
                }
            }
            max = max.max(count);
        }
        self.bounds = bounds;
        max
    }
}

/// Connected components of the **conflict graph** (paths are adjacent iff
/// they share a directed link): each component is an independent routing
/// sub-problem that can be analyzed or simulated in isolation. Components
/// are returned as sorted path-id lists, largest first.
pub fn conflict_components(c: &PathCollection) -> Vec<Vec<u32>> {
    let n = c.len();
    // Union-find over path ids, merged per link.
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], x: u32) -> u32 {
        let mut r = x;
        while parent[r as usize] != r {
            r = parent[r as usize];
        }
        let mut cur = x;
        while parent[cur as usize] != r {
            let next = parent[cur as usize];
            parent[cur as usize] = r;
            cur = next;
        }
        r
    }
    let idx = c.link_index();
    for l in 0..idx.link_count() as u32 {
        for w in idx.users(l).windows(2) {
            let (a, b) = (find(&mut parent, w[0]), find(&mut parent, w[1]));
            if a != b {
                parent[a as usize] = b;
            }
        }
    }
    let mut groups: std::collections::HashMap<u32, Vec<u32>> = std::collections::HashMap::new();
    for i in 0..n as u32 {
        groups.entry(find(&mut parent, i)).or_default().push(i);
    }
    let mut out: Vec<Vec<u32>> = groups.into_values().collect();
    for g in &mut out {
        g.sort_unstable();
    }
    out.sort_by_key(|g| (std::cmp::Reverse(g.len()), g[0]));
    out
}

/// All metrics at once. One [`LinkIndex`] build serves both congestion
/// (the largest per-link group) and the pruned path-congestion scan,
/// instead of the two separate link passes the individual accessors pay.
pub fn metrics(c: &PathCollection) -> CollectionMetrics {
    let idx = c.link_index();
    let congestion = (0..idx.link_count() as u32)
        .map(|l| idx.users(l).len() as u32)
        .max()
        .unwrap_or(0);
    CollectionMetrics {
        n: c.len(),
        dilation: dilation(c),
        congestion,
        path_congestion: max_path_congestion(c, &idx),
    }
}

impl PathCollection {
    /// See [`metrics`].
    pub fn metrics(&self) -> CollectionMetrics {
        metrics(self)
    }

    /// See [`dilation`].
    pub fn dilation(&self) -> u32 {
        dilation(self)
    }

    /// See [`congestion`].
    pub fn congestion(&self) -> u32 {
        congestion(self)
    }

    /// See [`path_congestion`].
    pub fn path_congestion(&self) -> u32 {
        path_congestion(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::Path;
    use optical_topo::topologies;

    #[test]
    fn empty_collection_metrics() {
        let c = PathCollection::new(10);
        let m = metrics(&c);
        assert_eq!(m.n, 0);
        assert_eq!(m.dilation, 0);
        assert_eq!(m.congestion, 0);
        assert_eq!(m.path_congestion, 0);
    }

    #[test]
    fn identical_bundle() {
        // k identical paths: C = k, each path's C̃ = k - 1.
        let net = topologies::chain(4);
        let mut c = PathCollection::for_network(&net);
        for _ in 0..5 {
            c.push(Path::from_nodes(&net, &[0, 1, 2, 3]));
        }
        let m = metrics(&c);
        assert_eq!(m.n, 5);
        assert_eq!(m.dilation, 3);
        assert_eq!(m.congestion, 5);
        assert_eq!(m.path_congestion, 4);
        assert_eq!(path_congestion_each(&c), vec![4; 5]);
    }

    #[test]
    fn star_overlap_counts_distinct_paths() {
        // Path 0 shares one link with each of three distinct paths but the
        // sharers don't overlap each other.
        let net = topologies::chain(5);
        let mut c = PathCollection::for_network(&net);
        c.push(Path::from_nodes(&net, &[0, 1, 2, 3, 4])); // long path
        c.push(Path::from_nodes(&net, &[0, 1])); // shares link 0-1
        c.push(Path::from_nodes(&net, &[1, 2])); // shares link 1-2
        c.push(Path::from_nodes(&net, &[2, 3])); // shares link 2-3
        let each = path_congestion_each(&c);
        assert_eq!(each[0], 3);
        assert_eq!(each[1], 1);
        assert_eq!(each[2], 1);
        assert_eq!(each[3], 1);
        assert_eq!(path_congestion(&c), 3);
        assert_eq!(congestion(&c), 2);
    }

    #[test]
    fn multi_link_overlap_counted_once() {
        // Two paths sharing 3 links still contribute 1 to each other's C̃.
        let net = topologies::chain(5);
        let mut c = PathCollection::for_network(&net);
        c.push(Path::from_nodes(&net, &[0, 1, 2, 3, 4]));
        c.push(Path::from_nodes(&net, &[1, 2, 3, 4]));
        assert_eq!(path_congestion(&c), 1);
        assert_eq!(
            path_congestion_upper(&c),
            3,
            "upper bound overcounts shared links"
        );
    }

    #[test]
    fn opposite_directions_do_not_conflict() {
        let net = topologies::chain(3);
        let mut c = PathCollection::for_network(&net);
        c.push(Path::from_nodes(&net, &[0, 1, 2]));
        c.push(Path::from_nodes(&net, &[2, 1, 0]));
        assert_eq!(path_congestion(&c), 0, "links are directed");
        assert_eq!(congestion(&c), 1);
    }

    #[test]
    fn conflict_components_decompose() {
        let net = topologies::chain(9);
        let mut c = PathCollection::for_network(&net);
        // Component A: three overlapping paths on the left.
        c.push(Path::from_nodes(&net, &[0, 1, 2])); // 0
        c.push(Path::from_nodes(&net, &[1, 2, 3])); // 1
        c.push(Path::from_nodes(&net, &[2, 3])); // 2
                                                 // Component B: two overlapping paths on the right.
        c.push(Path::from_nodes(&net, &[5, 6, 7])); // 3
        c.push(Path::from_nodes(&net, &[6, 7, 8])); // 4
                                                    // Isolated zero-length path.
        c.push(Path::from_nodes(&net, &[4])); // 5
        let comps = conflict_components(&c);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], vec![0, 1, 2]);
        assert_eq!(comps[1], vec![3, 4]);
        assert_eq!(comps[2], vec![5]);
    }

    #[test]
    fn conflict_components_count_structures() {
        // Opposite directions never conflict: two singleton components.
        let net = topologies::chain(3);
        let mut c = PathCollection::for_network(&net);
        c.push(Path::from_nodes(&net, &[0, 1, 2]));
        c.push(Path::from_nodes(&net, &[2, 1, 0]));
        assert_eq!(conflict_components(&c).len(), 2);
    }

    #[test]
    fn active_congestion_matches_sub_collection() {
        let net = topologies::torus(2, 4);
        let mut c = PathCollection::for_network(&net);
        for s in 0..16u32 {
            let p = net.shortest_path(s, (s * 5 + 2) % 16).unwrap();
            c.push(Path::from_nodes(&net, &p));
        }
        let mut scratch = ActiveCongestion::new();
        // Reuse the same scratch across several active subsets.
        let subsets: [&[u32]; 4] = [
            &(0..16).collect::<Vec<u32>>(),
            &[0, 2, 4, 6, 8, 10, 12, 14],
            &[3, 7, 11],
            &[],
        ];
        for active in subsets {
            let mut sub = PathCollection::for_network(&net);
            for &p in active {
                sub.push(c.path(p as usize).to_path());
            }
            assert_eq!(
                scratch.path_congestion(&c, active),
                path_congestion(&sub),
                "active = {active:?}"
            );
        }
    }

    #[test]
    fn pruned_max_matches_full_scan() {
        // The bound-pruned `path_congestion` must equal the maximum of the
        // unpruned per-path scan, and `metrics` must agree with the
        // individual accessors, on collections with mixed overlap.
        let net = topologies::torus(2, 5);
        for (mul, add) in [(1u32, 7u32), (3, 11), (7, 3), (11, 13)] {
            let mut c = PathCollection::for_network(&net);
            for s in 0..25u32 {
                let p = net.shortest_path(s, (s * mul + add) % 25).unwrap();
                c.push(Path::from_nodes(&net, &p));
            }
            let full_max = path_congestion_each(&c).into_iter().max().unwrap_or(0);
            assert_eq!(path_congestion(&c), full_max);
            let m = metrics(&c);
            assert_eq!(m.congestion, congestion(&c));
            assert_eq!(m.path_congestion, full_max);
            assert_eq!(m.dilation, dilation(&c));
        }
    }

    #[test]
    fn upper_bound_dominates_exact() {
        let net = topologies::torus(2, 4);
        let mut c = PathCollection::for_network(&net);
        for s in 0..8u32 {
            let p = net.shortest_path(s, (s * 7 + 3) % 16).unwrap();
            c.push(Path::from_nodes(&net, &p));
        }
        assert!(path_congestion_upper(&c) >= path_congestion(&c));
    }
}
