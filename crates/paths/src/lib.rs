#![warn(missing_docs)]

//! Path collections and their routing-relevant metrics.
//!
//! The paper (§1.1) defines the routing problem by a *path collection*
//! `P` — a multiset of paths in the network — and measures protocols by
//!
//! * `n` — the number of paths,
//! * `D` — the **dilation** (length of the longest path),
//! * `C̃` — the **path congestion**: the maximum over paths `p` of the
//!   number of *other* paths that share an edge with `p` (not to be
//!   confused with the ordinary per-edge congestion `C`).
//!
//! Two structural properties drive the three Main Theorems:
//!
//! * **leveled** — nodes can be assigned levels so every path edge goes
//!   from level `i` to level `i + 1` ([`properties::leveling`]);
//! * **short-cut free** — no subpath of one path is short-cut by a subpath
//!   of another ([`properties::is_shortcut_free`]).
//!
//! [`select`] provides the concrete path-selection strategies used by the
//! application theorems: dimension-order routing on meshes/tori (Thm 1.6),
//! the butterfly's unique leveled input→output system (Thm 1.7), bit-fixing
//! on hypercubes, and BFS shortest-path systems for node-symmetric networks
//! (Thm 1.5).

pub mod collection;
pub mod metrics;
pub mod path;
pub mod properties;
pub mod select;

pub use collection::{PathCollection, PathRef};
pub use metrics::{ActiveCongestion, CollectionMetrics};
pub use path::Path;
